//! Differential equivalence of the execution engines: the fused +
//! vectorized executor and the block-parallel executor must be
//! bit-identical to the scalar reference interpreter —
//!
//! * on randomly generated (but valid) kernel IR over randomly
//!   initialized device memory, for every width bucket, including
//!   out-of-range `LoadIdx` (reads as 0) and guarded `StoreIdxCond`,
//!   for full, partial, and single-lane tid ranges, and
//! * on the three benchmark designs over real stimulus.
//!
//! The uniform-slot analysis runs for real on every fuzzed graph; slots
//! it proves lane-invariant are seeded with broadcast values (the
//! contract the executor specializes against), everything else with
//! per-lane random data.

use cudasim::{
    execute_kernel, execute_ordered, execute_ordered_parallel, fuse_graph, run_bitplane_cycle,
    BitLayout, Bucket, Checkpoint, DeviceMemory, ExecConfig, FuseConfig, KBin, KUn, Kernel, Op,
    Scratch, Slot, SlotUniform, TaskGraphIr,
};
use rtlflow::{Benchmark, Flow, NvdlaScale, PortMap};
use stimulus::StimulusSource;

/// Deterministic xorshift64* — no external crates.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Elements allocated per bucket in the fuzzed device.
const LENS: [u32; 4] = [6, 6, 6, 6];

const BUCKETS: [Bucket; 4] = [Bucket::B8, Bucket::B16, Bucket::B32, Bucket::B64];

const BINS: [KBin; 20] = [
    KBin::Add,
    KBin::Sub,
    KBin::Mul,
    KBin::Div,
    KBin::Rem,
    KBin::And,
    KBin::Or,
    KBin::Xor,
    KBin::Xnor,
    KBin::Shl,
    KBin::Shr,
    KBin::Sshr,
    KBin::Eq,
    KBin::Ne,
    KBin::Ltu,
    KBin::Leu,
    KBin::Gtu,
    KBin::Geu,
    KBin::LAnd,
    KBin::LOr,
];

const UNS: [KUn; 6] = [
    KUn::Not,
    KUn::Neg,
    KUn::LNot,
    KUn::RedAnd,
    KUn::RedOr,
    KUn::RedXor,
];

fn rand_slot(rng: &mut Rng) -> Slot {
    let bi = rng.below(4) as usize;
    Slot {
        bucket: BUCKETS[bi],
        offset: rng.below(LENS[bi] as u64) as u32,
    }
}

/// Base slot + depth for a memory op, staying inside the allocation
/// (the `load_idx` extent assertion enforces this).
fn rand_mem(rng: &mut Rng) -> (Slot, u32) {
    let bi = rng.below(4) as usize;
    let len = LENS[bi];
    let offset = rng.below(len as u64 - 1) as u32;
    let depth = 1 + rng.below((len - offset) as u64) as u32;
    (
        Slot {
            bucket: BUCKETS[bi],
            offset,
        },
        depth,
    )
}

/// Generate a random kernel that upholds the write-before-read
/// invariant `Kernel::validate` enforces.
fn gen_kernel(rng: &mut Rng, name: &str) -> Kernel {
    let mut ops = Vec::new();
    let mut written: Vec<u16> = Vec::new();
    let n_ops = 16 + rng.below(48) as usize;
    for _ in 0..n_ops {
        // A dst is a fresh register (capped) or an overwrite.
        let dst = |rng: &mut Rng, written: &mut Vec<u16>| -> u16 {
            if written.len() < 12 || rng.below(3) == 0 {
                let r = written.len() as u16;
                written.push(r);
                r
            } else {
                written[rng.below(written.len() as u64) as usize]
            }
        };
        let src =
            |rng: &mut Rng, written: &[u16]| written[rng.below(written.len() as u64) as usize];
        let width = |rng: &mut Rng| 1 + rng.below(64) as u32;

        let choice = if written.len() < 2 {
            rng.below(2)
        } else {
            rng.below(12)
        };
        let op = match choice {
            0 => Op::Const {
                dst: dst(rng, &mut written),
                value: rng.next(),
            },
            1 => Op::Load {
                dst: dst(rng, &mut written),
                slot: rand_slot(rng),
            },
            2 | 3 => Op::Store {
                src: src(rng, &written),
                slot: rand_slot(rng),
                width: width(rng),
            },
            // Sources are sampled BEFORE dst: dst may mint a fresh
            // register, which must not be readable by the same op.
            4 => {
                let a = src(rng, &written);
                Op::Un {
                    op: UNS[rng.below(6) as usize],
                    dst: dst(rng, &mut written),
                    a,
                    width: width(rng),
                }
            }
            5 => {
                let (cond, a, b) = (src(rng, &written), src(rng, &written), src(rng, &written));
                Op::Mux {
                    dst: dst(rng, &mut written),
                    cond,
                    a,
                    b,
                }
            }
            6 => {
                let (slot, depth) = rand_mem(rng);
                let idx = src(rng, &written);
                Op::LoadIdx {
                    dst: dst(rng, &mut written),
                    slot,
                    idx,
                    depth,
                }
            }
            7 => {
                let (slot, depth) = rand_mem(rng);
                Op::StoreIdxCond {
                    src: src(rng, &written),
                    slot,
                    idx: src(rng, &written),
                    depth,
                    pred: src(rng, &written),
                    width: width(rng),
                }
            }
            _ => {
                let (a, b) = (src(rng, &written), src(rng, &written));
                Op::Bin {
                    op: BINS[rng.below(20) as usize],
                    dst: dst(rng, &mut written),
                    a,
                    b,
                    width: width(rng),
                }
            }
        };
        ops.push(op);
    }
    Kernel::new(name, ops)
}

/// A chain-dependency task graph of `k` random kernels plus the real
/// uniform-slot analysis over random non-uniform roots.
fn gen_graph(rng: &mut Rng, k: usize) -> (TaskGraphIr, SlotUniform) {
    let kernels: Vec<Kernel> = (0..k).map(|i| gen_kernel(rng, &format!("fz{i}"))).collect();
    let deps = (0..k)
        .map(|i| if i == 0 { vec![] } else { vec![i - 1] })
        .collect();
    let ir = TaskGraphIr { kernels, deps };
    for kn in &ir.kernels {
        kn.validate().expect("generated kernel must validate");
    }
    let mut roots = Vec::new();
    for (bi, &b) in BUCKETS.iter().enumerate() {
        for off in 0..LENS[bi] {
            if rng.below(3) == 0 {
                roots.push(Slot {
                    bucket: b,
                    offset: off,
                });
            }
        }
    }
    let uniform = SlotUniform::analyze(&ir, LENS, &roots);
    (ir, uniform)
}

/// Seed device memory honoring the uniform contract: slots the analysis
/// proved lane-invariant get one broadcast value, all others get
/// independent per-lane randoms.
fn seed_device(rng: &mut Rng, uniform: &SlotUniform, n: usize) -> DeviceMemory {
    let mut dev = DeviceMemory::new(n, LENS[0], LENS[1], LENS[2], LENS[3]);
    for (bi, &b) in BUCKETS.iter().enumerate() {
        for off in 0..LENS[bi] {
            let slot = Slot {
                bucket: b,
                offset: off,
            };
            let broadcast = rng.next();
            for tid in 0..n {
                let v = if uniform.get(slot) {
                    broadcast
                } else {
                    rng.next()
                };
                dev.store(slot, tid, v); // store truncates to the bucket type
            }
        }
    }
    dev
}

fn assert_devices_equal(a: &DeviceMemory, b: &DeviceMemory, what: &str, trial: u64) {
    assert_eq!(a.var8, b.var8, "{what} diverged in var8 (trial {trial})");
    assert_eq!(a.var16, b.var16, "{what} diverged in var16 (trial {trial})");
    assert_eq!(a.var32, b.var32, "{what} diverged in var32 (trial {trial})");
    assert_eq!(a.var64, b.var64, "{what} diverged in var64 (trial {trial})");
}

fn run_trial(trial: u64, n: usize, tid0: usize, group: usize) {
    let mut rng = Rng::new(trial);
    let k = 1 + rng.below(3) as usize;
    let (ir, uniform) = gen_graph(&mut rng, k);
    let order: Vec<usize> = (0..ir.kernels.len()).collect();
    let fused = fuse_graph(&ir, Some(&uniform));
    let seed_dev = seed_device(&mut rng, &uniform, n);

    // Scalar reference.
    let mut dev_s = seed_dev.clone();
    let mut scratch = Scratch::new();
    for &k in &order {
        execute_kernel(&ir.kernels[k], &mut dev_s, &mut scratch, tid0, group);
    }

    // Fused + vectorized, with a fuzzed lane-chunk size (including the
    // degenerate chunk of 1 and chunks larger than the lane range).
    let chunk = [1usize, 3, 17, 64, 256, 1000][rng.below(6) as usize];
    let mut dev_v = seed_dev.clone();
    let mut scratch_v = Scratch::new();
    execute_ordered(
        &fused,
        &order,
        &mut dev_v,
        &mut scratch_v,
        tid0,
        group,
        chunk,
    );
    assert_devices_equal(&dev_s, &dev_v, "vectorized", trial);

    // Block-parallel with deliberately ragged blocks.
    let mut dev_p = seed_dev.clone();
    let mut scratches: Vec<Scratch> = (0..4).map(|_| Scratch::new()).collect();
    let block = 1 + rng.below(7) as usize;
    execute_ordered_parallel(
        &fused,
        &order,
        &mut dev_p,
        &mut scratches,
        tid0,
        group,
        block,
        chunk,
    );
    assert_devices_equal(&dev_s, &dev_p, "block-parallel", trial);
}

/// Like [`assert_devices_equal`] but `b` may have a bit-transposed
/// region attached: its `var8` is compared in canonical form.
fn assert_matches_reference(a: &DeviceMemory, b: &DeviceMemory, what: &str, trial: u64) {
    assert_eq!(
        a.var8,
        b.var8_canonical(),
        "{what} diverged in var8 (trial {trial})"
    );
    assert_eq!(a.var16, b.var16, "{what} diverged in var16 (trial {trial})");
    assert_eq!(a.var32, b.var32, "{what} diverged in var32 (trial {trial})");
    assert_eq!(a.var64, b.var64, "{what} diverged in var64 (trial {trial})");
}

/// Bit-transposed differential trial. Every B8 slot is probabilistically
/// declared a width-1 input root (the rest stay width-8), the layout is
/// compiled over the same fuzzed graph and uniform analysis, and the
/// seeds of every slot the layout actually transposed are masked to 0/1
/// — the contract a width-1 root makes. Serial and parallel bitpar runs,
/// plus a checkpoint round-trip through the transposed region, must all
/// stay bit-identical to the scalar reference across multiple cycles.
fn run_bit_trial(trial: u64, n: usize, tid0: usize, group: usize) {
    let mut rng = Rng::new(trial ^ 0xb17b17);
    let k = 1 + rng.below(3) as usize;
    let (ir, uniform) = gen_graph(&mut rng, k);
    let order: Vec<usize> = (0..ir.kernels.len()).collect();
    let bit_roots: Vec<(Slot, u32)> = (0..LENS[0])
        .map(|off| {
            let width = if rng.below(3) > 0 { 1 } else { 8 };
            (
                Slot {
                    bucket: Bucket::B8,
                    offset: off,
                },
                width,
            )
        })
        .collect();
    let layout = BitLayout::compile(
        &ir,
        LENS[0],
        &bit_roots,
        Some(&uniform),
        &FuseConfig::default(),
    );
    let mut seed_dev = seed_device(&mut rng, &uniform, n);
    for off in 0..LENS[0] {
        if layout.plane_of(off).is_none() {
            continue;
        }
        let slot = Slot {
            bucket: Bucket::B8,
            offset: off,
        };
        for tid in 0..n {
            let v = seed_dev.load(slot, tid) & 1;
            seed_dev.store(slot, tid, v);
        }
    }

    let mut dev_s = seed_dev.clone();
    let mut dev_b = seed_dev.clone();
    let mut dev_p = seed_dev;
    let mut scratch = Scratch::new();
    let mut s1 = vec![Scratch::new()];
    let mut s4: Vec<Scratch> = (0..4).map(|_| Scratch::new()).collect();
    let chunk = [1usize, 17, 256][rng.below(3) as usize];
    for cycle in 0..3u64 {
        for &k in &order {
            execute_kernel(&ir.kernels[k], &mut dev_s, &mut scratch, tid0, group);
        }
        run_bitplane_cycle(
            &layout, &order, &mut dev_b, &mut s1, tid0, group, 1024, chunk,
        );
        run_bitplane_cycle(&layout, &order, &mut dev_p, &mut s4, tid0, group, 64, chunk);
        assert_matches_reference(&dev_s, &dev_b, "bitpar-serial", trial);
        assert_matches_reference(&dev_s, &dev_p, "bitpar-parallel", trial);

        // Checkpoint images are canonical: capturing from the attached
        // device must equal capturing from the scalar reference, and a
        // restore into the attached device must leave the next cycle
        // bit-identical.
        let ck_s = Checkpoint::capture(&dev_s, 1, cycle, tid0 as u64);
        let ck_b = Checkpoint::capture(&dev_b, 1, cycle, tid0 as u64);
        assert_eq!(ck_s, ck_b, "checkpoint diverged (trial {trial})");
        ck_s.restore_into(&mut dev_p).unwrap();
    }
}

#[test]
fn fuzzed_bitplane_full_range() {
    for trial in 200..236 {
        let n = [1usize, 2, 5, 33, 64, 200][trial as usize % 6];
        run_bit_trial(trial, n, 0, n);
    }
}

#[test]
fn fuzzed_bitplane_partial_and_misaligned_ranges() {
    for trial in 300..324 {
        // Sub-word, word-straddling, and single-lane windows.
        run_bit_trial(trial, 33, 1, 31);
        run_bit_trial(trial, 200, 37, 97);
        run_bit_trial(trial, 8, 7, 1);
        run_bit_trial(trial, 16, 0, 0);
    }
}

#[test]
fn fuzzed_kernels_full_range() {
    for trial in 0..48 {
        let n = [1usize, 2, 5, 33, 64][trial as usize % 5];
        run_trial(trial, n, 0, n);
    }
}

#[test]
fn fuzzed_kernels_partial_and_single_lane_ranges() {
    for trial in 100..130 {
        run_trial(trial, 33, 1, 31);
        run_trial(trial, 8, 7, 1);
        run_trial(trial, 16, 0, 0);
    }
}

/// The lane-chunk size is a pure scheduling knob: every chunk size —
/// degenerate (1), sub-default (64), default (256), and a non-power-of-
/// two larger than the batch (1000) — must leave the device state
/// bit-identical to the scalar reference under both the vectorized and
/// block-parallel strategies.
#[test]
fn lane_chunk_sizes_are_bit_identical() {
    let flow = Flow::from_benchmark(Benchmark::Nvdla(NvdlaScale::Tiny)).unwrap();
    let map = PortMap::from_design(&flow.design);
    let n = 33usize; // deliberately not a multiple of any chunk size
    let cycles = 12u64;
    let source = stimulus::source_for(&flow.design, &map, n, 0xc44);
    let mut frame = vec![0u64; map.len()];

    let mut configs = vec![ExecConfig::scalar()];
    for chunk in [1usize, 64, 256, 1000] {
        configs.push(ExecConfig::vectorized().with_lane_chunk(chunk));
        configs.push(ExecConfig::parallel(3).with_lane_chunk(chunk));
    }

    let mut devs: Vec<DeviceMemory> = configs
        .iter()
        .map(|_| flow.program.plan.alloc_device(n))
        .collect();
    let mut scratches: Vec<Vec<Scratch>> = configs
        .iter()
        .map(|c| {
            (0..c.thread_count().max(1))
                .map(|_| Scratch::new())
                .collect()
        })
        .collect();

    for c in 0..cycles {
        for dev in devs.iter_mut() {
            for s in 0..n {
                source.fill_frame(s, c, &mut frame);
                for (lane, port) in map.ports.iter().enumerate() {
                    flow.program.plan.poke(dev, port.var, s, frame[lane]);
                }
            }
        }
        for (i, cfg) in configs.iter().enumerate() {
            flow.program
                .run_cycle_exec(&mut devs[i], &mut scratches[i], 0, n, cfg);
        }
        let (reference, rest) = devs.split_first().unwrap();
        for (i, dev) in rest.iter().enumerate() {
            assert_devices_equal(reference, dev, &format!("chunk cfg #{}", i + 1), c);
        }
    }
}

/// The three benchmark designs, driven by their idiomatic stimulus: the
/// vectorized and block-parallel paths must reproduce the scalar
/// reference bit-for-bit (full device state compared every cycle).
#[test]
fn benchmark_designs_match_scalar_reference() {
    for (b, n, cycles) in [
        (Benchmark::RiscvMini, 24usize, 20u64),
        (Benchmark::Spinal, 24, 20),
        (Benchmark::Nvdla(NvdlaScale::Tiny), 16, 20),
        (Benchmark::Handshake, 70, 20),
    ] {
        let flow = Flow::from_benchmark(b).unwrap();
        let map = PortMap::from_design(&flow.design);
        let source = stimulus::source_for(&flow.design, &map, n, 0x5eed);
        let mut frame = vec![0u64; map.len()];

        let mut dev_s = flow.program.plan.alloc_device(n);
        let mut dev_v = flow.program.plan.alloc_device(n);
        let mut dev_p = flow.program.plan.alloc_device(n);
        let mut dev_b = flow.program.plan.alloc_device(n);
        let mut dev_bp = flow.program.plan.alloc_device(n);
        let mut scratch_s = vec![Scratch::new()];
        let mut scratch_v = vec![Scratch::new()];
        let par = ExecConfig::parallel(3);
        let mut scratch_p: Vec<Scratch> = (0..3).map(|_| Scratch::new()).collect();
        let bit = ExecConfig::bitplane(1);
        let mut scratch_b = vec![Scratch::new()];
        let bit_par = ExecConfig::bitplane(2).with_block(64);
        let mut scratch_bp: Vec<Scratch> = (0..2).map(|_| Scratch::new()).collect();

        for c in 0..cycles {
            for dev in [&mut dev_s, &mut dev_v, &mut dev_p, &mut dev_b, &mut dev_bp] {
                for s in 0..n {
                    source.fill_frame(s, c, &mut frame);
                    for (lane, port) in map.ports.iter().enumerate() {
                        flow.program.plan.poke(dev, port.var, s, frame[lane]);
                    }
                }
            }
            flow.program
                .run_cycle_exec(&mut dev_s, &mut scratch_s, 0, n, &ExecConfig::scalar());
            flow.program.run_cycle_exec(
                &mut dev_v,
                &mut scratch_v,
                0,
                n,
                &ExecConfig::vectorized(),
            );
            flow.program
                .run_cycle_exec(&mut dev_p, &mut scratch_p, 0, n, &par);
            flow.program
                .run_cycle_exec(&mut dev_b, &mut scratch_b, 0, n, &bit);
            flow.program
                .run_cycle_exec(&mut dev_bp, &mut scratch_bp, 0, n, &bit_par);
            assert_devices_equal(&dev_s, &dev_v, b.name(), c);
            assert_devices_equal(&dev_s, &dev_p, b.name(), c);
            assert_matches_reference(&dev_s, &dev_b, b.name(), c);
            assert_matches_reference(&dev_s, &dev_bp, b.name(), c);
        }
    }
}
