//! The cluster invariant, mirroring `tests/shard_determinism.rs` one
//! layer up: for ANY worker count, capacity mix, or mid-run worker
//! death, a batch run over loopback TCP returns digests bit-identical
//! to the local sharded executor. Determinism holds because digests are
//! a pure function of (stimulus, cycle): the controller materializes
//! every group's frames once, and a requeued group re-executes the same
//! frames on a survivor.

use std::time::Duration;

use rtlflow::{
    spawn_worker, Benchmark, ChaosPlan, ClusterConfig, ClusterMetrics, Controller, DevicePool,
    FaultMode, Flow, PortMap, ShardConfig, StimulusSource, WorkerConfig, WorkerFault,
};

/// Single-device sharded run: the local reference the cluster must match.
fn sharded_digests(flow: &Flow, source: &dyn StimulusSource, cycles: u64) -> Vec<u64> {
    let cfg = ShardConfig {
        group_size: 8,
        ..Default::default()
    };
    flow.simulate_sharded(
        source,
        cycles,
        &cfg,
        &DevicePool::uniform(flow.model.clone(), 1),
    )
    .expect("local sharded reference")
    .digests
}

/// Run one batch on a loopback cluster of `workers` and return
/// (digests, metrics). `faults[i]` kills worker i at a pickup (and
/// optionally a cycle) coordinate; `checkpoint_interval > 0` turns on
/// mid-group snapshots and checkpoint resume.
fn run_cluster(
    bench: Benchmark,
    source: &dyn StimulusSource,
    cycles: u64,
    workers: usize,
    faults: &[(usize, WorkerFault)],
    checkpoint_interval: u64,
    cfg: ClusterConfig,
) -> (Vec<u64>, ClusterMetrics) {
    let controller = Controller::bind("127.0.0.1:0", cfg).expect("bind loopback controller");
    let key = controller
        .register_design(&bench.source(), bench.top())
        .expect("register benchmark design");
    let handles: Vec<_> = (0..workers)
        .map(|i| {
            spawn_worker(
                controller.addr(),
                WorkerConfig {
                    fault: faults.iter().find(|(w, _)| *w == i).map(|&(_, f)| f),
                    checkpoint_interval,
                    ..Default::default()
                },
            )
        })
        .collect();
    controller
        .wait_for_workers(workers, Duration::from_secs(10))
        .expect("all workers register");
    let digests = controller
        .run_batch(key, source, cycles)
        .expect("cluster batch completes");
    let metrics = controller.metrics();
    controller.shutdown();
    for h in handles {
        let _ = h.join();
    }
    (digests, metrics)
}

#[test]
fn loopback_matches_sharded_for_every_benchmark_and_worker_count() {
    // (benchmark, n, cycles): sized so nvdla stays test-suite friendly.
    let cases = [
        (Benchmark::RiscvMini, 48usize, 24u64),
        (Benchmark::Spinal, 40, 20),
        (Benchmark::Nvdla(rtlflow::NvdlaScale::Tiny), 24, 12),
    ];
    for (bench, n, cycles) in cases {
        let flow = Flow::from_benchmark(bench).unwrap();
        let map = PortMap::from_design(&flow.design);
        let source = stimulus::source_for(&flow.design, &map, n, 0xc1u64);
        let golden = sharded_digests(&flow, source.as_ref(), cycles);

        for workers in [1usize, 4] {
            let cfg = ClusterConfig {
                group_size: 8,
                ..Default::default()
            };
            let (digests, m) = run_cluster(bench, source.as_ref(), cycles, workers, &[], 0, cfg);
            assert_eq!(
                digests, golden,
                "{bench:?} with {workers} worker(s) diverged from the sharded reference"
            );
            assert_eq!(m.batches, 1);
            assert_eq!(m.worker_deaths, 0);
        }
    }
}

#[test]
fn worker_killed_mid_run_stays_bit_identical() {
    let bench = Benchmark::RiscvMini;
    let flow = Flow::from_benchmark(bench).unwrap();
    let map = PortMap::from_design(&flow.design);
    let source = stimulus::source_for(&flow.design, &map, 64, 0xdead);
    let golden = sharded_digests(&flow, source.as_ref(), 20);

    // Small groups guarantee several pickups per worker, so the kill at
    // the victim's second pickup really lands mid-batch.
    let cfg = ClusterConfig {
        group_size: 4,
        ..Default::default()
    };
    let fault = WorkerFault::at_pickup(1, FaultMode::Disconnect);
    let (digests, m) = run_cluster(bench, source.as_ref(), 20, 4, &[(1, fault)], 0, cfg);
    assert_eq!(
        digests, golden,
        "digests changed under a mid-run worker death"
    );
    assert!(m.worker_deaths >= 1, "the injected kill must be observed");
    assert!(
        m.requeues >= 1,
        "the dead worker's in-flight group must requeue onto a survivor"
    );
}

#[test]
fn silent_worker_is_detected_by_heartbeat_timeout() {
    let bench = Benchmark::RiscvMini;
    let flow = Flow::from_benchmark(bench).unwrap();
    let map = PortMap::from_design(&flow.design);
    let source = stimulus::source_for(&flow.design, &map, 48, 0x51e7);
    let golden = sharded_digests(&flow, source.as_ref(), 16);

    // A silent worker never closes its socket, so only the heartbeat
    // deadline can unmask it; shrink the deadline to keep the test fast.
    let cfg = ClusterConfig {
        group_size: 4,
        heartbeat_timeout: Duration::from_millis(250),
        rejoin_grace: Duration::from_millis(500),
    };
    let fault = WorkerFault::at_pickup(1, FaultMode::Silent);
    let (digests, m) = run_cluster(bench, source.as_ref(), 16, 3, &[(0, fault)], 0, cfg);
    assert_eq!(digests, golden, "digests changed under a silent worker");
    assert!(
        m.heartbeat_timeouts >= 1,
        "a silent worker must be caught by the heartbeat deadline, \
         not the EOF path (metrics: {m:?})"
    );
}

#[test]
fn sole_worker_death_is_rescued_by_its_own_reconnect() {
    let bench = Benchmark::RiscvMini;
    let flow = Flow::from_benchmark(bench).unwrap();
    let map = PortMap::from_design(&flow.design);
    let source = stimulus::source_for(&flow.design, &map, 32, 0x0e57);
    let golden = sharded_digests(&flow, source.as_ref(), 16);

    // One worker, killed mid-batch: no survivor exists, so the orphaned
    // groups can only complete when the worker's reconnect loop rejoins
    // and the monitor adopts it within the rejoin grace window.
    let cfg = ClusterConfig {
        group_size: 4,
        rejoin_grace: Duration::from_secs(5),
        ..Default::default()
    };
    let fault = WorkerFault::at_pickup(1, FaultMode::Disconnect);
    let (digests, m) = run_cluster(bench, source.as_ref(), 16, 1, &[(0, fault)], 0, cfg);
    assert_eq!(
        digests, golden,
        "digests changed across a full-cluster outage"
    );
    assert!(m.worker_deaths >= 1);
    assert!(
        m.reconnects >= 1,
        "the batch can only have finished via the reconnect path (metrics: {m:?})"
    );
}

#[test]
fn worker_killed_mid_group_resumes_from_checkpoint() {
    let bench = Benchmark::RiscvMini;
    let flow = Flow::from_benchmark(bench).unwrap();
    let map = PortMap::from_design(&flow.design);
    let source = stimulus::source_for(&flow.design, &map, 32, 0xc4e);
    let golden = sharded_digests(&flow, source.as_ref(), 48);

    // The victim dies 20 cycles into its first group — past two
    // checkpoint boundaries (interval 8) — so the requeued group must
    // resume from cycle 16 on the survivor, not restart from zero.
    let cfg = ClusterConfig {
        group_size: 16,
        ..Default::default()
    };
    let fault = WorkerFault::mid_group(0, 20, FaultMode::Disconnect);
    let (digests, m) = run_cluster(bench, source.as_ref(), 48, 2, &[(0, fault)], 8, cfg);
    assert_eq!(
        digests, golden,
        "digests changed across a checkpointed mid-group resume"
    );
    assert!(m.worker_deaths >= 1, "the injected kill must be observed");
    assert!(
        m.checkpoints_received >= 1,
        "the victim must have shipped at least one checkpoint before dying \
         (metrics: {m:?})"
    );
    assert!(
        m.groups_resumed >= 1,
        "the requeued group must resume from a checkpoint image, not cold-start \
         (metrics: {m:?})"
    );
    assert!(
        m.max_resume_cycle > 0,
        "a resume must restart mid-run, at a cycle past zero (metrics: {m:?})"
    );
}

#[test]
fn chaos_campaign_is_bit_identical_after_recovery() {
    let bench = Benchmark::RiscvMini;
    let flow = Flow::from_benchmark(bench).unwrap();
    let map = PortMap::from_design(&flow.design);
    let source = stimulus::source_for(&flow.design, &map, 48, 0xca05);
    let golden = sharded_digests(&flow, source.as_ref(), 48);

    // A scripted chaos campaign: the plan is a pure function of the
    // seed, so a failure here reproduces exactly from this test alone.
    // Every scripted death lands at or past the checkpoint boundary by
    // construction, and the plan may include Silent faults, so the
    // heartbeat deadline is shortened to keep detection fast.
    let plan = ChaosPlan::generate(7, 3, 48, 8);
    assert!(!plan.faults.is_empty(), "the campaign must script a fault");
    let cfg = ClusterConfig {
        group_size: 16,
        heartbeat_timeout: Duration::from_millis(300),
        rejoin_grace: Duration::from_secs(5),
    };
    let (digests, m) = run_cluster(bench, source.as_ref(), 48, 3, &plan.faults, 8, cfg);
    assert_eq!(
        digests,
        golden,
        "digests changed under the chaos campaign (plan:\n{})",
        plan.describe()
    );
    assert!(m.worker_deaths >= 1, "scripted faults must be observed");
    assert!(
        m.groups_resumed >= 1,
        "chaos deaths land past the checkpoint boundary, so recovery must \
         resume from a checkpoint (metrics: {m:?})"
    );
}
