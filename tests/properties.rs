//! Property-based tests over the core invariants:
//!
//! * random expression designs evaluate identically on the golden
//!   interpreter and the transpiled SIMT kernels,
//! * `BitVec` arithmetic agrees with native `u128` arithmetic,
//! * stimulus sources are pure functions of their coordinates,
//! * the discrete-event resource respects work-conservation bounds.

use proptest::prelude::*;

use rtlflow::{BitVec, Flow, Interp, PortMap};
use stimulus::{RandomSource, StimulusSource};

// ---------------------------------------------------------------- expr gen

/// A random expression tree over three 16-bit inputs.
#[derive(Debug, Clone)]
enum Ex {
    A,
    B,
    C,
    Lit(u16),
    Un(&'static str, Box<Ex>),
    Bin(&'static str, Box<Ex>, Box<Ex>),
    Tern(Box<Ex>, Box<Ex>, Box<Ex>),
    Slice(Box<Ex>, u8),
}

impl Ex {
    fn to_verilog(&self) -> String {
        match self {
            Ex::A => "a".into(),
            Ex::B => "b".into(),
            Ex::C => "c".into(),
            Ex::Lit(v) => format!("16'd{v}"),
            Ex::Un(op, e) => format!("({op}({}))", e.to_verilog()),
            Ex::Bin(op, l, r) => format!("(({}) {op} ({}))", l.to_verilog(), r.to_verilog()),
            Ex::Tern(c, t, e) => {
                format!("(({}) ? ({}) : ({}))", c.to_verilog(), t.to_verilog(), e.to_verilog())
            }
            Ex::Slice(e, lsb) => {
                // Part selects need a named base in our subset, so express
                // the slice as shift+mask instead.
                format!("((({}) >> {lsb}) & 16'h00ff)", e.to_verilog())
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = Ex> {
    let leaf = prop_oneof![
        Just(Ex::A),
        Just(Ex::B),
        Just(Ex::C),
        any::<u16>().prop_map(Ex::Lit),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (prop_oneof![Just("~"), Just("-"), Just("!")], inner.clone())
                .prop_map(|(op, e)| Ex::Un(op, Box::new(e))),
            (
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("&"),
                    Just("|"),
                    Just("^"),
                    Just("<<"),
                    Just(">>"),
                    Just("=="),
                    Just("<"),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Ex::Bin(op, Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Ex::Tern(Box::new(c), Box::new(t), Box::new(e))),
            (inner.clone(), 0u8..8).prop_map(|(e, l)| Ex::Slice(Box::new(e), l)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline invariant: transpiled kernels == golden interpreter
    /// for arbitrary combinational expressions and inputs.
    #[test]
    fn transpiled_matches_interp_on_random_exprs(
        expr in arb_expr(),
        inputs in proptest::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 1..6),
    ) {
        // Concat exprs only appear at top level via this wrapper so the
        // named-base restriction on part selects is satisfied.
        let src = format!(
            "module top(input [15:0] a, input [15:0] b, input [15:0] c, output [15:0] y);\n\
             assign y = {};\nendmodule",
            expr.to_verilog()
        );
        let Ok(flow) = Flow::from_verilog(&src, "top") else {
            // Some random expressions exceed width limits; skip them.
            return Ok(());
        };
        let a = flow.design.find_var("a").unwrap();
        let b = flow.design.find_var("b").unwrap();
        let c = flow.design.find_var("c").unwrap();
        let y = flow.design.find_var("y").unwrap();

        let mut interp = Interp::new(&flow.design).unwrap();
        let mut dev = flow.program.plan.alloc_device(1);
        let mut scratch = cudasim::Scratch::new();
        for &(va, vb, vc) in &inputs {
            interp.step_cycle(&[
                (a, BitVec::from_u64(va as u64, 16)),
                (b, BitVec::from_u64(vb as u64, 16)),
                (c, BitVec::from_u64(vc as u64, 16)),
            ]);
            flow.program.plan.poke(&mut dev, a, 0, va as u64);
            flow.program.plan.poke(&mut dev, b, 0, vb as u64);
            flow.program.plan.poke(&mut dev, c, 0, vc as u64);
            flow.program.run_cycle_functional(&mut dev, &mut scratch, 0, 1);
            prop_assert_eq!(
                flow.program.plan.peek(&dev, y, 0),
                interp.peek(y).to_u64(),
                "expr: {}", expr.to_verilog()
            );
        }
    }

    /// BitVec arithmetic agrees with u128 reference semantics.
    #[test]
    fn bitvec_matches_u128(a in any::<u64>(), b in any::<u64>(), width in 1u32..=64) {
        let m: u128 = if width == 64 { u64::MAX as u128 } else { (1u128 << width) - 1 };
        let va = BitVec::from_u64(a, width);
        let vb = BitVec::from_u64(b, width);
        let am = a as u128 & m;
        let bm = b as u128 & m;
        prop_assert_eq!(va.add(&vb).to_u64() as u128, (am + bm) & m);
        prop_assert_eq!(va.sub(&vb).to_u64() as u128, am.wrapping_sub(bm) & m);
        prop_assert_eq!(va.mul(&vb).to_u64() as u128, (am * bm) & m);
        prop_assert_eq!(va.and(&vb).to_u64() as u128, am & bm);
        prop_assert_eq!(va.or(&vb).to_u64() as u128, am | bm);
        prop_assert_eq!(va.xor(&vb).to_u64() as u128, am ^ bm);
        if bm != 0 {
            prop_assert_eq!(va.div(&vb).to_u64() as u128, am / bm);
            prop_assert_eq!(va.rem(&vb).to_u64() as u128, am % bm);
        }
        prop_assert_eq!(va.cmp_unsigned(&vb), am.cmp(&bm));
    }

    /// Kernel-level binop semantics match BitVec semantics.
    #[test]
    fn kernel_binops_match_bitvec(a in any::<u64>(), b in any::<u64>(), width in 1u32..=64) {
        use cudasim::ir::KBin;
        let m = cudasim::device::mask(width);
        let (am, bm) = (a & m, b & m);
        let va = BitVec::from_u64(am, width);
        let vb = BitVec::from_u64(bm, width);
        let pairs: [(KBin, BitVec); 8] = [
            (KBin::Add, va.add(&vb)),
            (KBin::Sub, va.sub(&vb)),
            (KBin::Mul, va.mul(&vb)),
            (KBin::And, va.and(&vb)),
            (KBin::Or, va.or(&vb)),
            (KBin::Xor, va.xor(&vb)),
            (KBin::Shl, va.shl(&vb)),
            (KBin::Shr, va.shr(&vb)),
        ];
        for (op, expect) in pairs {
            prop_assert_eq!(
                cudasim::device::apply_bin(op, am, bm, width),
                expect.to_u64(),
                "op {:?} width {}", op, width
            );
        }
        prop_assert_eq!(cudasim::device::apply_bin(KBin::Sshr, am, bm, width), va.sshr(&vb).to_u64());
    }

    /// Stimulus sources are pure: same coordinates, same frame.
    #[test]
    fn stimulus_is_pure(seed in any::<u64>(), s in 0usize..64, c in 0u64..1000) {
        let design = rtlflow::Benchmark::RiscvMini.elaborate().unwrap();
        let map = PortMap::from_design(&design);
        let src = RandomSource::new(&map, 64, seed);
        let mut f1 = vec![0u64; map.len()];
        let mut f2 = vec![0u64; map.len()];
        src.fill_frame(s, c, &mut f1);
        src.fill_frame(s, c, &mut f2);
        prop_assert_eq!(f1, f2);
    }

    /// Resource scheduling is work-conserving: makespan between the
    /// perfect-parallel and fully-serial bounds.
    #[test]
    fn resource_respects_bounds(
        durations in proptest::collection::vec(1u64..1000, 1..40),
        capacity in 1usize..8,
    ) {
        let mut r = desim::Resource::new("r", capacity);
        for &d in &durations {
            r.schedule(0, d);
        }
        let total: u64 = durations.iter().sum();
        let max = *durations.iter().max().unwrap();
        let lower = (total / capacity as u64).max(max);
        prop_assert!(r.makespan() >= lower);
        prop_assert!(r.makespan() <= total);
    }
}
