//! Property-based tests over the core invariants:
//!
//! * random expression designs evaluate identically on the golden
//!   interpreter and the transpiled SIMT kernels,
//! * `BitVec` arithmetic agrees with native `u128` arithmetic,
//! * stimulus sources are pure functions of their coordinates,
//! * the discrete-event resource respects work-conservation bounds.
//!
//! The cases are driven by a deterministic in-tree generator rather than
//! `proptest` (the build must work offline): every case derives from a
//! fixed seed, so failures are reproducible by construction — the case
//! index is part of each assertion message.

use rtlflow::{BitVec, Flow, Interp, PortMap};
use stimulus::{splitmix64, RandomSource, StimulusSource};

/// Deterministic stream of pseudo-random draws for one test case.
struct Gen(u64);

impl Gen {
    fn new(test_seed: u64, case: u64) -> Self {
        Gen(splitmix64(test_seed ^ splitmix64(case)))
    }

    fn next(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.below(options.len() as u64) as usize]
    }
}

// ---------------------------------------------------------------- expr gen

/// A random expression tree over three 16-bit inputs.
#[derive(Debug, Clone)]
enum Ex {
    A,
    B,
    C,
    Lit(u16),
    Un(&'static str, Box<Ex>),
    Bin(&'static str, Box<Ex>, Box<Ex>),
    Tern(Box<Ex>, Box<Ex>, Box<Ex>),
    Slice(Box<Ex>, u8),
}

impl Ex {
    fn to_verilog(&self) -> String {
        match self {
            Ex::A => "a".into(),
            Ex::B => "b".into(),
            Ex::C => "c".into(),
            Ex::Lit(v) => format!("16'd{v}"),
            Ex::Un(op, e) => format!("({op}({}))", e.to_verilog()),
            Ex::Bin(op, l, r) => format!("(({}) {op} ({}))", l.to_verilog(), r.to_verilog()),
            Ex::Tern(c, t, e) => {
                format!(
                    "(({}) ? ({}) : ({}))",
                    c.to_verilog(),
                    t.to_verilog(),
                    e.to_verilog()
                )
            }
            Ex::Slice(e, lsb) => {
                // Part selects need a named base in our subset, so express
                // the slice as shift+mask instead.
                format!("((({}) >> {lsb}) & 16'h00ff)", e.to_verilog())
            }
        }
    }
}

const UN_OPS: [&str; 3] = ["~", "-", "!"];
const BIN_OPS: [&str; 10] = ["+", "-", "*", "&", "|", "^", "<<", ">>", "==", "<"];

fn arb_expr(g: &mut Gen, depth: u32) -> Ex {
    if depth == 0 || g.below(5) == 0 {
        return match g.below(4) {
            0 => Ex::A,
            1 => Ex::B,
            2 => Ex::C,
            _ => Ex::Lit(g.next() as u16),
        };
    }
    match g.below(4) {
        0 => Ex::Un(g.pick(&UN_OPS), Box::new(arb_expr(g, depth - 1))),
        1 => Ex::Bin(
            g.pick(&BIN_OPS),
            Box::new(arb_expr(g, depth - 1)),
            Box::new(arb_expr(g, depth - 1)),
        ),
        2 => Ex::Tern(
            Box::new(arb_expr(g, depth - 1)),
            Box::new(arb_expr(g, depth - 1)),
            Box::new(arb_expr(g, depth - 1)),
        ),
        _ => Ex::Slice(Box::new(arb_expr(g, depth - 1)), g.below(8) as u8),
    }
}

/// The headline invariant: transpiled kernels == golden interpreter
/// for arbitrary combinational expressions and inputs.
#[test]
fn transpiled_matches_interp_on_random_exprs() {
    for case in 0..48u64 {
        let mut g = Gen::new(0x5eed_0001, case);
        let expr = arb_expr(&mut g, 4);
        let src = format!(
            "module top(input [15:0] a, input [15:0] b, input [15:0] c, output [15:0] y);\n\
             assign y = {};\nendmodule",
            expr.to_verilog()
        );
        let Ok(flow) = Flow::from_verilog(&src, "top") else {
            // Some random expressions exceed width limits; skip them.
            continue;
        };
        let a = flow.design.find_var("a").unwrap();
        let b = flow.design.find_var("b").unwrap();
        let c = flow.design.find_var("c").unwrap();
        let y = flow.design.find_var("y").unwrap();

        let mut interp = Interp::new(&flow.design).unwrap();
        let mut dev = flow.program.plan.alloc_device(1);
        let mut scratch = cudasim::Scratch::new();
        for _ in 0..1 + g.below(5) {
            let (va, vb, vc) = (g.next() as u16, g.next() as u16, g.next() as u16);
            interp.step_cycle(&[
                (a, BitVec::from_u64(va as u64, 16)),
                (b, BitVec::from_u64(vb as u64, 16)),
                (c, BitVec::from_u64(vc as u64, 16)),
            ]);
            flow.program.plan.poke(&mut dev, a, 0, va as u64);
            flow.program.plan.poke(&mut dev, b, 0, vb as u64);
            flow.program.plan.poke(&mut dev, c, 0, vc as u64);
            flow.program
                .run_cycle_functional(&mut dev, &mut scratch, 0, 1);
            assert_eq!(
                flow.program.plan.peek(&dev, y, 0),
                interp.peek(y).unwrap().to_u64(),
                "case {case} expr: {}",
                expr.to_verilog()
            );
        }
    }
}

/// BitVec arithmetic agrees with u128 reference semantics.
#[test]
// The guard intentionally mirrors hardware semantics (skip x/0 cases)
// rather than using checked division on the reference values.
#[allow(clippy::manual_checked_ops)]
fn bitvec_matches_u128() {
    for case in 0..256u64 {
        let mut g = Gen::new(0x5eed_0002, case);
        let (a, b) = (g.next(), g.next());
        let width = 1 + g.below(64) as u32;
        let m: u128 = if width == 64 {
            u64::MAX as u128
        } else {
            (1u128 << width) - 1
        };
        let va = BitVec::from_u64(a, width);
        let vb = BitVec::from_u64(b, width);
        let am = a as u128 & m;
        let bm = b as u128 & m;
        assert_eq!(va.add(&vb).to_u64() as u128, (am + bm) & m, "case {case}");
        assert_eq!(
            va.sub(&vb).to_u64() as u128,
            am.wrapping_sub(bm) & m,
            "case {case}"
        );
        assert_eq!(va.mul(&vb).to_u64() as u128, (am * bm) & m, "case {case}");
        assert_eq!(va.and(&vb).to_u64() as u128, am & bm, "case {case}");
        assert_eq!(va.or(&vb).to_u64() as u128, am | bm, "case {case}");
        assert_eq!(va.xor(&vb).to_u64() as u128, am ^ bm, "case {case}");
        if bm != 0 {
            assert_eq!(va.div(&vb).to_u64() as u128, am / bm, "case {case}");
            assert_eq!(va.rem(&vb).to_u64() as u128, am % bm, "case {case}");
        }
        assert_eq!(va.cmp_unsigned(&vb), am.cmp(&bm), "case {case}");
    }
}

/// Kernel-level binop semantics match BitVec semantics.
#[test]
fn kernel_binops_match_bitvec() {
    use cudasim::ir::KBin;
    for case in 0..256u64 {
        let mut g = Gen::new(0x5eed_0003, case);
        let (a, b) = (g.next(), g.next());
        let width = 1 + g.below(64) as u32;
        let m = cudasim::device::mask(width);
        let (am, bm) = (a & m, b & m);
        let va = BitVec::from_u64(am, width);
        let vb = BitVec::from_u64(bm, width);
        let pairs: [(KBin, BitVec); 8] = [
            (KBin::Add, va.add(&vb)),
            (KBin::Sub, va.sub(&vb)),
            (KBin::Mul, va.mul(&vb)),
            (KBin::And, va.and(&vb)),
            (KBin::Or, va.or(&vb)),
            (KBin::Xor, va.xor(&vb)),
            (KBin::Shl, va.shl(&vb)),
            (KBin::Shr, va.shr(&vb)),
        ];
        for (op, expect) in pairs {
            assert_eq!(
                cudasim::device::apply_bin(op, am, bm, width),
                expect.to_u64(),
                "case {case} op {op:?} width {width}"
            );
        }
        assert_eq!(
            cudasim::device::apply_bin(KBin::Sshr, am, bm, width),
            va.sshr(&vb).to_u64(),
            "case {case} Sshr width {width}"
        );
    }
}

/// Stimulus sources are pure: same coordinates, same frame.
#[test]
fn stimulus_is_pure() {
    let design = rtlflow::Benchmark::RiscvMini.elaborate().unwrap();
    let map = PortMap::from_design(&design);
    for case in 0..64u64 {
        let mut g = Gen::new(0x5eed_0004, case);
        let seed = g.next();
        let s = g.below(64) as usize;
        let c = g.below(1000);
        let src = RandomSource::new(&map, 64, seed);
        let mut f1 = vec![0u64; map.len()];
        let mut f2 = vec![0u64; map.len()];
        src.fill_frame(s, c, &mut f1);
        src.fill_frame(s, c, &mut f2);
        assert_eq!(f1, f2, "case {case}");
    }
}

/// Resource scheduling is work-conserving: makespan between the
/// perfect-parallel and fully-serial bounds.
#[test]
fn resource_respects_bounds() {
    for case in 0..64u64 {
        let mut g = Gen::new(0x5eed_0005, case);
        let capacity = 1 + g.below(7) as usize;
        let durations: Vec<u64> = (0..1 + g.below(39)).map(|_| 1 + g.below(999)).collect();
        let mut r = desim::Resource::new("r", capacity);
        for &d in &durations {
            r.schedule(0, d);
        }
        let total: u64 = durations.iter().sum();
        let max = *durations.iter().max().unwrap();
        let lower = (total / capacity as u64).max(max);
        assert!(r.makespan() >= lower, "case {case}");
        assert!(r.makespan() <= total, "case {case}");
    }
}
