//! End-to-end flow behaviour: performance-model shape checks (the
//! qualitative claims of the paper must hold on the virtual platform) and
//! full-pipeline smoke tests.

use baselines::cpu_model::DesignWork;
use rtlflow::{
    fmt_duration, Benchmark, CpuModel, EssentSim, ExecMode, Flow, NvdlaScale, PipelineConfig,
    PortMap, VerilatorModel,
};
use rtlir::RtlGraph;
use stimulus::source_for;

/// Modeled GPU runtime for a batch.
fn gpu_time(flow: &Flow, n: usize, cycles: u64, pipelined: bool) -> u64 {
    let map = PortMap::from_design(&flow.design);
    let source = source_for(&flow.design, &map, n, 7);
    let cfg = PipelineConfig {
        group_size: 256.min(n),
        pipelined,
        ..Default::default()
    };
    flow.simulate(source.as_ref(), cycles, &cfg)
        .unwrap()
        .makespan
}

#[test]
fn gpu_beats_80_thread_cpu_at_large_batch() {
    // The headline: at thousands of stimulus, RTLflow on one GPU beats
    // Verilator on 80 CPU threads. We check the *model* at a scale the
    // functional engines can execute quickly, then extrapolate via the
    // models in the bench harness.
    let flow = Flow::from_benchmark(Benchmark::Spinal).unwrap();
    let graph = RtlGraph::build(&flow.design).unwrap();
    let work = DesignWork::measure(&flow.design, &graph);

    let n = 4096;
    let cycles = 50;
    let gpu = gpu_time(&flow, n, cycles, true);
    let cpu = VerilatorModel::paper_small().batch_runtime(&work, n, cycles);
    assert!(
        gpu < cpu,
        "GPU ({}) should beat 80-thread CPU ({}) at {n} stimulus",
        fmt_duration(gpu),
        fmt_duration(cpu)
    );
}

#[test]
fn cpu_wins_at_tiny_batch() {
    // Break-even behaviour (Table 2's 256-stimulus rows): at small batch
    // sizes the CPU is competitive or better once GPU overheads dominate.
    let flow = Flow::from_benchmark(Benchmark::RiscvMini).unwrap();
    let graph = RtlGraph::build(&flow.design).unwrap();
    let work = DesignWork::measure(&flow.design, &graph);

    let n = 8;
    let cycles = 200;
    let gpu = gpu_time(&flow, n, cycles, true);
    // 8 stimulus on 8 single-thread processes, ignoring fork startup
    // (long-running nightly processes amortize it).
    let mut m = VerilatorModel {
        threads: 1,
        processes: 8,
        cpu: CpuModel::default(),
    };
    m.cpu.fork_startup_ns = 0;
    let cpu = m.batch_runtime(&work, n, cycles);
    assert!(
        cpu < gpu,
        "CPU ({}) should win at {n} stimulus vs GPU ({})",
        fmt_duration(cpu),
        fmt_duration(gpu)
    );
}

#[test]
fn gpu_scales_sublinearly_with_batch() {
    // Figure 13: growing the batch 16x grows GPU time far less than 16x
    // (data-parallel headroom).
    let flow = Flow::from_benchmark(Benchmark::RiscvMini).unwrap();
    let t_small = gpu_time(&flow, 256, 20, true);
    let t_big = gpu_time(&flow, 4096, 20, true);
    let growth = t_big as f64 / t_small as f64;
    assert!(
        growth < 8.0,
        "16x stimulus should cost <8x time, got {growth:.1}x"
    );
}

#[test]
fn graph_mode_beats_stream_mode() {
    // Table 4: CUDA Graph vs stream-based execution of the same graph.
    let flow = Flow::from_benchmark(Benchmark::Spinal).unwrap();
    let map = PortMap::from_design(&flow.design);
    let source = source_for(&flow.design, &map, 512, 3);
    let base = PipelineConfig {
        group_size: 256,
        ..Default::default()
    };
    let graph_mode = flow.simulate(source.as_ref(), 40, &base).unwrap();
    let stream_cfg = PipelineConfig {
        mode: ExecMode::Stream { streams: 4 },
        ..base.clone()
    };
    let stream_mode = flow.simulate(source.as_ref(), 40, &stream_cfg).unwrap();
    assert!(
        graph_mode.makespan < stream_mode.makespan,
        "graph {} should beat streams {}",
        graph_mode.makespan,
        stream_mode.makespan
    );
    assert_eq!(graph_mode.digests, stream_mode.digests);
}

#[test]
fn pipeline_utilization_tracks_figure_15() {
    // Figure 15: pipelined utilization stays high as batch grows, while
    // the barrier variant's drops.
    let flow = Flow::from_benchmark(Benchmark::RiscvMini).unwrap();
    let map = PortMap::from_design(&flow.design);

    let util = |n: usize, pipelined: bool| {
        let source = source_for(&flow.design, &map, n, 5);
        let cfg = PipelineConfig {
            group_size: 256,
            pipelined,
            ..Default::default()
        };
        flow.simulate(source.as_ref(), 15, &cfg)
            .unwrap()
            .gpu_utilization
    };
    let piped = util(4096, true);
    let barrier = util(4096, false);
    assert!(
        piped > barrier,
        "pipelined {piped:.2} should beat barrier {barrier:.2}"
    );
    assert!(
        piped > 0.5,
        "pipelined utilization should be high, got {piped:.2}"
    );
}

#[test]
fn essent_activity_drives_its_advantage() {
    // ESSENT's entire value proposition is activity < 1.
    let design = Benchmark::RiscvMini.elaborate().unwrap();
    let map = PortMap::from_design(&design);
    let source = source_for(&design, &map, 4, 9);
    let mut esim = EssentSim::new(&design, 4).unwrap();
    for _ in 0..100 {
        esim.step_cycle(&map, source.as_ref());
    }
    let act = esim.activity();
    assert!(act > 0.0 && act <= 1.0);
}

#[test]
fn nvdla_scales_transpile_and_simulate() {
    // The generator scales; the whole flow keeps working at the bigger size.
    let flow = Flow::from_benchmark(Benchmark::Nvdla(NvdlaScale::Small)).unwrap();
    assert!(
        flow.design.processes.len() > 300,
        "{}",
        flow.design.processes.len()
    );
    let r = flow.simulate_random(16, 30, 1).unwrap();
    assert_eq!(r.digests.len(), 16);
    // MAC arrays actually computed something.
    let unique: std::collections::HashSet<_> = r.digests.iter().collect();
    assert!(unique.len() > 1);
}
