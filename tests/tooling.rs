//! Integration tests for the verification tooling built on the flow:
//! checkpoints, VCD dumps and toggle coverage.

use cudasim::Scratch;
use rtlflow::{Benchmark, Flow, PortMap, RiscvSource};
use stimulus::StimulusSource;
use transpile::ToggleCoverage;

#[allow(clippy::too_many_arguments)]
fn drive(
    flow: &Flow,
    map: &PortMap,
    src: &dyn StimulusSource,
    dev: &mut cudasim::DeviceMemory,
    scratch: &mut Scratch,
    n: usize,
    from: u64,
    to: u64,
) {
    let mut frame = vec![0u64; map.len()];
    for c in from..to {
        for s in 0..n {
            src.fill_frame(s, c, &mut frame);
            for (lane, port) in map.ports.iter().enumerate() {
                flow.program.plan.poke(dev, port.var, s, frame[lane]);
            }
        }
        flow.program.run_cycle_functional(dev, scratch, 0, n);
    }
}

#[test]
fn checkpoint_resume_is_bit_exact() {
    let flow = Flow::from_benchmark(Benchmark::RiscvMini).unwrap();
    let map = PortMap::from_design(&flow.design);
    let n = 6;
    let src = RiscvSource::new(&map, n, 0x5a7e);
    let mut scratch = Scratch::new();

    // Reference run: 100 straight cycles.
    let mut dev_ref = flow.program.plan.alloc_device(n);
    drive(&flow, &map, &src, &mut dev_ref, &mut scratch, n, 0, 100);
    let reference: Vec<u64> = (0..n)
        .map(|s| flow.program.plan.output_digest(&dev_ref, &flow.design, s))
        .collect();

    // Checkpointed run: 50 cycles, snapshot, 50 more.
    let mut dev = flow.program.plan.alloc_device(n);
    drive(&flow, &map, &src, &mut dev, &mut scratch, n, 0, 50);
    let snap = dev.snapshot();
    drive(&flow, &map, &src, &mut dev, &mut scratch, n, 50, 100);
    let direct: Vec<u64> = (0..n)
        .map(|s| flow.program.plan.output_digest(&dev, &flow.design, s))
        .collect();
    assert_eq!(direct, reference);

    // Resume from the snapshot in a fresh device: must land identically.
    let mut dev2 = flow.program.plan.alloc_device(n);
    dev2.restore(&snap).unwrap();
    drive(&flow, &map, &src, &mut dev2, &mut scratch, n, 50, 100);
    let resumed: Vec<u64> = (0..n)
        .map(|s| flow.program.plan.output_digest(&dev2, &flow.design, s))
        .collect();
    assert_eq!(resumed, reference);
}

#[test]
fn vcd_dump_of_benchmark_outputs() {
    let design = Benchmark::RiscvMini.elaborate().unwrap();
    let map = PortMap::from_design(&design);
    let src = RiscvSource::new(&map, 1, 3);
    let mut frame = vec![0u64; map.len()];
    let vcd = rtlir::vcd::dump_outputs(&design, 50, |c| {
        src.fill_frame(0, c, &mut frame);
        map.to_pokes(&frame)
    })
    .unwrap();
    assert!(vcd.contains("$enddefinitions"));
    assert!(vcd.contains("pc_out"));
    // PC moves, so there must be plenty of value changes.
    assert!(
        vcd.lines().filter(|l| l.starts_with('b')).count() > 40,
        "{vcd}"
    );
}

#[test]
fn coverage_is_monotone_in_cycles() {
    let flow = Flow::from_benchmark(Benchmark::Spinal).unwrap();
    let map = PortMap::from_design(&flow.design);
    let n = 8;
    let src = RiscvSource::new(&map, n, 0xfeed);
    let mut dev = flow.program.plan.alloc_device(n);
    let mut scratch = Scratch::new();
    let mut cov = ToggleCoverage::new(&flow.design);
    let mut fractions = Vec::new();
    let mut frame = vec![0u64; map.len()];
    for c in 0..60u64 {
        for s in 0..n {
            src.fill_frame(s, c, &mut frame);
            for (lane, port) in map.ports.iter().enumerate() {
                flow.program.plan.poke(&mut dev, port.var, s, frame[lane]);
            }
        }
        flow.program
            .run_cycle_functional(&mut dev, &mut scratch, 0, n);
        cov.sample(&flow.design, &flow.program.plan, &dev, 0, n);
        if c % 20 == 19 {
            fractions.push(cov.fraction());
        }
    }
    assert!(
        fractions.windows(2).all(|w| w[1] >= w[0]),
        "coverage must be monotone: {fractions:?}"
    );
    assert!(*fractions.last().unwrap() > 0.4);
}

#[test]
fn coverage_shards_merge_to_whole() {
    let flow = Flow::from_benchmark(Benchmark::RiscvMini).unwrap();
    let map = PortMap::from_design(&flow.design);
    let n = 8;
    let src = RiscvSource::new(&map, n, 0x11);
    let mut scratch = Scratch::new();

    // Whole-batch coverage.
    let mut dev = flow.program.plan.alloc_device(n);
    let mut whole = ToggleCoverage::new(&flow.design);
    let mut frame = vec![0u64; map.len()];
    for c in 0..40u64 {
        for s in 0..n {
            src.fill_frame(s, c, &mut frame);
            for (lane, port) in map.ports.iter().enumerate() {
                flow.program.plan.poke(&mut dev, port.var, s, frame[lane]);
            }
        }
        flow.program
            .run_cycle_functional(&mut dev, &mut scratch, 0, n);
        whole.sample(&flow.design, &flow.program.plan, &dev, 0, n);
    }

    // Two half-batch shards, merged.
    let mut merged = ToggleCoverage::new(&flow.design);
    for half in 0..2 {
        let mut devh = flow.program.plan.alloc_device(n);
        let mut cov = ToggleCoverage::new(&flow.design);
        for c in 0..40u64 {
            for s in 0..n {
                src.fill_frame(s, c, &mut frame);
                for (lane, port) in map.ports.iter().enumerate() {
                    flow.program.plan.poke(&mut devh, port.var, s, frame[lane]);
                }
            }
            flow.program
                .run_cycle_functional(&mut devh, &mut scratch, 0, n);
            let (tid0, len) = if half == 0 {
                (0, n / 2)
            } else {
                (n / 2, n - n / 2)
            };
            cov.sample(&flow.design, &flow.program.plan, &devh, tid0, len);
        }
        merged.merge(&cov);
    }
    assert_eq!(merged.covered_bits(), whole.covered_bits());
}
