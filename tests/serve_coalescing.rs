//! The serving layer's two external contracts:
//!
//! 1. **Coalescing is bit-invisible.** N jobs submitted concurrently and
//!    packed into one launch return digests bit-identical to N standalone
//!    `Flow::simulate` runs of the same specs.
//! 2. **Backpressure is honest.** Past the in-flight limit, submits are
//!    rejected immediately with a positive retry-after — and a retrying
//!    client eventually gets through.

use std::sync::Arc;
use std::time::Duration;

use rtlflow::{
    DeadlineClass, Flow, JobSpec, PipelineConfig, PortMap, RandomSource, ServeConfig, SimService,
    SubmitError,
};

fn accumulator_flow() -> Flow {
    let v = "module top(input clk, input rst, input [7:0] a, input [7:0] b, output [7:0] q);
               reg [7:0] acc;
               always @(posedge clk) begin
                 if (rst) acc <= 8'd0; else acc <= acc + (a ^ b);
               end
               assign q = acc;
             endmodule";
    Flow::from_verilog(v, "top").expect("elaborate accumulator")
}

#[test]
fn coalesced_jobs_are_bit_identical_to_standalone_flow_runs() {
    let flow = accumulator_flow();
    let design = Arc::new(flow.design.clone());
    let map = PortMap::from_design(&design);
    const CYCLES: u64 = 60;
    // Distinct (stimulus count, seed) per job: coalescing must keep each
    // job's own indices and seed intact.
    let specs: [(usize, u64); 4] = [(7, 0xA1), (16, 0xB2), (3, 0xC3), (24, 0xD4)];

    // Standalone references straight through the flow, no service.
    let expected: Vec<Vec<u64>> = specs
        .iter()
        .map(|&(n, seed)| {
            let source = RandomSource::new(&map, n, seed);
            flow.simulate(&source, CYCLES, &PipelineConfig::default())
                .expect("standalone run")
                .digests
        })
        .collect();

    // The same four jobs, submitted concurrently; a 100ms window with a
    // roomy max batch guarantees they ride one coalesced launch.
    let service = SimService::start(ServeConfig {
        max_batch: 4096,
        window: Duration::from_millis(100),
        workers: 2,
        ..Default::default()
    });
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .map(|&(n, seed)| {
                let design = Arc::clone(&design);
                let map = &map;
                let service = &service;
                scope.spawn(move || {
                    let spec =
                        JobSpec::new(design, Box::new(RandomSource::new(map, n, seed)), CYCLES);
                    service
                        .submit(spec)
                        .expect("under the limit")
                        .wait()
                        .expect("job completes")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    for ((result, want), &(n, seed)) in results.iter().zip(&expected).zip(&specs) {
        assert_eq!(result.digests.len(), n);
        assert_eq!(
            &result.digests, want,
            "job (n={n}, seed={seed:#x}) must be bit-identical to its standalone run"
        );
        assert_eq!(
            result.batch_jobs, 4,
            "all four jobs must have shared one coalesced launch"
        );
        assert_eq!(result.batch_stimulus, 7 + 16 + 3 + 24);
    }

    let metrics = service.shutdown();
    assert_eq!(metrics.jobs_completed, 4);
    assert_eq!(metrics.dispatches, 1);
    assert!((metrics.coalescing_efficiency() - 0.75).abs() < 1e-12);
}

#[test]
fn over_limit_submits_reject_with_retry_after() {
    let flow = accumulator_flow();
    let design = Arc::new(flow.design.clone());
    let map = PortMap::from_design(&design);
    // A wide-open window keeps admitted jobs in flight (windowed, not
    // completed), so the in-flight limit binds deterministically.
    let service = SimService::start(ServeConfig {
        queue_limit: 2,
        window: Duration::from_secs(300),
        workers: 1,
        ..Default::default()
    });
    let spec = |seed: u64| {
        JobSpec::new(
            Arc::clone(&design),
            Box::new(RandomSource::new(&map, 4, seed)),
            30,
        )
        .with_class(DeadlineClass::Bulk)
    };

    let h1 = service.submit(spec(1)).expect("first fits");
    let h2 = service.submit(spec(2)).expect("second fits");
    let rejected = match service.submit(spec(3)) {
        Err(SubmitError::Full(r)) => r,
        Err(SubmitError::Invalid(m)) => panic!("a well-formed spec must not be invalid: {m}"),
        Ok(_) => panic!("third submit must be rejected at in-flight limit 2"),
    };
    assert_eq!(rejected.depth, 2);
    assert!(
        rejected.retry_after > Duration::ZERO,
        "retry-after must be actionable"
    );
    assert!(
        rejected.to_string().contains("retry after"),
        "rejection message should carry the hint: {rejected}"
    );

    // Shutdown drains the windowed jobs; the rejected one never ran.
    let metrics = service.shutdown();
    assert_eq!(metrics.jobs_accepted, 2);
    assert_eq!(metrics.jobs_rejected, 1);
    assert_eq!(metrics.jobs_completed, 2);
    assert!(h1.wait().is_ok());
    assert!(h2.wait().is_ok());
}
