//! The checkpoint decoder's robustness contract: `Checkpoint::decode`
//! is a *total* function over arbitrary bytes. A valid image round-trips
//! bit-exactly; every truncation, byte flip, trailing extension, and
//! random garbage buffer returns a structured [`CheckpointError`] —
//! never a panic, never a silently-wrong `Ok`. The sweep runs over a
//! real captured image (riscv-mini state after live cycles), so the
//! payload exercised is the one the cluster actually ships.

use rtlflow::{
    resume_group_exec, Benchmark, Checkpoint, CheckpointError, ExecConfig, Flow, PortMap,
};

/// FNV-1a-64, re-implemented here so tests can craft images with valid
/// checksums but hostile headers (wrong magic/version) independently of
/// the production encoder.
fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Patch the trailing checksum so only the deliberately-corrupted field
/// is wrong, isolating the header checks from the checksum check.
fn reseal(image: &mut [u8]) {
    let body = image.len() - 8;
    let sum = fnv1a64(&image[..body]);
    image[body..].copy_from_slice(&sum.to_le_bytes());
}

/// A checkpoint captured from real device state: riscv-mini, 6 stimulus,
/// 5 live cycles, so every payload bucket holds non-trivial values.
fn populated_checkpoint() -> (Flow, Checkpoint, Vec<u8>) {
    let flow = Flow::from_benchmark(Benchmark::RiscvMini).expect("elaborate riscv-mini");
    let map = PortMap::from_design(&flow.design);
    let n = 6;
    let source = stimulus::source_for(&flow.design, &map, n, 0xfeed);
    let mut dev = flow.program.plan.alloc_device(n);
    resume_group_exec(
        &flow.design,
        &flow.program,
        &map,
        source.as_ref(),
        &mut dev,
        0,
        n,
        0,
        5,
        &ExecConfig::default(),
    );
    let hash = rtlir::design_hash(&flow.design);
    let ck = Checkpoint::capture(&dev, hash, 5, 0);
    let image = ck.encode();
    (flow, ck, image)
}

#[test]
fn valid_image_round_trips_and_restores() {
    let (flow, ck, image) = populated_checkpoint();
    let decoded = Checkpoint::decode(&image).expect("a freshly-encoded image must decode");
    assert_eq!(decoded, ck, "decode must invert encode bit-exactly");
    assert_eq!(decoded.cycle, 5);
    assert_eq!(decoded.design_hash, rtlir::design_hash(&flow.design));
    assert_eq!(decoded.n(), 6);
    let mut fresh = flow.program.plan.alloc_device(6);
    decoded
        .restore_into(&mut fresh)
        .expect("matching shape must restore");
    assert_eq!(
        Checkpoint::capture(&fresh, decoded.design_hash, 5, 0).encode(),
        image,
        "restored state must re-encode to the identical image"
    );
}

#[test]
fn every_prefix_truncation_is_a_structured_error() {
    let (_, _, image) = populated_checkpoint();
    for len in 0..image.len() {
        match Checkpoint::decode(&image[..len]) {
            Err(CheckpointError::Truncated { .. }) => {}
            other => panic!("prefix of {len}/{} bytes gave {other:?}", image.len()),
        }
    }
}

#[test]
fn every_single_byte_flip_is_rejected() {
    let (_, _, image) = populated_checkpoint();
    for at in 0..image.len() {
        let mut bad = image.clone();
        bad[at] ^= 0x40;
        assert!(
            Checkpoint::decode(&bad).is_err(),
            "flipping byte {at}/{} decoded successfully",
            image.len()
        );
    }
}

#[test]
fn trailing_bytes_are_garbage_not_ignored() {
    let (_, _, image) = populated_checkpoint();
    for extra in [1usize, 8, 72] {
        let mut bad = image.clone();
        bad.extend(std::iter::repeat_n(0xEE, extra));
        assert_eq!(
            Checkpoint::decode(&bad),
            Err(CheckpointError::TrailingGarbage { extra }),
            "{extra} appended bytes must be reported, not skipped"
        );
    }
}

#[test]
fn wrong_magic_and_version_are_named_even_with_a_valid_checksum() {
    let (_, _, image) = populated_checkpoint();

    let mut bad_magic = image.clone();
    bad_magic[..4].copy_from_slice(&0xdead_beefu32.to_le_bytes());
    reseal(&mut bad_magic);
    assert_eq!(
        Checkpoint::decode(&bad_magic),
        Err(CheckpointError::BadMagic(0xdead_beef))
    );

    // v1 images predate the checksum and are deliberately refused.
    let mut bad_version = image.clone();
    bad_version[4..8].copy_from_slice(&1u32.to_le_bytes());
    reseal(&mut bad_version);
    assert_eq!(
        Checkpoint::decode(&bad_version),
        Err(CheckpointError::BadVersion(1))
    );
}

#[test]
fn random_garbage_buffers_never_panic() {
    let mut s = 0x005e_ed0f_c0ff_ee00u64;
    for round in 0..64 {
        let len = (round * 37) % 4096;
        let mut buf = Vec::with_capacity(len);
        while buf.len() < len {
            s = stimulus::splitmix64(s);
            buf.extend_from_slice(&s.to_le_bytes());
        }
        buf.truncate(len);
        assert!(
            Checkpoint::decode(&buf).is_err(),
            "{len} bytes of seeded garbage decoded successfully"
        );
    }
}

#[test]
fn restore_into_wrong_shape_is_refused() {
    let (flow, _, image) = populated_checkpoint();
    let decoded = Checkpoint::decode(&image).unwrap();
    let mut wrong = flow.program.plan.alloc_device(7);
    match decoded.restore_into(&mut wrong) {
        Err(CheckpointError::ShapeMismatch { image, device }) => {
            assert_eq!(image[0], 6);
            assert_eq!(device[0], 7);
        }
        other => panic!("restoring into a 7-wide device gave {other:?}"),
    }
}
