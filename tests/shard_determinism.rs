//! Property test for the sharding invariant: for ANY pool shape — device
//! count, heterogeneous speed mix, group size — and ANY injected fault
//! schedule, the sharded executor's output digests are bit-identical to
//! the single-device `Flow::simulate` baseline.
//!
//! Cases are driven by a deterministic in-tree generator (the build must
//! work offline, so no `proptest`); every case derives from a fixed seed
//! and carries its index in the assertion message.

use rtlflow::{
    Benchmark, DevicePool, FaultSpec, Flow, PipelineConfig, PortMap, ShardConfig, StimulusSource,
};
use stimulus::splitmix64;

/// Deterministic stream of pseudo-random draws for one test case.
struct Gen(u64);

impl Gen {
    fn new(test_seed: u64, case: u64) -> Self {
        Gen(splitmix64(test_seed ^ splitmix64(case)))
    }

    fn next(&mut self) -> u64 {
        self.0 = splitmix64(self.0);
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn golden_digests(flow: &Flow, source: &dyn StimulusSource, cycles: u64) -> Vec<u64> {
    flow.simulate(source, cycles, &PipelineConfig::default())
        .expect("single-device baseline")
        .digests
}

#[test]
fn sharding_never_changes_digests() {
    let flow = Flow::from_benchmark(Benchmark::RiscvMini).unwrap();
    let map = PortMap::from_design(&flow.design);

    for case in 0..6u64 {
        let mut g = Gen::new(0x5a4d ^ 0x1000, case);
        let n = 16 + g.below(48) as usize;
        let cycles = 10 + g.below(20);
        let source = stimulus::source_for(&flow.design, &map, n, g.next());
        let golden = golden_digests(&flow, source.as_ref(), cycles);

        for shards in [1usize, 2, 3, 7] {
            // A mix of equal and binned device speeds.
            let speeds: Vec<f64> = (0..shards)
                .map(|_| [1.0, 1.0, 0.5, 0.25][g.below(4) as usize])
                .collect();
            let pool = DevicePool::with_speeds(flow.model.clone(), &speeds);
            let cfg = ShardConfig {
                group_size: 1 + g.below(12) as usize,
                fault: None,
                ..Default::default()
            };
            let r = flow
                .simulate_sharded(source.as_ref(), cycles, &cfg, &pool)
                .unwrap();
            assert_eq!(
                r.digests, golden,
                "case {case}: {shards} shards (speeds {speeds:?}, group {}) diverged",
                cfg.group_size
            );
        }
    }
}

#[test]
fn faulted_runs_stay_bit_identical() {
    let flow = Flow::from_benchmark(Benchmark::RiscvMini).unwrap();
    let map = PortMap::from_design(&flow.design);

    for case in 0..6u64 {
        let mut g = Gen::new(0xfa17 ^ 0x2000, case);
        let n = 24 + g.below(40) as usize;
        let cycles = 10 + g.below(16);
        let source = stimulus::source_for(&flow.design, &map, n, g.next());
        let golden = golden_digests(&flow, source.as_ref(), cycles);

        for shards in [2usize, 3, 7] {
            // Random explicit fault schedule: up to `shards` kill events at
            // random pickup indices (the executor protects the last
            // survivor, so even an all-devices schedule must complete).
            let kills = 1 + g.below(shards as u64);
            let at: Vec<(usize, u64)> = (0..kills)
                .map(|_| (g.below(shards as u64) as usize, g.below(4)))
                .collect();
            let pool = DevicePool::uniform(flow.model.clone(), shards);
            let cfg = ShardConfig {
                group_size: 1 + g.below(8) as usize,
                fault: Some(FaultSpec::schedule(at.clone())),
                ..Default::default()
            };
            let r = flow
                .simulate_sharded(source.as_ref(), cycles, &cfg, &pool)
                .unwrap();
            assert_eq!(
                r.digests, golden,
                "case {case}: {shards} shards with fault schedule {at:?} diverged"
            );
            assert!(
                r.metrics.devices.iter().any(|d| d.alive),
                "case {case}: at least one device must survive"
            );
        }
    }
}

#[test]
fn rate_faults_with_requeue_stay_bit_identical() {
    let flow = Flow::from_benchmark(Benchmark::RiscvMini).unwrap();
    let map = PortMap::from_design(&flow.design);
    let source = stimulus::source_for(&flow.design, &map, 40, 0xbeef);
    let golden = golden_digests(&flow, source.as_ref(), 18);

    // An aggressive fault rate across seeds: devices keep dying mid-batch
    // and their shards requeue, yet results never change.
    let mut saw_requeue = false;
    for seed in 0..4u64 {
        let pool = DevicePool::uniform(flow.model.clone(), 3);
        let cfg = ShardConfig {
            group_size: 4,
            fault: Some(FaultSpec::with_rate(0.3, seed)),
            ..Default::default()
        };
        let r = flow
            .simulate_sharded(source.as_ref(), 18, &cfg, &pool)
            .unwrap();
        assert_eq!(r.digests, golden, "seed {seed} diverged under rate faults");
        saw_requeue |= r.metrics.groups_requeued > 0;
    }
    assert!(
        saw_requeue,
        "a 30% pickup fault rate must exercise the requeue path"
    );
}
