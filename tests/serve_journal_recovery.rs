//! The serve layer's crash-resilience contract, end to end: every job
//! the service *accepted* (its `submit` returned `Ok`) is recoverable
//! from the write-ahead journal after an abrupt controller crash, and a
//! recovered job's digests are bit-identical to an uninterrupted run —
//! the journal loses nothing, invents nothing, and tolerates torn or
//! corrupted lines without giving up the rest of the history.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use rtlflow::{
    journal, Flow, JobSpec, PipelineConfig, PortMap, RandomSource, ServeConfig, SimService,
};

fn accumulator_flow() -> Flow {
    let v = "module top(input clk, input rst, input [7:0] a, input [7:0] b, output [7:0] q);
               reg [7:0] acc;
               always @(posedge clk) begin
                 if (rst) acc <= 8'd0; else acc <= acc + (a ^ b);
               end
               assign q = acc;
             endmodule";
    Flow::from_verilog(v, "top").expect("elaborate accumulator")
}

fn temp_journal(tag: &str) -> PathBuf {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!(
        "rtlflow-{tag}-{}-{nanos}.journal",
        std::process::id()
    ))
}

/// Descriptor format the recovery path re-hydrates jobs from: the seed
/// and stimulus count are all a `RandomSource` job needs to re-run.
fn descriptor(n: usize, seed: u64) -> String {
    format!("rand n={n} seed={seed:#x}")
}

fn parse_descriptor(d: &str) -> (usize, u64) {
    let mut n = 0usize;
    let mut seed = 0u64;
    for part in d.split_whitespace() {
        if let Some(v) = part.strip_prefix("n=") {
            n = v.parse().expect("descriptor n");
        } else if let Some(v) = part.strip_prefix("seed=") {
            let v = v.strip_prefix("0x").unwrap_or(v);
            seed = u64::from_str_radix(v, 16).expect("descriptor seed");
        }
    }
    (n, seed)
}

#[test]
fn controller_crash_mid_replay_loses_zero_accepted_jobs() {
    const CYCLES: u64 = 40;
    const JOBS: usize = 5;
    let flow = accumulator_flow();
    let design = Arc::new(flow.design.clone());
    let map = PortMap::from_design(&design);
    let jpath = temp_journal("crash");

    // Uninterrupted references for every job we are about to lose.
    let specs: Vec<(usize, u64)> = (0..JOBS).map(|i| (4 + i, 0x9a0 + i as u64)).collect();
    let expected: Vec<Vec<u64>> = specs
        .iter()
        .map(|&(n, seed)| {
            flow.simulate(
                &RandomSource::new(&map, n, seed),
                CYCLES,
                &PipelineConfig::default(),
            )
            .expect("standalone run")
            .digests
        })
        .collect();

    // Admit all five behind an hour-long coalescing window — they are
    // accepted (journaled) but never dispatched — then crash without
    // draining. The in-memory queue dies with the process.
    let service = SimService::start(ServeConfig {
        journal: Some(jpath.clone()),
        window: Duration::from_secs(3600),
        workers: 1,
        ..Default::default()
    });
    let handles: Vec<_> = specs
        .iter()
        .map(|&(n, seed)| {
            let spec = JobSpec::new(
                Arc::clone(&design),
                Box::new(RandomSource::new(&map, n, seed)),
                CYCLES,
            )
            .with_descriptor(descriptor(n, seed));
            service.submit(spec).expect("under the limit")
        })
        .collect();
    let crash_metrics = service.crash();
    assert_eq!(crash_metrics.jobs_accepted, JOBS as u64);
    assert_eq!(crash_metrics.jobs_completed, 0, "nothing may have run");
    for h in handles {
        assert!(h.wait().is_err(), "crashed jobs must error, not hang");
    }

    // Recovery: the journal alone must surface every accepted job.
    let pending = journal::pending(&jpath).expect("scan journal");
    assert_eq!(
        pending.len(),
        JOBS,
        "every accepted job must be pending in the journal"
    );
    for p in &pending {
        assert!(!p.dispatched, "none of these jobs ever dispatched");
        assert_eq!(p.cycles, CYCLES);
    }

    // Re-admit on a fresh service against the same journal; descriptors
    // carry enough to rebuild each source, `recovered_from` ties the new
    // job id back to the lost one in the journal history.
    let recovered = SimService::start(ServeConfig {
        journal: Some(jpath.clone()),
        window: Duration::from_millis(20),
        workers: 1,
        ..Default::default()
    });
    let mut results = Vec::new();
    for p in &pending {
        let (n, seed) = parse_descriptor(&p.descriptor);
        let spec = JobSpec::new(
            Arc::clone(&design),
            Box::new(RandomSource::new(&map, n, seed)),
            p.cycles,
        )
        .with_descriptor(p.descriptor.clone())
        .recovered_from(p.id);
        let handle = recovered.submit(spec).expect("re-admit recovered job");
        results.push(((n, seed), handle.wait().expect("recovered job completes")));
    }
    let metrics = recovered.shutdown();
    assert_eq!(metrics.jobs_recovered, JOBS as u64);
    assert_eq!(metrics.jobs_completed, JOBS as u64);

    // Bit-identical to the uninterrupted runs, matched by (n, seed).
    for ((n, seed), result) in &results {
        let want = specs
            .iter()
            .position(|s| s == &(*n, *seed))
            .map(|i| &expected[i])
            .expect("recovered job matches a submitted spec");
        assert_eq!(
            &result.digests, want,
            "recovered job (n={n}, seed={seed:#x}) diverged from its uninterrupted run"
        );
    }

    // After the recovered run completes, nothing is pending any more.
    let after = journal::pending(&jpath).expect("scan journal after recovery");
    assert!(
        after.is_empty(),
        "completed recoveries must retire their journal entries: {after:?}"
    );
    let _ = std::fs::remove_file(&jpath);
}

#[test]
fn corrupt_journal_lines_do_not_block_recovery() {
    const CYCLES: u64 = 30;
    let flow = accumulator_flow();
    let design = Arc::new(flow.design.clone());
    let map = PortMap::from_design(&design);
    let jpath = temp_journal("corrupt");

    let service = SimService::start(ServeConfig {
        journal: Some(jpath.clone()),
        window: Duration::from_secs(3600),
        workers: 1,
        ..Default::default()
    });
    let spec = JobSpec::new(
        Arc::clone(&design),
        Box::new(RandomSource::new(&map, 6, 0xbad)),
        CYCLES,
    )
    .with_descriptor(descriptor(6, 0xbad));
    let handle = service.submit(spec).expect("admit");
    let _ = service.crash();
    let _ = handle.wait();

    // Simulate a torn tail write and at-rest bit rot: a half-written
    // record and a flipped byte inside an otherwise-valid line.
    let mut text = std::fs::read_to_string(&jpath).expect("read journal");
    text.push_str("J1 99 submit 42 00000000");
    std::fs::write(&jpath, &text).expect("append torn record");

    let pending = journal::pending(&jpath).expect("scan survives corruption");
    assert_eq!(
        pending.len(),
        1,
        "the intact record must still be recovered"
    );
    let (n, seed) = parse_descriptor(&pending[0].descriptor);
    assert_eq!((n, seed), (6, 0xbad));
    let _ = std::fs::remove_file(&jpath);
}

#[test]
fn compaction_preserves_pending_jobs_across_restart() {
    const CYCLES: u64 = 25;
    let flow = accumulator_flow();
    let design = Arc::new(flow.design.clone());
    let map = PortMap::from_design(&design);
    let jpath = temp_journal("compact");

    // Round 1: two jobs complete normally (history to compact away).
    let service = SimService::start(ServeConfig {
        journal: Some(jpath.clone()),
        window: Duration::from_millis(20),
        workers: 1,
        ..Default::default()
    });
    for seed in [0x11u64, 0x22] {
        let spec = JobSpec::new(
            Arc::clone(&design),
            Box::new(RandomSource::new(&map, 4, seed)),
            CYCLES,
        );
        service
            .submit(spec)
            .expect("admit")
            .wait()
            .expect("completes");
    }
    // Round 2: one job admitted but crashed before dispatch.
    let spec = JobSpec::new(
        Arc::clone(&design),
        Box::new(RandomSource::new(&map, 5, 0x33)),
        CYCLES,
    )
    .with_descriptor(descriptor(5, 0x33));
    let handle = service.submit(spec).expect("admit pending job");
    let _ = service.crash();
    let _ = handle.wait();

    // Compact on a fresh service: retired history is dropped atomically,
    // the pending job survives verbatim.
    let fresh = SimService::start(ServeConfig {
        journal: Some(jpath.clone()),
        window: Duration::from_secs(3600),
        workers: 1,
        ..Default::default()
    });
    let (kept, dropped) = fresh.compact_journal().expect("compact");
    let _ = fresh.crash();
    assert!(kept >= 1, "the pending job's records must be kept");
    assert!(dropped >= 1, "completed history must be dropped");

    let pending = journal::pending(&jpath).expect("scan after compaction");
    assert_eq!(pending.len(), 1, "exactly the crashed job remains");
    assert_eq!(parse_descriptor(&pending[0].descriptor), (5, 0x33));
    let _ = std::fs::remove_file(&jpath);
}
