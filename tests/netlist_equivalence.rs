//! Frontend equivalence: a design entering through the Yosys-JSON netlist
//! importer must be bit-identical to the same design entering through the
//! Verilog subset parser — across the scalar, vectorized, and
//! block-parallel executors, with the pattern rewriter on or off — and the
//! picorv32 netlist fixture must match the golden interpreter running on
//! the un-rewritten import.

use rtlflow::{ExecConfig, Flow, Interp, PipelineConfig, PortMap};

/// The Verilog twin of `crates/netlist/fixtures/counter.json`.
const COUNTER_V: &str = "module counter(input clk, input rst, output [7:0] q, output wrap);
  reg [7:0] cnt;
  assign q = cnt;
  assign wrap = (cnt == 8'hf0);
  always @(posedge clk) begin
    if (rst || wrap) cnt <= 8'd0;
    else cnt <= cnt + 8'd1;
  end
endmodule
";

fn exec_configs() -> [(&'static str, ExecConfig); 3] {
    [
        ("scalar", ExecConfig::scalar()),
        ("vectorized", ExecConfig::vectorized()),
        ("parallel", ExecConfig::parallel(2)),
    ]
}

fn digests(flow: &Flow, n: usize, cycles: u64, exec: &ExecConfig) -> Vec<u64> {
    let map = PortMap::from_design(&flow.design);
    let source = stimulus::source_for(&flow.design, &map, n, 0xfe11);
    let cfg = PipelineConfig {
        exec: *exec,
        group_size: (n / 2).max(1),
        ..Default::default()
    };
    flow.simulate(source.as_ref(), cycles, &cfg)
        .unwrap()
        .digests
}

#[test]
fn counter_frontends_agree_across_executors() {
    let flow_v = Flow::from_verilog(COUNTER_V, "counter").unwrap();
    let flow_j = Flow::from_source(netlist::COUNTER_JSON, "counter").unwrap();
    // Rewritten netlist flow: the wide-add recognition must not change
    // behaviour either.
    let (mut d_rw, _) = netlist::import_str(netlist::COUNTER_JSON, "counter").unwrap();
    let st = netlist::rewrite(&mut d_rw);
    assert!(st.adders_widened >= 1, "{st:?}");
    let flow_r = Flow::from_design(
        d_rw,
        rtlflow::PartitionStrategy::PerLevel,
        rtlflow::GpuModel::default(),
    )
    .unwrap();

    for (label, exec) in &exec_configs() {
        let dv = digests(&flow_v, 32, 300, exec);
        let dj = digests(&flow_j, 32, 300, exec);
        let dr = digests(&flow_r, 32, 300, exec);
        assert_eq!(dv, dj, "verilog vs netlist frontend diverge under {label}");
        assert_eq!(dv, dr, "rewritten netlist diverges under {label}");
    }
}

#[test]
fn picorv32_executors_match_unrewritten_interpreter() {
    let (reference, _) = netlist::import_str(netlist::PICORV32_JSON, "picorv32").unwrap();
    let (mut rewritten, _) = netlist::import_str(netlist::PICORV32_JSON, "picorv32").unwrap();
    let st = netlist::rewrite(&mut rewritten);
    assert!(st.reduction_pct() > 50.0, "{st:?}");
    let flow = Flow::from_design(
        rewritten,
        rtlflow::PartitionStrategy::PerLevel,
        rtlflow::GpuModel::default(),
    )
    .unwrap();

    let (n, cycles) = (24usize, 40u64);
    let map = PortMap::from_design(&flow.design);
    let source = stimulus::source_for(&flow.design, &map, n, 0x5eed);

    let mut all: Vec<Vec<u64>> = Vec::new();
    for (_, exec) in &exec_configs() {
        let cfg = PipelineConfig {
            exec: *exec,
            ..Default::default()
        };
        all.push(
            flow.simulate(source.as_ref(), cycles, &cfg)
                .unwrap()
                .digests,
        );
    }
    assert_eq!(all[0], all[1], "scalar vs vectorized diverge on picorv32");
    assert_eq!(all[0], all[2], "scalar vs parallel diverge on picorv32");

    // Golden check: interpreter on the *un-rewritten* import.
    let mut frame = vec![0u64; map.len()];
    for (s, &digest) in all[0].iter().enumerate().take(n) {
        let mut interp = Interp::new(&reference).unwrap();
        for c in 0..cycles {
            source.fill_frame(s, c, &mut frame);
            interp.step_cycle(&map.to_pokes(&frame));
        }
        assert_eq!(
            digest,
            interp.output_digest(),
            "stimulus {s}: executors diverge from the un-rewritten interpreter"
        );
    }
}

#[test]
fn rewrite_toggle_is_digest_identical() {
    let off = Flow::from_source(netlist::PICORV32_JSON, "picorv32").unwrap();
    let (mut d, _) = netlist::import_str(netlist::PICORV32_JSON, "picorv32").unwrap();
    netlist::rewrite(&mut d);
    let on = Flow::from_design(
        d,
        rtlflow::PartitionStrategy::PerLevel,
        rtlflow::GpuModel::default(),
    )
    .unwrap();
    let exec = ExecConfig::vectorized();
    assert_eq!(
        digests(&off, 16, 60, &exec),
        digests(&on, 16, 60, &exec),
        "--rewrite on/off changes simulation results"
    );
}
