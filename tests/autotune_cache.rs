//! Integration tests for the autotune subsystem, end to end across
//! crates:
//!
//! * the tuned-artifact cache round-trips through disk and is keyed by
//!   `rtlir::design_hash`, which must be stable across reimports of the
//!   same benchmark,
//! * corrupt, truncated, or mis-keyed cache entries are silently
//!   rejected (counted, never panicking, never changing results),
//! * a tuning run under the static cost model is bit-for-bit
//!   reproducible: same seed and budget give the same probe trajectory
//!   and the same winner, and
//! * every winning configuration is semantics-preserving — the tuned
//!   program reproduces the scalar reference's full device state on all
//!   benchmark designs.

use autotune::{prepare_tuned, CostSource, TuneCache, TuneConfig, TunePolicy, TunedArtifact};
use cudasim::{ExecConfig, Scratch};
use rtlflow::{tune, Benchmark, Flow, NvdlaScale, PortMap};
use std::path::PathBuf;

/// A unique scratch directory per test (cleaned up by the OS).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rtlflow-tune-test-{}-{}", std::process::id(), tag));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample_artifact(hash: u64) -> TunedArtifact {
    TunedArtifact {
        design_hash: hash,
        design_name: "sample".into(),
        exec: ExecConfig::vectorized().with_lane_chunk(512),
        fuse: cudasim::FuseConfig {
            const_fold_min_ops: 4,
            superop_min_ops: 16,
        },
        partition: autotune::PartSpec::MergedLevels(3),
        seed: 7,
        probes: 12,
        baseline: 1.0e6,
        best_score: 1.3e6,
    }
}

#[test]
fn design_hash_is_stable_across_reimports() {
    let a = Flow::from_benchmark(Benchmark::RiscvMini).unwrap();
    let b = Flow::from_benchmark(Benchmark::RiscvMini).unwrap();
    assert_eq!(
        rtlir::design_hash(&a.design),
        rtlir::design_hash(&b.design),
        "reimporting the same benchmark must hash identically"
    );
    let c = Flow::from_benchmark(Benchmark::Spinal).unwrap();
    assert_ne!(
        rtlir::design_hash(&a.design),
        rtlir::design_hash(&c.design),
        "distinct designs must not collide on the cache key"
    );
}

#[test]
fn cache_round_trips_and_policies_resolve() {
    let dir = scratch_dir("roundtrip");
    let cache = TuneCache::at(&dir);
    let art = sample_artifact(0xfeed_beef_dead_cafe);
    let path = cache.store(&art).unwrap();
    assert!(path.exists());

    let loaded = cache.load(art.design_hash).expect("stored entry loads");
    assert_eq!(loaded, art);

    // Policy resolution: Dir hits the same entry, Off never looks.
    let via_dir = TunePolicy::Dir(dir.clone()).lookup(art.design_hash);
    assert_eq!(via_dir.as_ref(), Some(&art));
    assert!(TunePolicy::Off.lookup(art.design_hash).is_none());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_entries_are_rejected_without_panicking() {
    let dir = scratch_dir("corrupt");
    let cache = TuneCache::at(&dir);
    let art = sample_artifact(0x1234_5678_9abc_def0);
    let path = cache.store(&art).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    // Truncation sweep: every prefix length must be a clean rejection.
    let mut expected_rejected = 0u64;
    for cut in (0..pristine.len()).step_by(7) {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        assert!(
            cache.load(art.design_hash).is_none(),
            "truncated at {cut} bytes must not load"
        );
        expected_rejected += 1;
    }

    // Byte-flip sweep: the checksum trailer must catch every flip.
    for pos in (0..pristine.len()).step_by(11) {
        let mut bytes = pristine.clone();
        bytes[pos] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            cache.load(art.design_hash).is_none(),
            "byte flip at {pos} must not load"
        );
        expected_rejected += 1;
    }

    // Outright garbage.
    std::fs::write(&path, b"not a tuned artifact at all\n").unwrap();
    assert!(cache.load(art.design_hash).is_none());
    expected_rejected += 1;

    let (_hits, _misses, rejected) = cache.stats.snapshot();
    assert_eq!(
        rejected, expected_rejected,
        "every malformed entry increments the rejected counter"
    );

    // Restore the pristine bytes: the same cache object recovers.
    std::fs::write(&path, &pristine).unwrap();
    assert_eq!(cache.load(art.design_hash), Some(art));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tuning_is_reproducible_and_survives_the_cache() {
    let flow = Flow::from_benchmark(Benchmark::Nvdla(NvdlaScale::Tiny)).unwrap();
    let cfg = TuneConfig {
        seed: 1234,
        max_probes: 10,
        cost: CostSource::Static,
        ..Default::default()
    };
    let a = tune(&flow.design, "nvdla-tiny", &cfg).unwrap();
    let b = tune(&flow.design, "nvdla-tiny", &cfg).unwrap();
    assert_eq!(
        a.trajectory, b.trajectory,
        "same seed and budget must replay the same probe trajectory"
    );
    assert_eq!(a.artifact, b.artifact, "and must elect the same winner");

    // A different seed explores a different trajectory (the specs the
    // annealer visits differ, even if the winner happens to coincide).
    let other = tune(&flow.design, "nvdla-tiny", &TuneConfig { seed: 77, ..cfg }).unwrap();
    let specs = |r: &rtlflow::TuneReport| -> Vec<String> {
        r.trajectory.iter().map(|p| p.spec.clone()).collect()
    };
    assert_ne!(specs(&a), specs(&other));

    // The winner survives a disk round-trip through the cache.
    let dir = scratch_dir("repro");
    let cache = TuneCache::at(&dir);
    cache.store(&a.artifact).unwrap();
    assert_eq!(cache.load(a.artifact.design_hash), Some(a.artifact));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every benchmark design: tune under the static cost model, rebuild the
/// winning configuration with `prepare_tuned`, and drive both it and the
/// untuned scalar reference with identical stimulus. The full device
/// state — every design variable, every memory word, every lane — must
/// match every cycle.
#[test]
fn tuned_configs_are_bit_identical_to_scalar_reference() {
    for (b, seed) in [
        (Benchmark::RiscvMini, 11u64),
        (Benchmark::Spinal, 22),
        (Benchmark::Nvdla(NvdlaScale::Tiny), 33),
        (Benchmark::Picorv32, 44),
    ] {
        let flow = Flow::from_benchmark(b).unwrap();
        let report = tune(
            &flow.design,
            b.name(),
            &TuneConfig {
                seed,
                max_probes: 8,
                cost: CostSource::Static,
                ..Default::default()
            },
        )
        .unwrap();
        let (tuned_prog, _) = prepare_tuned(&flow.design, &flow.model, &report.artifact).unwrap();

        let map = PortMap::from_design(&flow.design);
        let n = 16usize;
        let cycles = 12u64;
        let source = stimulus::source_for(&flow.design, &map, n, 0x7e57);
        let mut frame = vec![0u64; map.len()];

        let mut dev_ref = flow.program.plan.alloc_device(n);
        let mut dev_tuned = tuned_prog.plan.alloc_device(n);
        let mut scratch_ref = vec![Scratch::new()];
        let exec = report.artifact.exec;
        let mut scratch_tuned: Vec<Scratch> = (0..exec.thread_count().max(1))
            .map(|_| Scratch::new())
            .collect();

        for c in 0..cycles {
            for s in 0..n {
                source.fill_frame(s, c, &mut frame);
                for (lane, port) in map.ports.iter().enumerate() {
                    flow.program
                        .plan
                        .poke(&mut dev_ref, port.var, s, frame[lane]);
                    tuned_prog
                        .plan
                        .poke(&mut dev_tuned, port.var, s, frame[lane]);
                }
            }
            flow.program.run_cycle_exec(
                &mut dev_ref,
                &mut scratch_ref,
                0,
                n,
                &ExecConfig::scalar(),
            );
            tuned_prog.run_cycle_exec(&mut dev_tuned, &mut scratch_tuned, 0, n, &exec);

            // The two programs may lay memory out differently (the tuned
            // partition can differ), so compare through each plan.
            for (var, v) in flow.design.vars.iter().enumerate() {
                let words = if v.is_memory() { v.depth } else { 1 };
                for idx in 0..words {
                    for tid in 0..n {
                        let (r, t) = if v.is_memory() {
                            (
                                flow.program.plan.peek_mem(&dev_ref, var, idx, tid),
                                tuned_prog.plan.peek_mem(&dev_tuned, var, idx, tid),
                            )
                        } else {
                            (
                                flow.program.plan.peek(&dev_ref, var, tid),
                                tuned_prog.plan.peek(&dev_tuned, var, tid),
                            )
                        };
                        assert_eq!(
                            r,
                            t,
                            "{}: tuned config `{}` diverged on var {} `{}` word {idx} \
                             lane {tid} at cycle {c}",
                            b.name(),
                            report
                                .trajectory
                                .last()
                                .map(|p| p.spec.as_str())
                                .unwrap_or(""),
                            var,
                            v.name,
                        );
                    }
                }
            }
        }
    }
}
