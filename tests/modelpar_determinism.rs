//! The model-parallel invariant: cutting the *design* into K parts —
//! in-process or across loopback cluster workers — returns digests
//! bit-identical to the local sharded executor, for every benchmark,
//! every K, and under a mid-run partition-replica kill with rollback.
//!
//! Determinism holds because the cut is a pure function of (design, K),
//! group inputs are a pure function of (stimulus id, cycle), and the
//! per-cycle boundary exchange applies exactly the previous cycle's
//! post-commit state — so re-running an epoch after a death (from the
//! deepest common checkpoint, or cycle 0) replays identical state.

use std::time::Duration;

use rtlflow::{
    simulate_modelpar, spawn_worker, Benchmark, ClusterConfig, ClusterMetrics, Controller,
    DevicePool, ExecConfig, FaultMode, Flow, PortMap, ShardConfig, StimulusSource, WorkerConfig,
    WorkerFault,
};

/// Single-device sharded run: the local reference model-parallel must match.
fn sharded_digests(flow: &Flow, source: &dyn StimulusSource, cycles: u64) -> Vec<u64> {
    let cfg = ShardConfig {
        group_size: 8,
        ..Default::default()
    };
    flow.simulate_sharded(
        source,
        cycles,
        &cfg,
        &DevicePool::uniform(flow.model.clone(), 1),
    )
    .expect("local sharded reference")
    .digests
}

/// Run one model-parallel batch on a loopback cluster of `parts`
/// workers (one per part), optionally killing one worker mid-run.
fn run_cluster_modelpar(
    bench: Benchmark,
    source: &dyn StimulusSource,
    cycles: u64,
    parts: usize,
    faults: &[(usize, WorkerFault)],
    checkpoint_interval: u64,
    cfg: ClusterConfig,
) -> (Vec<u64>, ClusterMetrics) {
    let workers = parts;
    let controller = Controller::bind("127.0.0.1:0", cfg).expect("bind loopback controller");
    let key = controller
        .register_design(&bench.source(), bench.top())
        .expect("register benchmark design");
    let handles: Vec<_> = (0..workers)
        .map(|i| {
            spawn_worker(
                controller.addr(),
                WorkerConfig {
                    fault: faults.iter().find(|(w, _)| *w == i).map(|&(_, f)| f),
                    checkpoint_interval,
                    ..Default::default()
                },
            )
        })
        .collect();
    controller
        .wait_for_workers(workers, Duration::from_secs(10))
        .expect("all workers register");
    let digests = controller
        .run_batch_modelpar(key, source, cycles, parts)
        .expect("model-parallel batch completes");
    let metrics = controller.metrics();
    controller.shutdown();
    for h in handles {
        let _ = h.join();
    }
    (digests, metrics)
}

#[test]
fn in_process_k_way_matches_sharded_for_every_benchmark() {
    // (benchmark, n, cycles): the three designs the issue names —
    // riscv-mini (memories force writer replication), handshake_ring
    // (almost all 1-bit boundary nets, the bit-transposed packer's
    // case), and picorv32 (gate-level netlist frontend).
    let cases = [
        (Benchmark::RiscvMini, 32usize, 16u64),
        (Benchmark::Handshake, 48, 16),
        (Benchmark::Picorv32, 24, 12),
    ];
    let exec = ExecConfig::default();
    for (bench, n, cycles) in cases {
        let flow = Flow::from_benchmark(bench).unwrap();
        let map = PortMap::from_design(&flow.design);
        let source = stimulus::source_for(&flow.design, &map, n, 0x90de1u64);
        let golden = sharded_digests(&flow, source.as_ref(), cycles);

        for k in [2usize, 3, 4] {
            let cut = simulate_modelpar(&flow.design, source.as_ref(), cycles, k, &exec, 8)
                .unwrap_or_else(|e| panic!("{bench:?} k={k}: {e}"));
            assert_eq!(
                cut, golden,
                "{bench:?} cut into {k} parts diverged from the sharded reference"
            );
        }
    }
}

#[test]
fn loopback_model_parallel_matches_sharded_and_overlaps_exchange() {
    // Handshake ring over a real loopback cluster: K=2 co-simulation
    // with per-cycle boundary exchange must stay bit-identical, and the
    // exchange must hide at least 25% of its latency behind the part
    // levels that don't depend on remote inputs.
    let bench = Benchmark::Handshake;
    let flow = Flow::from_benchmark(bench).unwrap();
    let map = PortMap::from_design(&flow.design);
    let source = stimulus::source_for(&flow.design, &map, 32, 0x0f10u64);
    let golden = sharded_digests(&flow, source.as_ref(), 24);

    let cfg = ClusterConfig {
        group_size: 16,
        ..Default::default()
    };
    let (digests, m) = run_cluster_modelpar(bench, source.as_ref(), 24, 2, &[], 0, cfg);
    assert_eq!(digests, golden, "loopback K=2 diverged from sharded");
    assert!(m.modelpar_groups >= 1);
    assert_eq!(m.modelpar_rollbacks, 0);
    assert!(
        m.boundary_frames > 0 && m.boundary_bytes > 0,
        "parts must have exchanged boundary frames (metrics: {m:?})"
    );
    let exchange = m.overlap_hidden_ns + m.exchange_stall_ns;
    assert!(exchange > 0, "exchange timing must be recorded");
    assert!(
        m.overlap_hidden_ns * 4 >= exchange,
        "compute must hide >= 25% of exchange latency on loopback \
         (hidden {} ns of {} ns)",
        m.overlap_hidden_ns,
        exchange
    );
}

#[test]
fn partition_replica_killed_mid_run_rolls_back_bit_identical() {
    // K=3 co-simulation where one part's worker dies 10 cycles into the
    // first group — past two checkpoint boundaries (interval 4). The
    // controller must abort the survivors, adopt the reconnecting
    // worker, roll all three parts back to the deepest common
    // checkpoint, and still return bit-identical digests.
    let bench = Benchmark::RiscvMini;
    let flow = Flow::from_benchmark(bench).unwrap();
    let map = PortMap::from_design(&flow.design);
    let source = stimulus::source_for(&flow.design, &map, 32, 0xdeadu64);
    let golden = sharded_digests(&flow, source.as_ref(), 24);

    let cfg = ClusterConfig {
        group_size: 16,
        rejoin_grace: Duration::from_secs(5),
        ..Default::default()
    };
    let fault = WorkerFault::mid_group(0, 10, FaultMode::Disconnect);
    let (digests, m) = run_cluster_modelpar(bench, source.as_ref(), 24, 3, &[(1, fault)], 4, cfg);
    assert_eq!(
        digests, golden,
        "digests changed under a mid-run partition-replica death"
    );
    assert!(m.worker_deaths >= 1, "the injected kill must be observed");
    assert!(
        m.modelpar_rollbacks >= 1,
        "a part death must roll the whole group back (metrics: {m:?})"
    );
    assert!(
        m.checkpoints_received >= 1,
        "parts must have shipped checkpoints before the death (metrics: {m:?})"
    );
    assert!(
        m.groups_resumed >= 1 && m.max_resume_cycle > 0,
        "the rollback must restart from a common checkpoint cycle past \
         zero, not cold-start (metrics: {m:?})"
    );
}
