//! Quickstart: transpile a small Verilog design and simulate a batch of
//! random stimulus on the virtual GPU.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rtlflow::{fmt_duration, Flow};

const VERILOG: &str = "
module gray_counter(input clk, input rst, input en, output [7:0] gray);
  reg [7:0] bin;
  always @(posedge clk) begin
    if (rst) bin <= 8'd0;
    else if (en) bin <= bin + 8'd1;
  end
  assign gray = bin ^ (bin >> 1);
endmodule";

fn main() {
    // 1. Parse, elaborate, partition, transpile, instantiate.
    let flow = Flow::from_verilog(VERILOG, "gray_counter").expect("flow build");
    println!(
        "design `{}`: {} processes, {} kernels/cycle, {} bytes device memory per stimulus",
        flow.design.name,
        flow.design.processes.len(),
        flow.cuda.len(),
        flow.program.plan.bytes_per_stimulus(),
    );

    // 2. Simulate 4096 random stimulus for 1000 cycles.
    let n = 4096;
    let cycles = 1000;
    let result = flow.simulate_random(n, cycles, 0xdecaf).expect("simulate");
    println!(
        "simulated {n} stimulus x {cycles} cycles: modeled wall time {} (GPU utilization {:.0}%)",
        fmt_duration(result.makespan),
        result.gpu_utilization * 100.0
    );

    // 3. Check a few stimulus against the golden interpreter.
    let map = flow.port_map();
    let source = rtlflow::RandomSource::new(&map, n, 0xdecaf);
    let compared = flow
        .verify_against_golden(&source, 100, 8)
        .expect("golden check");
    println!("verified {compared} stimulus against the golden reference: all outputs match");

    // 4. Show the emitted CUDA for the curious.
    let (cuda_text, metrics) = rtlflow::emit_cuda(&flow.design, &flow.program);
    println!(
        "emitted CUDA: {} LoC, {} tokens, CC_avg {:.1}",
        metrics.loc, metrics.tokens, metrics.cc_avg
    );
    println!("---- first kernel ----");
    for line in cuda_text
        .lines()
        .skip_while(|l| !l.starts_with("__global__"))
        .take(12)
    {
        println!("{line}");
    }
}
