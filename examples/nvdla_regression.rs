//! Nightly-regression scenario on the NVDLA benchmark: simulate a large
//! batch of configure-then-stream stimulus, compare pipelined vs
//! non-pipelined scheduling, and verify a sample against the golden
//! reference — the workload of the paper's §1 motivation.
//!
//! ```sh
//! cargo run --release --example nvdla_regression
//! ```

use rtlflow::{fmt_duration, Benchmark, Flow, NvdlaScale, PipelineConfig, PortMap};
use stimulus::NvdlaSource;

fn main() {
    let flow = Flow::from_benchmark(Benchmark::Nvdla(NvdlaScale::Small)).expect("build nvdla");
    println!(
        "NVDLA (small): {} vars, {} processes, {} kernels/cycle",
        flow.design.vars.len(),
        flow.design.processes.len(),
        flow.cuda.len()
    );

    let map = PortMap::from_design(&flow.design);
    let n = 2048;
    let cycles = 200;
    let source = NvdlaSource::new(&map, n, 0x7e57);

    // Pipelined (RTLflow) vs barrier-per-cycle (RTLflow without pipeline).
    let piped_cfg = PipelineConfig {
        group_size: 256,
        ..Default::default()
    };
    let piped = flow
        .simulate(&source, cycles, &piped_cfg)
        .expect("pipelined run");
    let barrier_cfg = PipelineConfig {
        group_size: 256,
        pipelined: false,
        ..Default::default()
    };
    let barrier = flow
        .simulate(&source, cycles, &barrier_cfg)
        .expect("barrier run");

    println!("\n{n} stimulus x {cycles} cycles:");
    println!(
        "  RTLflow    (pipelined): {:>10}  GPU util {:>5.1}%",
        fmt_duration(piped.makespan),
        piped.gpu_utilization * 100.0
    );
    println!(
        "  RTLflow-p  (barrier)  : {:>10}  GPU util {:>5.1}%",
        fmt_duration(barrier.makespan),
        barrier.gpu_utilization * 100.0
    );
    println!(
        "  pipeline speed-up: {:.2}x",
        barrier.makespan as f64 / piped.makespan as f64
    );
    assert_eq!(
        piped.digests, barrier.digests,
        "schedulers must agree bit-for-bit"
    );

    // Waveform signoff on a sample.
    let compared = flow
        .verify_against_golden(&source, 60, 4)
        .expect("golden check");
    println!("\nverified {compared} sampled stimulus against the golden reference");

    // The regression verdict a CI system would consume: the set of
    // distinct output digests (collapsed duplicates = identical runs).
    let unique: std::collections::HashSet<_> = piped.digests.iter().collect();
    println!(
        "{} distinct output signatures across {n} stimulus",
        unique.len()
    );
}
