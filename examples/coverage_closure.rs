//! Coverage closure with batch stimulus — the paper's §1 motivation made
//! concrete: more simultaneous stimulus ⇒ faster toggle-coverage
//! convergence for the same wall-clock budget.
//!
//! ```sh
//! cargo run --release --example coverage_closure
//! ```

use cudasim::Scratch;
use rtlflow::{Benchmark, Flow, PortMap, RiscvSource};
use stimulus::StimulusSource;
use transpile::ToggleCoverage;

fn main() {
    let flow = Flow::from_benchmark(Benchmark::RiscvMini).expect("build riscv-mini");
    let map = PortMap::from_design(&flow.design);
    let cycles = 150u64;

    println!("toggle coverage on riscv-mini after {cycles} cycles, by batch size:\n");
    println!("{:>8} {:>12} {:>10}", "#stim", "covered", "coverage");

    let mut last = 0.0;
    for n in [1usize, 4, 16, 64, 256] {
        let source = RiscvSource::new(&map, n, 0xc073u64);
        let mut dev = flow.program.plan.alloc_device(n);
        let mut scratch = Scratch::new();
        let mut cov = ToggleCoverage::new(&flow.design);
        let mut frame = vec![0u64; map.len()];
        for c in 0..cycles {
            for s in 0..n {
                source.fill_frame(s, c, &mut frame);
                for (lane, port) in map.ports.iter().enumerate() {
                    flow.program.plan.poke(&mut dev, port.var, s, frame[lane]);
                }
            }
            flow.program
                .run_cycle_functional(&mut dev, &mut scratch, 0, n);
            // Sampling every 10 cycles keeps overhead realistic.
            if c % 10 == 9 {
                cov.sample(&flow.design, &flow.program.plan, &dev, 0, n);
            }
        }
        println!(
            "{:>8} {:>12} {:>9.1}%",
            n,
            cov.covered_bits(),
            cov.fraction() * 100.0
        );
        last = cov.fraction();
    }

    // Show where the remaining holes are at the largest batch.
    let n = 256;
    let source = RiscvSource::new(&map, n, 0xc073u64);
    let mut dev = flow.program.plan.alloc_device(n);
    let mut scratch = Scratch::new();
    let mut cov = ToggleCoverage::new(&flow.design);
    let mut frame = vec![0u64; map.len()];
    for c in 0..cycles {
        for s in 0..n {
            source.fill_frame(s, c, &mut frame);
            for (lane, port) in map.ports.iter().enumerate() {
                flow.program.plan.poke(&mut dev, port.var, s, frame[lane]);
            }
        }
        flow.program
            .run_cycle_functional(&mut dev, &mut scratch, 0, n);
        cov.sample(&flow.design, &flow.program.plan, &dev, 0, n);
    }
    println!("\nremaining holes at n=256 (top 10):");
    for (name, bits) in cov.holes(&flow.design).into_iter().take(10) {
        println!("  {name}: uncovered bits {bits:#x}");
    }
    assert!(last > 0.5, "batched fuzzing should cover most toggles");
}
