//! GPU-aware partition tuning: run the MCMC search (Algorithm 1) on the
//! Spinal core and compare the tuned task graph against the hard-coded
//! Verilator-style partition — a miniature of Table 3 / Figure 14.
//!
//! ```sh
//! cargo run --release --example partition_tuning
//! ```

use rtlflow::{
    fmt_duration, mcmc_partition, static_partition, Benchmark, Flow, GpuModel, McmcConfig,
    PartitionStrategy, PipelineConfig, PortMap, RiscvSource,
};
use rtlir::RtlGraph;

fn main() {
    let design = Benchmark::Spinal.elaborate().expect("elaborate spinal");
    let graph = RtlGraph::build(&design).expect("rtl graph");
    let model = GpuModel::default();

    // Hard-coded-weight baseline (RTLflow without GPU-aware partitioning).
    let static_part = static_partition(&design, &graph, 8);
    println!("static partition: {} tasks", static_part.len());

    // MCMC search: every candidate is transpiled and run on the timed
    // virtual A6000 with a small sample.
    let cfg = McmcConfig {
        max_iters: 40,
        max_unimproved: 15,
        sample_stimulus: 128,
        sample_cycles: 16,
        ..Default::default()
    };
    let result = mcmc_partition(&design, &graph, &model, &cfg).expect("mcmc");
    println!(
        "MCMC: {} iterations, initial cost {:.0} -> best cost {:.0} ({:.1}% better)",
        result.iters,
        result.cost_history[0],
        result.best_cost,
        (1.0 - result.best_cost / result.cost_history[0]) * 100.0
    );
    println!(
        "learned weights: {:?}",
        result
            .weights
            .iter()
            .map(|w| (w * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!("tuned partition: {} tasks", result.partition.len());

    // Run both end to end (Table 3 style).
    let n = 4096;
    let cycles = 100;
    let cfg_run = PipelineConfig {
        group_size: 512,
        ..Default::default()
    };

    let mut flow = Flow::from_design(
        design.clone(),
        PartitionStrategy::Static { alpha: 8 },
        model.clone(),
    )
    .expect("static flow");
    let map = PortMap::from_design(&flow.design);
    let source = RiscvSource::new(&map, n, 0x5eed);
    let static_run = flow
        .simulate(&source, cycles, &cfg_run)
        .expect("static run");

    flow.repartition(PartitionStrategy::Mcmc(cfg))
        .expect("tuned repartition");
    let tuned_run = flow.simulate(&source, cycles, &cfg_run).expect("tuned run");

    println!("\n{n} stimulus x {cycles} cycles on Spinal:");
    println!(
        "  RTLflow-g (static weights): {}",
        fmt_duration(static_run.makespan)
    );
    println!(
        "  RTLflow   (MCMC weights)  : {}",
        fmt_duration(tuned_run.makespan)
    );
    println!(
        "  improvement: {:.1}%",
        (static_run.makespan as f64 / tuned_run.makespan as f64 - 1.0) * 100.0
    );
    assert_eq!(
        static_run.digests, tuned_run.digests,
        "partitioning must not change results"
    );

    // Kernel-concurrency profile (Figure 14's point): tasks per level.
    let widths = flow.cuda.ir.level_widths();
    println!("\nkernel concurrency by level (tuned): {widths:?}");
}
