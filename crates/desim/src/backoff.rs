//! Shared jittered exponential backoff.
//!
//! Three independent retry loops grew up in the stack — the cluster
//! worker's reconnect loop, the controller's accept-loop error sleep, and
//! serve's admission retry-after hint — each with its own ad-hoc delay
//! arithmetic. This module is the one implementation they all share: a
//! deterministic, seedable exponential schedule with bounded jitter, so
//! synchronized clients fan out instead of stampeding in lockstep and
//! tests stay reproducible.

use std::time::Duration;

/// SplitMix64 — the repo-wide deterministic mixer (same algorithm as
/// `stimulus::splitmix64`; duplicated here because `desim` sits below
/// `stimulus` in the crate graph and must stay dependency-free).
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Apply bounded deterministic jitter to a base delay: the result is
/// uniformly spread over `[base, base + base/2]` as a pure function of
/// `(base, seed)`. Zero stays zero.
pub fn jitter(base: Duration, seed: u64) -> Duration {
    let ns = base.as_nanos() as u64;
    if ns == 0 {
        return base;
    }
    let spread = ns / 2;
    if spread == 0 {
        return base;
    }
    let extra = mix64(seed ^ ns) % (spread + 1);
    Duration::from_nanos(ns + extra)
}

/// Deterministic jittered exponential backoff.
///
/// Each call to [`Backoff::next_delay`] returns the current base delay
/// with jitter applied, then doubles the base (clamped to `max`). The
/// sequence is a pure function of `(start, max, seed)`.
#[derive(Debug, Clone)]
pub struct Backoff {
    start: Duration,
    max: Duration,
    current: Duration,
    seed: u64,
    attempt: u64,
}

impl Backoff {
    /// A schedule starting at `start` and doubling up to `max`, with
    /// jitter derived from `seed`.
    pub fn new(start: Duration, max: Duration, seed: u64) -> Self {
        Backoff {
            start,
            max,
            current: start.min(max),
            seed,
            attempt: 0,
        }
    }

    /// Number of delays handed out since construction or the last
    /// [`Backoff::reset`].
    pub fn attempts(&self) -> u64 {
        self.attempt
    }

    /// The next delay to sleep: current base plus bounded jitter.
    /// Advances the schedule (base doubles, clamped to `max`).
    pub fn next_delay(&mut self) -> Duration {
        let d = jitter(self.current, self.seed ^ self.attempt);
        self.attempt += 1;
        self.current = self
            .current
            .checked_mul(2)
            .unwrap_or(self.max)
            .min(self.max);
        d
    }

    /// Rewind to the initial delay — call after a success so the next
    /// failure starts the schedule from scratch.
    pub fn reset(&mut self) {
        self.current = self.start.min(self.max);
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_doubles_and_clamps() {
        let mut b = Backoff::new(Duration::from_millis(10), Duration::from_millis(50), 0);
        let bases: Vec<u64> = (0..5)
            .map(|_| {
                let d = b.next_delay();
                d.as_millis() as u64
            })
            .collect();
        // Each delay lies within [base, 1.5*base] for base = 10,20,40,50,50.
        for (d, base) in bases.iter().zip([10u64, 20, 40, 50, 50]) {
            assert!(
                *d >= base && *d <= base + base / 2,
                "delay {d}ms outside [{base}, {}]",
                base + base / 2
            );
        }
        assert_eq!(b.attempts(), 5);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mk = || Backoff::new(Duration::from_millis(3), Duration::from_millis(100), 42);
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..8 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = Backoff::new(Duration::from_millis(100), Duration::from_secs(10), 1);
        let mut b = Backoff::new(Duration::from_millis(100), Duration::from_secs(10), 2);
        let distinct = (0..8).filter(|_| a.next_delay() != b.next_delay()).count();
        assert!(
            distinct > 0,
            "different seeds should produce different jitter"
        );
    }

    #[test]
    fn reset_rewinds() {
        let mut b = Backoff::new(Duration::from_millis(5), Duration::from_secs(1), 7);
        let first = b.next_delay();
        b.next_delay();
        b.next_delay();
        b.reset();
        assert_eq!(b.next_delay(), first, "post-reset schedule must replay");
    }

    #[test]
    fn jitter_bounds_and_zero() {
        assert_eq!(jitter(Duration::ZERO, 9), Duration::ZERO);
        for seed in 0..64 {
            let d = jitter(Duration::from_millis(10), seed);
            assert!(d >= Duration::from_millis(10) && d <= Duration::from_millis(15));
        }
    }
}
