//! A minimal JSON value + serializer.
//!
//! The workspace builds fully offline (no serde), but metrics tables
//! (`serve-sim --json`, `shard-sim --json`) must be machine-readable so
//! bench trajectories can be tracked across PRs. This module is the one
//! shared emitter: a tree of [`Json`] values rendered with correct string
//! escaping and non-finite-float handling. It is an *emitter only* — no
//! parser, because nothing in the flow consumes JSON.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers render without a decimal point (u64 counters dominate
    /// the metrics, and `1e19`-style rendering would lose precision).
    Int(i128),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (stable output for diffing across runs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Start an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Add a field to an object; panics when `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// Render with no extra whitespace (one line, diff-friendly via jq).
    pub fn to_string_compact(&self) -> String {
        self.to_string()
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i128)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i128)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v as i128)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

fn escape(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(out, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(out, "\\\"")?,
            '\\' => write!(out, "\\\\")?,
            '\n' => write!(out, "\\n")?,
            '\r' => write!(out, "\\r")?,
            '\t' => write!(out, "\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    write!(out, "\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            // JSON has no NaN/Inf literals; null is the usual stand-in.
            Json::Num(n) if !n.is_finite() => write!(f, "null"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => escape(s, f),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    escape(k, f)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objects_keep_insertion_order() {
        let j = Json::obj()
            .field("b", 1u64)
            .field("a", 2u64)
            .field("ok", true);
        assert_eq!(j.to_string(), r#"{"b":1,"a":2,"ok":true}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let j = Json::obj().field("k", "a\"b\\c\nd");
        assert_eq!(j.to_string(), r#"{"k":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn integers_render_exactly() {
        let j = Json::from(u64::MAX);
        assert_eq!(j.to_string(), u64::MAX.to_string());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(0.25).to_string(), "0.25");
    }

    #[test]
    fn arrays_nest() {
        let j = Json::from(vec![1u64, 2, 3]);
        assert_eq!(j.to_string(), "[1,2,3]");
        let nested = Json::Arr(vec![Json::obj().field("x", 1u64), Json::Null]);
        assert_eq!(nested.to_string(), r#"[{"x":1},null]"#);
    }
}
