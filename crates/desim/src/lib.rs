//! Discrete-event simulation substrate.
//!
//! The reproduction substitutes the paper's physical testbeds (an 80-thread
//! Xeon server and an RTX A6000) with *virtual-time* models. This crate is
//! the shared machinery: a virtual clock in nanoseconds, capacity-limited
//! [`Resource`]s with earliest-slot scheduling, and a [`Trace`] recorder
//! that yields the utilization rates and timelines behind Figures 2, 15
//! and 16.

pub mod backoff;
pub mod json;
pub mod trace;

pub use backoff::Backoff;
pub use json::Json;
pub use trace::{Interval, Trace};

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in nanoseconds.
pub type Time = u64;

/// Convenience: nanoseconds from microseconds.
pub const fn us(v: u64) -> Time {
    v * 1_000
}

/// Convenience: nanoseconds from milliseconds.
pub const fn ms(v: u64) -> Time {
    v * 1_000_000
}

/// Convert a virtual time to seconds.
pub fn to_secs(t: Time) -> f64 {
    t as f64 / 1e9
}

/// Format a virtual duration the way the paper's tables do
/// (`1h22m47s`, `2m45s`, `16s`, `850ms`...).
pub fn fmt_duration(t: Time) -> String {
    let total_ms = t / 1_000_000;
    let ms_part = total_ms % 1000;
    let total_s = total_ms / 1000;
    let s = total_s % 60;
    let m = (total_s / 60) % 60;
    let h = total_s / 3600;
    if h > 0 {
        format!("{h}h{m}m{s}s")
    } else if m > 0 {
        format!("{m}m{s}s")
    } else if total_s > 0 {
        format!("{s}s")
    } else {
        format!("{ms_part}ms")
    }
}

/// A capacity-limited execution resource (e.g. "80 CPU threads" is a
/// resource of capacity 80; one GPU copy/compute engine is capacity 1).
///
/// Tasks are placed greedily on the slot that frees up first — classic
/// list scheduling, which is what both Verilator's static scheduler and
/// the CUDA runtime's stream scheduler approximate.
#[derive(Debug, Clone)]
pub struct Resource {
    pub name: String,
    /// Earliest available completion time per slot (min-heap).
    free_at: BinaryHeap<Reverse<Time>>,
    capacity: usize,
}

impl Resource {
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity >= 1, "resource needs at least one slot");
        let mut free_at = BinaryHeap::with_capacity(capacity);
        for _ in 0..capacity {
            free_at.push(Reverse(0));
        }
        Resource {
            name: name.into(),
            free_at,
            capacity,
        }
    }

    /// Number of parallel slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Schedule a task that becomes ready at `ready` and runs for
    /// `duration`; returns its `(start, end)` on the earliest free slot.
    pub fn schedule(&mut self, ready: Time, duration: Time) -> (Time, Time) {
        let Reverse(free) = self.free_at.pop().expect("capacity >= 1");
        let start = free.max(ready);
        let end = start + duration;
        self.free_at.push(Reverse(end));
        (start, end)
    }

    /// Schedule and record the interval in a trace.
    pub fn schedule_traced(
        &mut self,
        ready: Time,
        duration: Time,
        trace: &mut Trace,
        label: &str,
    ) -> (Time, Time) {
        let (start, end) = self.schedule(ready, duration);
        trace.record(&self.name, start, end, label);
        (start, end)
    }

    /// Earliest time any slot is free.
    pub fn earliest_free(&self) -> Time {
        self.free_at.peek().map(|Reverse(t)| *t).unwrap_or(0)
    }

    /// Latest completion across all slots (the resource's makespan).
    pub fn makespan(&self) -> Time {
        self.free_at.iter().map(|Reverse(t)| *t).max().unwrap_or(0)
    }

    /// Reset all slots to time zero.
    pub fn reset(&mut self) {
        let cap = self.capacity;
        self.free_at.clear();
        for _ in 0..cap {
            self.free_at.push(Reverse(0));
        }
    }
}

/// A dependency-aware task-graph scheduler over multiple resources.
///
/// Tasks are submitted in any topological order; each names its
/// predecessors, its resource, and its duration. `finish_time` of the
/// whole graph is the model's makespan.
#[derive(Debug)]
pub struct GraphScheduler {
    resources: Vec<Resource>,
    /// Completion time of each submitted task.
    done_at: Vec<Time>,
}

/// Handle to a scheduled task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskHandle(usize);

impl GraphScheduler {
    pub fn new(resources: Vec<Resource>) -> Self {
        GraphScheduler {
            resources,
            done_at: Vec::new(),
        }
    }

    /// Index of a resource by name.
    pub fn resource(&self, name: &str) -> usize {
        self.resources
            .iter()
            .position(|r| r.name == name)
            .unwrap_or_else(|| panic!("unknown resource `{name}`"))
    }

    /// Submit a task depending on `deps`, ready no earlier than `ready`.
    pub fn submit(
        &mut self,
        resource: usize,
        deps: &[TaskHandle],
        ready: Time,
        duration: Time,
        trace: Option<(&mut Trace, &str)>,
    ) -> TaskHandle {
        let dep_ready = deps.iter().map(|h| self.done_at[h.0]).max().unwrap_or(0);
        let ready = ready.max(dep_ready);
        let (_, end) = match trace {
            Some((tr, label)) => {
                self.resources[resource].schedule_traced(ready, duration, tr, label)
            }
            None => self.resources[resource].schedule(ready, duration),
        };
        self.done_at.push(end);
        TaskHandle(self.done_at.len() - 1)
    }

    /// Completion time of one task.
    pub fn end_of(&self, h: TaskHandle) -> Time {
        self.done_at[h.0]
    }

    /// Makespan across every resource.
    pub fn makespan(&self) -> Time {
        self.resources
            .iter()
            .map(Resource::makespan)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_slot_serializes() {
        let mut r = Resource::new("gpu", 1);
        let (s1, e1) = r.schedule(0, 10);
        let (s2, e2) = r.schedule(0, 10);
        assert_eq!((s1, e1), (0, 10));
        assert_eq!((s2, e2), (10, 20));
        assert_eq!(r.makespan(), 20);
    }

    #[test]
    fn multi_slot_runs_parallel() {
        let mut r = Resource::new("cpu", 4);
        for _ in 0..4 {
            r.schedule(0, 100);
        }
        assert_eq!(r.makespan(), 100);
        // Fifth task waits for a slot.
        let (s, e) = r.schedule(0, 100);
        assert_eq!((s, e), (100, 200));
    }

    #[test]
    fn ready_time_delays_start() {
        let mut r = Resource::new("cpu", 2);
        let (s, _) = r.schedule(500, 10);
        assert_eq!(s, 500);
    }

    #[test]
    fn graph_scheduler_honors_deps() {
        let cpu = Resource::new("cpu", 2);
        let gpu = Resource::new("gpu", 1);
        let mut g = GraphScheduler::new(vec![cpu, gpu]);
        let c = g.resource("cpu");
        let d = g.resource("gpu");
        let t1 = g.submit(c, &[], 0, 100, None);
        let t2 = g.submit(d, &[t1], 0, 50, None);
        assert_eq!(g.end_of(t2), 150);
        // Independent task overlaps on the other cpu slot.
        let t3 = g.submit(c, &[], 0, 100, None);
        assert_eq!(g.end_of(t3), 100);
        assert_eq!(g.makespan(), 150);
    }

    #[test]
    fn duration_formatting_matches_paper_style() {
        assert_eq!(fmt_duration(ms(2 * 60_000 + 45_000)), "2m45s");
        assert_eq!(fmt_duration(ms(16_000)), "16s");
        assert_eq!(
            fmt_duration(ms(1_000 * 3600 + 22 * 60_000 + 47_000)),
            "1h22m47s"
        );
        assert_eq!(fmt_duration(ms(850)), "850ms");
    }

    #[test]
    fn reset_clears_slots() {
        let mut r = Resource::new("cpu", 1);
        r.schedule(0, 100);
        r.reset();
        assert_eq!(r.earliest_free(), 0);
    }
}
