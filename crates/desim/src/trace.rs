//! Busy-interval trace recording — the stand-in for `nvidia-smi` and
//! Nsight Systems in the paper's utilization figures.

use std::collections::BTreeMap;

use crate::Time;

/// One busy interval on a resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interval {
    pub start: Time,
    pub end: Time,
    pub label: String,
}

/// Per-resource busy-interval recorder.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    lanes: BTreeMap<String, Vec<Interval>>,
}

impl Trace {
    pub fn new() -> Self {
        Trace::default()
    }

    /// Record a busy interval on `resource`.
    pub fn record(&mut self, resource: &str, start: Time, end: Time, label: &str) {
        debug_assert!(end >= start);
        self.lanes
            .entry(resource.to_string())
            .or_default()
            .push(Interval {
                start,
                end,
                label: label.to_string(),
            });
    }

    /// Resources with any recorded activity.
    pub fn resources(&self) -> impl Iterator<Item = &str> {
        self.lanes.keys().map(String::as_str)
    }

    /// Raw intervals of one resource.
    pub fn intervals(&self, resource: &str) -> &[Interval] {
        self.lanes.get(resource).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Latest end time across all resources.
    pub fn span_end(&self) -> Time {
        self.lanes
            .values()
            .flatten()
            .map(|i| i.end)
            .max()
            .unwrap_or(0)
    }

    /// Fraction of `[0, horizon]` during which `resource` had at least one
    /// busy interval (union of intervals, robust to overlap from
    /// multi-slot resources). This is what `nvidia-smi` utilization means.
    pub fn utilization(&self, resource: &str, horizon: Time) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        let mut iv: Vec<(Time, Time)> = self
            .intervals(resource)
            .iter()
            .filter(|i| i.start < horizon)
            .map(|i| (i.start, i.end.min(horizon)))
            .collect();
        iv.sort_unstable();
        let mut busy = 0u64;
        let mut cur: Option<(Time, Time)> = None;
        for (s, e) in iv {
            match cur {
                None => cur = Some((s, e)),
                Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
                Some((cs, ce)) => {
                    busy += ce - cs;
                    cur = Some((s, e));
                    let _ = cs;
                }
            }
        }
        if let Some((cs, ce)) = cur {
            busy += ce - cs;
        }
        busy as f64 / horizon as f64
    }

    /// Total busy time aggregated by label (Figure 2's runtime breakdown).
    pub fn breakdown(&self, resource: &str) -> BTreeMap<String, Time> {
        let mut out = BTreeMap::new();
        for i in self.intervals(resource) {
            *out.entry(i.label.clone()).or_insert(0) += i.end - i.start;
        }
        out
    }

    /// ASCII timeline (Figure 16's snapshot): one row per resource,
    /// `width` columns spanning `[t0, t1)`, `#` where busy.
    pub fn ascii_timeline(&self, t0: Time, t1: Time, width: usize) -> String {
        assert!(t1 > t0 && width > 0);
        let mut out = String::new();
        let name_w = self.lanes.keys().map(|k| k.len()).max().unwrap_or(4).max(4);
        for (name, intervals) in &self.lanes {
            let mut row = vec![b'.'; width];
            for iv in intervals {
                if iv.end <= t0 || iv.start >= t1 {
                    continue;
                }
                let a =
                    ((iv.start.max(t0) - t0) as u128 * width as u128 / (t1 - t0) as u128) as usize;
                let b =
                    ((iv.end.min(t1) - t0) as u128 * width as u128 / (t1 - t0) as u128) as usize;
                for cell in row.iter_mut().take(b.max(a + 1).min(width)).skip(a) {
                    *cell = b'#';
                }
            }
            out.push_str(&format!(
                "{name:>name_w$} |{}|\n",
                String::from_utf8(row).unwrap()
            ));
        }
        out
    }

    /// CSV export `resource,start_ns,end_ns,label`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("resource,start_ns,end_ns,label\n");
        for (name, intervals) in &self.lanes {
            for iv in intervals {
                out.push_str(&format!("{name},{},{},{}\n", iv.start, iv.end, iv.label));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_unions_overlaps() {
        let mut t = Trace::new();
        t.record("gpu", 0, 50, "k1");
        t.record("gpu", 25, 75, "k2"); // overlapping slots
        t.record("gpu", 90, 100, "k3");
        let u = t.utilization("gpu", 100);
        assert!((u - 0.85).abs() < 1e-9, "{u}");
    }

    #[test]
    fn utilization_clamps_to_horizon() {
        let mut t = Trace::new();
        t.record("cpu", 0, 200, "x");
        assert!((t.utilization("cpu", 100) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_resource_is_idle() {
        let t = Trace::new();
        assert_eq!(t.utilization("nope", 100), 0.0);
        assert!(t.intervals("nope").is_empty());
    }

    #[test]
    fn breakdown_sums_by_label() {
        let mut t = Trace::new();
        t.record("cpu", 0, 10, "set_inputs");
        t.record("cpu", 20, 35, "set_inputs");
        t.record("cpu", 40, 45, "other");
        let b = t.breakdown("cpu");
        assert_eq!(b["set_inputs"], 25);
        assert_eq!(b["other"], 5);
    }

    #[test]
    fn ascii_timeline_marks_busy_cells() {
        let mut t = Trace::new();
        t.record("gpu", 0, 50, "k");
        let art = t.ascii_timeline(0, 100, 10);
        assert!(art.contains("#####....."), "{art}");
    }

    #[test]
    fn csv_has_all_rows() {
        let mut t = Trace::new();
        t.record("a", 0, 1, "x");
        t.record("b", 2, 3, "y");
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn span_end_is_max() {
        let mut t = Trace::new();
        t.record("a", 0, 10, "x");
        t.record("b", 5, 42, "y");
        assert_eq!(t.span_end(), 42);
    }
}
