//! Task-graph code transpilation: partitioned kernels + the per-cycle
//! CUDA task graph (§3.2).
//!
//! A *partition* groups combinational RTL-graph nodes into macro tasks;
//! each task becomes one `__global__` kernel. The full per-cycle graph is
//!
//! ```text
//!   [comb tasks, pass 1] -> ff -> commit -> [comb tasks, pass 2]
//! ```
//!
//! mirroring Listing 1's two `evaluate()` calls per cycle (falling and
//! rising clock edge): pass 1 settles combinational logic so flip-flops
//! capture their inputs; `ff` computes every non-blocking assignment into
//! shadow slots; `commit` copies shadows to current; pass 2 settles the
//! post-edge state that outputs are sampled from.

use std::collections::{HashMap, HashSet};

use cudasim::fuse::fuse_graph_with;
use cudasim::{
    execute_kernel, execute_ordered, execute_ordered_parallel, run_bitplane_cycle, BitLayout,
    DeviceMemory, ExecConfig, ExecStats, ExecStrategy, FuseConfig, FuseStats, FusedKernel, Kernel,
    Scratch, SlotUniform, TaskGraphIr, DEFAULT_LANE_CHUNK,
};
use rtlir::graph::NodeId;
use rtlir::{Design, ProcessKind, RtlGraph};

use crate::lower::{lower_commit, lower_process};
use crate::mem::MemoryPlan;

/// A partition of the combinational RTL-graph nodes into macro tasks.
pub type Partition = Vec<Vec<NodeId>>;

/// One task per levelization level — the transpiler's default.
pub fn default_partition(_design: &Design, graph: &RtlGraph) -> Partition {
    let depth = graph.depth() as usize;
    let mut tasks: Partition = vec![Vec::new(); depth];
    for &n in &graph.comb_order {
        tasks[graph.nodes[n].level as usize].push(n);
    }
    tasks.retain(|t| !t.is_empty());
    tasks
}

/// One task per combinational node — maximum kernel concurrency,
/// maximum launch overhead.
pub fn per_process_partition(_design: &Design, graph: &RtlGraph) -> Partition {
    graph.comb_order.iter().map(|&n| vec![n]).collect()
}

/// The transpiled program: memory plan + per-cycle kernel task graph.
#[derive(Debug, Clone)]
pub struct KernelProgram {
    pub plan: MemoryPlan,
    pub graph: TaskGraphIr,
    /// Cached topological order of `graph`.
    pub order: Vec<usize>,
    /// Number of combinational tasks (pass 1 == pass 2 count).
    pub num_tasks: usize,
    /// Whether the design has sequential logic (ff/commit/pass-2 kernels).
    pub has_seq: bool,
    /// Uniform-slot analysis: slots provably identical across all N
    /// stimulus (design inputs are the non-uniform roots).
    pub uniform: SlotUniform,
    /// Fused per-kernel programs (built once here, cached for every cycle).
    pub fused: Vec<FusedKernel>,
    /// Bit-transposed layout for [`ExecStrategy::BitPlane`] execution
    /// (1-bit control signals packed 64 stimuli per word).
    pub bit: BitLayout,
}

impl KernelProgram {
    /// Build the program for `design` under `partition`.
    pub fn build(
        design: &Design,
        graph: &RtlGraph,
        partition: &Partition,
    ) -> Result<KernelProgram, String> {
        KernelProgram::build_with(design, graph, partition, &FuseConfig::default())
    }

    /// [`KernelProgram::build`] with explicit fuser thresholds (the
    /// autotuner's entry point; thresholds are semantics-preserving).
    pub fn build_with(
        design: &Design,
        graph: &RtlGraph,
        partition: &Partition,
        fuse_cfg: &FuseConfig,
    ) -> Result<KernelProgram, String> {
        let plan = MemoryPlan::build(design)?;
        check_partition(graph, partition)?;
        check_seq_memory_hazard(design)?;

        // Map comb node -> task.
        let mut task_of: HashMap<NodeId, usize> = HashMap::new();
        for (t, nodes) in partition.iter().enumerate() {
            for &n in nodes {
                task_of.insert(n, t);
            }
        }

        // Lower each task: processes in levelized order, registers reused
        // across processes (cross-process dataflow goes through memory).
        let num_tasks = partition.len();
        let mut kernels: Vec<Kernel> = Vec::with_capacity(num_tasks * 2 + 2);
        let mut order_in_task: Vec<Vec<NodeId>> = vec![Vec::new(); num_tasks];
        for &n in &graph.comb_order {
            order_in_task[task_of[&n]].push(n);
        }
        for (t, nodes) in order_in_task.iter().enumerate() {
            let mut ops = Vec::new();
            let mut regs = 0u16;
            for &n in nodes {
                let mut pops = Vec::new();
                let used = lower_process(design, &plan, graph.nodes[n].process, &mut pops)?;
                regs = regs.max(used);
                ops.extend(pops);
            }
            let mut k = Kernel::new(format!("task_{t}"), ops);
            k.num_regs = k.num_regs.max(regs);
            kernels.push(k);
        }

        // Task-level dependencies from comb node edges.
        let mut deps: Vec<HashSet<usize>> = vec![HashSet::new(); num_tasks];
        for (a, outs) in graph.edges.iter().enumerate() {
            let Some(&ta) = task_of.get(&a) else { continue };
            for &b in outs {
                let Some(&tb) = task_of.get(&b) else { continue };
                if ta != tb {
                    deps[tb].insert(ta);
                }
            }
        }

        let has_seq = !graph.seq_nodes.is_empty();
        let mut graph_ir = TaskGraphIr {
            kernels,
            deps: deps.iter().map(|d| d.iter().copied().collect()).collect(),
        };

        if has_seq {
            // ff kernel: every sequential process, in index order.
            let mut ff_ops = Vec::new();
            let mut ff_regs = 0u16;
            for &n in &graph.seq_nodes {
                let mut pops = Vec::new();
                let used = lower_process(design, &plan, graph.nodes[n].process, &mut pops)?;
                ff_regs = ff_regs.max(used);
                ff_ops.extend(pops);
            }
            let mut ff = Kernel::new("ff", ff_ops);
            ff.num_regs = ff.num_regs.max(ff_regs);

            // ff depends on every pass-1 task that produces one of its
            // reads (a variable can have several slice-writer tasks).
            let mut writer_task: HashMap<usize, Vec<usize>> = HashMap::new();
            for (t, nodes) in order_in_task.iter().enumerate() {
                for &n in nodes {
                    for &w in &design.processes[graph.nodes[n].process].writes {
                        writer_task.entry(w).or_default().push(t);
                    }
                }
            }
            let mut ff_deps: HashSet<usize> = HashSet::new();
            for &n in &graph.seq_nodes {
                for &r in &design.processes[graph.nodes[n].process].reads {
                    for &t in writer_task.get(&r).map(Vec::as_slice).unwrap_or(&[]) {
                        ff_deps.insert(t);
                    }
                }
            }
            let ff_idx = graph_ir.kernels.len();
            graph_ir.kernels.push(ff);
            graph_ir.deps.push(ff_deps.into_iter().collect());

            // commit kernel.
            let mut commit_ops = Vec::new();
            lower_commit(design, &plan, &mut commit_ops);
            let commit_idx = graph_ir.kernels.len();
            graph_ir.kernels.push(Kernel::new("commit", commit_ops));
            graph_ir.deps.push(vec![ff_idx]);

            // Pass 2: clone of pass-1 tasks, entry tasks gated on commit.
            let base = graph_ir.kernels.len();
            for t in 0..num_tasks {
                let mut k = graph_ir.kernels[t].clone();
                k.name = format!("{}_p2", k.name);
                graph_ir.kernels.push(k);
            }
            for dep in deps.iter().take(num_tasks) {
                let mut d: Vec<usize> = dep.iter().map(|&p| base + p).collect();
                if d.is_empty() {
                    d.push(commit_idx);
                }
                graph_ir.deps.push(d);
            }
        }

        let order = graph_ir.topo_order()?;
        for k in &graph_ir.kernels {
            k.validate()?;
        }
        let uniform = SlotUniform::analyze(&graph_ir, plan.lens(), &plan.input_slots(design));
        let fused = fuse_graph_with(&graph_ir, Some(&uniform), fuse_cfg);
        // The word remainder inside the layout must be fused against the
        // *full-graph* uniform analysis (re-analyzing the filtered word
        // kernels would wrongly mark bit-stored slots uniform).
        let bit = BitLayout::compile(
            &graph_ir,
            plan.len8,
            &plan.input_roots(design),
            Some(&uniform),
            fuse_cfg,
        );
        Ok(KernelProgram {
            plan,
            graph: graph_ir,
            order,
            num_tasks,
            has_seq,
            uniform,
            fused,
            bit,
        })
    }

    /// Execute one full cycle functionally (inputs must already be poked).
    ///
    /// Runs the fused + vectorized + uniform-specialized executor — the
    /// default hot path, bit-identical to [`KernelProgram::run_cycle_scalar`].
    pub fn run_cycle_functional(
        &self,
        dev: &mut DeviceMemory,
        scratch: &mut Scratch,
        tid0: usize,
        group: usize,
    ) {
        execute_ordered(
            &self.fused,
            &self.order,
            dev,
            scratch,
            tid0,
            group,
            DEFAULT_LANE_CHUNK,
        );
    }

    /// Execute one cycle with the scalar reference interpreter (the
    /// pre-fusion semantics the differential tests compare against).
    pub fn run_cycle_scalar(
        &self,
        dev: &mut DeviceMemory,
        scratch: &mut Scratch,
        tid0: usize,
        group: usize,
    ) {
        for &k in &self.order {
            execute_kernel(&self.graph.kernels[k], dev, scratch, tid0, group);
        }
    }

    /// Execute one cycle under an explicit strategy. `scratches` must hold
    /// at least one element (one per worker for block-parallel execution).
    pub fn run_cycle_exec(
        &self,
        dev: &mut DeviceMemory,
        scratches: &mut [Scratch],
        tid0: usize,
        group: usize,
        exec: &ExecConfig,
    ) {
        match exec.strategy {
            ExecStrategy::Scalar => self.run_cycle_scalar(dev, &mut scratches[0], tid0, group),
            ExecStrategy::Vectorized => execute_ordered(
                &self.fused,
                &self.order,
                dev,
                &mut scratches[0],
                tid0,
                group,
                exec.lane_chunk,
            ),
            ExecStrategy::BlockParallel { block, .. } => execute_ordered_parallel(
                &self.fused,
                &self.order,
                dev,
                scratches,
                tid0,
                group,
                block,
                exec.lane_chunk,
            ),
            ExecStrategy::BitPlane { block, .. } => run_bitplane_cycle(
                &self.bit,
                &self.order,
                dev,
                scratches,
                tid0,
                group,
                block,
                exec.lane_chunk,
            ),
        }
    }

    /// Static fusion + uniform statistics of the cached program.
    pub fn exec_stats(&self) -> ExecStats {
        let mut fuse = FuseStats::default();
        for fk in &self.fused {
            fuse.accumulate(&fk.stats);
        }
        ExecStats {
            fuse,
            uniform_slots: self.uniform.uniform_count() as u64,
            total_slots: self.uniform.total_count() as u64,
            scalar_ops_per_cycle: 0.0,
        }
    }

    /// Total static ops across all kernels of one cycle.
    pub fn ops_per_cycle(&self) -> u64 {
        self.graph.kernels.iter().map(|k| k.ops.len() as u64).sum()
    }

    /// Largest register demand of any kernel (scratch arena sizing).
    pub fn max_regs(&self) -> u16 {
        self.graph
            .kernels
            .iter()
            .map(|k| k.num_regs)
            .max()
            .unwrap_or(0)
    }
}

/// Every comb node must appear in exactly one task.
fn check_partition(graph: &RtlGraph, partition: &Partition) -> Result<(), String> {
    let mut seen: HashSet<NodeId> = HashSet::new();
    for task in partition {
        for &n in task {
            if n >= graph.nodes.len() || graph.nodes[n].kind != ProcessKind::Comb {
                return Err(format!("partition references non-comb node {n}"));
            }
            if !seen.insert(n) {
                return Err(format!("node {n} appears in multiple tasks"));
            }
        }
    }
    if seen.len() != graph.comb_order.len() {
        return Err(format!(
            "partition covers {} of {} comb nodes",
            seen.len(),
            graph.comb_order.len()
        ));
    }
    Ok(())
}

/// Memories commit in place at the ff stage, so a sequential process must
/// never read a memory that sequential logic writes (the write order
/// inside the ff kernel would leak post-edge values).
fn check_seq_memory_hazard(design: &Design) -> Result<(), String> {
    let mut seq_written_mems: HashSet<usize> = HashSet::new();
    for p in &design.processes {
        if p.kind == ProcessKind::Seq {
            for &w in &p.writes {
                if design.vars[w].is_memory() {
                    seq_written_mems.insert(w);
                }
            }
        }
    }
    for p in &design.processes {
        if p.kind == ProcessKind::Seq {
            for &r in &p.reads {
                if seq_written_mems.contains(&r) {
                    return Err(format!(
                        "sequential process `{}` reads memory `{}` which sequential logic writes; \
                         this ordering hazard is not supported",
                        p.name, design.vars[r].name
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlir::BitVec;

    fn program(src: &str) -> (rtlir::Design, KernelProgram) {
        let d = rtlir::elaborate(src, "top").unwrap();
        let g = RtlGraph::build(&d).unwrap();
        let part = default_partition(&d, &g);
        let p = KernelProgram::build(&d, &g, &part).unwrap();
        (d, p)
    }

    const COUNTER: &str = "
        module top(input clk, input rst, output [7:0] q);
          reg [7:0] r;
          always @(posedge clk) begin
            if (rst) r <= 8'd0; else r <= r + 8'd1;
          end
          assign q = r;
        endmodule";

    #[test]
    fn cycle_graph_shape() {
        let (_, p) = program(COUNTER);
        // 1 comb task x 2 passes + ff + commit.
        assert!(p.has_seq);
        assert_eq!(p.num_tasks, 1);
        assert_eq!(p.graph.kernels.len(), 4);
        let names: Vec<&str> = p.graph.kernels.iter().map(|k| k.name.as_str()).collect();
        assert!(names.contains(&"ff"));
        assert!(names.contains(&"commit"));
        assert!(names.iter().any(|n| n.ends_with("_p2")));
    }

    #[test]
    fn counter_counts_on_device() {
        let (d, p) = program(COUNTER);
        let n = 8;
        let mut dev = p.plan.alloc_device(n);
        let mut scratch = Scratch::new();
        let rst = d.find_var("rst").unwrap();
        let q = d.find_var("q").unwrap();
        for c in 0..10u64 {
            for t in 0..n {
                p.plan.poke(&mut dev, rst, t, (c == 0) as u64);
            }
            p.run_cycle_functional(&mut dev, &mut scratch, 0, n);
        }
        for t in 0..n {
            assert_eq!(p.plan.peek(&dev, q, t), 9);
        }
    }

    #[test]
    fn matches_golden_interpreter_on_random_logic() {
        let src = "
            module top(input clk, input rst, input [15:0] x, output [15:0] y, output [15:0] z);
              reg [15:0] acc;
              reg [15:0] last;
              wire [15:0] mixed = (x ^ {acc[7:0], acc[15:8]}) + 16'd3;
              always @(posedge clk) begin
                if (rst) begin acc <= 16'd0; last <= 16'd0; end
                else begin acc <= acc + mixed; last <= mixed; end
              end
              assign y = acc;
              assign z = last ^ acc;
            endmodule";
        let (d, p) = program(src);
        let mut dev = p.plan.alloc_device(2);
        let mut scratch = Scratch::new();
        let mut interp = rtlir::Interp::new(&d).unwrap();
        let rst = d.find_var("rst").unwrap();
        let x = d.find_var("x").unwrap();
        for c in 0..50u64 {
            let xv = c.wrapping_mul(0x9e37) & 0xffff;
            let rv = (c < 2) as u64;
            for t in 0..2 {
                p.plan.poke(&mut dev, rst, t, rv);
                p.plan.poke(&mut dev, x, t, xv);
            }
            interp.step_cycle(&[
                (rst, BitVec::from_u64(rv, 1)),
                (x, BitVec::from_u64(xv, 16)),
            ]);
            p.run_cycle_functional(&mut dev, &mut scratch, 0, 2);
            assert_eq!(
                p.plan.output_digest(&dev, &d, 0),
                interp.output_digest(),
                "digest diverged at cycle {c}"
            );
            assert_eq!(p.plan.output_digest(&dev, &d, 1), interp.output_digest());
        }
    }

    #[test]
    fn per_process_partition_also_correct() {
        let d = rtlir::elaborate(COUNTER, "top").unwrap();
        let g = RtlGraph::build(&d).unwrap();
        let part = per_process_partition(&d, &g);
        let p = KernelProgram::build(&d, &g, &part).unwrap();
        let mut dev = p.plan.alloc_device(1);
        let mut scratch = Scratch::new();
        let rst = d.find_var("rst").unwrap();
        for c in 0..5u64 {
            p.plan.poke(&mut dev, rst, 0, (c == 0) as u64);
            p.run_cycle_functional(&mut dev, &mut scratch, 0, 1);
        }
        assert_eq!(p.plan.peek(&dev, d.find_var("q").unwrap(), 0), 4);
    }

    #[test]
    fn incomplete_partition_rejected() {
        let d = rtlir::elaborate(COUNTER, "top").unwrap();
        let g = RtlGraph::build(&d).unwrap();
        let err = KernelProgram::build(&d, &g, &vec![]).unwrap_err();
        assert!(err.contains("covers"), "{err}");
    }

    #[test]
    fn duplicate_node_rejected() {
        let d = rtlir::elaborate(COUNTER, "top").unwrap();
        let g = RtlGraph::build(&d).unwrap();
        let n = g.comb_order[0];
        let err = KernelProgram::build(&d, &g, &vec![vec![n], vec![n]]).unwrap_err();
        assert!(err.contains("multiple"), "{err}");
    }

    #[test]
    fn seq_memory_read_write_hazard_rejected() {
        let src = "
            module top(input clk, input [3:0] a, input [7:0] d, output reg [7:0] q);
              reg [7:0] mem [0:15];
              always @(posedge clk) begin
                q <= mem[a];
                mem[a] <= d;
              end
            endmodule";
        let d = rtlir::elaborate(src, "top").unwrap();
        let g = RtlGraph::build(&d).unwrap();
        let part = default_partition(&d, &g);
        let err = KernelProgram::build(&d, &g, &part).unwrap_err();
        assert!(err.contains("ordering hazard"), "{err}");
    }

    #[test]
    fn memory_design_matches_interp() {
        let src = "
            module top(input clk, input we, input [3:0] wa, input [3:0] ra, input [7:0] d, output [7:0] q);
              reg [7:0] mem [0:15];
              assign q = mem[ra];
              always @(posedge clk) if (we) mem[wa] <= d;
            endmodule";
        let (des, p) = program(src);
        let mut dev = p.plan.alloc_device(1);
        let mut scratch = Scratch::new();
        let mut interp = rtlir::Interp::new(&des).unwrap();
        let we = des.find_var("we").unwrap();
        let wa = des.find_var("wa").unwrap();
        let ra = des.find_var("ra").unwrap();
        let dd = des.find_var("d").unwrap();
        for c in 0..40u64 {
            let h = c.wrapping_mul(0x5851f42d4c957f2d);
            let ins = [
                (we, h & 1),
                (wa, (h >> 1) & 15),
                (ra, (h >> 5) & 15),
                (dd, (h >> 9) & 255),
            ];
            for (v, val) in ins {
                p.plan.poke(&mut dev, v, 0, val);
            }
            let pokes: Vec<_> = ins
                .iter()
                .map(|&(v, val)| (v, BitVec::from_u64(val, des.vars[v].width)))
                .collect();
            interp.step_cycle(&pokes);
            p.run_cycle_functional(&mut dev, &mut scratch, 0, 1);
            assert_eq!(
                p.plan.output_digest(&dev, &des, 0),
                interp.output_digest(),
                "cycle {c}"
            );
        }
    }
}
