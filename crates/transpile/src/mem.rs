//! Incremental GPU memory allocation (§3.1.2).
//!
//! One pass over the design's variables assigns each a slot in the
//! smallest width bucket that fits it. A variable of width `w` occupies
//! one element of `var8/var16/var32/var64`; a memory of depth `d` takes
//! `d` consecutive offsets; a state scalar (flip-flop) additionally gets
//! a *shadow* slot so sequential kernels can double-buffer non-blocking
//! assignments. Each offset is replicated `N` times at device allocation,
//! so accesses become `bucket[offset * N + tid]` — fully coalesced.

use cudasim::{Bucket, DeviceMemory, Slot};
use rtlir::{Design, VarId};

/// Placement of one design variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarSlot {
    /// Current-value slot (base offset for memories).
    pub slot: Slot,
    /// Shadow (next-value) slot for state scalars.
    pub shadow: Option<Slot>,
    /// Memory depth (0 = scalar).
    pub depth: u32,
    /// Bit width.
    pub width: u32,
}

/// The complete allocation for a design.
#[derive(Debug, Clone)]
pub struct MemoryPlan {
    /// Indexed by `VarId`.
    pub slots: Vec<VarSlot>,
    /// Elements allocated per bucket (per stimulus).
    pub len8: u32,
    pub len16: u32,
    pub len32: u32,
    pub len64: u32,
}

impl MemoryPlan {
    /// Build the plan. Fails when a variable is wider than 64 bits — the
    /// kernel IR is single-word (the golden interpreter supports wide
    /// values; transpilation of >64-bit signals is future work and none of
    /// the benchmark designs need it).
    pub fn build(design: &Design) -> Result<MemoryPlan, String> {
        let mut lens = [0u32; 4];
        let mut slots = Vec::with_capacity(design.vars.len());
        for var in &design.vars {
            if var.width > 64 {
                return Err(format!(
                    "variable `{}` is {} bits wide; kernel transpilation supports <= 64",
                    var.name, var.width
                ));
            }
            let bucket = Bucket::for_width(var.width);
            let bi = bucket_index(bucket);
            let count = if var.is_memory() { var.depth } else { 1 };
            let offset = lens[bi];
            lens[bi] += count;
            // Shadow for state scalars only; memories commit in place.
            let shadow = if var.is_state && !var.is_memory() {
                let s = Slot {
                    bucket,
                    offset: lens[bi],
                };
                lens[bi] += 1;
                Some(s)
            } else {
                None
            };
            slots.push(VarSlot {
                slot: Slot { bucket, offset },
                shadow,
                depth: var.depth,
                width: var.width,
            });
        }
        Ok(MemoryPlan {
            slots,
            len8: lens[0],
            len16: lens[1],
            len32: lens[2],
            len64: lens[3],
        })
    }

    /// Allocate device arrays for `n` stimulus.
    pub fn alloc_device(&self, n: usize) -> DeviceMemory {
        DeviceMemory::new(n, self.len8, self.len16, self.len32, self.len64)
    }

    /// Per-bucket element counts, in `[B8, B16, B32, B64]` order (the
    /// shape `cudasim::SlotUniform::analyze` expects).
    pub fn lens(&self) -> [u32; 4] {
        [self.len8, self.len16, self.len32, self.len64]
    }

    /// Slots the host pokes per-lane stimulus into — the non-uniform
    /// roots of the uniform-slot analysis. Contract: host `poke`s must
    /// target design inputs only (all in-repo stimulus drivers do).
    pub fn input_slots(&self, design: &Design) -> Vec<Slot> {
        design.inputs.iter().map(|&v| self.slots[v].slot).collect()
    }

    /// Input slots with their variable widths — the roots of the
    /// bit-transposed layout analysis (a multi-bit input pins its slot to
    /// the bucketed layout even if no kernel stores it).
    pub fn input_roots(&self, design: &Design) -> Vec<(Slot, u32)> {
        design
            .inputs
            .iter()
            .map(|&v| (self.slots[v].slot, self.slots[v].width))
            .collect()
    }

    /// Device bytes needed per stimulus.
    pub fn bytes_per_stimulus(&self) -> u64 {
        self.len8 as u64 + self.len16 as u64 * 2 + self.len32 as u64 * 4 + self.len64 as u64 * 8
    }

    /// Write a scalar variable for one stimulus (host-side `set_inputs`).
    pub fn poke(&self, dev: &mut DeviceMemory, var: VarId, tid: usize, value: u64) {
        let vs = &self.slots[var];
        debug_assert_eq!(vs.depth, 0, "poke on memory");
        let m = cudasim::device::mask(vs.width);
        dev.store(vs.slot, tid, value & m);
    }

    /// Read a scalar variable for one stimulus.
    pub fn peek(&self, dev: &DeviceMemory, var: VarId, tid: usize) -> u64 {
        let vs = &self.slots[var];
        debug_assert_eq!(vs.depth, 0, "peek on memory");
        dev.load(vs.slot, tid)
    }

    /// Read one memory word for one stimulus.
    pub fn peek_mem(&self, dev: &DeviceMemory, var: VarId, idx: u32, tid: usize) -> u64 {
        let vs = &self.slots[var];
        debug_assert!(idx < vs.depth, "peek_mem out of range");
        dev.load(
            Slot {
                bucket: vs.slot.bucket,
                offset: vs.slot.offset + idx,
            },
            tid,
        )
    }

    /// FNV digest over a design's outputs for one stimulus — bit-for-bit
    /// the same fold as `rtlir::Interp::output_digest` (all outputs are
    /// <= 64 bits wide, i.e. single-word).
    pub fn output_digest(&self, dev: &DeviceMemory, design: &Design, tid: usize) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for &o in &design.outputs {
            h ^= self.peek(dev, o, tid);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

fn bucket_index(b: Bucket) -> usize {
    match b {
        Bucket::B8 => 0,
        Bucket::B16 => 1,
        Bucket::B32 => 2,
        Bucket::B64 => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_by_width_bucket() {
        let src = "
            module top(input clk, input [5:0] in, output [13:0] sum);
              reg [13:0] acc;
              always @(posedge clk) acc <= acc + {8'd0, in};
              assign sum = acc;
            endmodule";
        let d = rtlir::elaborate(src, "top").unwrap();
        let plan = MemoryPlan::build(&d).unwrap();
        let inv = d.find_var("in").unwrap();
        let acc = d.find_var("acc").unwrap();
        assert_eq!(plan.slots[inv].slot.bucket, Bucket::B8);
        assert_eq!(plan.slots[acc].slot.bucket, Bucket::B16);
        // acc is state: gets a shadow in the same bucket.
        assert!(plan.slots[acc].shadow.is_some());
        assert_eq!(plan.slots[acc].shadow.unwrap().bucket, Bucket::B16);
    }

    #[test]
    fn memories_take_depth_offsets() {
        let src = "
            module top(input clk, input [3:0] a, input [7:0] d, input we, output [7:0] q);
              reg [7:0] mem [0:15];
              assign q = mem[a];
              always @(posedge clk) if (we) mem[a] <= d;
            endmodule";
        let d = rtlir::elaborate(src, "top").unwrap();
        let plan = MemoryPlan::build(&d).unwrap();
        let mem = d.find_var("mem").unwrap();
        assert_eq!(plan.slots[mem].depth, 16);
        assert!(plan.slots[mem].shadow.is_none(), "memories commit in place");
        // 16 words of b8 plus the other small vars.
        assert!(plan.len8 >= 16);
    }

    #[test]
    fn offsets_are_disjoint() {
        let src = "
            module top(input [7:0] a, input [7:0] b, output [7:0] x, output [7:0] y);
              assign x = a + b;
              assign y = a ^ b;
            endmodule";
        let d = rtlir::elaborate(src, "top").unwrap();
        let plan = MemoryPlan::build(&d).unwrap();
        let mut seen = std::collections::HashSet::new();
        for vs in &plan.slots {
            let count = vs.depth.max(1) + vs.shadow.is_some() as u32;
            for k in 0..count {
                assert!(
                    seen.insert((vs.slot.bucket, vs.slot.offset + k)),
                    "overlap at {vs:?}"
                );
            }
        }
    }

    #[test]
    fn wide_vars_rejected() {
        let src = "
            module top(input [99:0] a, output [99:0] y);
              assign y = a;
            endmodule";
        let d = rtlir::elaborate(src, "top").unwrap();
        assert!(MemoryPlan::build(&d).is_err());
    }

    #[test]
    fn poke_peek_roundtrip_masks() {
        let src = "module top(input [5:0] a, output [5:0] y); assign y = a; endmodule";
        let d = rtlir::elaborate(src, "top").unwrap();
        let plan = MemoryPlan::build(&d).unwrap();
        let mut dev = plan.alloc_device(2);
        let a = d.find_var("a").unwrap();
        plan.poke(&mut dev, a, 1, 0xfff);
        assert_eq!(plan.peek(&dev, a, 1), 0x3f);
        assert_eq!(plan.peek(&dev, a, 0), 0);
    }
}
