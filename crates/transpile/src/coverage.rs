//! Toggle-coverage collection across batch stimulus.
//!
//! The paper's motivation (§1) is functional verification signoff:
//! "converging on coverage closure ... requires many thousands of nightly
//! regression tests". This module provides the measurement side of that
//! story: per-bit toggle coverage (each signal bit observed at both 0
//! and 1) aggregated across *all* stimulus of a batch, sampled directly
//! from the width-bucketed device arrays.

use cudasim::DeviceMemory;
use rtlir::Design;

use crate::mem::MemoryPlan;

/// Per-bit toggle coverage accumulator.
///
/// For every scalar variable the accumulator tracks which bits have been
/// observed as 0 (`seen0`) and as 1 (`seen1`); a bit is *covered* once it
/// appears in both. Memories are excluded (coverage tools treat array
/// contents separately).
#[derive(Debug, Clone)]
pub struct ToggleCoverage {
    seen0: Vec<u64>,
    seen1: Vec<u64>,
    /// Total coverable bits (sum of scalar widths).
    total_bits: u32,
}

impl ToggleCoverage {
    /// Create an empty accumulator for a design.
    pub fn new(design: &Design) -> Self {
        let n = design.vars.len();
        let total_bits = design
            .vars
            .iter()
            .filter(|v| !v.is_memory())
            .map(|v| v.width)
            .sum();
        ToggleCoverage {
            seen0: vec![0; n],
            seen1: vec![0; n],
            total_bits,
        }
    }

    /// Sample the current value of every scalar variable for stimulus
    /// threads `[tid0, tid0+len)` and fold them into the accumulator.
    pub fn sample(
        &mut self,
        design: &Design,
        plan: &MemoryPlan,
        dev: &DeviceMemory,
        tid0: usize,
        len: usize,
    ) {
        for (v, var) in design.vars.iter().enumerate() {
            if var.is_memory() {
                continue;
            }
            let m = cudasim::device::mask(var.width);
            let mut any1 = 0u64;
            let mut any0 = 0u64;
            for t in tid0..tid0 + len {
                let val = plan.peek(dev, v, t);
                any1 |= val;
                any0 |= !val & m;
            }
            self.seen1[v] |= any1;
            self.seen0[v] |= any0;
        }
    }

    /// Merge another accumulator (e.g. from a different shard of the
    /// batch or another nightly run) into this one.
    pub fn merge(&mut self, other: &ToggleCoverage) {
        assert_eq!(
            self.seen0.len(),
            other.seen0.len(),
            "coverage shapes differ"
        );
        for i in 0..self.seen0.len() {
            self.seen0[i] |= other.seen0[i];
            self.seen1[i] |= other.seen1[i];
        }
    }

    /// Bits covered so far (observed both 0 and 1).
    pub fn covered_bits(&self) -> u32 {
        self.seen0
            .iter()
            .zip(&self.seen1)
            .map(|(&z, &o)| (z & o).count_ones())
            .sum()
    }

    /// Coverage as a fraction of all coverable bits.
    pub fn fraction(&self) -> f64 {
        if self.total_bits == 0 {
            return 1.0;
        }
        self.covered_bits() as f64 / self.total_bits as f64
    }

    /// Variables with uncovered bits, as `(name, uncovered_mask)` pairs,
    /// sorted by number of uncovered bits (worst first).
    pub fn holes(&self, design: &Design) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = design
            .vars
            .iter()
            .enumerate()
            .filter(|(_, var)| !var.is_memory())
            .filter_map(|(v, var)| {
                let m = cudasim::device::mask(var.width);
                let uncovered = m & !(self.seen0[v] & self.seen1[v]);
                (uncovered != 0).then(|| (var.name.clone(), uncovered))
            })
            .collect();
        out.sort_by_key(|(_, bits)| std::cmp::Reverse(bits.count_ones()));
        out
    }

    /// Human-readable report.
    pub fn report(&self, design: &Design, max_holes: usize) -> String {
        let mut s = format!(
            "toggle coverage: {}/{} bits ({:.1}%)\n",
            self.covered_bits(),
            self.total_bits,
            self.fraction() * 100.0
        );
        for (name, bits) in self.holes(design).into_iter().take(max_holes) {
            s.push_str(&format!("  hole: {name} (bits {bits:#x})\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transpile;
    use cudasim::Scratch;

    const SRC: &str = "
        module top(input clk, input rst, input [3:0] a, output [3:0] q);
          reg [3:0] r;
          always @(posedge clk) begin
            if (rst) r <= 4'd0; else r <= r ^ a;
          end
          assign q = r;
        endmodule";

    #[test]
    fn coverage_grows_with_stimulus_diversity() {
        let design = rtlir::elaborate(SRC, "top").unwrap();
        let program = transpile(&design).unwrap();
        let a = design.find_var("a").unwrap();
        let rst = design.find_var("rst").unwrap();

        let run = |values: &[u64]| -> f64 {
            let n = values.len();
            let mut dev = program.plan.alloc_device(n);
            let mut scratch = Scratch::new();
            let mut cov = ToggleCoverage::new(&design);
            for c in 0..8u64 {
                for (t, &v) in values.iter().enumerate() {
                    program.plan.poke(&mut dev, rst, t, (c == 0) as u64);
                    program.plan.poke(&mut dev, a, t, v);
                }
                program.run_cycle_functional(&mut dev, &mut scratch, 0, n);
                cov.sample(&design, &program.plan, &dev, 0, n);
            }
            cov.fraction()
        };
        // One boring stimulus covers less than a diverse batch.
        let single = run(&[0]);
        let diverse = run(&[0, 0xf, 0x5, 0xa, 0x3, 0xc]);
        assert!(diverse > single, "diverse {diverse} vs single {single}");
        assert!(
            diverse > 0.9,
            "diverse batch should nearly close coverage: {diverse}"
        );
    }

    #[test]
    fn holes_identify_stuck_bits() {
        let design = rtlir::elaborate(SRC, "top").unwrap();
        let program = transpile(&design).unwrap();
        let mut dev = program.plan.alloc_device(1);
        let mut scratch = Scratch::new();
        let mut cov = ToggleCoverage::new(&design);
        let rst = design.find_var("rst").unwrap();
        // Never drive `a`: its bits (and r's) stay stuck at 0.
        for c in 0..4u64 {
            program.plan.poke(&mut dev, rst, 0, (c == 0) as u64);
            program.run_cycle_functional(&mut dev, &mut scratch, 0, 1);
            cov.sample(&design, &program.plan, &dev, 0, 1);
        }
        let holes = cov.holes(&design);
        assert!(holes.iter().any(|(n, _)| n == "a"));
        assert!(cov.fraction() < 0.7);
        let report = cov.report(&design, 3);
        assert!(report.contains("hole:"));
    }

    #[test]
    fn merge_unions_coverage() {
        let design = rtlir::elaborate(SRC, "top").unwrap();
        let program = transpile(&design).unwrap();
        let a = design.find_var("a").unwrap();
        let mk = |value: u64| {
            let mut dev = program.plan.alloc_device(1);
            let mut scratch = Scratch::new();
            let mut cov = ToggleCoverage::new(&design);
            program.plan.poke(&mut dev, a, 0, value);
            program.run_cycle_functional(&mut dev, &mut scratch, 0, 1);
            cov.sample(&design, &program.plan, &dev, 0, 1);
            cov
        };
        let mut c1 = mk(0x0);
        let c2 = mk(0xf);
        let before = c1.covered_bits();
        c1.merge(&c2);
        assert!(c1.covered_bits() > before);
        // `a` fully toggled after the merge.
        assert!(!c1.holes(&design).iter().any(|(n, _)| n == "a"));
    }
}
