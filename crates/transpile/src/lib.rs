//! Kernel code transpilation (§3.1 of the paper): turn an elaborated RTL
//! design into CUDA-style SIMT kernels over width-bucketed device arrays.
//!
//! The three stages mirror the paper exactly:
//!
//! 1. **AST annotation** is subsumed by `rtlir`'s elaboration (we lower
//!    from a typed IR rather than annotating a concrete syntax tree, but
//!    the per-node-kind handling lives in [`lower`]).
//! 2. **Incremental GPU memory allocation** — [`mem::MemoryPlan`] walks
//!    the design's variables once and assigns each an offset in the
//!    smallest of four width-bucketed arrays (`var8/16/32/64`), memories
//!    getting `depth` consecutive offsets and state scalars a shadow slot
//!    for non-blocking double buffering.
//! 3. **GPU memory index mapping** — every variable access lowers to
//!    `bucket[offset * N + tid]`, giving coalesced access with one thread
//!    per stimulus ([`lower`], [`taskgraph`]).
//!
//! [`codegen`] additionally emits human-readable CUDA and C++ source text
//! and the code-complexity metrics behind Table 1.

pub mod codegen;
pub mod coverage;
pub mod lower;
pub mod mem;
pub mod taskgraph;

pub use codegen::{emit_cpp, emit_cuda, CodeMetrics};
pub use coverage::ToggleCoverage;
pub use mem::{MemoryPlan, VarSlot};
pub use taskgraph::{default_partition, per_process_partition, KernelProgram, Partition};

use rtlir::Design;

/// Transpile a design with the default (per-level) partition.
pub fn transpile(design: &Design) -> Result<KernelProgram, String> {
    let graph = rtlir::RtlGraph::build(design).map_err(|e| e.to_string())?;
    let partition = default_partition(design, &graph);
    KernelProgram::build(design, &graph, &partition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cudasim::{DeviceMemory, Scratch};
    use rtlir::BitVec;

    /// End-to-end check: the transpiled kernels match the golden
    /// interpreter cycle by cycle on a small design.
    #[test]
    fn transpiled_counter_matches_interp() {
        let src = "
            module top(input clk, input rst, input [7:0] a, output [7:0] q);
              reg [7:0] r;
              wire [7:0] nxt;
              assign nxt = rst ? 8'd0 : (r + a);
              always @(posedge clk) r <= nxt;
              assign q = r;
            endmodule";
        let design = rtlir::elaborate(src, "top").unwrap();
        let prog = transpile(&design).unwrap();

        let n = 4;
        let mut dev = prog.plan.alloc_device(n);
        let mut scratch = Scratch::new();
        let mut interp = rtlir::Interp::new(&design).unwrap();

        let rst = design.find_var("rst").unwrap();
        let a = design.find_var("a").unwrap();
        let q = design.find_var("q").unwrap();

        for c in 0..20u64 {
            let rst_v = (c < 2) as u64;
            // Same inputs for every GPU thread; thread 0 checked vs interp.
            for t in 0..n {
                prog.plan.poke(&mut dev, rst, t, rst_v);
                prog.plan.poke(&mut dev, a, t, (c * 3 + t as u64) % 256);
            }
            interp.step_cycle(&[
                (rst, BitVec::from_u64(rst_v, 1)),
                (a, BitVec::from_u64(c * 3 % 256, 8)),
            ]);
            prog.run_cycle_functional(&mut dev, &mut scratch, 0, n);
            assert_eq!(
                prog.plan.peek(&dev, q, 0),
                interp.peek(q).unwrap().to_u64(),
                "mismatch at cycle {c}"
            );
        }
        // Other threads diverge because their `a` inputs differ.
        let v0 = prog.plan.peek(&dev, q, 0);
        let v3 = prog.plan.peek(&dev, q, 3);
        assert_ne!(v0, v3);
        let _ = DeviceMemory::new(1, 0, 0, 0, 0);
    }
}
