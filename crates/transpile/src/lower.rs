//! Lowering elaborated processes to straight-line SIMT ops.
//!
//! Control flow becomes predication: every conditional assignment turns
//! into an unconditional store of a mux between the new and old value
//! (guarded scatter for memories). This is the "full-cycle, inline
//! everything" style the paper transpiles to — no divergent branches, so
//! all threads of a warp execute the same instruction sequence.
//!
//! Non-blocking semantics: sequential processes read *current* slots and
//! write *shadow* slots; a commit kernel copies shadows back after all
//! sequential kernels ran. Memories commit in place at the sequential
//! stage, which is safe because (checked in [`crate::taskgraph`]) no
//! sequential process reads a memory that any sequential process writes.

use std::collections::HashSet;

use cudasim::{KBin, KUn, Op, Slot};
use rtlir::ast::{BinOp, UnOp};
use rtlir::elab::{EExpr, Stm, Target};
use rtlir::{Design, ProcessKind, VarId};

use crate::mem::MemoryPlan;

/// Register index type re-exported for clarity.
type Reg = u16;

/// Lower one process into `ops`, starting registers at 0.
/// Returns the number of registers used.
pub fn lower_process(
    design: &Design,
    plan: &MemoryPlan,
    process: usize,
    ops: &mut Vec<Op>,
) -> Result<u16, String> {
    let p = &design.processes[process];
    let mut lw = ProcLower {
        design,
        plan,
        ops,
        next: 0,
        kind: p.kind,
        written: HashSet::new(),
        name: &p.name,
    };
    if p.kind == ProcessKind::Comb {
        // Combinational semantics: the bits this process owns start from
        // zero. Slice-only writers clear just their slices (disjoint-slice
        // bus co-writers must not clobber each other's bits).
        let shapes = rtlir::elab::write_shapes(&p.body);
        let zero = lw.fresh()?;
        lw.ops.push(Op::Const {
            dst: zero,
            value: 0,
        });
        for &w in &p.writes {
            let vs = plan.slots[w];
            debug_assert_eq!(vs.depth, 0, "comb memory write slipped through elaboration");
            match shapes.get(&w) {
                Some(rtlir::elab::WriteShape::Slices(list)) => {
                    let mut clear_mask = 0u64;
                    for &(lsb, width) in list {
                        clear_mask |= cudasim::device::mask(width) << lsb;
                    }
                    let old = lw.fresh()?;
                    lw.ops.push(Op::Load {
                        dst: old,
                        slot: vs.slot,
                    });
                    let keep = lw.konst(!clear_mask & cudasim::device::mask(vs.width))?;
                    let cleared = lw.fresh()?;
                    lw.ops.push(Op::Bin {
                        op: KBin::And,
                        dst: cleared,
                        a: old,
                        b: keep,
                        width: vs.width,
                    });
                    lw.ops.push(Op::Store {
                        src: cleared,
                        slot: vs.slot,
                        width: vs.width,
                    });
                }
                _ => {
                    lw.ops.push(Op::Store {
                        src: zero,
                        slot: vs.slot,
                        width: vs.width,
                    });
                }
            }
        }
    }
    lw.stms(&p.body, None)?;
    Ok(lw.next)
}

/// Emit ops copying every state scalar's shadow slot back to its current
/// slot (the commit kernel body).
pub fn lower_commit(design: &Design, plan: &MemoryPlan, ops: &mut Vec<Op>) -> u16 {
    let mut used = 0u16;
    for (v, var) in design.vars.iter().enumerate() {
        let vs = &plan.slots[v];
        if let Some(shadow) = vs.shadow {
            let _ = var;
            ops.push(Op::Load {
                dst: 0,
                slot: shadow,
            });
            ops.push(Op::Store {
                src: 0,
                slot: vs.slot,
                width: vs.width,
            });
            used = 1;
        }
    }
    used
}

struct ProcLower<'a> {
    design: &'a Design,
    plan: &'a MemoryPlan,
    ops: &'a mut Vec<Op>,
    next: Reg,
    kind: ProcessKind,
    /// Seq: vars whose shadow already holds a pending value.
    written: HashSet<VarId>,
    name: &'a str,
}

impl<'a> ProcLower<'a> {
    fn fresh(&mut self) -> Result<Reg, String> {
        let r = self.next;
        self.next = self
            .next
            .checked_add(1)
            .ok_or_else(|| format!("process `{}` exceeds 65535 registers", self.name))?;
        Ok(r)
    }

    fn konst(&mut self, value: u64) -> Result<Reg, String> {
        let r = self.fresh()?;
        self.ops.push(Op::Const { dst: r, value });
        Ok(r)
    }

    fn width_of(&self, e: &EExpr) -> u32 {
        self.design.expr_width(e)
    }

    fn check_width(&self, w: u32, what: &str) -> Result<(), String> {
        if w == 0 || w > 64 {
            return Err(format!(
                "process `{}`: {what} has unsupported width {w}",
                self.name
            ));
        }
        Ok(())
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self, e: &EExpr) -> Result<Reg, String> {
        match e {
            EExpr::Const(v) => {
                self.check_width(v.width(), "constant")?;
                self.konst(v.words()[0])
            }
            EExpr::Var(v) => {
                let vs = &self.plan.slots[*v];
                let r = self.fresh()?;
                // Non-blocking reads are pre-edge: always the current slot.
                self.ops.push(Op::Load {
                    dst: r,
                    slot: vs.slot,
                });
                Ok(r)
            }
            EExpr::ReadMem { var, idx } => {
                let vs = self.plan.slots[*var];
                let i = self.expr(idx)?;
                let r = self.fresh()?;
                self.ops.push(Op::LoadIdx {
                    dst: r,
                    slot: vs.slot,
                    idx: i,
                    depth: vs.depth,
                });
                Ok(r)
            }
            EExpr::Unary { op, arg, width } => {
                let aw = self.width_of(arg);
                self.check_width(aw, "operand")?;
                let a = self.expr(arg)?;
                let r = self.fresh()?;
                let (kop, w) = match op {
                    UnOp::Not => (KUn::Not, *width),
                    UnOp::Neg => (KUn::Neg, *width),
                    UnOp::LNot => (KUn::LNot, aw),
                    UnOp::RedAnd => (KUn::RedAnd, aw),
                    UnOp::RedOr => (KUn::RedOr, aw),
                    UnOp::RedXor => (KUn::RedXor, aw),
                };
                self.ops.push(Op::Un {
                    op: kop,
                    dst: r,
                    a,
                    width: w,
                });
                Ok(r)
            }
            EExpr::Binary { op, a, b, width } => {
                let aw = self.width_of(a);
                self.check_width(aw, "operand")?;
                self.check_width(self.width_of(b), "operand")?;
                let ra = self.expr(a)?;
                let rb = self.expr(b)?;
                let r = self.fresh()?;
                // Shifts and sign-aware ops key off the left operand width;
                // arithmetic masks at the node width.
                let (kop, w) = match op {
                    BinOp::Add => (KBin::Add, *width),
                    BinOp::Sub => (KBin::Sub, *width),
                    BinOp::Mul => (KBin::Mul, *width),
                    BinOp::Div => (KBin::Div, *width),
                    BinOp::Mod => (KBin::Rem, *width),
                    BinOp::And => (KBin::And, *width),
                    BinOp::Or => (KBin::Or, *width),
                    BinOp::Xor => (KBin::Xor, *width),
                    BinOp::Xnor => (KBin::Xnor, *width),
                    BinOp::Shl => (KBin::Shl, *width),
                    BinOp::Shr => (KBin::Shr, aw),
                    BinOp::Sshr => (KBin::Sshr, aw),
                    BinOp::Eq => (KBin::Eq, 1),
                    BinOp::Ne => (KBin::Ne, 1),
                    BinOp::Lt => (KBin::Ltu, 1),
                    BinOp::Le => (KBin::Leu, 1),
                    BinOp::Gt => (KBin::Gtu, 1),
                    BinOp::Ge => (KBin::Geu, 1),
                    BinOp::LAnd => (KBin::LAnd, 1),
                    BinOp::LOr => (KBin::LOr, 1),
                };
                self.ops.push(Op::Bin {
                    op: kop,
                    dst: r,
                    a: ra,
                    b: rb,
                    width: w,
                });
                Ok(r)
            }
            EExpr::Mux { cond, t, e, width } => {
                self.check_width(*width, "mux")?;
                let c = self.expr(cond)?;
                let rt = self.expr(t)?;
                let re = self.expr(e)?;
                let r = self.fresh()?;
                self.ops.push(Op::Mux {
                    dst: r,
                    cond: c,
                    a: rt,
                    b: re,
                });
                Ok(r)
            }
            EExpr::Concat { parts, width } => {
                self.check_width(*width, "concat")?;
                // parts[0] is most significant; build by shifting left.
                let mut acc: Option<(Reg, u32)> = None;
                for p in parts {
                    let pw = self.width_of(p);
                    self.check_width(pw, "concat part")?;
                    let rp = self.expr(p)?;
                    acc = Some(match acc {
                        None => (rp, pw),
                        Some((ra, wa)) => {
                            let total = wa + pw;
                            self.check_width(total, "concat")?;
                            let shift = self.konst(pw as u64)?;
                            let shifted = self.fresh()?;
                            self.ops.push(Op::Bin {
                                op: KBin::Shl,
                                dst: shifted,
                                a: ra,
                                b: shift,
                                width: total,
                            });
                            let merged = self.fresh()?;
                            self.ops.push(Op::Bin {
                                op: KBin::Or,
                                dst: merged,
                                a: shifted,
                                b: rp,
                                width: total,
                            });
                            (merged, total)
                        }
                    });
                }
                Ok(acc.expect("non-empty concat").0)
            }
            EExpr::Slice { arg, lsb, width } => {
                let aw = self.width_of(arg);
                self.check_width(aw, "slice operand")?;
                self.check_width(*width, "slice")?;
                let mut r = self.expr(arg)?;
                if *lsb > 0 {
                    let s = self.konst(*lsb as u64)?;
                    let shifted = self.fresh()?;
                    self.ops.push(Op::Bin {
                        op: KBin::Shr,
                        dst: shifted,
                        a: r,
                        b: s,
                        width: aw,
                    });
                    r = shifted;
                }
                let remaining = aw.saturating_sub(*lsb).max(1);
                if *width < remaining {
                    let m = self.konst(cudasim::device::mask(*width))?;
                    let masked = self.fresh()?;
                    self.ops.push(Op::Bin {
                        op: KBin::And,
                        dst: masked,
                        a: r,
                        b: m,
                        width: *width,
                    });
                    r = masked;
                }
                Ok(r)
            }
            EExpr::IndexBit { arg, idx } => {
                let aw = self.width_of(arg);
                self.check_width(aw, "bit-select operand")?;
                let r = self.expr(arg)?;
                let i = self.expr(idx)?;
                let shifted = self.fresh()?;
                self.ops.push(Op::Bin {
                    op: KBin::Shr,
                    dst: shifted,
                    a: r,
                    b: i,
                    width: aw,
                });
                let one = self.konst(1)?;
                let bit = self.fresh()?;
                self.ops.push(Op::Bin {
                    op: KBin::And,
                    dst: bit,
                    a: shifted,
                    b: one,
                    width: 1,
                });
                Ok(bit)
            }
            EExpr::Resize { arg, width } => {
                let aw = self.width_of(arg);
                self.check_width(aw, "resize operand")?;
                self.check_width(*width, "resize")?;
                let r = self.expr(arg)?;
                if *width < aw {
                    let m = self.konst(cudasim::device::mask(*width))?;
                    let masked = self.fresh()?;
                    self.ops.push(Op::Bin {
                        op: KBin::And,
                        dst: masked,
                        a: r,
                        b: m,
                        width: *width,
                    });
                    Ok(masked)
                } else {
                    Ok(r) // zero-extension is free in a u64 register
                }
            }
        }
    }

    // ---- statements --------------------------------------------------------

    fn stms(&mut self, stms: &[Stm], pred: Option<Reg>) -> Result<(), String> {
        for s in stms {
            match s {
                Stm::Assign { target, rhs } => {
                    let v = self.expr(rhs)?;
                    self.store(target, v, pred)?;
                }
                Stm::If {
                    cond,
                    then_s,
                    else_s,
                } => {
                    let c = self.expr(cond)?;
                    // Normalize the condition to a boolean.
                    let cw = self.width_of(cond);
                    let cb = if cw == 1 {
                        c
                    } else {
                        let b = self.fresh()?;
                        self.ops.push(Op::Un {
                            op: KUn::RedOr,
                            dst: b,
                            a: c,
                            width: cw,
                        });
                        b
                    };
                    let then_pred = match pred {
                        None => cb,
                        Some(p) => {
                            let r = self.fresh()?;
                            self.ops.push(Op::Bin {
                                op: KBin::LAnd,
                                dst: r,
                                a: p,
                                b: cb,
                                width: 1,
                            });
                            r
                        }
                    };
                    self.stms(then_s, Some(then_pred))?;
                    if !else_s.is_empty() {
                        let ncb = self.fresh()?;
                        self.ops.push(Op::Un {
                            op: KUn::LNot,
                            dst: ncb,
                            a: cb,
                            width: 1,
                        });
                        let else_pred = match pred {
                            None => ncb,
                            Some(p) => {
                                let r = self.fresh()?;
                                self.ops.push(Op::Bin {
                                    op: KBin::LAnd,
                                    dst: r,
                                    a: p,
                                    b: ncb,
                                    width: 1,
                                });
                                r
                            }
                        };
                        self.stms(else_s, Some(else_pred))?;
                    }
                }
            }
        }
        Ok(())
    }

    /// The slot a (partial) scalar write reads its base value from, and
    /// the slot it writes to.
    fn rw_slots(&mut self, var: VarId) -> (Slot, Slot) {
        let vs = &self.plan.slots[var];
        match self.kind {
            ProcessKind::Comb => (vs.slot, vs.slot),
            ProcessKind::Seq => {
                let shadow = vs.shadow.expect("seq write target must have a shadow slot");
                let read = if self.written.contains(&var) {
                    shadow
                } else {
                    vs.slot
                };
                (read, shadow)
            }
        }
    }

    fn store(&mut self, target: &Target, value: Reg, pred: Option<Reg>) -> Result<(), String> {
        match target {
            Target::Var(var) => {
                let width = self.plan.slots[*var].width;
                let (read, write) = self.rw_slots(*var);
                let v = match pred {
                    None => value,
                    Some(p) => {
                        let old = self.fresh()?;
                        self.ops.push(Op::Load {
                            dst: old,
                            slot: read,
                        });
                        let m = self.fresh()?;
                        self.ops.push(Op::Mux {
                            dst: m,
                            cond: p,
                            a: value,
                            b: old,
                        });
                        m
                    }
                };
                self.ops.push(Op::Store {
                    src: v,
                    slot: write,
                    width,
                });
                self.written.insert(*var);
                Ok(())
            }
            Target::Slice { var, lsb, width } => {
                let vw = self.plan.slots[*var].width;
                let (read, write) = self.rw_slots(*var);
                let old = self.fresh()?;
                self.ops.push(Op::Load {
                    dst: old,
                    slot: read,
                });
                // cleared = old & ~(mask << lsb)
                let hole = !(cudasim::device::mask(*width) << lsb) & cudasim::device::mask(vw);
                let holec = self.konst(hole)?;
                let cleared = self.fresh()?;
                self.ops.push(Op::Bin {
                    op: KBin::And,
                    dst: cleared,
                    a: old,
                    b: holec,
                    width: vw,
                });
                // piece = (value & mask) << lsb
                let m = self.konst(cudasim::device::mask(*width))?;
                let vm = self.fresh()?;
                self.ops.push(Op::Bin {
                    op: KBin::And,
                    dst: vm,
                    a: value,
                    b: m,
                    width: *width,
                });
                let sh = self.konst(*lsb as u64)?;
                let vs = self.fresh()?;
                self.ops.push(Op::Bin {
                    op: KBin::Shl,
                    dst: vs,
                    a: vm,
                    b: sh,
                    width: vw,
                });
                let merged = self.fresh()?;
                self.ops.push(Op::Bin {
                    op: KBin::Or,
                    dst: merged,
                    a: cleared,
                    b: vs,
                    width: vw,
                });
                let v = match pred {
                    None => merged,
                    Some(p) => {
                        let mx = self.fresh()?;
                        self.ops.push(Op::Mux {
                            dst: mx,
                            cond: p,
                            a: merged,
                            b: old,
                        });
                        mx
                    }
                };
                self.ops.push(Op::Store {
                    src: v,
                    slot: write,
                    width: vw,
                });
                self.written.insert(*var);
                Ok(())
            }
            Target::DynBit { var, idx } => {
                let vw = self.plan.slots[*var].width;
                let (read, write) = self.rw_slots(*var);
                let i = self.expr(idx)?;
                let old = self.fresh()?;
                self.ops.push(Op::Load {
                    dst: old,
                    slot: read,
                });
                // bitmask = 1 << idx (0 when idx >= width because Shl saturates)
                let one = self.konst(1)?;
                let bm = self.fresh()?;
                self.ops.push(Op::Bin {
                    op: KBin::Shl,
                    dst: bm,
                    a: one,
                    b: i,
                    width: vw,
                });
                let nbm = self.fresh()?;
                self.ops.push(Op::Un {
                    op: KUn::Not,
                    dst: nbm,
                    a: bm,
                    width: vw,
                });
                let cleared = self.fresh()?;
                self.ops.push(Op::Bin {
                    op: KBin::And,
                    dst: cleared,
                    a: old,
                    b: nbm,
                    width: vw,
                });
                let onev = self.konst(1)?;
                let b0 = self.fresh()?;
                self.ops.push(Op::Bin {
                    op: KBin::And,
                    dst: b0,
                    a: value,
                    b: onev,
                    width: 1,
                });
                let piece = self.fresh()?;
                self.ops.push(Op::Bin {
                    op: KBin::Shl,
                    dst: piece,
                    a: b0,
                    b: i,
                    width: vw,
                });
                let merged = self.fresh()?;
                self.ops.push(Op::Bin {
                    op: KBin::Or,
                    dst: merged,
                    a: cleared,
                    b: piece,
                    width: vw,
                });
                let v = match pred {
                    None => merged,
                    Some(p) => {
                        let mx = self.fresh()?;
                        self.ops.push(Op::Mux {
                            dst: mx,
                            cond: p,
                            a: merged,
                            b: old,
                        });
                        mx
                    }
                };
                self.ops.push(Op::Store {
                    src: v,
                    slot: write,
                    width: vw,
                });
                self.written.insert(*var);
                Ok(())
            }
            Target::Mem { var, idx } => {
                if self.kind == ProcessKind::Comb {
                    return Err(format!(
                        "process `{}`: combinational memory write",
                        self.name
                    ));
                }
                let vs = self.plan.slots[*var];
                let i = self.expr(idx)?;
                let p = match pred {
                    Some(p) => p,
                    None => self.konst(1)?,
                };
                self.ops.push(Op::StoreIdxCond {
                    src: value,
                    slot: vs.slot,
                    idx: i,
                    depth: vs.depth,
                    pred: p,
                    width: vs.width,
                });
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cudasim::{execute_kernel, Kernel, Scratch};

    /// Lower a single-process design and run it for one thread.
    fn run_comb(src: &str, inputs: &[(&str, u64)], output: &str) -> u64 {
        let d = rtlir::elaborate(src, "top").unwrap();
        let plan = MemoryPlan::build(&d).unwrap();
        let mut dev = plan.alloc_device(1);
        for (name, v) in inputs {
            let var = d.find_var(name).unwrap();
            plan.poke(&mut dev, var, 0, *v);
        }
        let g = rtlir::RtlGraph::build(&d).unwrap();
        let mut scratch = Scratch::new();
        for &node in &g.comb_order {
            let mut ops = Vec::new();
            lower_process(&d, &plan, g.nodes[node].process, &mut ops).unwrap();
            let k = Kernel::new("t", ops);
            k.validate().unwrap();
            execute_kernel(&k, &mut dev, &mut scratch, 0, 1);
        }
        plan.peek(&dev, d.find_var(output).unwrap(), 0)
    }

    #[test]
    fn arith_expression() {
        let y = run_comb(
            "module top(input [7:0] a, input [7:0] b, output [8:0] y); assign y = a + b; endmodule",
            &[("a", 200), ("b", 100)],
            "y",
        );
        assert_eq!(y, 300);
    }

    #[test]
    fn concat_and_slice() {
        let y = run_comb(
            "module top(input [7:0] a, output [15:0] y); assign y = {a, a[7:4], 4'hf}; endmodule",
            &[("a", 0xab)],
            "y",
        );
        assert_eq!(y, 0xabaf);
    }

    #[test]
    fn predicated_case_chain() {
        let src = "module top(input [1:0] s, output reg [7:0] y);
             always @(*) begin
               y = 8'd0;
               case (s)
                 2'd0: y = 8'd10;
                 2'd1: y = 8'd20;
                 default: y = 8'd99;
               endcase
             end
           endmodule";
        assert_eq!(run_comb(src, &[("s", 0)], "y"), 10);
        assert_eq!(run_comb(src, &[("s", 1)], "y"), 20);
        assert_eq!(run_comb(src, &[("s", 3)], "y"), 99);
    }

    #[test]
    fn casez_priority_encoder_on_device() {
        let src = "module top(input [3:0] req, output reg [2:0] grant);
             always @(*) begin
               casez (req)
                 4'b???1: grant = 3'd0;
                 4'b??10: grant = 3'd1;
                 4'b?100: grant = 3'd2;
                 4'b1000: grant = 3'd3;
                 default: grant = 3'd7;
               endcase
             end
           endmodule";
        for (input, expect) in [
            (0b1011u64, 0u64),
            (0b0110, 1),
            (0b0100, 2),
            (0b1000, 3),
            (0b0000, 7),
        ] {
            assert_eq!(
                run_comb(src, &[("req", input)], "grant"),
                expect,
                "req={input:#06b}"
            );
        }
    }

    #[test]
    fn dynamic_bit_select() {
        let y = run_comb(
            "module top(input [7:0] a, input [2:0] i, output y); assign y = a[i]; endmodule",
            &[("a", 0b0100_0000), ("i", 6)],
            "y",
        );
        assert_eq!(y, 1);
    }

    #[test]
    fn ternary_mux() {
        let src = "module top(input s, input [7:0] a, input [7:0] b, output [7:0] y);
            assign y = s ? a : b; endmodule";
        assert_eq!(run_comb(src, &[("s", 1), ("a", 5), ("b", 9)], "y"), 5);
        assert_eq!(run_comb(src, &[("s", 0), ("a", 5), ("b", 9)], "y"), 9);
    }

    #[test]
    fn reduction_ops() {
        let src = "module top(input [7:0] a, output [2:0] y);
            assign y = {&a, ^a, |a}; endmodule";
        assert_eq!(run_comb(src, &[("a", 0xff)], "y"), 0b101);
        assert_eq!(run_comb(src, &[("a", 0x01)], "y"), 0b011);
        assert_eq!(run_comb(src, &[("a", 0x00)], "y"), 0b000);
    }

    #[test]
    fn comb_defaults_to_zero_on_uncovered_path() {
        // `y` is only assigned when s==1; otherwise the zero prologue wins.
        let src = "module top(input s, input [7:0] a, output reg [7:0] y);
             always @(*) begin if (s) y = a; end endmodule";
        assert_eq!(run_comb(src, &[("s", 0), ("a", 77)], "y"), 0);
        assert_eq!(run_comb(src, &[("s", 1), ("a", 77)], "y"), 77);
    }

    #[test]
    fn shifts_match_interp_semantics() {
        let src = "module top(input [7:0] a, input [3:0] n, output [7:0] l, output [7:0] r, output [7:0] ar);
            assign l = a << n;
            assign r = a >> n;
            assign ar = a >>> n;
          endmodule";
        assert_eq!(run_comb(src, &[("a", 0x81), ("n", 1)], "l"), 0x02);
        assert_eq!(run_comb(src, &[("a", 0x81), ("n", 1)], "r"), 0x40);
        assert_eq!(run_comb(src, &[("a", 0x81), ("n", 1)], "ar"), 0xc0);
        assert_eq!(run_comb(src, &[("a", 0x81), ("n", 9)], "l"), 0);
    }
}
