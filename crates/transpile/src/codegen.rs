//! Source-text emission and code-complexity metrics (Table 1).
//!
//! Two emitters over the same design:
//!
//! * [`emit_cuda`] — renders the transpiled [`KernelProgram`] as CUDA
//!   source: `__global__` kernels over `var8/16/32/64` with
//!   `array[N*offset + tid]` index mapping (Listing 3 style). Control flow
//!   is already predicated, so functions are nearly branch-free — which is
//!   why the paper reports a *lower* cyclomatic complexity for RTLflow
//!   output than for Verilator's C++ despite more lines and tokens.
//! * [`emit_cpp`] — renders Verilator-style single-stimulus C++ (Listing
//!   2 style): one member function per process, `if`/`case` control flow
//!   preserved.
//!
//! Cyclomatic complexity here counts `if`-like decision points per
//! function (ternary muxes in the C++ path count too, since Verilator
//! emits them as branches); this matches the relative ordering in the
//! paper's Table 1 without claiming to reimplement any specific tool.

use std::fmt::Write as _;

use cudasim::{Bucket, KBin, KUn, Op};
use rtlir::ast::{BinOp, UnOp};
use rtlir::elab::{EExpr, Stm, Target};
use rtlir::Design;

use crate::taskgraph::KernelProgram;

/// Code statistics for one emitted source text.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeMetrics {
    /// Lines of code (non-empty).
    pub loc: usize,
    /// Lexical token count.
    pub tokens: usize,
    /// Number of functions.
    pub functions: usize,
    /// Average cyclomatic complexity per function.
    pub cc_avg: f64,
}

fn finalize(text: &str, functions: usize, decisions: usize) -> CodeMetrics {
    let loc = text.lines().filter(|l| !l.trim().is_empty()).count();
    let tokens = count_tokens(text);
    let functions = functions.max(1);
    CodeMetrics {
        loc,
        tokens,
        functions,
        cc_avg: 1.0 + decisions as f64 / functions as f64,
    }
}

/// Rough C-family token count: identifiers/numbers count as one token,
/// every other non-space character as one.
fn count_tokens(text: &str) -> usize {
    let mut tokens = 0;
    let mut in_word = false;
    for c in text.chars() {
        if c.is_alphanumeric() || c == '_' {
            if !in_word {
                tokens += 1;
                in_word = true;
            }
        } else {
            in_word = false;
            if !c.is_whitespace() {
                tokens += 1;
            }
        }
    }
    tokens
}

// ====================================================================== CUDA

/// Emit CUDA source for a transpiled program.
pub fn emit_cuda(design: &Design, program: &KernelProgram) -> (String, CodeMetrics) {
    let mut out = String::with_capacity(1 << 16);
    let mut decisions = 0usize;
    writeln!(
        out,
        "// RTLflow-generated CUDA for `{}` — do not edit.",
        design.name
    )
    .unwrap();
    writeln!(out, "#include <cstdint>").unwrap();
    writeln!(out, "extern __device__ uint8_t*  var8;").unwrap();
    writeln!(out, "extern __device__ uint16_t* var16;").unwrap();
    writeln!(out, "extern __device__ uint32_t* var32;").unwrap();
    writeln!(out, "extern __device__ uint64_t* var64;").unwrap();
    writeln!(out, "extern __constant__ uint64_t N; // batch size").unwrap();
    writeln!(out, "__device__ inline uint64_t mux64(uint64_t c, uint64_t a, uint64_t b) {{ return c ? a : b; }}").unwrap();

    let functions = program.graph.kernels.len() + 1;
    for kernel in &program.graph.kernels {
        writeln!(out, "\n__global__ void {}(void) {{", kernel.name).unwrap();
        writeln!(
            out,
            "  const uint64_t tid = blockDim.x * blockIdx.x + threadIdx.x;"
        )
        .unwrap();
        if kernel.num_regs > 0 {
            writeln!(out, "  uint64_t r[{}];", kernel.num_regs).unwrap();
        }
        for op in &kernel.ops {
            emit_cuda_op(&mut out, op, &mut decisions);
        }
        writeln!(out, "}}").unwrap();
    }

    // Host-side launch loop (Listing 1 shape).
    writeln!(
        out,
        "\nvoid simulate(uint64_t num_cycles, cudaGraphExec_t cycle_graph) {{"
    )
    .unwrap();
    writeln!(out, "  for (uint64_t c = 0; c < num_cycles; ++c) {{").unwrap();
    decisions += 1; // the loop
    writeln!(out, "    set_inputs(c);").unwrap();
    writeln!(out, "    cudaGraphLaunch(cycle_graph, 0);").unwrap();
    writeln!(out, "    cudaStreamSynchronize(0);").unwrap();
    writeln!(out, "  }}\n}}").unwrap();

    let m = finalize(&out, functions, decisions);
    (out, m)
}

fn bucket_expr(b: Bucket, offset: u32) -> String {
    format!("{}[N*{} + tid]", b.cname(), offset)
}

fn emit_cuda_op(out: &mut String, op: &Op, decisions: &mut usize) {
    match *op {
        Op::Const { dst, value } => writeln!(out, "  r[{dst}] = 0x{value:x}ull;").unwrap(),
        Op::Load { dst, slot } => writeln!(
            out,
            "  r[{dst}] = {};",
            bucket_expr(slot.bucket, slot.offset)
        )
        .unwrap(),
        Op::Store { src, slot, width } => {
            let m = cudasim::device::mask(width);
            writeln!(
                out,
                "  {} = r[{src}] & 0x{m:x}ull;",
                bucket_expr(slot.bucket, slot.offset)
            )
            .unwrap()
        }
        Op::LoadIdx {
            dst,
            slot,
            idx,
            depth,
        } => {
            // Branch-free gather with bounds clamp.
            writeln!(
                out,
                "  r[{dst}] = mux64(r[{idx}] < {depth}, {}[N*({} + r[{idx}]) + tid], 0);",
                slot.bucket.cname(),
                slot.offset
            )
            .unwrap();
        }
        Op::StoreIdxCond {
            src,
            slot,
            idx,
            depth,
            pred,
            width,
        } => {
            let m = cudasim::device::mask(width);
            *decisions += 1;
            writeln!(
                out,
                "  if (r[{pred}] && r[{idx}] < {depth}) {}[N*({} + r[{idx}]) + tid] = r[{src}] & 0x{m:x}ull;",
                slot.bucket.cname(),
                slot.offset
            )
            .unwrap();
        }
        Op::Bin {
            op,
            dst,
            a,
            b,
            width,
        } => {
            let m = cudasim::device::mask(width);
            let e = match op {
                KBin::Add => format!("(r[{a}] + r[{b}]) & 0x{m:x}ull"),
                KBin::Sub => format!("(r[{a}] - r[{b}]) & 0x{m:x}ull"),
                KBin::Mul => format!("(r[{a}] * r[{b}]) & 0x{m:x}ull"),
                KBin::Div => {
                    format!("mux64(r[{b}], r[{a}] / mux64(r[{b}], r[{b}], 1), 0x{m:x}ull)")
                }
                KBin::Rem => format!("mux64(r[{b}], r[{a}] % mux64(r[{b}], r[{b}], 1), 0)"),
                KBin::And => format!("r[{a}] & r[{b}]"),
                KBin::Or => format!("r[{a}] | r[{b}]"),
                KBin::Xor => format!("r[{a}] ^ r[{b}]"),
                KBin::Xnor => format!("~(r[{a}] ^ r[{b}]) & 0x{m:x}ull"),
                KBin::Shl => format!("mux64(r[{b}] < {width}, (r[{a}] << r[{b}]) & 0x{m:x}ull, 0)"),
                KBin::Shr => format!("mux64(r[{b}] < {width}, r[{a}] >> r[{b}], 0)"),
                KBin::Sshr => format!("sshr{width}(r[{a}], r[{b}])"),
                KBin::Eq => format!("r[{a}] == r[{b}]"),
                KBin::Ne => format!("r[{a}] != r[{b}]"),
                KBin::Ltu => format!("r[{a}] < r[{b}]"),
                KBin::Leu => format!("r[{a}] <= r[{b}]"),
                KBin::Gtu => format!("r[{a}] > r[{b}]"),
                KBin::Geu => format!("r[{a}] >= r[{b}]"),
                KBin::LAnd => format!("r[{a}] && r[{b}]"),
                KBin::LOr => format!("r[{a}] || r[{b}]"),
            };
            writeln!(out, "  r[{dst}] = {e};").unwrap();
        }
        Op::Un { op, dst, a, width } => {
            let m = cudasim::device::mask(width);
            let e = match op {
                KUn::Not => format!("~r[{a}] & 0x{m:x}ull"),
                KUn::Neg => format!("(0 - r[{a}]) & 0x{m:x}ull"),
                KUn::LNot => format!("!r[{a}]"),
                KUn::RedAnd => format!("(r[{a}] & 0x{m:x}ull) == 0x{m:x}ull"),
                KUn::RedOr => format!("r[{a}] != 0"),
                KUn::RedXor => format!("__popcll(r[{a}]) & 1"),
            };
            writeln!(out, "  r[{dst}] = {e};").unwrap();
        }
        Op::Mux { dst, cond, a, b } => {
            writeln!(out, "  r[{dst}] = mux64(r[{cond}], r[{a}], r[{b}]);").unwrap()
        }
    }
}

// ======================================================================= C++

/// Emit Verilator-style single-stimulus C++ for a design.
pub fn emit_cpp(design: &Design) -> (String, CodeMetrics) {
    let mut out = String::with_capacity(1 << 16);
    let mut decisions = 0usize;
    writeln!(
        out,
        "// Verilator-style C++ for `{}` (single stimulus).",
        design.name
    )
    .unwrap();
    writeln!(out, "#include <cstdint>").unwrap();
    writeln!(out, "struct V{} {{", design.name).unwrap();
    for v in &design.vars {
        let cname = mangle(&v.name);
        let ty = Bucket::for_width(v.width.min(64)).ctype();
        if v.is_memory() {
            writeln!(out, "  {ty} {cname}[{}];", v.depth).unwrap();
        } else {
            writeln!(out, "  {ty} {cname};").unwrap();
        }
    }

    let mut functions = 1; // eval()
    for (i, p) in design.processes.iter().enumerate() {
        functions += 1;
        writeln!(out, "\n  void proc_{i}() {{ // {}", p.name).unwrap();
        for s in &p.body {
            emit_cpp_stm(&mut out, design, s, 2, &mut decisions);
        }
        writeln!(out, "  }}").unwrap();
    }
    writeln!(out, "\n  void eval() {{").unwrap();
    for i in 0..design.processes.len() {
        writeln!(out, "    proc_{i}();").unwrap();
    }
    writeln!(out, "  }}\n}};").unwrap();

    let m = finalize(&out, functions, decisions);
    (out, m)
}

fn mangle(name: &str) -> String {
    name.replace('.', "__DOT__")
}

fn emit_cpp_stm(out: &mut String, design: &Design, s: &Stm, indent: usize, decisions: &mut usize) {
    let pad = "  ".repeat(indent);
    match s {
        Stm::Assign { target, rhs } => {
            let rhs_s = cpp_expr(design, rhs, decisions);
            match target {
                Target::Var(v) => {
                    writeln!(out, "{pad}{} = {rhs_s};", mangle(&design.vars[*v].name)).unwrap()
                }
                Target::Slice { var, lsb, width } => {
                    let n = mangle(&design.vars[*var].name);
                    let m = cudasim::device::mask(*width);
                    writeln!(
                        out,
                        "{pad}{n} = ({n} & ~(0x{m:x}ull << {lsb})) | ((({rhs_s}) & 0x{m:x}ull) << {lsb});"
                    )
                    .unwrap();
                }
                Target::DynBit { var, idx } => {
                    let n = mangle(&design.vars[*var].name);
                    let i = cpp_expr(design, idx, decisions);
                    writeln!(
                        out,
                        "{pad}{n} = ({n} & ~(1ull << ({i}))) | ((({rhs_s}) & 1ull) << ({i}));"
                    )
                    .unwrap();
                }
                Target::Mem { var, idx } => {
                    let n = mangle(&design.vars[*var].name);
                    let i = cpp_expr(design, idx, decisions);
                    writeln!(out, "{pad}{n}[{i}] = {rhs_s};").unwrap();
                }
            }
        }
        Stm::If {
            cond,
            then_s,
            else_s,
        } => {
            *decisions += 1;
            let c = cpp_expr(design, cond, decisions);
            writeln!(out, "{pad}if ({c}) {{").unwrap();
            for st in then_s {
                emit_cpp_stm(out, design, st, indent + 1, decisions);
            }
            if else_s.is_empty() {
                writeln!(out, "{pad}}}").unwrap();
            } else {
                writeln!(out, "{pad}}} else {{").unwrap();
                for st in else_s {
                    emit_cpp_stm(out, design, st, indent + 1, decisions);
                }
                writeln!(out, "{pad}}}").unwrap();
            }
        }
    }
}

fn cpp_expr(design: &Design, e: &EExpr, decisions: &mut usize) -> String {
    match e {
        EExpr::Const(v) => format!("0x{:x}ull", v.words()[0]),
        EExpr::Var(v) => mangle(&design.vars[*v].name),
        EExpr::ReadMem { var, idx } => {
            format!(
                "{}[{}]",
                mangle(&design.vars[*var].name),
                cpp_expr(design, idx, decisions)
            )
        }
        EExpr::Unary { op, arg, width } => {
            let a = cpp_expr(design, arg, decisions);
            let m = cudasim::device::mask(*width);
            match op {
                UnOp::Not => format!("(~({a}) & 0x{m:x}ull)"),
                UnOp::Neg => format!("((0 - ({a})) & 0x{m:x}ull)"),
                UnOp::LNot => format!("(!({a}))"),
                UnOp::RedAnd => format!("redand({a})"),
                UnOp::RedOr => format!("(({a}) != 0)"),
                UnOp::RedXor => format!("(__builtin_popcountll({a}) & 1)"),
            }
        }
        EExpr::Binary { op, a, b, width } => {
            let sa = cpp_expr(design, a, decisions);
            let sb = cpp_expr(design, b, decisions);
            let m = cudasim::device::mask(*width);
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::And => "&",
                BinOp::Or => "|",
                BinOp::Xor => "^",
                BinOp::Xnor => "^~",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
                BinOp::Sshr => ">>>",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::LAnd => "&&",
                BinOp::LOr => "||",
            };
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Shl => {
                    format!("((({sa}) {sym} ({sb})) & 0x{m:x}ull)")
                }
                BinOp::Xnor => format!("((~(({sa}) ^ ({sb}))) & 0x{m:x}ull)"),
                BinOp::Sshr => format!("sshr{width}({sa}, {sb})"),
                _ => format!("(({sa}) {sym} ({sb}))"),
            }
        }
        EExpr::Mux { cond, t, e, .. } => {
            // Verilator emits ternaries: a decision point.
            *decisions += 1;
            format!(
                "(({}) ? ({}) : ({}))",
                cpp_expr(design, cond, decisions),
                cpp_expr(design, t, decisions),
                cpp_expr(design, e, decisions)
            )
        }
        EExpr::Concat { parts, .. } => {
            let mut s = String::new();
            let mut shift = 0u32;
            for p in parts.iter().rev() {
                let w = design.expr_width(p);
                let ps = cpp_expr(design, p, decisions);
                if !s.is_empty() {
                    s.push_str(" | ");
                }
                write!(s, "(({ps}) << {shift})").unwrap();
                shift += w;
            }
            format!("({s})")
        }
        EExpr::Slice { arg, lsb, width } => {
            let a = cpp_expr(design, arg, decisions);
            let m = cudasim::device::mask(*width);
            format!("((({a}) >> {lsb}) & 0x{m:x}ull)")
        }
        EExpr::IndexBit { arg, idx } => {
            format!(
                "((({}) >> ({})) & 1ull)",
                cpp_expr(design, arg, decisions),
                cpp_expr(design, idx, decisions)
            )
        }
        EExpr::Resize { arg, width } => {
            let a = cpp_expr(design, arg, decisions);
            let m = cudasim::device::mask(*width);
            format!("(({a}) & 0x{m:x}ull)")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transpile;

    const SRC: &str = "
        module top(input clk, input rst, input [7:0] a, output [7:0] q);
          reg [7:0] r;
          always @(posedge clk) begin
            if (rst) r <= 8'd0;
            else r <= r + a;
          end
          assign q = r ^ 8'h55;
        endmodule";

    #[test]
    fn cuda_emission_has_index_mapping() {
        let d = rtlir::elaborate(SRC, "top").unwrap();
        let p = transpile(&d).unwrap();
        let (text, m) = emit_cuda(&d, &p);
        assert!(text.contains("__global__ void"), "{text}");
        assert!(text.contains("N*"), "index mapping missing:\n{text}");
        assert!(text.contains("tid"));
        assert!(text.contains("cudaGraphLaunch"));
        assert!(m.loc > 20);
        assert!(m.tokens > 100);
    }

    #[test]
    fn cpp_emission_preserves_control_flow() {
        let d = rtlir::elaborate(SRC, "top").unwrap();
        let (text, m) = emit_cpp(&d);
        assert!(text.contains("if ("), "{text}");
        assert!(text.contains("struct Vtop"));
        assert!(m.cc_avg > 1.0);
    }

    #[test]
    fn cuda_cc_is_lower_than_cpp_cc() {
        // The headline Table 1 relationship: predicated CUDA is flatter
        // than branchy C++.
        let src = "
            module top(input clk, input [3:0] s, input [7:0] a, output reg [7:0] y);
              always @(*) begin
                y = 8'd0;
                case (s)
                  4'd0: y = a;
                  4'd1: y = a + 8'd1;
                  4'd2: y = a - 8'd1;
                  4'd3: y = a << 1;
                  4'd4: y = a >> 1;
                  default: y = 8'hff;
                endcase
              end
            endmodule";
        let d = rtlir::elaborate(src, "top").unwrap();
        let p = transpile(&d).unwrap();
        let (_, cuda) = emit_cuda(&d, &p);
        let (_, cpp) = emit_cpp(&d);
        assert!(
            cuda.cc_avg < cpp.cc_avg,
            "cuda cc {} should be below cpp cc {}",
            cuda.cc_avg,
            cpp.cc_avg
        );
    }

    #[test]
    fn cuda_has_more_tokens_than_cpp() {
        // Table 1: RTLflow output is bigger (more lines/tokens) but simpler.
        let d = rtlir::elaborate(SRC, "top").unwrap();
        let p = transpile(&d).unwrap();
        let (_, cuda) = emit_cuda(&d, &p);
        let (_, cpp) = emit_cpp(&d);
        assert!(cuda.tokens > cpp.tokens);
    }

    #[test]
    fn token_counter_counts_words_and_puncts() {
        assert_eq!(count_tokens("a + b12;"), 4);
        assert_eq!(count_tokens("foo(bar)"), 4);
    }
}
