//! Kernel-IR fusion and uniform-slot analysis.
//!
//! Runs once at graph instantiation (like CUDA Graph capture): each
//! [`Kernel`] is lowered to a [`FusedKernel`] whose superops collapse the
//! common chains the transpiler emits — load→binop→store, mux-of-two-loads,
//! shift+and slice extraction — into a single memory sweep, after constant
//! propagation and dead-code elimination. The fused program is cached on
//! the graph so per-cycle execution pays none of this cost.
//!
//! [`SlotUniform`] is the companion static analysis: a greatest-fixpoint
//! computation marking device slots whose value is provably identical
//! across all N stimulus (clock, reset, design constants, un-poked
//! nets). The executor computes ops over uniform values once as scalars
//! and broadcasts only on demotion to per-thread storage.
//!
//! Soundness: a slot keeps its `uniform` flag only if *every* kernel
//! write to it stores a statically-uniform value and indexed scatters
//! into its range are themselves uniform (same word, same value, same
//! predicate across lanes). Host pokes are modeled by the caller passing
//! the poked slots as non-uniform roots. The conservative direction
//! (flag cleared on actually-uniform data) only costs speed, never
//! correctness, because device rows are always fully materialized.
//!
//! Contract: uniform specialization assumes every lane of a device
//! allocation sees the same kernel sequence each cycle (consistent lane
//! ranges). All in-repo callers comply; checkpoint restore from a
//! snapshot of the same program preserves uniformity.

use crate::device::mask;
use crate::ir::{Bucket, KBin, KUn, Kernel, Op, Reg, Slot, TaskGraphIr};

/// One fused SIMT instruction. Base ops mirror [`Op`]; superops carry the
/// fused memory operand so the executor does one sweep instead of two or
/// three. `swapped` means the fused memory/immediate operand sits in the
/// *second* source position of the original binary op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FOp {
    /// `dst = value` (scalar — never materialized unless demoted).
    Const { dst: Reg, value: u64 },
    /// `dst = a`
    Copy { dst: Reg, a: Reg },
    /// `dst = bucket[slot]`; `uniform` = slot provably lane-invariant.
    Load { dst: Reg, slot: Slot, uniform: bool },
    /// `bucket[slot] = src & mask(width)`
    Store { src: Reg, slot: Slot, width: u32 },
    /// `bucket[slot] = value` (pre-masked at fuse time).
    ConstStore { slot: Slot, value: u64 },
    /// Gather; `uniform` = the whole `[offset, offset+depth)` range is
    /// lane-invariant, so a scalar index yields a scalar result.
    LoadIdx {
        dst: Reg,
        slot: Slot,
        idx: Reg,
        depth: u32,
        uniform: bool,
    },
    /// Guarded scatter (per-lane predicate and index).
    StoreIdxCond {
        src: Reg,
        slot: Slot,
        idx: Reg,
        depth: u32,
        pred: Reg,
        width: u32,
    },
    /// `dst = a (op) b`
    Bin {
        op: KBin,
        dst: Reg,
        a: Reg,
        b: Reg,
        width: u32,
    },
    /// `dst = a (op) imm` (or `imm (op) a` when `swapped`).
    BinImm {
        op: KBin,
        dst: Reg,
        a: Reg,
        imm: u64,
        width: u32,
        swapped: bool,
    },
    /// `dst = (op) a`
    Un {
        op: KUn,
        dst: Reg,
        a: Reg,
        width: u32,
    },
    /// `dst = cond ? a : b`
    Mux { dst: Reg, cond: Reg, a: Reg, b: Reg },
    /// Superop: `dst = row (op) b` (row second when `swapped`).
    LoadBin {
        op: KBin,
        dst: Reg,
        slot: Slot,
        b: Reg,
        width: u32,
        swapped: bool,
        uniform: bool,
    },
    /// Superop: `dst = row (op) imm` (operand order per `swapped`).
    LoadBinImm {
        op: KBin,
        dst: Reg,
        slot: Slot,
        imm: u64,
        width: u32,
        swapped: bool,
        uniform: bool,
    },
    /// Superop: `bucket[slot] = (a (op) b)` — bin width <= store width.
    BinStore {
        op: KBin,
        a: Reg,
        b: Reg,
        slot: Slot,
        width: u32,
    },
    /// Superop: `bucket[slot] = (a (op) imm)`.
    BinImmStore {
        op: KBin,
        a: Reg,
        imm: u64,
        slot: Slot,
        width: u32,
        swapped: bool,
    },
    /// Superop: `bucket[slot] = (op) a`.
    UnStore {
        op: KUn,
        a: Reg,
        slot: Slot,
        width: u32,
    },
    /// Superop: `bucket[slot] = (cond ? a : b) & mask(width)`.
    MuxStore {
        cond: Reg,
        a: Reg,
        b: Reg,
        slot: Slot,
        width: u32,
    },
    /// Superop: `dst = cond ? row_a : row_b` — one sweep, two rows.
    MuxLoads {
        dst: Reg,
        cond: Reg,
        slot_a: Slot,
        slot_b: Slot,
        uniform_a: bool,
        uniform_b: bool,
    },
    /// Superop: `dst = (a >> shift) & emask` (slice extraction;
    /// `shift < width` of the original Shr is guaranteed at fuse time).
    Extract {
        dst: Reg,
        a: Reg,
        shift: u32,
        emask: u64,
    },
}

impl FOp {
    /// Register written, if any.
    pub fn dst(&self) -> Option<Reg> {
        match *self {
            FOp::Const { dst, .. }
            | FOp::Copy { dst, .. }
            | FOp::Load { dst, .. }
            | FOp::LoadIdx { dst, .. }
            | FOp::Bin { dst, .. }
            | FOp::BinImm { dst, .. }
            | FOp::Un { dst, .. }
            | FOp::Mux { dst, .. }
            | FOp::LoadBin { dst, .. }
            | FOp::LoadBinImm { dst, .. }
            | FOp::MuxLoads { dst, .. }
            | FOp::Extract { dst, .. } => Some(dst),
            FOp::Store { .. }
            | FOp::ConstStore { .. }
            | FOp::StoreIdxCond { .. }
            | FOp::BinStore { .. }
            | FOp::BinImmStore { .. }
            | FOp::UnStore { .. }
            | FOp::MuxStore { .. } => None,
        }
    }

    /// Registers read.
    pub fn srcs(&self) -> Vec<Reg> {
        match *self {
            FOp::Const { .. }
            | FOp::ConstStore { .. }
            | FOp::Load { .. }
            | FOp::LoadBinImm { .. } => {
                vec![]
            }
            FOp::Copy { a, .. } | FOp::Un { a, .. } | FOp::UnStore { a, .. } => vec![a],
            FOp::Store { src, .. } => vec![src],
            FOp::LoadIdx { idx, .. } => vec![idx],
            FOp::StoreIdxCond { src, idx, pred, .. } => vec![src, idx, pred],
            FOp::Bin { a, b, .. } | FOp::BinStore { a, b, .. } => vec![a, b],
            FOp::BinImm { a, .. } | FOp::BinImmStore { a, .. } | FOp::Extract { a, .. } => {
                vec![a]
            }
            FOp::Mux { cond, a, b, .. } | FOp::MuxStore { cond, a, b, .. } => vec![cond, a, b],
            FOp::LoadBin { b, .. } => vec![b],
            FOp::MuxLoads { cond, .. } => vec![cond],
        }
    }

    /// Mutable references to every register operand: the destination (if
    /// any) and the sources, for in-place renumbering.
    #[allow(clippy::type_complexity)]
    fn regs_mut(&mut self) -> (Option<&mut Reg>, Vec<&mut Reg>) {
        match self {
            FOp::Const { dst, .. } | FOp::Load { dst, .. } | FOp::LoadBinImm { dst, .. } => {
                (Some(dst), vec![])
            }
            FOp::Copy { dst, a } | FOp::Un { dst, a, .. } | FOp::BinImm { dst, a, .. } => {
                (Some(dst), vec![a])
            }
            FOp::Extract { dst, a, .. } => (Some(dst), vec![a]),
            FOp::LoadIdx { dst, idx, .. } => (Some(dst), vec![idx]),
            FOp::Bin { dst, a, b, .. } => (Some(dst), vec![a, b]),
            FOp::Mux { dst, cond, a, b } => (Some(dst), vec![cond, a, b]),
            FOp::LoadBin { dst, b, .. } => (Some(dst), vec![b]),
            FOp::MuxLoads { dst, cond, .. } => (Some(dst), vec![cond]),
            FOp::Store { src, .. } => (None, vec![src]),
            FOp::ConstStore { .. } => (None, vec![]),
            FOp::StoreIdxCond { src, idx, pred, .. } => (None, vec![src, idx, pred]),
            FOp::BinStore { a, b, .. } => (None, vec![a, b]),
            FOp::BinImmStore { a, .. } | FOp::UnStore { a, .. } => (None, vec![a]),
            FOp::MuxStore { cond, a, b, .. } => (None, vec![cond, a, b]),
        }
    }

    /// Does this op write device memory?
    pub fn has_side_effect(&self) -> bool {
        matches!(
            self,
            FOp::Store { .. }
                | FOp::ConstStore { .. }
                | FOp::StoreIdxCond { .. }
                | FOp::BinStore { .. }
                | FOp::BinImmStore { .. }
                | FOp::UnStore { .. }
                | FOp::MuxStore { .. }
        )
    }
}

/// Static fusion statistics, aggregated per kernel then per graph.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuseStats {
    /// Ops in the source kernel IR.
    pub ops_in: u64,
    /// Ops in the fused program.
    pub ops_out: u64,
    /// Superops created by peephole fusion (each replaces >= 2 ops).
    pub superops: u64,
    /// Ops strength-reduced or removed by constant propagation.
    pub consts_folded: u64,
    /// Ops removed by dead-code elimination.
    pub dead_removed: u64,
    /// Loads replaced by the register that was just stored to the row.
    pub stores_forwarded: u64,
}

impl FuseStats {
    pub fn accumulate(&mut self, other: &FuseStats) {
        self.ops_in += other.ops_in;
        self.ops_out += other.ops_out;
        self.superops += other.superops;
        self.consts_folded += other.consts_folded;
        self.dead_removed += other.dead_removed;
        self.stores_forwarded += other.stores_forwarded;
    }
}

/// A fused, cached kernel program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedKernel {
    pub name: String,
    pub fops: Vec<FOp>,
    pub num_regs: u16,
    pub stats: FuseStats,
}

/// Per-slot lane-invariance flags for the four width buckets.
#[derive(Debug, Clone, Default)]
pub struct SlotUniform {
    flags: [Vec<bool>; 4],
}

fn bidx(b: Bucket) -> usize {
    match b {
        Bucket::B8 => 0,
        Bucket::B16 => 1,
        Bucket::B32 => 2,
        Bucket::B64 => 3,
    }
}

impl SlotUniform {
    /// All slots non-uniform (the "analysis off" element).
    pub fn none(lens: [u32; 4]) -> SlotUniform {
        SlotUniform {
            flags: [
                vec![false; lens[0] as usize],
                vec![false; lens[1] as usize],
                vec![false; lens[2] as usize],
                vec![false; lens[3] as usize],
            ],
        }
    }

    /// Is `slot` provably lane-invariant?
    #[inline]
    pub fn get(&self, slot: Slot) -> bool {
        self.flags[bidx(slot.bucket)]
            .get(slot.offset as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Is the whole `[offset, offset+depth)` range lane-invariant?
    pub fn range(&self, slot: Slot, depth: u32) -> bool {
        (0..depth.max(1)).all(|k| {
            self.get(Slot {
                bucket: slot.bucket,
                offset: slot.offset + k,
            })
        })
    }

    fn clear(&mut self, slot: Slot) -> bool {
        let f = &mut self.flags[bidx(slot.bucket)];
        let i = slot.offset as usize;
        if i < f.len() && f[i] {
            f[i] = false;
            true
        } else {
            false
        }
    }

    fn clear_range(&mut self, slot: Slot, depth: u32) -> bool {
        let mut changed = false;
        for k in 0..depth.max(1) {
            changed |= self.clear(Slot {
                bucket: slot.bucket,
                offset: slot.offset + k,
            });
        }
        changed
    }

    /// Count of uniform slots (for stats).
    pub fn uniform_count(&self) -> usize {
        self.flags
            .iter()
            .map(|f| f.iter().filter(|&&b| b).count())
            .sum()
    }

    /// Total slots tracked.
    pub fn total_count(&self) -> usize {
        self.flags.iter().map(|f| f.len()).sum()
    }

    /// Greatest-fixpoint uniformity analysis over all kernels of `ir`.
    ///
    /// `lens` are the per-bucket element counts of the memory plan;
    /// `roots` are slots the host writes per-lane data into (design
    /// inputs / pokes) — they seed the non-uniform set. Device memory
    /// starts zeroed, so everything else starts uniform and is cleared
    /// until no kernel can break the invariant.
    pub fn analyze(ir: &TaskGraphIr, lens: [u32; 4], roots: &[Slot]) -> SlotUniform {
        let mut u = SlotUniform {
            flags: [
                vec![true; lens[0] as usize],
                vec![true; lens[1] as usize],
                vec![true; lens[2] as usize],
                vec![true; lens[3] as usize],
            ],
        };
        for &r in roots {
            u.clear(r);
        }
        loop {
            let mut changed = false;
            for k in &ir.kernels {
                changed |= sweep_kernel(k, &mut u);
            }
            if !changed {
                break;
            }
        }
        u
    }
}

/// One abstract-interpretation sweep of `kernel`: propagate register
/// uniformity and clear any slot written with a non-uniform value.
/// Returns whether any flag changed.
fn sweep_kernel(kernel: &Kernel, u: &mut SlotUniform) -> bool {
    let mut reg_u = vec![false; kernel.num_regs as usize];
    let mut changed = false;
    for op in &kernel.ops {
        match *op {
            Op::Const { dst, .. } => reg_u[dst as usize] = true,
            Op::Load { dst, slot } => reg_u[dst as usize] = u.get(slot),
            Op::LoadIdx {
                dst,
                slot,
                idx,
                depth,
            } => {
                reg_u[dst as usize] = reg_u[idx as usize] && u.range(slot, depth);
            }
            Op::Bin { dst, a, b, .. } => {
                reg_u[dst as usize] = reg_u[a as usize] && reg_u[b as usize]
            }
            Op::Un { dst, a, .. } => reg_u[dst as usize] = reg_u[a as usize],
            Op::Mux { dst, cond, a, b } => {
                reg_u[dst as usize] = reg_u[cond as usize] && reg_u[a as usize] && reg_u[b as usize]
            }
            Op::Store { src, slot, .. } => {
                if !reg_u[src as usize] {
                    changed |= u.clear(slot);
                }
            }
            Op::StoreIdxCond {
                src,
                slot,
                idx,
                depth,
                pred,
                ..
            } => {
                // Uniform pred+idx+src writes the same word with the same
                // value on every lane (or none); anything else may leave
                // lanes diverged anywhere in the range.
                if !(reg_u[src as usize] && reg_u[idx as usize] && reg_u[pred as usize]) {
                    changed |= u.clear_range(slot, depth);
                }
            }
        }
    }
    changed
}

/// Tunable thresholds of the fuser. Both gates are *op-count floors*: an
/// optimization pass runs only on kernels at least that large, so tiny
/// kernels (where pass overhead can exceed the win) can be skipped. The
/// defaults (0 = always run) reproduce the untuned fuser exactly; every
/// setting is semantics-preserving, so fused programs stay bit-identical
/// to the scalar reference regardless of thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FuseConfig {
    /// Constant propagation / strength reduction runs only on kernels
    /// with at least this many input ops.
    pub const_fold_min_ops: usize,
    /// Peephole superop formation runs only on kernels with at least
    /// this many post-const-prop ops.
    pub superop_min_ops: usize,
}

/// Fuse one kernel: constant propagation → peephole superop formation →
/// dead-code elimination. `uniform` (when available) bakes per-load
/// lane-invariance flags into the program.
pub fn fuse_kernel(kernel: &Kernel, uniform: Option<&SlotUniform>) -> FusedKernel {
    fuse_kernel_with(kernel, uniform, &FuseConfig::default())
}

/// [`fuse_kernel`] with explicit [`FuseConfig`] thresholds.
pub fn fuse_kernel_with(
    kernel: &Kernel,
    uniform: Option<&SlotUniform>,
    cfg: &FuseConfig,
) -> FusedKernel {
    let mut stats = FuseStats {
        ops_in: kernel.ops.len() as u64,
        ..FuseStats::default()
    };
    let uget = |s: Slot| uniform.map(|u| u.get(s)).unwrap_or(false);
    let urange = |s: Slot, d: u32| uniform.map(|u| u.range(s, d)).unwrap_or(false);
    // Constness roots at `Op::Const`; suppressing that single write keeps
    // every fold path dormant, which is how the const-fold gate works
    // without touching the conversion logic below.
    let fold = kernel.ops.len() >= cfg.const_fold_min_ops;

    // Pass A: convert + constant propagation / strength reduction.
    let mut consts: Vec<Option<u64>> = vec![None; kernel.num_regs as usize];
    let mut fops: Vec<FOp> = Vec::with_capacity(kernel.ops.len());
    for op in &kernel.ops {
        let fop = match *op {
            Op::Const { dst, value } => {
                consts[dst as usize] = if fold { Some(value) } else { None };
                FOp::Const { dst, value }
            }
            Op::Load { dst, slot } => {
                consts[dst as usize] = None;
                FOp::Load {
                    dst,
                    slot,
                    uniform: uget(slot),
                }
            }
            Op::Store { src, slot, width } => {
                if let Some(v) = consts[src as usize] {
                    stats.consts_folded += 1;
                    FOp::ConstStore {
                        slot,
                        value: v & mask(width),
                    }
                } else {
                    FOp::Store { src, slot, width }
                }
            }
            Op::LoadIdx {
                dst,
                slot,
                idx,
                depth,
            } => {
                consts[dst as usize] = None;
                if let Some(i) = consts[idx as usize] {
                    stats.consts_folded += 1;
                    if i < depth as u64 {
                        let s = Slot {
                            bucket: slot.bucket,
                            offset: slot.offset + i as u32,
                        };
                        FOp::Load {
                            dst,
                            slot: s,
                            uniform: uget(s),
                        }
                    } else {
                        consts[dst as usize] = Some(0);
                        FOp::Const { dst, value: 0 }
                    }
                } else {
                    FOp::LoadIdx {
                        dst,
                        slot,
                        idx,
                        depth,
                        uniform: urange(slot, depth),
                    }
                }
            }
            Op::StoreIdxCond {
                src,
                slot,
                idx,
                depth,
                pred,
                width,
            } => {
                if consts[pred as usize] == Some(0) {
                    stats.consts_folded += 1;
                    continue;
                }
                match (consts[pred as usize], consts[idx as usize]) {
                    (Some(_nz), Some(i)) => {
                        stats.consts_folded += 1;
                        if i < depth as u64 {
                            let s = Slot {
                                bucket: slot.bucket,
                                offset: slot.offset + i as u32,
                            };
                            if let Some(v) = consts[src as usize] {
                                FOp::ConstStore {
                                    slot: s,
                                    value: v & mask(width),
                                }
                            } else {
                                FOp::Store {
                                    src,
                                    slot: s,
                                    width,
                                }
                            }
                        } else {
                            continue;
                        }
                    }
                    _ => FOp::StoreIdxCond {
                        src,
                        slot,
                        idx,
                        depth,
                        pred,
                        width,
                    },
                }
            }
            Op::Bin {
                op,
                dst,
                a,
                b,
                width,
            } => {
                use crate::device::apply_bin;
                let (ca, cb) = (consts[a as usize], consts[b as usize]);
                consts[dst as usize] = None;
                match (ca, cb) {
                    (Some(va), Some(vb)) => {
                        stats.consts_folded += 1;
                        let v = apply_bin(op, va, vb, width);
                        consts[dst as usize] = Some(v);
                        FOp::Const { dst, value: v }
                    }
                    (Some(va), None) => {
                        stats.consts_folded += 1;
                        bin_imm_or_const(op, dst, b, va, width, true, &mut consts, &mut stats)
                    }
                    (None, Some(vb)) => {
                        stats.consts_folded += 1;
                        bin_imm_or_const(op, dst, a, vb, width, false, &mut consts, &mut stats)
                    }
                    (None, None) => FOp::Bin {
                        op,
                        dst,
                        a,
                        b,
                        width,
                    },
                }
            }
            Op::Un { op, dst, a, width } => {
                if let Some(va) = consts[a as usize] {
                    stats.consts_folded += 1;
                    let v = crate::device::apply_un(op, va, width);
                    consts[dst as usize] = Some(v);
                    FOp::Const { dst, value: v }
                } else {
                    consts[dst as usize] = None;
                    FOp::Un { op, dst, a, width }
                }
            }
            Op::Mux { dst, cond, a, b } => {
                if let Some(c) = consts[cond as usize] {
                    stats.consts_folded += 1;
                    let src = if c != 0 { a } else { b };
                    if let Some(v) = consts[src as usize] {
                        consts[dst as usize] = Some(v);
                        FOp::Const { dst, value: v }
                    } else {
                        consts[dst as usize] = None;
                        FOp::Copy { dst, a: src }
                    }
                } else {
                    consts[dst as usize] = None;
                    FOp::Mux { dst, cond, a, b }
                }
            }
        };
        fops.push(fop);
    }

    // Pass B: store→load forwarding first (it turns row round-trips into
    // register ops), then DCE so dead Consts (absorbed into immediates)
    // don't break adjacency, then peephole superop formation, then a
    // final DCE sweep for loads whose consumer was fused away. Registers
    // are kernel-local, so nothing is live at the end of the kernel.
    let fops = forward_stores(fops, &mut stats);
    let fops = dce(fops, &mut stats);
    let fops = if fops.len() >= cfg.superop_min_ops {
        peephole(fops, &mut stats)
    } else {
        fops
    };
    let fops = dce(fops, &mut stats);

    let (fops, num_regs) = compact_regs(fops);
    stats.ops_out = fops.len() as u64;
    FusedKernel {
        name: kernel.name.clone(),
        fops,
        num_regs,
        stats,
    }
}

/// Lower `reg (op) imm` (operand order per `swapped`: the immediate is
/// the *first* operand when swapped). Folds shifts whose result no longer
/// depends on the register.
#[allow(clippy::too_many_arguments)]
fn bin_imm_or_const(
    op: KBin,
    dst: Reg,
    a: Reg,
    imm: u64,
    width: u32,
    swapped: bool,
    consts: &mut [Option<u64>],
    stats: &mut FuseStats,
) -> FOp {
    // Shift amount >= width zeroes the result regardless of the value
    // operand (Shl/Shr only; Sshr sign-fills, which depends on `a`).
    if !swapped && matches!(op, KBin::Shl | KBin::Shr) && imm >= width as u64 {
        stats.consts_folded += 1;
        consts[dst as usize] = Some(0);
        return FOp::Const { dst, value: 0 };
    }
    FOp::BinImm {
        op,
        dst,
        a,
        imm,
        width,
        swapped,
    }
}

/// Store→load forwarding. A row read back after it was written inside
/// the same kernel takes its value straight from the stored register
/// (masked to what the row would have retained) — or the stored constant
/// — instead of sweeping device memory again. The store itself stays:
/// later kernels and the next cycle may read the row. Inter-level wires
/// become exactly this pattern when the partitioner merges levels into
/// one kernel, which is what makes coarse partitions profitable for the
/// autotuner to discover.
fn forward_stores(fops: Vec<FOp>, stats: &mut FuseStats) -> Vec<FOp> {
    use std::collections::HashMap;

    /// What the most recent write provably left in every lane of a row.
    #[derive(Clone, Copy)]
    enum Avail {
        Reg { src: Reg, mask: u64 },
        Const(u64),
    }

    let bucket_mask = |b: Bucket| mask(8 * b.bytes() as u32);
    let mut avail: HashMap<(usize, u32), Avail> = HashMap::new();
    let mut out = Vec::with_capacity(fops.len());
    for f in fops {
        let f = match f {
            FOp::Load { dst, slot, .. } => match avail.get(&(bidx(slot.bucket), slot.offset)) {
                Some(&Avail::Reg { src, mask: m }) => {
                    stats.stores_forwarded += 1;
                    FOp::BinImm {
                        op: KBin::And,
                        dst,
                        a: src,
                        imm: m,
                        width: 64,
                        swapped: false,
                    }
                }
                Some(&Avail::Const(v)) => {
                    stats.stores_forwarded += 1;
                    FOp::Const { dst, value: v }
                }
                None => f,
            },
            other => other,
        };
        // A register redefinition kills every forward sourced from it.
        if let Some(d) = f.dst() {
            avail.retain(|_, a| !matches!(a, Avail::Reg { src, .. } if *src == d));
        }
        match f {
            FOp::Store { src, slot, width } => {
                avail.insert(
                    (bidx(slot.bucket), slot.offset),
                    Avail::Reg {
                        src,
                        mask: mask(width) & bucket_mask(slot.bucket),
                    },
                );
            }
            FOp::ConstStore { slot, value } => {
                avail.insert(
                    (bidx(slot.bucket), slot.offset),
                    Avail::Const(value & bucket_mask(slot.bucket)),
                );
            }
            // Superop stores leave a value we don't track; indexed
            // scatters clobber an unknown word of their range.
            FOp::BinStore { slot, .. }
            | FOp::BinImmStore { slot, .. }
            | FOp::UnStore { slot, .. }
            | FOp::MuxStore { slot, .. } => {
                avail.remove(&(bidx(slot.bucket), slot.offset));
            }
            FOp::StoreIdxCond { slot, depth, .. } => {
                for d in 0..depth {
                    avail.remove(&(bidx(slot.bucket), slot.offset + d));
                }
            }
            _ => {}
        }
        out.push(f);
    }
    out
}

/// Linear-scan register compaction. The transpiler mints a fresh
/// register per value, so a level-merged kernel's register file is the
/// *sum* of its parts even though only one level's worth is live at any
/// point. Scratch is `num_regs × lanes × 8 B` per chunk — exactly the
/// working set the lane-chunked executor keeps cache-resident — so remap
/// registers onto the smallest file that respects lifetimes. A freed
/// physical register is never handed to the destination of the very op
/// that last reads it, preserving the executor's dst/src aliasing
/// behavior.
fn compact_regs(mut fops: Vec<FOp>) -> (Vec<FOp>, u16) {
    let mut max_reg = 0usize;
    for f in &fops {
        for s in f.srcs() {
            max_reg = max_reg.max(s as usize);
        }
        if let Some(d) = f.dst() {
            max_reg = max_reg.max(d as usize);
        }
    }
    // Last occurrence (read or write) per original register: the point
    // after which its physical register can be recycled.
    let mut last = vec![usize::MAX; max_reg + 1];
    for (i, f) in fops.iter().enumerate() {
        for s in f.srcs() {
            last[s as usize] = i;
        }
        if let Some(d) = f.dst() {
            last[d as usize] = i;
        }
    }

    let mut map: Vec<Option<Reg>> = vec![None; max_reg + 1];
    let mut free: Vec<Reg> = Vec::new();
    let mut next: Reg = 0;
    let mut alloc = |map: &mut Vec<Option<Reg>>, free: &mut Vec<Reg>, r: usize| -> Reg {
        match map[r] {
            Some(p) => p,
            None => {
                let p = free.pop().unwrap_or_else(|| {
                    let p = next;
                    next += 1;
                    p
                });
                map[r] = Some(p);
                p
            }
        }
    };
    for (i, fop) in fops.iter_mut().enumerate() {
        let orig = *fop;
        let (dst, srcs) = fop.regs_mut();
        // Sources first (write-before-read makes them already mapped;
        // allocating defensively keeps malformed input merely slow).
        for s in srcs {
            *s = alloc(&mut map, &mut free, *s as usize);
        }
        // Then the destination, so it never lands on a source freed by
        // this same op unless destination and source were already equal.
        if let Some(d) = dst {
            *d = alloc(&mut map, &mut free, *d as usize);
        }
        for r in orig
            .srcs()
            .into_iter()
            .chain(orig.dst())
            .map(|r| r as usize)
        {
            if last[r] == i {
                if let Some(p) = map[r].take() {
                    free.push(p);
                }
            }
        }
    }
    (fops, next)
}

/// Is register `r` dead after position `pos` (exclusive)? Registers are
/// kernel-local, so reaching the end of the kernel means dead; a redefine
/// before any read also means dead.
fn dead_after(fops: &[FOp], pos: usize, r: Reg) -> bool {
    for f in &fops[pos + 1..] {
        if f.srcs().contains(&r) {
            return false;
        }
        if f.dst() == Some(r) {
            return true;
        }
    }
    true
}

fn peephole(fops: Vec<FOp>, stats: &mut FuseStats) -> Vec<FOp> {
    let mut out: Vec<FOp> = Vec::with_capacity(fops.len());
    let mut i = 0;
    while i < fops.len() {
        // Triple: Load a; Load b; Mux(cond, a, b) -> MuxLoads.
        if i + 2 < fops.len() {
            if let (
                FOp::Load {
                    dst: ra,
                    slot: sa,
                    uniform: ua,
                },
                FOp::Load {
                    dst: rb,
                    slot: sb,
                    uniform: ub,
                },
                FOp::Mux { dst, cond, a, b },
            ) = (fops[i], fops[i + 1], fops[i + 2])
            {
                if ra != rb
                    && ((a == ra && b == rb) || (a == rb && b == ra))
                    && cond != ra
                    && cond != rb
                    && dead_after(&fops, i + 2, ra)
                    && dead_after(&fops, i + 2, rb)
                {
                    let (slot_a, slot_b, uniform_a, uniform_b) = if a == ra {
                        (sa, sb, ua, ub)
                    } else {
                        (sb, sa, ub, ua)
                    };
                    out.push(FOp::MuxLoads {
                        dst,
                        cond,
                        slot_a,
                        slot_b,
                        uniform_a,
                        uniform_b,
                    });
                    stats.superops += 1;
                    i += 3;
                    continue;
                }
            }
        }
        if i + 1 < fops.len() {
            if let Some(fused) = fuse_pair(&fops, i, stats) {
                out.push(fused);
                i += 2;
                continue;
            }
        }
        out.push(fops[i]);
        i += 1;
    }
    out
}

/// Try to fuse `fops[i]` with `fops[i+1]` into one superop.
fn fuse_pair(fops: &[FOp], i: usize, stats: &mut FuseStats) -> Option<FOp> {
    let fused = match (fops[i], fops[i + 1]) {
        // Load; Bin -> LoadBin (row in either operand position).
        (
            FOp::Load {
                dst: r,
                slot,
                uniform,
            },
            FOp::Bin {
                op,
                dst,
                a,
                b,
                width,
            },
        ) if (a == r) != (b == r) && dead_after(fops, i + 1, r) => FOp::LoadBin {
            op,
            dst,
            slot,
            b: if a == r { b } else { a },
            width,
            swapped: b == r,
            uniform,
        },
        // Load; BinImm -> LoadBinImm.
        (
            FOp::Load {
                dst: r,
                slot,
                uniform,
            },
            FOp::BinImm {
                op,
                dst,
                a,
                imm,
                width,
                swapped,
            },
        ) if a == r && dead_after(fops, i + 1, r) => FOp::LoadBinImm {
            op,
            dst,
            slot,
            imm,
            width,
            swapped,
            uniform,
        },
        // Bin; Store -> BinStore (bin's own mask must cover the store's).
        (
            FOp::Bin {
                op,
                dst,
                a,
                b,
                width,
            },
            FOp::Store {
                src,
                slot,
                width: sw,
            },
        ) if src == dst && width <= sw && dead_after(fops, i + 1, dst) => FOp::BinStore {
            op,
            a,
            b,
            slot,
            width,
        },
        // BinImm; Store -> BinImmStore.
        (
            FOp::BinImm {
                op,
                dst,
                a,
                imm,
                width,
                swapped,
            },
            FOp::Store {
                src,
                slot,
                width: sw,
            },
        ) if src == dst && width <= sw && dead_after(fops, i + 1, dst) => FOp::BinImmStore {
            op,
            a,
            imm,
            slot,
            width,
            swapped,
        },
        // Un; Store -> UnStore.
        (
            FOp::Un { op, dst, a, width },
            FOp::Store {
                src,
                slot,
                width: sw,
            },
        ) if src == dst && width <= sw && dead_after(fops, i + 1, dst) => {
            FOp::UnStore { op, a, slot, width }
        }
        // Mux; Store -> MuxStore (store's mask is applied in the sweep).
        (
            FOp::Mux { dst, cond, a, b },
            FOp::Store {
                src,
                slot,
                width: sw,
            },
        ) if src == dst && dead_after(fops, i + 1, dst) => FOp::MuxStore {
            cond,
            a,
            b,
            slot,
            width: sw,
        },
        // Shr-imm; And-imm -> Extract (slice read). Shift < width is
        // guaranteed: larger shifts were folded to Const 0 in pass A.
        (
            FOp::BinImm {
                op: KBin::Shr,
                dst: r1,
                a,
                imm: shift,
                width: _,
                swapped: false,
            },
            FOp::BinImm {
                op: KBin::And,
                dst,
                a: a2,
                imm: emask,
                width: _,
                swapped: _,
            },
        ) if a2 == r1 && dead_after(fops, i + 1, r1) => FOp::Extract {
            dst,
            a,
            shift: shift as u32,
            emask,
        },
        _ => return None,
    };
    stats.superops += 1;
    Some(fused)
}

fn dce(fops: Vec<FOp>, stats: &mut FuseStats) -> Vec<FOp> {
    let max_reg = fops
        .iter()
        .flat_map(|f| f.dst().into_iter().chain(f.srcs()))
        .max()
        .map_or(0, |r| r as usize + 1);
    let mut live = vec![false; max_reg];
    let mut keep = vec![false; fops.len()];
    for (i, f) in fops.iter().enumerate().rev() {
        let needed = f.has_side_effect() || f.dst().is_none_or(|d| live[d as usize]);
        if needed {
            keep[i] = true;
            if let Some(d) = f.dst() {
                live[d as usize] = false;
            }
            for s in f.srcs() {
                live[s as usize] = true;
            }
        } else {
            stats.dead_removed += 1;
        }
    }
    fops.into_iter()
        .zip(keep)
        .filter_map(|(f, k)| k.then_some(f))
        .collect()
}

/// Fuse every kernel of a task graph.
pub fn fuse_graph(ir: &TaskGraphIr, uniform: Option<&SlotUniform>) -> Vec<FusedKernel> {
    fuse_graph_with(ir, uniform, &FuseConfig::default())
}

/// [`fuse_graph`] with explicit [`FuseConfig`] thresholds.
pub fn fuse_graph_with(
    ir: &TaskGraphIr,
    uniform: Option<&SlotUniform>,
    cfg: &FuseConfig,
) -> Vec<FusedKernel> {
    ir.kernels
        .iter()
        .map(|k| fuse_kernel_with(k, uniform, cfg))
        .collect()
}

/// Aggregate executor statistics for the metrics/trace path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    pub fuse: FuseStats,
    /// Slots proven lane-invariant / total slots tracked.
    pub uniform_slots: u64,
    pub total_slots: u64,
    /// Average ops per cycle computed once as scalars instead of per lane.
    pub scalar_ops_per_cycle: f64,
}

impl ExecStats {
    pub fn to_json(&self) -> desim::Json {
        desim::Json::obj()
            .field("ops_in", desim::Json::Int(self.fuse.ops_in as i128))
            .field("ops_out", desim::Json::Int(self.fuse.ops_out as i128))
            .field("superops", desim::Json::Int(self.fuse.superops as i128))
            .field(
                "consts_folded",
                desim::Json::Int(self.fuse.consts_folded as i128),
            )
            .field(
                "dead_removed",
                desim::Json::Int(self.fuse.dead_removed as i128),
            )
            .field(
                "stores_forwarded",
                desim::Json::Int(self.fuse.stores_forwarded as i128),
            )
            .field(
                "uniform_slots",
                desim::Json::Int(self.uniform_slots as i128),
            )
            .field("total_slots", desim::Json::Int(self.total_slots as i128))
            .field(
                "scalar_ops_per_cycle",
                desim::Json::Num(self.scalar_ops_per_cycle),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Kernel;

    fn s8(offset: u32) -> Slot {
        Slot {
            bucket: Bucket::B8,
            offset,
        }
    }

    #[test]
    fn load_bin_store_chain_fuses() {
        let k = Kernel::new(
            "chain",
            vec![
                Op::Load {
                    dst: 0,
                    slot: s8(0),
                },
                Op::Load {
                    dst: 1,
                    slot: s8(1),
                },
                Op::Bin {
                    op: KBin::Add,
                    dst: 2,
                    a: 0,
                    b: 1,
                    width: 8,
                },
                Op::Store {
                    src: 2,
                    slot: s8(2),
                    width: 8,
                },
            ],
        );
        let f = fuse_kernel(&k, None);
        // Load r0; LoadBin r2 = row1 + r0 (swapped); Store fuses into the
        // LoadBin's consumer chain -> expect 2-3 ops, strictly fewer than 4.
        assert!(f.fops.len() < 4, "{:?}", f.fops);
        assert!(f.stats.superops >= 1);
    }

    #[test]
    fn const_store_folds() {
        let k = Kernel::new(
            "c",
            vec![
                Op::Const {
                    dst: 0,
                    value: 0x1ff,
                },
                Op::Store {
                    src: 0,
                    slot: s8(0),
                    width: 8,
                },
            ],
        );
        let f = fuse_kernel(&k, None);
        assert_eq!(
            f.fops,
            vec![FOp::ConstStore {
                slot: s8(0),
                value: 0xff
            }]
        );
        assert_eq!(f.stats.dead_removed, 1); // the Const became dead
    }

    #[test]
    fn extract_pattern_fuses() {
        // The Shr source is a *computed* register (not a fresh load, which
        // would greedily become LoadBinImm instead).
        let k = Kernel::new(
            "x",
            vec![
                Op::Load {
                    dst: 0,
                    slot: s8(0),
                },
                Op::Load {
                    dst: 1,
                    slot: s8(1),
                },
                Op::Bin {
                    op: KBin::Add,
                    dst: 2,
                    a: 0,
                    b: 1,
                    width: 8,
                },
                Op::Const { dst: 3, value: 3 },
                Op::Bin {
                    op: KBin::Shr,
                    dst: 4,
                    a: 2,
                    b: 3,
                    width: 8,
                },
                Op::Const { dst: 5, value: 0x7 },
                Op::Bin {
                    op: KBin::And,
                    dst: 6,
                    a: 4,
                    b: 5,
                    width: 8,
                },
                Op::Store {
                    src: 6,
                    slot: s8(2),
                    width: 8,
                },
            ],
        );
        let f = fuse_kernel(&k, None);
        assert!(
            f.fops.iter().any(|f| matches!(
                f,
                FOp::Extract {
                    shift: 3,
                    emask: 7,
                    ..
                }
            )),
            "{:?}",
            f.fops
        );
    }

    #[test]
    fn uniform_fixpoint_clears_written_from_inputs() {
        // slot0 = input (root), slot1 = slot0 + 1, slot2 = const.
        let k = Kernel::new(
            "k",
            vec![
                Op::Load {
                    dst: 0,
                    slot: s8(0),
                },
                Op::Const { dst: 1, value: 1 },
                Op::Bin {
                    op: KBin::Add,
                    dst: 2,
                    a: 0,
                    b: 1,
                    width: 8,
                },
                Op::Store {
                    src: 2,
                    slot: s8(1),
                    width: 8,
                },
                Op::Store {
                    src: 1,
                    slot: s8(2),
                    width: 8,
                },
            ],
        );
        let ir = TaskGraphIr {
            kernels: vec![k],
            deps: vec![vec![]],
        };
        let u = SlotUniform::analyze(&ir, [3, 0, 0, 0], &[s8(0)]);
        assert!(!u.get(s8(0)), "input root must be non-uniform");
        assert!(!u.get(s8(1)), "derived from input");
        assert!(u.get(s8(2)), "constant-written slot stays uniform");
        assert_eq!(u.uniform_count(), 1);
        assert_eq!(u.total_count(), 3);
    }

    #[test]
    fn uniform_transitive_chain_needs_fixpoint() {
        // k0: slot1 = slot0 (input); k1: slot2 = slot1. One sweep clears
        // slot1, the second must clear slot2.
        let copy = |from: u32, to: u32, name: &str| {
            Kernel::new(
                name,
                vec![
                    Op::Load {
                        dst: 0,
                        slot: s8(from),
                    },
                    Op::Store {
                        src: 0,
                        slot: s8(to),
                        width: 8,
                    },
                ],
            )
        };
        // Order k1 before k0 so a single sweep is insufficient.
        let ir = TaskGraphIr {
            kernels: vec![copy(1, 2, "k1"), copy(0, 1, "k0")],
            deps: vec![vec![], vec![]],
        };
        let u = SlotUniform::analyze(&ir, [3, 0, 0, 0], &[s8(0)]);
        assert!(!u.get(s8(1)));
        assert!(!u.get(s8(2)));
    }

    #[test]
    fn dce_removes_unused_loads() {
        let k = Kernel::new(
            "dead",
            vec![
                Op::Load {
                    dst: 0,
                    slot: s8(0),
                },
                Op::Load {
                    dst: 1,
                    slot: s8(1),
                },
                Op::Store {
                    src: 1,
                    slot: s8(2),
                    width: 8,
                },
            ],
        );
        let f = fuse_kernel(&k, None);
        assert!(f.stats.dead_removed >= 1);
        assert!(!f.fops.iter().any(|f| matches!(
            f,
            FOp::Load {
                slot: Slot { offset: 0, .. },
                ..
            }
        )));
    }
}
