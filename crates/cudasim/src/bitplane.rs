//! Bit-transposed ("bitplane") execution layout.
//!
//! The width-bucketed [`DeviceMemory`] arrays spend a full element per lane
//! on every slot, so a 1-bit control signal (clock, enable, valid/ready,
//! FSM one-hot) wastes 63/64 of each `u64` the vector executor sweeps.
//! This module adds a *transposed* region where one `u64` word holds the
//! same bit of 64 stimuli: AND/OR/XOR/NOT/MUX over 1-bit signals become
//! single word ops across a 64-lane block (the GATSPI packing).
//!
//! Layout analysis ([`BitLayout::compile`]) classifies each `var8` slot as
//! *transposable* (every store is width-1 and its producing cone stays in
//! the bitwise/mux/const fragment) or *bucketed*. Each kernel is then split
//! into a word part (fused exactly like the vectorized engine) and a
//! [`BitProgram`] over bit registers. Word-domain ops may still *read*
//! transposed slots: those reads are listed as [`EscapeRead`]s and the
//! plane bits are scattered back into the `var8` row just before the word
//! part runs, so mixing a 1-bit operand into an arithmetic cone never
//! forces the whole signal out of the transposed region.
//!
//! The boundary is sealed by shims: `DeviceMemory::{load,store}` consult
//! the attached [`BitplaneMemory`] for transposed offsets (host peek/poke),
//! and checkpoints capture/restore through [`DeviceMemory::var8_canonical`]
//! / [`DeviceMemory::resync_bitplane`] so images stay layout-independent.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::device::{DeviceMemory, Scratch};
use crate::exec::execute_ordered;
use crate::fuse::{fuse_graph_with, FuseConfig, FusedKernel, SlotUniform};
use crate::ir::{Bucket, KBin, KUn, Kernel, Op, Reg, Slot, TaskGraphIr};

/// Sentinel in `plane_of_b8` for slots that stay width-bucketed.
const NO_PLANE: u32 = u32::MAX;

/// A transposed slot that a kernel's word part reads. Before the word part
/// runs, the plane's bits are scattered into the `var8` row at `offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EscapeRead {
    pub plane: u32,
    pub offset: u32,
}

/// One op over bit registers. A bit register holds one plane word per
/// 64-lane block; every op is a plain `u64` word operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BOp {
    /// `dst = ones ? !0 : 0` (the same constant bit in every lane).
    Const {
        dst: Reg,
        ones: bool,
    },
    /// `dst = plane[w]` for each word of the lane window.
    Load {
        dst: Reg,
        plane: u32,
    },
    /// `plane[w] = src` (edge words merged under the lane-range mask).
    Store {
        src: Reg,
        plane: u32,
    },
    Not {
        dst: Reg,
        a: Reg,
    },
    Copy {
        dst: Reg,
        a: Reg,
    },
    And {
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    Or {
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    Xor {
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// `dst = !(a ^ b)`
    Xnor {
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// `dst = a & !b`
    AndNot {
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// `dst = a | !b`
    OrNot {
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// `dst = (cond & a) | (!cond & b)` — valid because bit-domain values
    /// are always 0/1 per lane, so `cond` is a full lane mask per word.
    Mux {
        dst: Reg,
        cond: Reg,
        a: Reg,
        b: Reg,
    },
}

/// The bit-domain part of one kernel, over dense bit registers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitProgram {
    pub ops: Vec<BOp>,
    pub num_regs: Reg,
}

/// Compiled transposed layout for one task graph: the plane map plus, per
/// kernel, the word-domain fused program, the bit program, and the escape
/// reads that bridge them.
#[derive(Debug, Clone)]
pub struct BitLayout {
    /// `var8` offset → plane id (`NO_PLANE` if the slot stays bucketed).
    plane_of_b8: Vec<u32>,
    num_planes: u32,
    /// Per kernel: transposed slots its word part reads.
    pub escapes: Vec<Vec<EscapeRead>>,
    /// Per kernel: the word-domain remainder, fused like the vector engine.
    pub word_fused: Vec<FusedKernel>,
    /// Per kernel: the bit-domain program.
    pub bit: Vec<BitProgram>,
}

/// Is a binary op expressible in the bit domain, given both operands are
/// guaranteed 0/1? Width-independent ops survive any `width` because the
/// full-u64 comparison/logical semantics coincide with the 1-bit truth
/// table on 0/1 operands; the rest only at `width == 1` where masking
/// collapses them. Div/Rem are excluded outright (x/0 = all-ones).
fn bin_bit_ok(op: KBin, width: u32) -> bool {
    match op {
        KBin::And
        | KBin::Or
        | KBin::Xor
        | KBin::LAnd
        | KBin::LOr
        | KBin::Eq
        | KBin::Ne
        | KBin::Ltu
        | KBin::Leu
        | KBin::Gtu
        | KBin::Geu => true,
        KBin::Add | KBin::Sub | KBin::Mul | KBin::Xnor | KBin::Shl | KBin::Shr | KBin::Sshr => {
            width == 1
        }
        KBin::Div | KBin::Rem => false,
    }
}

/// Unary counterpart of [`bin_bit_ok`].
fn un_bit_ok(op: KUn, width: u32) -> bool {
    match op {
        KUn::LNot | KUn::RedOr | KUn::RedXor => true,
        KUn::Not | KUn::Neg | KUn::RedAnd => width == 1,
    }
}

/// Per-kernel classification result (word/bit membership per op index).
struct KernelClass {
    /// Op included in the word-domain kernel.
    word_inc: Vec<bool>,
    /// Op included in the bit-domain program.
    bit_inc: Vec<bool>,
    /// Candidate offsets the word part reads (escapes, pre-plane-id).
    escape_offs: Vec<u32>,
    /// Candidate offsets found to violate transposability here.
    demote: Vec<u32>,
}

fn is_leaf(op: &Op) -> bool {
    matches!(op, Op::Load { .. } | Op::Const { .. })
}

/// Can this reg-defining op live in the bit domain (operands 0/1)?
fn op_bit_capable(op: &Op, candidate: &[bool]) -> bool {
    match op {
        Op::Const { value, .. } => *value <= 1,
        Op::Load { slot, .. } => {
            slot.bucket == Bucket::B8 && candidate.get(slot.offset as usize) == Some(&true)
        }
        Op::Bin { op, width, .. } => bin_bit_ok(*op, *width),
        Op::Un { op, width, .. } => un_bit_ok(*op, *width),
        Op::Mux { .. } => true,
        Op::Store { .. } | Op::LoadIdx { .. } | Op::StoreIdxCond { .. } => false,
    }
}

fn is_bit_store(op: &Op, candidate: &[bool]) -> bool {
    matches!(op, Op::Store { slot, width, .. }
        if slot.bucket == Bucket::B8
            && *width == 1
            && candidate.get(slot.offset as usize) == Some(&true))
}

/// Classify one kernel's ops into word/bit domains against the current
/// candidate set. Word membership propagates forward (a word value forces
/// its consumers word) and backward (a word op needs its operands
/// materialized in registers, so non-leaf operand defs go word too).
/// Leaves (Load/Const) are never forced word — they are duplicated into
/// whichever domains consume them.
fn classify_kernel(kernel: &Kernel, candidate: &[bool]) -> KernelClass {
    let ops = &kernel.ops;
    let n = ops.len();

    // Def-use chains under sequential reg visibility.
    let mut last_def: Vec<Option<usize>> = vec![None; kernel.num_regs as usize];
    let mut src_defs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut uses: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, op) in ops.iter().enumerate() {
        for s in op.srcs() {
            if let Some(d) = last_def[s as usize] {
                src_defs[i].push(d);
                uses[d].push(i);
            }
        }
        if let Some(d) = op.dst() {
            last_def[d as usize] = Some(i);
        }
    }

    let cap: Vec<bool> = ops.iter().map(|op| op_bit_capable(op, candidate)).collect();
    let mut word = vec![false; n];
    let mut demote: Vec<u32> = Vec::new();
    let mut wl: Vec<usize> = Vec::new();

    let force = |i: usize, word: &mut Vec<bool>, wl: &mut Vec<usize>| {
        if !is_leaf(&ops[i]) && !word[i] {
            word[i] = true;
            wl.push(i);
        }
    };

    // Seed: incapable non-leaf defs are word; word sinks force their
    // operand defs word. Incapable leaves (wide loads, consts > 1) are
    // word-domain values but need no backward propagation.
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Store { .. } if !is_bit_store(op, candidate) => {
                for &d in &src_defs[i] {
                    force(d, &mut word, &mut wl);
                }
            }
            Op::StoreIdxCond { .. } => {
                for &d in &src_defs[i] {
                    force(d, &mut word, &mut wl);
                }
            }
            _ if op.dst().is_some() && !cap[i] => {
                if is_leaf(op) {
                    word[i] = true;
                    wl.push(i);
                } else {
                    force(i, &mut word, &mut wl);
                }
            }
            _ => {}
        }
    }

    while let Some(i) = wl.pop() {
        // Backward: a word op reads its operands from word registers.
        if !is_leaf(&ops[i]) {
            for &d in &src_defs[i] {
                force(d, &mut word, &mut wl);
            }
        }
        // Forward: a word value forces reg-def consumers word; a would-be
        // bit store fed by a word value demotes its slot instead.
        for &j in &uses[i] {
            match &ops[j] {
                Op::Store { slot, .. } => {
                    if is_bit_store(&ops[j], candidate) {
                        demote.push(slot.offset);
                    }
                }
                Op::StoreIdxCond { .. } => {}
                _ => {
                    if !word[j] {
                        word[j] = true;
                        wl.push(j);
                    }
                }
            }
        }
    }

    // Membership. A leaf joins the word program iff some consumer is
    // word-domain, and the bit program iff some consumer is bit-domain
    // (possibly both — duplication is the escape hatch that keeps mixed
    // cones from demoting the shared signal).
    let consumer_word = |j: usize| -> bool {
        match &ops[j] {
            Op::Store { .. } => !is_bit_store(&ops[j], candidate),
            Op::StoreIdxCond { .. } => true,
            _ => word[j],
        }
    };
    let consumer_bit = |j: usize| -> bool {
        match &ops[j] {
            Op::Store { .. } => is_bit_store(&ops[j], candidate),
            Op::StoreIdxCond { .. } => false,
            _ => cap[j] && !word[j] && !is_leaf(&ops[j]),
        }
    };

    let mut word_inc = vec![false; n];
    let mut bit_inc = vec![false; n];
    let mut escape_offs: Vec<u32> = Vec::new();
    let mut bit_stored: Vec<u32> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Store { slot, .. } => {
                if is_bit_store(op, candidate) {
                    bit_inc[i] = true;
                    bit_stored.push(slot.offset);
                } else {
                    word_inc[i] = true;
                }
            }
            Op::StoreIdxCond { .. } => word_inc[i] = true,
            _ if is_leaf(op) => {
                let has_word = word[i] || uses[i].iter().any(|&j| consumer_word(j));
                let has_bit = cap[i] && uses[i].iter().any(|&j| consumer_bit(j));
                word_inc[i] = has_word;
                bit_inc[i] = has_bit;
                if has_word {
                    if let Op::Load { slot, .. } = op {
                        if slot.bucket == Bucket::B8
                            && candidate.get(slot.offset as usize) == Some(&true)
                        {
                            escape_offs.push(slot.offset);
                        }
                    }
                }
            }
            _ => {
                word_inc[i] = word[i];
                bit_inc[i] = cap[i] && !word[i];
            }
        }
    }

    // Intra-kernel hazard: the word part reads a slot this kernel also
    // bit-stores. The escape scatter runs once before the word part, so a
    // bit store in between would be invisible to it (and vice versa).
    // Demote conservatively, regardless of op order.
    escape_offs.sort_unstable();
    escape_offs.dedup();
    for &o in &escape_offs {
        if bit_stored.contains(&o) {
            demote.push(o);
        }
    }

    KernelClass {
        word_inc,
        bit_inc,
        escape_offs,
        demote,
    }
}

/// Emit the bit program for one kernel from its classification. Bit
/// registers are allocated densely, one per *original* register: a bit
/// reader's visible def is always a bit def (a word redefinition in
/// between would have forced the reader word), so the merge is safe.
fn emit_bit_program(kernel: &Kernel, cls: &KernelClass, plane_of: &[u32]) -> BitProgram {
    let mut bmap: Vec<Option<Reg>> = vec![None; kernel.num_regs as usize];
    let mut next: Reg = 0;
    let mut bops: Vec<BOp> = Vec::new();
    {
        let mut breg = |r: Reg, bmap: &mut Vec<Option<Reg>>| -> Reg {
            *bmap[r as usize].get_or_insert_with(|| {
                let b = next;
                next += 1;
                b
            })
        };
        for (i, op) in kernel.ops.iter().enumerate() {
            if !cls.bit_inc[i] {
                continue;
            }
            match op {
                Op::Const { dst, value } => {
                    let dst = breg(*dst, &mut bmap);
                    bops.push(BOp::Const {
                        dst,
                        ones: *value != 0,
                    });
                }
                Op::Load { dst, slot } => {
                    let dst = breg(*dst, &mut bmap);
                    bops.push(BOp::Load {
                        dst,
                        plane: plane_of[slot.offset as usize],
                    });
                }
                Op::Store { src, slot, .. } => {
                    let src = breg(*src, &mut bmap);
                    bops.push(BOp::Store {
                        src,
                        plane: plane_of[slot.offset as usize],
                    });
                }
                Op::Bin { op, dst, a, b, .. } => {
                    let (a, b) = (breg(*a, &mut bmap), breg(*b, &mut bmap));
                    let dst = breg(*dst, &mut bmap);
                    bops.push(match op {
                        KBin::And | KBin::Mul | KBin::LAnd => BOp::And { dst, a, b },
                        KBin::Or | KBin::LOr => BOp::Or { dst, a, b },
                        KBin::Xor | KBin::Ne | KBin::Add | KBin::Sub => BOp::Xor { dst, a, b },
                        KBin::Xnor | KBin::Eq => BOp::Xnor { dst, a, b },
                        // a < b on 0/1 is b & !a; a <= b is b | !a.
                        KBin::Ltu => BOp::AndNot { dst, a: b, b: a },
                        KBin::Leu => BOp::OrNot { dst, a: b, b: a },
                        // a > b is a & !b; shifts at width 1 zero unless
                        // the amount is 0, which is the same table.
                        KBin::Gtu | KBin::Shl | KBin::Shr => BOp::AndNot { dst, a, b },
                        KBin::Geu => BOp::OrNot { dst, a, b },
                        // Sign-fill from bit 0 at width 1 is the identity.
                        KBin::Sshr => BOp::Copy { dst, a },
                        KBin::Div | KBin::Rem => unreachable!("div/rem are never bit-capable"),
                    });
                }
                Op::Un { op, dst, a, .. } => {
                    let a = breg(*a, &mut bmap);
                    let dst = breg(*dst, &mut bmap);
                    bops.push(match op {
                        KUn::Not | KUn::LNot => BOp::Not { dst, a },
                        KUn::Neg | KUn::RedAnd | KUn::RedOr | KUn::RedXor => BOp::Copy { dst, a },
                    });
                }
                Op::Mux { dst, cond, a, b } => {
                    let (cond, a, b) = (
                        breg(*cond, &mut bmap),
                        breg(*a, &mut bmap),
                        breg(*b, &mut bmap),
                    );
                    let dst = breg(*dst, &mut bmap);
                    bops.push(BOp::Mux { dst, cond, a, b });
                }
                Op::LoadIdx { .. } | Op::StoreIdxCond { .. } => {
                    unreachable!("indexed memory ops are never bit-included")
                }
            }
        }
    }
    BitProgram {
        ops: bops,
        num_regs: next,
    }
}

impl BitLayout {
    /// Analyze a task graph and build the transposed layout.
    ///
    /// `len8` is the `var8` bucket length, `roots` the externally-poked
    /// input slots with their variable widths (a multi-bit root pins its
    /// slot bucketed), `uniform` the lane-invariance analysis of the
    /// *full* IR (the word remainder must be fused against the full-graph
    /// analysis: re-analyzing the filtered kernels would wrongly mark
    /// bit-stored slots uniform), and `cfg` the fusion thresholds.
    pub fn compile(
        ir: &TaskGraphIr,
        len8: u32,
        roots: &[(Slot, u32)],
        uniform: Option<&SlotUniform>,
        cfg: &FuseConfig,
    ) -> BitLayout {
        let len8 = len8 as usize;
        // Seed candidates: slots with a width-1 store or a width-1 root,
        // minus wide stores, wide roots, and indexed-memory ranges.
        let mut seeded = vec![false; len8];
        let mut excluded = vec![false; len8];
        let mark_range = |excluded: &mut Vec<bool>, slot: &Slot, depth: u32| {
            if slot.bucket == Bucket::B8 {
                for k in 0..depth.max(1) {
                    if let Some(e) = excluded.get_mut((slot.offset + k) as usize) {
                        *e = true;
                    }
                }
            }
        };
        for kernel in &ir.kernels {
            for op in &kernel.ops {
                match op {
                    Op::Store { slot, width, .. } if slot.bucket == Bucket::B8 => {
                        if *width == 1 {
                            if let Some(s) = seeded.get_mut(slot.offset as usize) {
                                *s = true;
                            }
                        } else {
                            mark_range(&mut excluded, slot, 1);
                        }
                    }
                    Op::LoadIdx { slot, depth, .. } => {
                        mark_range(&mut excluded, slot, *depth);
                    }
                    Op::StoreIdxCond { slot, depth, .. } => {
                        mark_range(&mut excluded, slot, *depth);
                    }
                    _ => {}
                }
            }
        }
        for (slot, width) in roots {
            if slot.bucket == Bucket::B8 {
                if *width == 1 {
                    if let Some(s) = seeded.get_mut(slot.offset as usize) {
                        *s = true;
                    }
                } else {
                    mark_range(&mut excluded, slot, 1);
                }
            }
        }
        let mut candidate: Vec<bool> = seeded
            .iter()
            .zip(&excluded)
            .map(|(&s, &e)| s && !e)
            .collect();

        // Fixpoint: classification may demote candidates (word-fed
        // stores, intra-kernel escape/store hazards); demotions shrink
        // the candidate set monotonically, so this terminates.
        let classes: Vec<KernelClass> = loop {
            let classes: Vec<KernelClass> = ir
                .kernels
                .iter()
                .map(|k| classify_kernel(k, &candidate))
                .collect();
            let mut demoted = false;
            for cls in &classes {
                for &o in &cls.demote {
                    if candidate[o as usize] {
                        candidate[o as usize] = false;
                        demoted = true;
                    }
                }
            }
            if !demoted {
                break classes;
            }
        };

        // Assign plane ids to the surviving candidates.
        let mut plane_of_b8 = vec![NO_PLANE; len8];
        let mut num_planes = 0u32;
        for (o, &c) in candidate.iter().enumerate() {
            if c {
                plane_of_b8[o] = num_planes;
                num_planes += 1;
            }
        }

        // Build the word-domain remainder and fuse it like the vector
        // engine (against the full-IR uniform analysis).
        let word_kernels: Vec<Kernel> = ir
            .kernels
            .iter()
            .zip(&classes)
            .map(|(k, cls)| {
                let ops: Vec<Op> = k
                    .ops
                    .iter()
                    .zip(&cls.word_inc)
                    .filter(|&(_, &inc)| inc)
                    .map(|(op, _)| op.clone())
                    .collect();
                Kernel::new(k.name.clone(), ops)
            })
            .collect();
        let word_ir = TaskGraphIr {
            kernels: word_kernels,
            deps: ir.deps.clone(),
        };
        let word_fused = fuse_graph_with(&word_ir, uniform, cfg);

        let bit: Vec<BitProgram> = ir
            .kernels
            .iter()
            .zip(&classes)
            .map(|(k, cls)| emit_bit_program(k, cls, &plane_of_b8))
            .collect();

        let escapes: Vec<Vec<EscapeRead>> = classes
            .iter()
            .map(|cls| {
                cls.escape_offs
                    .iter()
                    .filter(|&&o| plane_of_b8[o as usize] != NO_PLANE)
                    .map(|&o| EscapeRead {
                        plane: plane_of_b8[o as usize],
                        offset: o,
                    })
                    .collect()
            })
            .collect();

        BitLayout {
            plane_of_b8,
            num_planes,
            escapes,
            word_fused,
            bit,
        }
    }

    /// Number of transposed planes (0 means the layout degenerates to the
    /// plain vectorized engine).
    pub fn num_planes(&self) -> u32 {
        self.num_planes
    }

    /// Plane id for a `var8` offset, if transposed.
    pub fn plane_of(&self, offset: u32) -> Option<u32> {
        match self.plane_of_b8.get(offset as usize) {
            Some(&p) if p != NO_PLANE => Some(p),
            _ => None,
        }
    }

    /// Total bit ops across all kernels (cost-model input).
    pub fn bit_op_count(&self) -> usize {
        self.bit.iter().map(|p| p.ops.len()).sum()
    }

    /// Total word-domain fused ops across all kernels.
    pub fn word_fop_count(&self) -> usize {
        self.word_fused.iter().map(|k| k.fops.len()).sum()
    }

    /// Total escape reads across all kernels (per-cycle scatter cost).
    pub fn escape_count(&self) -> usize {
        self.escapes.iter().map(|e| e.len()).sum()
    }
}

/// The transposed storage region: `num_planes` rows of `words` words,
/// plane-major, where `bits[p * words + w]` holds bit `p` of lanes
/// `[64w, 64w + 64)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitplaneMemory {
    pub(crate) words: usize,
    pub(crate) num_planes: u32,
    pub(crate) bits: Vec<u64>,
    pub(crate) plane_of_b8: Vec<u32>,
}

impl BitplaneMemory {
    /// Plane id for a `var8` offset, if transposed.
    #[inline]
    pub(crate) fn plane_for(&self, offset: u32) -> Option<u32> {
        match self.plane_of_b8.get(offset as usize) {
            Some(&p) if p != NO_PLANE => Some(p),
            _ => None,
        }
    }

    /// Read one lane's bit of a plane (0 or 1).
    #[inline]
    pub(crate) fn get(&self, plane: u32, tid: usize) -> u64 {
        (self.bits[plane as usize * self.words + tid / 64] >> (tid % 64)) & 1
    }

    /// Write one lane's bit of a plane.
    #[inline]
    pub(crate) fn set(&mut self, plane: u32, tid: usize, v: u64) {
        let w = &mut self.bits[plane as usize * self.words + tid / 64];
        let m = 1u64 << (tid % 64);
        if v & 1 != 0 {
            *w |= m;
        } else {
            *w &= !m;
        }
    }
}

impl DeviceMemory {
    /// Attach a transposed region for `layout`, packing the current
    /// `var8` rows of every transposed slot into planes (and zeroing the
    /// rows — the plane is authoritative while attached). Idempotent; a
    /// zero-plane layout attaches nothing.
    pub fn attach_bitplane(&mut self, layout: &BitLayout) {
        if layout.num_planes == 0 || self.bitplane.is_some() {
            return;
        }
        let n = self.n();
        let words = n.div_ceil(64);
        let mut bp = BitplaneMemory {
            words,
            num_planes: layout.num_planes,
            bits: vec![0u64; layout.num_planes as usize * words],
            plane_of_b8: layout.plane_of_b8.clone(),
        };
        let DeviceMemory { var8, .. } = self;
        for (o, &p) in bp.plane_of_b8.iter().enumerate() {
            if p == NO_PLANE {
                continue;
            }
            let row = &mut var8[o * n..o * n + n];
            let pbase = p as usize * words;
            for (t, v) in row.iter_mut().enumerate() {
                if *v & 1 != 0 {
                    bp.bits[pbase + t / 64] |= 1u64 << (t % 64);
                }
                *v = 0;
            }
        }
        self.bitplane = Some(Box::new(bp));
    }

    /// Detach the transposed region, folding every plane back into its
    /// `var8` row. After this the raw arrays are the full state again.
    pub fn detach_bitplane(&mut self) {
        let n = self.n();
        if let Some(bp) = self.bitplane.take() {
            for (o, &p) in bp.plane_of_b8.iter().enumerate() {
                if p == NO_PLANE {
                    continue;
                }
                let pbase = p as usize * bp.words;
                let row = &mut self.var8[o * n..o * n + n];
                for (t, v) in row.iter_mut().enumerate() {
                    *v = ((bp.bits[pbase + t / 64] >> (t % 64)) & 1) as u8;
                }
            }
        }
    }

    /// Re-pack the planes from the raw `var8` rows (used after a
    /// checkpoint restore wrote canonical rows into an attached device).
    pub fn resync_bitplane(&mut self) {
        let n = self.n();
        let DeviceMemory { var8, bitplane, .. } = self;
        let Some(bp) = bitplane else { return };
        for (o, &p) in bp.plane_of_b8.iter().enumerate() {
            if p == NO_PLANE {
                continue;
            }
            let pbase = p as usize * bp.words;
            bp.bits[pbase..pbase + bp.words].fill(0);
            let row = &mut var8[o * n..o * n + n];
            for (t, v) in row.iter_mut().enumerate() {
                if *v & 1 != 0 {
                    bp.bits[pbase + t / 64] |= 1u64 << (t % 64);
                }
                *v = 0;
            }
        }
    }

    /// The `var8` bucket in canonical (layout-independent) form: a copy
    /// of the raw rows with any attached planes folded back in.
    pub fn var8_canonical(&self) -> Vec<u8> {
        let n = self.n();
        let mut out = self.var8.clone();
        if let Some(bp) = &self.bitplane {
            for (o, &p) in bp.plane_of_b8.iter().enumerate() {
                if p == NO_PLANE {
                    continue;
                }
                let pbase = p as usize * bp.words;
                for (t, v) in out[o * n..o * n + n].iter_mut().enumerate() {
                    *v = ((bp.bits[pbase + t / 64] >> (t % 64)) & 1) as u8;
                }
            }
        }
        out
    }

    /// Zero the whole device state, including any attached planes.
    pub fn reset(&mut self) {
        self.var8.fill(0);
        self.var16.fill(0);
        self.var32.fill(0);
        self.var64.fill(0);
        if let Some(bp) = &mut self.bitplane {
            bp.bits.fill(0);
        }
    }

    /// Scatter each escaped plane's bits into its `var8` row for lanes
    /// `[tid0, tid0 + group)` so the word part can read them raw.
    pub fn materialize_escapes(&mut self, escapes: &[EscapeRead], tid0: usize, group: usize) {
        let n = self.n();
        let DeviceMemory { var8, bitplane, .. } = self;
        let Some(bp) = bitplane else { return };
        for e in escapes {
            let base = e.offset as usize * n;
            let pbase = e.plane as usize * bp.words;
            for t in tid0..tid0 + group {
                var8[base + t] = ((bp.bits[pbase + t / 64] >> (t % 64)) & 1) as u8;
            }
        }
    }
}

/// Execute one kernel's bit program over the lane window `[tid0, end)`.
/// Bit registers are `words`-long rows in the shared [`Scratch`] arena
/// (one `u64` per 64 lanes); stores merge edge words under the window
/// mask so partial/misaligned ranges never clobber neighbor lanes.
fn exec_bit_program(
    prog: &BitProgram,
    bp: &mut BitplaneMemory,
    scratch: &mut Scratch,
    tid0: usize,
    end: usize,
) {
    let w0 = tid0 / 64;
    let w1 = end.div_ceil(64);
    let rlen = w1 - w0;
    if rlen == 0 {
        return;
    }
    scratch.ensure(prog.num_regs, rlen);
    let first_mask = !0u64 << (tid0 % 64);
    let last_mask = if end.is_multiple_of(64) {
        !0u64
    } else {
        (1u64 << (end % 64)) - 1
    };

    // Index-based element loops: bit registers may alias (one bit reg per
    // original reg), and elementwise `d[i] = f(a[i], b[i])` is alias-safe.
    #[inline(always)]
    fn bun(scratch: &mut Scratch, dst: Reg, a: Reg, rlen: usize, f: impl Fn(u64) -> u64) {
        let g = scratch.group;
        let (di, ai) = (dst as usize * g, a as usize * g);
        for i in 0..rlen {
            scratch.regs[di + i] = f(scratch.regs[ai + i]);
        }
    }
    #[inline(always)]
    fn bbin(
        scratch: &mut Scratch,
        dst: Reg,
        a: Reg,
        b: Reg,
        rlen: usize,
        f: impl Fn(u64, u64) -> u64,
    ) {
        let g = scratch.group;
        let (di, ai, bi) = (dst as usize * g, a as usize * g, b as usize * g);
        for i in 0..rlen {
            let (va, vb) = (scratch.regs[ai + i], scratch.regs[bi + i]);
            scratch.regs[di + i] = f(va, vb);
        }
    }

    for op in &prog.ops {
        match *op {
            BOp::Const { dst, ones } => {
                scratch.reg_mut(dst).fill(if ones { !0 } else { 0 });
            }
            BOp::Load { dst, plane } => {
                let src = &bp.bits[plane as usize * bp.words + w0..][..rlen];
                scratch.reg_mut(dst).copy_from_slice(src);
            }
            BOp::Store { src, plane } => {
                let s = scratch.reg(src);
                let d = &mut bp.bits[plane as usize * bp.words + w0..][..rlen];
                if rlen == 1 {
                    let m = first_mask & last_mask;
                    d[0] = (d[0] & !m) | (s[0] & m);
                } else {
                    d[0] = (d[0] & !first_mask) | (s[0] & first_mask);
                    d[1..rlen - 1].copy_from_slice(&s[1..rlen - 1]);
                    d[rlen - 1] = (d[rlen - 1] & !last_mask) | (s[rlen - 1] & last_mask);
                }
            }
            BOp::Not { dst, a } => bun(scratch, dst, a, rlen, |a| !a),
            BOp::Copy { dst, a } => bun(scratch, dst, a, rlen, |a| a),
            BOp::And { dst, a, b } => bbin(scratch, dst, a, b, rlen, |a, b| a & b),
            BOp::Or { dst, a, b } => bbin(scratch, dst, a, b, rlen, |a, b| a | b),
            BOp::Xor { dst, a, b } => bbin(scratch, dst, a, b, rlen, |a, b| a ^ b),
            BOp::Xnor { dst, a, b } => bbin(scratch, dst, a, b, rlen, |a, b| !(a ^ b)),
            BOp::AndNot { dst, a, b } => bbin(scratch, dst, a, b, rlen, |a, b| a & !b),
            BOp::OrNot { dst, a, b } => bbin(scratch, dst, a, b, rlen, |a, b| a | !b),
            BOp::Mux { dst, cond, a, b } => {
                let g = scratch.group;
                let (ci, ai, bi, di) = (
                    cond as usize * g,
                    a as usize * g,
                    b as usize * g,
                    dst as usize * g,
                );
                for i in 0..rlen {
                    let (vc, va, vb) = (
                        scratch.regs[ci + i],
                        scratch.regs[ai + i],
                        scratch.regs[bi + i],
                    );
                    scratch.regs[di + i] = (vc & va) | (!vc & vb);
                }
            }
        }
    }
}

/// Run every kernel of `order` over `[tid0, end)`: per kernel, scatter its
/// escape reads, run the word-domain remainder, then the bit program.
/// The per-kernel interleave (not phase-per-cycle) is required because a
/// later kernel's escapes may read slots an earlier kernel bit-stored.
fn execute_bitplane_range(
    layout: &BitLayout,
    order: &[usize],
    dev: &mut DeviceMemory,
    scratch: &mut Scratch,
    tid0: usize,
    end: usize,
    lane_chunk: usize,
) {
    for &k in order {
        let esc = &layout.escapes[k];
        if !esc.is_empty() {
            dev.materialize_escapes(esc, tid0, end - tid0);
        }
        if !layout.word_fused[k].fops.is_empty() {
            execute_ordered(
                &layout.word_fused,
                std::slice::from_ref(&k),
                dev,
                scratch,
                tid0,
                end - tid0,
                lane_chunk,
            );
        }
        if !layout.bit[k].ops.is_empty() {
            if let Some(bp) = dev.bitplane.as_deref_mut() {
                exec_bit_program(&layout.bit[k], bp, scratch, tid0, end);
            }
        }
    }
}

/// Raw device pointer crossing the thread-pool boundary. Safe: workers
/// claim disjoint 64-lane-aligned lane intervals, so they touch disjoint
/// plane words and disjoint lane sub-ranges of every bucket row.
struct BpDevPtr(*mut DeviceMemory);
unsafe impl Send for BpDevPtr {}
unsafe impl Sync for BpDevPtr {}

/// Execute one full cycle under the transposed layout. Attaches the
/// [`BitplaneMemory`] on first use (packing current `var8` state). With
/// more than one scratch, lanes are cut into 64-aligned blocks of
/// `block` lanes claimed from an atomic counter by scoped workers.
#[allow(clippy::too_many_arguments)]
pub fn run_bitplane_cycle(
    layout: &BitLayout,
    order: &[usize],
    dev: &mut DeviceMemory,
    scratches: &mut [Scratch],
    tid0: usize,
    group: usize,
    block: usize,
    lane_chunk: usize,
) {
    if layout.num_planes > 0 && dev.bitplane.is_none() {
        dev.attach_bitplane(layout);
    }
    if group == 0 {
        return;
    }
    let end = tid0 + group;
    let w_start = tid0 / 64;
    let w_end = end.div_ceil(64);
    let words_per_block = (block / 64).max(1);
    let nblocks = (w_end - w_start).div_ceil(words_per_block);
    let workers = scratches.len().min(nblocks).max(1);
    if workers <= 1 {
        execute_bitplane_range(layout, order, dev, &mut scratches[0], tid0, end, lane_chunk);
        return;
    }
    let next = AtomicUsize::new(0);
    let devp = BpDevPtr(dev as *mut DeviceMemory);
    let devp = &devp;
    let next = &next;
    std::thread::scope(|sc| {
        for scratch in scratches[..workers].iter_mut() {
            sc.spawn(move || loop {
                let bi = next.fetch_add(1, Ordering::Relaxed);
                if bi >= nblocks {
                    break;
                }
                let bw0 = w_start + bi * words_per_block;
                let bw1 = (bw0 + words_per_block).min(w_end);
                let t0 = (bw0 * 64).max(tid0);
                let t1 = (bw1 * 64).min(end);
                if t0 >= t1 {
                    continue;
                }
                // SAFETY: block word ranges are disjoint, so lane
                // intervals (and plane words) never overlap.
                let dev = unsafe { &mut *devp.0 };
                execute_bitplane_range(layout, order, dev, scratch, t0, t1, lane_chunk);
            });
        }
    });
}

/// Bit-transpose `n` 1-bit lane values into `ceil(n / 64)` words: lane
/// `i`'s low bit lands in bit `i % 64` of word `i / 64`. This is the
/// same lane-major word layout [`BitplaneMemory`] packs planes in, split
/// out so boundary-exchange frames (modelpar) can ship 1-bit nets at 64
/// stimuli per machine word.
pub fn pack_bit_lanes(values: impl ExactSizeIterator<Item = u64>) -> Vec<u64> {
    let n = values.len();
    let mut words = vec![0u64; n.div_ceil(64)];
    for (i, v) in values.enumerate() {
        words[i / 64] |= (v & 1) << (i % 64);
    }
    words
}

/// Inverse of [`pack_bit_lanes`]: call `put(lane, bit)` for each of the
/// `n` lanes. Returns `false` (without calling `put`) when `words` is
/// too short for `n` lanes — the caller treats that as a malformed frame.
pub fn unpack_bit_lanes(words: &[u64], n: usize, mut put: impl FnMut(usize, u64)) -> bool {
    if words.len() < n.div_ceil(64) {
        return false;
    }
    for i in 0..n {
        put(i, (words[i / 64] >> (i % 64)) & 1);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::execute_kernel;
    use crate::ir::{Kernel, Op};

    fn s8(offset: u32) -> Slot {
        Slot {
            bucket: Bucket::B8,
            offset,
        }
    }

    fn s16(offset: u32) -> Slot {
        Slot {
            bucket: Bucket::B16,
            offset,
        }
    }

    /// A control-ish graph: bitwise cone over 1-bit slots 0..4, plus a
    /// word cone (add) over slot 5 that *reads* 1-bit slot 0 (escape).
    fn demo_graph() -> TaskGraphIr {
        let k0 = Kernel::new(
            "bits",
            vec![
                Op::Load {
                    dst: 0,
                    slot: s8(0),
                },
                Op::Load {
                    dst: 1,
                    slot: s8(1),
                },
                Op::Bin {
                    op: KBin::And,
                    dst: 2,
                    a: 0,
                    b: 1,
                    width: 1,
                },
                Op::Un {
                    op: KUn::Not,
                    dst: 3,
                    a: 1,
                    width: 1,
                },
                Op::Mux {
                    dst: 4,
                    cond: 2,
                    a: 3,
                    b: 0,
                },
                Op::Store {
                    src: 4,
                    slot: s8(2),
                    width: 1,
                },
                Op::Bin {
                    op: KBin::Xor,
                    dst: 5,
                    a: 2,
                    b: 3,
                    width: 1,
                },
                Op::Store {
                    src: 5,
                    slot: s8(3),
                    width: 1,
                },
            ],
        );
        let k1 = Kernel::new(
            "word",
            vec![
                Op::Load {
                    dst: 0,
                    slot: s8(0),
                },
                Op::Load {
                    dst: 1,
                    slot: s8(5),
                },
                Op::Bin {
                    op: KBin::Add,
                    dst: 2,
                    a: 0,
                    b: 1,
                    width: 8,
                },
                Op::Store {
                    src: 2,
                    slot: s8(5),
                    width: 8,
                },
                Op::Load {
                    dst: 3,
                    slot: s16(0),
                },
                Op::Bin {
                    op: KBin::Add,
                    dst: 4,
                    a: 3,
                    b: 2,
                    width: 16,
                },
                Op::Store {
                    src: 4,
                    slot: s16(0),
                    width: 16,
                },
            ],
        );
        TaskGraphIr {
            kernels: vec![k0, k1],
            deps: vec![vec![], vec![0]],
        }
    }

    fn roots() -> Vec<(Slot, u32)> {
        vec![(s8(0), 1), (s8(1), 1)]
    }

    fn scalar_reference(ir: &TaskGraphIr, dev: &mut DeviceMemory, n: usize, cycles: usize) {
        let mut scratch = Scratch::new();
        for _ in 0..cycles {
            for k in &ir.kernels {
                for t in 0..n {
                    execute_kernel(k, dev, &mut scratch, t, 1);
                }
            }
        }
    }

    fn seed(dev: &mut DeviceMemory, n: usize) {
        for t in 0..n {
            dev.store(s8(0), t, (t as u64) & 1);
            dev.store(s8(1), t, ((t / 3) as u64) & 1);
            dev.store(s8(5), t, (t as u64 * 7) & 0xff);
            dev.store(s16(0), t, (t as u64 * 131) & 0xffff);
        }
    }

    #[test]
    fn classification_assigns_planes_and_escapes() {
        let ir = demo_graph();
        let layout = BitLayout::compile(&ir, 6, &roots(), None, &FuseConfig::default());
        // Slots 0..=3 are 1-bit (roots 0,1; stores 2,3); slot 5 is wide.
        assert_eq!(layout.num_planes(), 4);
        assert!(layout.plane_of(0).is_some());
        assert!(layout.plane_of(3).is_some());
        assert_eq!(layout.plane_of(5), None);
        // Kernel 1's add reads transposed slot 0 → one escape there.
        assert!(layout.escapes[0].is_empty());
        assert_eq!(layout.escapes[1].len(), 1);
        assert_eq!(layout.escapes[1][0].offset, 0);
        // Kernel 0 is fully bit-domain; kernel 1 fully word-domain.
        assert!(layout.word_fused[0].fops.is_empty());
        assert!(!layout.bit[0].ops.is_empty());
        assert!(layout.bit[1].ops.is_empty());
    }

    #[test]
    fn bitpar_matches_scalar_reference() {
        let ir = demo_graph();
        let n = 200; // deliberately not a multiple of 64
        let layout = BitLayout::compile(&ir, 6, &roots(), None, &FuseConfig::default());
        let order = ir.topo_order().unwrap();

        let mut ref_dev = DeviceMemory::new(n, 6, 1, 0, 0);
        seed(&mut ref_dev, n);
        scalar_reference(&ir, &mut ref_dev, n, 4);

        let mut dev = DeviceMemory::new(n, 6, 1, 0, 0);
        seed(&mut dev, n);
        let mut scratches = vec![Scratch::new()];
        for _ in 0..4 {
            run_bitplane_cycle(&layout, &order, &mut dev, &mut scratches, 0, n, 1024, 256);
        }
        dev.detach_bitplane();
        assert_eq!(dev.var8, ref_dev.var8);
        assert_eq!(dev.var16, ref_dev.var16);
    }

    #[test]
    fn parallel_and_partial_ranges_match_serial() {
        let ir = demo_graph();
        let n = 512;
        let layout = BitLayout::compile(&ir, 6, &roots(), None, &FuseConfig::default());
        let order = ir.topo_order().unwrap();

        let mut ref_dev = DeviceMemory::new(n, 6, 1, 0, 0);
        seed(&mut ref_dev, n);
        let mut s1 = vec![Scratch::new()];
        for _ in 0..3 {
            run_bitplane_cycle(&layout, &order, &mut ref_dev, &mut s1, 0, n, 1024, 256);
        }
        ref_dev.detach_bitplane();

        // Parallel workers over small blocks.
        let mut dev = DeviceMemory::new(n, 6, 1, 0, 0);
        seed(&mut dev, n);
        let mut s4: Vec<Scratch> = (0..4).map(|_| Scratch::new()).collect();
        for _ in 0..3 {
            run_bitplane_cycle(&layout, &order, &mut dev, &mut s4, 0, n, 64, 256);
        }
        dev.detach_bitplane();
        assert_eq!(dev.var8, ref_dev.var8);
        assert_eq!(dev.var16, ref_dev.var16);

        // Misaligned sub-range: run [37, 411) only; lanes outside must be
        // untouched.
        let mut base = DeviceMemory::new(n, 6, 1, 0, 0);
        seed(&mut base, n);
        let mut part = base.clone();
        let mut sp = vec![Scratch::new()];
        run_bitplane_cycle(&layout, &order, &mut part, &mut sp, 37, 411 - 37, 128, 256);
        part.detach_bitplane();
        let mut expect = base.clone();
        let mut se = Scratch::new();
        for k in &ir.kernels {
            for t in 37..411 {
                execute_kernel(k, &mut expect, &mut se, t, 1);
            }
        }
        assert_eq!(part.var8, expect.var8);
        assert_eq!(part.var16, expect.var16);
    }

    #[test]
    fn attach_detach_round_trips_and_shims_read_planes() {
        let ir = demo_graph();
        let n = 70;
        let layout = BitLayout::compile(&ir, 6, &roots(), None, &FuseConfig::default());
        let mut dev = DeviceMemory::new(n, 6, 1, 0, 0);
        seed(&mut dev, n);
        let before = dev.var8.clone();
        dev.attach_bitplane(&layout);
        // Transposed rows zeroed, shims still read the true values.
        for (t, &b) in before.iter().enumerate().take(n) {
            assert_eq!(dev.load(s8(0), t), b as u64 & 1);
        }
        // Poke through the shim, then detach and check the raw row.
        dev.store(s8(1), 3, 1);
        dev.store(s8(1), 4, 0);
        let canon = dev.var8_canonical();
        assert_eq!(canon[n + 3], 1);
        assert_eq!(canon[n + 4], 0);
        dev.detach_bitplane();
        assert_eq!(dev.var8[n + 3], 1);
        assert_eq!(dev.var8[n + 4], 0);
        assert_eq!(dev.var8[..n], before[..n]);
    }

    #[test]
    fn wide_store_demotes_slot() {
        // Slot 0 stored width-1 in one kernel, width-4 in another → not
        // transposable.
        let k0 = Kernel::new(
            "a",
            vec![
                Op::Const { dst: 0, value: 1 },
                Op::Store {
                    src: 0,
                    slot: s8(0),
                    width: 1,
                },
            ],
        );
        let k1 = Kernel::new(
            "b",
            vec![
                Op::Const { dst: 0, value: 5 },
                Op::Store {
                    src: 0,
                    slot: s8(0),
                    width: 4,
                },
            ],
        );
        let ir = TaskGraphIr {
            kernels: vec![k0, k1],
            deps: vec![vec![], vec![0]],
        };
        let layout = BitLayout::compile(&ir, 1, &[], None, &FuseConfig::default());
        assert_eq!(layout.num_planes(), 0);
        assert_eq!(layout.plane_of(0), None);
    }

    #[test]
    fn word_fed_bit_store_demotes_slot() {
        // res = (a + b) truncated to 1 bit via a width-1 store? No — the
        // store is width 1 but its src is a word-domain add at width 8,
        // so the slot must demote to stay bit-identical.
        let k = Kernel::new(
            "mix",
            vec![
                Op::Load {
                    dst: 0,
                    slot: s8(1),
                },
                Op::Load {
                    dst: 1,
                    slot: s8(2),
                },
                Op::Bin {
                    op: KBin::Add,
                    dst: 2,
                    a: 0,
                    b: 1,
                    width: 8,
                },
                Op::Store {
                    src: 2,
                    slot: s8(0),
                    width: 1,
                },
            ],
        );
        let ir = TaskGraphIr {
            kernels: vec![k],
            deps: vec![vec![]],
        };
        let layout = BitLayout::compile(&ir, 3, &[], None, &FuseConfig::default());
        assert_eq!(layout.plane_of(0), None);
    }

    #[test]
    fn reset_clears_planes() {
        let ir = demo_graph();
        let n = 64;
        let layout = BitLayout::compile(&ir, 6, &roots(), None, &FuseConfig::default());
        let mut dev = DeviceMemory::new(n, 6, 1, 0, 0);
        seed(&mut dev, n);
        dev.attach_bitplane(&layout);
        dev.store(s8(0), 5, 1);
        dev.reset();
        assert_eq!(dev.load(s8(0), 5), 0);
        dev.detach_bitplane();
        assert!(dev.var8.iter().all(|&v| v == 0));
    }

    #[test]
    fn bit_lane_pack_roundtrip() {
        for n in [0usize, 1, 63, 64, 65, 200] {
            let vals: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e37) >> 3).collect();
            let words = pack_bit_lanes(vals.iter().copied());
            assert_eq!(words.len(), n.div_ceil(64));
            let mut back = vec![u64::MAX; n];
            assert!(unpack_bit_lanes(&words, n, |i, b| back[i] = b));
            for (i, (&v, &b)) in vals.iter().zip(&back).enumerate() {
                assert_eq!(v & 1, b, "lane {i}");
            }
        }
    }

    #[test]
    fn bit_lane_unpack_rejects_short_input() {
        let words = pack_bit_lanes((0..64usize).map(|_| 1u64));
        let mut calls = 0;
        assert!(!unpack_bit_lanes(&words, 65, |_, _| calls += 1));
        assert_eq!(calls, 0);
    }

    #[test]
    fn bit_lane_pack_only_low_bit_matters() {
        let a = pack_bit_lanes([0u64, 1, 2, 3, 0xffff_fffe, 0xffff_ffff].into_iter());
        let b = pack_bit_lanes([0u64, 1, 0, 1, 0, 1].into_iter());
        assert_eq!(a, b);
    }
}
