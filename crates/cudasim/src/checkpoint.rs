//! Device-state checkpointing.
//!
//! Long regressions (500K cycles x 65536 stimulus in Table 2) want
//! save/resume: a checkpoint captures the full device memory — i.e. every
//! signal and memory word of every stimulus — in a compact binary image.

use crate::device::DeviceMemory;

const MAGIC: u32 = 0x52_54_4c_43; // "RTLC"
const VERSION: u32 = 1;

impl DeviceMemory {
    /// Serialize the complete device state.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48 + self.bytes());
        let push32 = |out: &mut Vec<u8>, v: u32| out.extend_from_slice(&v.to_le_bytes());
        let push64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        push32(&mut out, MAGIC);
        push32(&mut out, VERSION);
        push64(&mut out, self.n() as u64);
        push64(&mut out, self.var8.len() as u64);
        push64(&mut out, self.var16.len() as u64);
        push64(&mut out, self.var32.len() as u64);
        push64(&mut out, self.var64.len() as u64);
        out.extend_from_slice(&self.var8);
        for v in &self.var16 {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.var32 {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.var64 {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Restore a snapshot into this device. The shape (batch size and
    /// bucket lengths, i.e. the memory plan) must match.
    pub fn restore(&mut self, data: &[u8]) -> Result<(), String> {
        let rd32 = |data: &[u8], at: usize| -> Result<u32, String> {
            data.get(at..at + 4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                .ok_or_else(|| "truncated checkpoint".to_string())
        };
        let rd64 = |data: &[u8], at: usize| -> Result<u64, String> {
            data.get(at..at + 8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                .ok_or_else(|| "truncated checkpoint".to_string())
        };
        if rd32(data, 0)? != MAGIC {
            return Err("bad checkpoint magic".into());
        }
        if rd32(data, 4)? != VERSION {
            return Err("unsupported checkpoint version".into());
        }
        let n = rd64(data, 8)? as usize;
        let l8 = rd64(data, 16)? as usize;
        let l16 = rd64(data, 24)? as usize;
        let l32 = rd64(data, 32)? as usize;
        let l64 = rd64(data, 40)? as usize;
        if n != self.n()
            || l8 != self.var8.len()
            || l16 != self.var16.len()
            || l32 != self.var32.len()
            || l64 != self.var64.len()
        {
            return Err(format!(
                "checkpoint shape mismatch: snapshot n={n}/{l8}/{l16}/{l32}/{l64}, device n={}/{}/{}/{}/{}",
                self.n(),
                self.var8.len(),
                self.var16.len(),
                self.var32.len(),
                self.var64.len()
            ));
        }
        let expect = 48 + l8 + l16 * 2 + l32 * 4 + l64 * 8;
        if data.len() != expect {
            return Err(format!(
                "checkpoint length {} != expected {expect}",
                data.len()
            ));
        }
        let mut at = 48;
        self.var8.copy_from_slice(&data[at..at + l8]);
        at += l8;
        for v in self.var16.iter_mut() {
            *v = u16::from_le_bytes(data[at..at + 2].try_into().unwrap());
            at += 2;
        }
        for v in self.var32.iter_mut() {
            *v = u32::from_le_bytes(data[at..at + 4].try_into().unwrap());
            at += 4;
        }
        for v in self.var64.iter_mut() {
            *v = u64::from_le_bytes(data[at..at + 8].try_into().unwrap());
            at += 8;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Bucket, Slot};

    fn scrambled() -> DeviceMemory {
        let mut dev = DeviceMemory::new(3, 2, 2, 1, 1);
        for t in 0..3 {
            dev.store(
                Slot {
                    bucket: Bucket::B8,
                    offset: 0,
                },
                t,
                t as u64 + 1,
            );
            dev.store(
                Slot {
                    bucket: Bucket::B16,
                    offset: 1,
                },
                t,
                0x1234 + t as u64,
            );
            dev.store(
                Slot {
                    bucket: Bucket::B32,
                    offset: 0,
                },
                t,
                0xdead_0000 + t as u64,
            );
            dev.store(
                Slot {
                    bucket: Bucket::B64,
                    offset: 0,
                },
                t,
                u64::MAX - t as u64,
            );
        }
        dev
    }

    #[test]
    fn snapshot_roundtrip() {
        let dev = scrambled();
        let snap = dev.snapshot();
        let mut fresh = DeviceMemory::new(3, 2, 2, 1, 1);
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.var8, dev.var8);
        assert_eq!(fresh.var16, dev.var16);
        assert_eq!(fresh.var32, dev.var32);
        assert_eq!(fresh.var64, dev.var64);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let dev = scrambled();
        let snap = dev.snapshot();
        let mut other = DeviceMemory::new(4, 2, 2, 1, 1);
        let err = other.restore(&snap).unwrap_err();
        assert!(err.contains("shape mismatch"), "{err}");
    }

    #[test]
    fn corruption_rejected() {
        let dev = scrambled();
        let mut snap = dev.snapshot();
        snap[0] ^= 0xff;
        let mut fresh = DeviceMemory::new(3, 2, 2, 1, 1);
        assert!(fresh.restore(&snap).is_err());
        // Truncation.
        let snap2 = dev.snapshot();
        assert!(fresh.restore(&snap2[..snap2.len() - 1]).is_err());
    }
}
