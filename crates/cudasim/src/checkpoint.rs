//! Device-state checkpointing.
//!
//! Long regressions (500K cycles x 65536 stimulus in Table 2) want
//! save/resume: a checkpoint captures the full device memory — every
//! signal and memory word of every stimulus — in a compact,
//! self-describing binary image. Version 2 of the format adds the
//! metadata a distributed resume needs (design hash, cycle index,
//! stimulus-range origin) and an end-to-end FNV-1a checksum, and the
//! decoder follows the RFLC wire discipline: structured errors, bounds
//! checks before every read, never a panic on hostile bytes.
//!
//! Image layout (all little-endian):
//!
//! ```text
//! off  len  field
//!   0    4  magic          "RTLC" (0x52544c43)
//!   4    4  version        2
//!   8    8  design_hash    rtlir::design_hash of the design being run
//!  16    8  cycle          cycles fully completed (resume starts here)
//!  24    8  tid0           first global stimulus id of the range
//!  32    8  n              stimulus count (DeviceMemory batch size)
//!  40   32  l8/l16/l32/l64 bucket lengths (elements, u64 each)
//!  72    –  payload        var8 raw, then var16/var32/var64 as LE words
//! end-8  8  checksum       FNV-1a-64 over every preceding byte
//! ```

use std::error::Error;
use std::fmt;

use crate::device::DeviceMemory;

const MAGIC: u32 = 0x52_54_4c_43; // "RTLC"
const VERSION: u32 = 2;
const HEADER: usize = 72;

/// Why a checkpoint image was rejected. Mirrors `cluster::WireError`'s
/// style: every arm carries enough context to log without re-decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The image ends before a field or the payload it promises.
    Truncated { context: &'static str },
    /// The first four bytes are not "RTLC".
    BadMagic(u32),
    /// A version this decoder does not speak (v1 images predate the
    /// checksum and are deliberately not accepted).
    BadVersion(u32),
    /// The image's shape (n / bucket lengths) does not match the device
    /// it is being restored into.
    ShapeMismatch { image: [u64; 5], device: [u64; 5] },
    /// Header and payload parsed but the trailing FNV-1a digest does not
    /// match: a bit flipped somewhere in transit or at rest.
    BadChecksum { expect: u64, got: u64 },
    /// Bytes remain after the checksum — the image was concatenated or
    /// padded with garbage.
    TrailingGarbage { extra: usize },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated { context } => {
                write!(f, "truncated checkpoint while reading {context}")
            }
            CheckpointError::BadMagic(m) => write!(f, "bad checkpoint magic {m:#010x}"),
            CheckpointError::BadVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::ShapeMismatch { image, device } => write!(
                f,
                "checkpoint shape mismatch: image n/l8/l16/l32/l64 = {image:?}, device = {device:?}"
            ),
            CheckpointError::BadChecksum { expect, got } => {
                write!(
                    f,
                    "checkpoint checksum mismatch: stored {expect:#018x}, computed {got:#018x}"
                )
            }
            CheckpointError::TrailingGarbage { extra } => {
                write!(f, "{extra} trailing bytes after checkpoint checksum")
            }
        }
    }
}

impl Error for CheckpointError {}

/// FNV-1a 64-bit over a byte slice — the same cheap, dependency-free
/// digest the autotune artifact cache uses for at-rest integrity.
fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// A decoded (or captured) device-state image plus the metadata that
/// makes it resumable: which design, how far it got, which stimulus
/// range it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// `rtlir::design_hash` of the design the state belongs to.
    pub design_hash: u64,
    /// Cycles fully completed when the snapshot was taken; a resume
    /// continues from exactly this cycle.
    pub cycle: u64,
    /// First global stimulus id of the captured range.
    pub tid0: u64,
    n: usize,
    var8: Vec<u8>,
    var16: Vec<u16>,
    var32: Vec<u32>,
    var64: Vec<u64>,
}

impl Checkpoint {
    /// Capture the full state of `dev` together with resume metadata.
    /// The `var8` bucket is captured in canonical form (any attached
    /// bit-transposed planes folded back into their rows), so images are
    /// independent of the execution layout that produced them.
    pub fn capture(dev: &DeviceMemory, design_hash: u64, cycle: u64, tid0: u64) -> Self {
        Checkpoint {
            design_hash,
            cycle,
            tid0,
            n: dev.n(),
            var8: dev.var8_canonical(),
            var16: dev.var16.clone(),
            var32: dev.var32.clone(),
            var64: dev.var64.clone(),
        }
    }

    /// Stimulus count (batch size) of the captured state.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Serialized image size in bytes.
    pub fn encoded_len(&self) -> usize {
        HEADER
            + self.var8.len()
            + self.var16.len() * 2
            + self.var32.len() * 4
            + self.var64.len() * 8
            + 8
    }

    /// Serialize to the v2 image format (header, payload, checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.design_hash.to_le_bytes());
        out.extend_from_slice(&self.cycle.to_le_bytes());
        out.extend_from_slice(&self.tid0.to_le_bytes());
        out.extend_from_slice(&(self.n as u64).to_le_bytes());
        out.extend_from_slice(&(self.var8.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.var16.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.var32.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.var64.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.var8);
        for v in &self.var16 {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.var32 {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.var64 {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decode an image. Total over arbitrary input: every malformed,
    /// truncated, or corrupted byte sequence returns an error; nothing
    /// panics and nothing is allocated beyond what the (validated)
    /// length fields account for in the input actually present.
    pub fn decode(data: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let rd32 = |at: usize, context: &'static str| -> Result<u32, CheckpointError> {
            data.get(at..at + 4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                .ok_or(CheckpointError::Truncated { context })
        };
        let rd64 = |at: usize, context: &'static str| -> Result<u64, CheckpointError> {
            data.get(at..at + 8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                .ok_or(CheckpointError::Truncated { context })
        };
        let magic = rd32(0, "magic")?;
        if magic != MAGIC {
            return Err(CheckpointError::BadMagic(magic));
        }
        let version = rd32(4, "version")?;
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let design_hash = rd64(8, "design hash")?;
        let cycle = rd64(16, "cycle")?;
        let tid0 = rd64(24, "tid0")?;
        let n = rd64(32, "n")?;
        let l8 = rd64(40, "l8")?;
        let l16 = rd64(48, "l16")?;
        let l32 = rd64(56, "l32")?;
        let l64 = rd64(64, "l64")?;
        // Compute the promised total with saturating arithmetic so a
        // hostile length field cannot overflow into a small number.
        let payload = (l8 as u128) + (l16 as u128) * 2 + (l32 as u128) * 4 + (l64 as u128) * 8;
        let total = HEADER as u128 + payload + 8;
        if (data.len() as u128) < total {
            return Err(CheckpointError::Truncated { context: "payload" });
        }
        let total = total as usize;
        if data.len() > total {
            return Err(CheckpointError::TrailingGarbage {
                extra: data.len() - total,
            });
        }
        let stored = rd64(total - 8, "checksum")?;
        let computed = fnv1a64(&data[..total - 8]);
        if stored != computed {
            return Err(CheckpointError::BadChecksum {
                expect: stored,
                got: computed,
            });
        }
        let mut at = HEADER;
        let var8 = data[at..at + l8 as usize].to_vec();
        at += l8 as usize;
        let mut var16 = Vec::with_capacity(l16 as usize);
        for _ in 0..l16 {
            var16.push(u16::from_le_bytes(data[at..at + 2].try_into().unwrap()));
            at += 2;
        }
        let mut var32 = Vec::with_capacity(l32 as usize);
        for _ in 0..l32 {
            var32.push(u32::from_le_bytes(data[at..at + 4].try_into().unwrap()));
            at += 4;
        }
        let mut var64 = Vec::with_capacity(l64 as usize);
        for _ in 0..l64 {
            var64.push(u64::from_le_bytes(data[at..at + 8].try_into().unwrap()));
            at += 8;
        }
        Ok(Checkpoint {
            design_hash,
            cycle,
            tid0,
            n: n as usize,
            var8,
            var16,
            var32,
            var64,
        })
    }

    /// Copy the captured state into `dev`. The device's shape (batch
    /// size and bucket lengths, i.e. the memory plan) must match.
    pub fn restore_into(&self, dev: &mut DeviceMemory) -> Result<(), CheckpointError> {
        let image = [
            self.n as u64,
            self.var8.len() as u64,
            self.var16.len() as u64,
            self.var32.len() as u64,
            self.var64.len() as u64,
        ];
        let device = [
            dev.n() as u64,
            dev.var8.len() as u64,
            dev.var16.len() as u64,
            dev.var32.len() as u64,
            dev.var64.len() as u64,
        ];
        if image != device {
            return Err(CheckpointError::ShapeMismatch { image, device });
        }
        dev.var8.copy_from_slice(&self.var8);
        dev.var16.copy_from_slice(&self.var16);
        dev.var32.copy_from_slice(&self.var32);
        dev.var64.copy_from_slice(&self.var64);
        // Images are canonical: if the device has a bit-transposed region
        // attached, re-pack its planes from the rows just written.
        dev.resync_bitplane();
        Ok(())
    }
}

impl DeviceMemory {
    /// Serialize the complete device state as a metadata-free image
    /// (design hash / cycle / tid0 all zero). Callers that resume across
    /// machines should use [`Checkpoint::capture`] instead.
    pub fn snapshot(&self) -> Vec<u8> {
        Checkpoint::capture(self, 0, 0, 0).encode()
    }

    /// Restore a snapshot into this device. The shape (batch size and
    /// bucket lengths, i.e. the memory plan) must match.
    pub fn restore(&mut self, data: &[u8]) -> Result<(), CheckpointError> {
        Checkpoint::decode(data)?.restore_into(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Bucket, Slot};

    fn scrambled() -> DeviceMemory {
        let mut dev = DeviceMemory::new(3, 2, 2, 1, 1);
        for t in 0..3 {
            dev.store(
                Slot {
                    bucket: Bucket::B8,
                    offset: 0,
                },
                t,
                t as u64 + 1,
            );
            dev.store(
                Slot {
                    bucket: Bucket::B16,
                    offset: 1,
                },
                t,
                0x1234 + t as u64,
            );
            dev.store(
                Slot {
                    bucket: Bucket::B32,
                    offset: 0,
                },
                t,
                0xdead_0000 + t as u64,
            );
            dev.store(
                Slot {
                    bucket: Bucket::B64,
                    offset: 0,
                },
                t,
                u64::MAX - t as u64,
            );
        }
        dev
    }

    #[test]
    fn snapshot_roundtrip() {
        let dev = scrambled();
        let snap = dev.snapshot();
        let mut fresh = DeviceMemory::new(3, 2, 2, 1, 1);
        fresh.restore(&snap).unwrap();
        assert_eq!(fresh.var8, dev.var8);
        assert_eq!(fresh.var16, dev.var16);
        assert_eq!(fresh.var32, dev.var32);
        assert_eq!(fresh.var64, dev.var64);
    }

    #[test]
    fn capture_is_canonical_with_bitplane_attached() {
        use crate::bitplane::BitLayout;
        use crate::fuse::FuseConfig;
        use crate::ir::{Kernel, Op, TaskGraphIr};

        // A 1-bit cone over var8 slot 0 makes it transposable.
        let k = Kernel::new(
            "k",
            vec![
                Op::Load {
                    dst: 0,
                    slot: Slot {
                        bucket: Bucket::B8,
                        offset: 0,
                    },
                },
                Op::Un {
                    op: crate::ir::KUn::Not,
                    dst: 1,
                    a: 0,
                    width: 1,
                },
                Op::Store {
                    src: 1,
                    slot: Slot {
                        bucket: Bucket::B8,
                        offset: 0,
                    },
                    width: 1,
                },
            ],
        );
        let ir = TaskGraphIr {
            kernels: vec![k],
            deps: vec![vec![]],
        };
        let roots = [(
            Slot {
                bucket: Bucket::B8,
                offset: 0,
            },
            1u32,
        )];
        let layout = BitLayout::compile(&ir, 2, &roots, None, &FuseConfig::default());
        assert_eq!(layout.num_planes(), 1);

        let mut raw = scrambled();
        for t in 0..3 {
            raw.store(
                Slot {
                    bucket: Bucket::B8,
                    offset: 0,
                },
                t,
                (t as u64) & 1,
            );
        }
        let mut attached = raw.clone();
        attached.attach_bitplane(&layout);

        // Same canonical image from either layout.
        let ck_raw = Checkpoint::capture(&raw, 1, 2, 0);
        let ck_att = Checkpoint::capture(&attached, 1, 2, 0);
        assert_eq!(ck_raw, ck_att);

        // Restoring into an attached device re-syncs the planes.
        let mut target = raw.clone();
        target.attach_bitplane(&layout);
        target.store(
            Slot {
                bucket: Bucket::B8,
                offset: 0,
            },
            0,
            1,
        );
        ck_raw.restore_into(&mut target).unwrap();
        for t in 0..3 {
            assert_eq!(
                target.load(
                    Slot {
                        bucket: Bucket::B8,
                        offset: 0
                    },
                    t
                ),
                (t as u64) & 1
            );
        }
        target.detach_bitplane();
        assert_eq!(target.var8, raw.var8);
    }

    #[test]
    fn metadata_roundtrip() {
        let dev = scrambled();
        let ck = Checkpoint::capture(&dev, 0xfeed_beef, 12_345, 512);
        let back = Checkpoint::decode(&ck.encode()).unwrap();
        assert_eq!(back, ck);
        assert_eq!(back.design_hash, 0xfeed_beef);
        assert_eq!(back.cycle, 12_345);
        assert_eq!(back.tid0, 512);
        assert_eq!(back.n(), 3);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let dev = scrambled();
        let snap = dev.snapshot();
        let mut other = DeviceMemory::new(4, 2, 2, 1, 1);
        match other.restore(&snap) {
            Err(CheckpointError::ShapeMismatch { image, device }) => {
                assert_eq!(image[0], 3);
                assert_eq!(device[0], 4);
            }
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let dev = scrambled();
        let mut snap = dev.snapshot();
        snap[0] ^= 0xff;
        assert!(matches!(
            Checkpoint::decode(&snap),
            Err(CheckpointError::BadMagic(_))
        ));
        let mut snap = dev.snapshot();
        snap[4] = 1; // a v1 image: predates the checksum, refused.
        assert!(matches!(
            Checkpoint::decode(&snap),
            Err(CheckpointError::BadVersion(1))
        ));
    }

    #[test]
    fn payload_bit_flip_fails_checksum() {
        let dev = scrambled();
        let mut snap = dev.snapshot();
        let mid = HEADER + 3;
        snap[mid] ^= 0x40;
        assert!(matches!(
            Checkpoint::decode(&snap),
            Err(CheckpointError::BadChecksum { .. })
        ));
    }

    #[test]
    fn truncation_and_garbage_rejected() {
        let dev = scrambled();
        let snap = dev.snapshot();
        let mut fresh = DeviceMemory::new(3, 2, 2, 1, 1);
        assert!(matches!(
            fresh.restore(&snap[..snap.len() - 1]),
            Err(CheckpointError::Truncated { .. })
        ));
        let mut padded = snap.clone();
        padded.push(0);
        assert!(matches!(
            Checkpoint::decode(&padded),
            Err(CheckpointError::TrailingGarbage { extra: 1 })
        ));
    }

    #[test]
    fn hostile_lengths_do_not_overflow() {
        let dev = scrambled();
        let mut snap = dev.snapshot();
        // Poke l64 (offset 64) to u64::MAX: the promised total must not
        // wrap around into something small.
        snap[64..72].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Checkpoint::decode(&snap),
            Err(CheckpointError::Truncated { .. })
        ));
    }
}
