//! `cudasim` — a functional + timed model of a CUDA GPU, standing in for
//! the RTX A6000 the paper runs on.
//!
//! The model has two faces:
//!
//! * **Functional**: [`ir::Kernel`]s are straight-line SIMT programs over
//!   the paper's width-bucketed global arrays (`var8/var16/var32/var64`,
//!   §3.1.2), laid out `array[offset * N + tid]` (§3.1.3). The
//!   [`device::DeviceMemory`] executor runs every op across a range of
//!   threads (one thread = one stimulus), bit-exactly.
//! * **Timed**: [`model::GpuModel`] converts a kernel's static op counts
//!   into block execution times on a virtual A6000 (SM pool, int32
//!   throughput, DRAM bandwidth with a coalescing factor), and charges the
//!   CUDA call overheads that Table 4 is about: per-kernel stream
//!   launches, event waits, and whole-graph launches.
//!
//! [`graph::CudaGraph`] is the define-once-run-repeatedly execution model
//! (§3.2.2); [`graph::StreamExec`] is the stream/event baseline
//! implementing the capture algorithm of [23, 24] (level-ordered,
//! round-robin over a fixed number of streams).

pub mod bitplane;
pub mod checkpoint;
pub mod device;
pub mod exec;
pub mod fuse;
pub mod graph;
pub mod ir;
pub mod model;

pub use bitplane::{
    pack_bit_lanes, run_bitplane_cycle, unpack_bit_lanes, BOp, BitLayout, BitProgram,
    BitplaneMemory, EscapeRead,
};
pub use checkpoint::{Checkpoint, CheckpointError};
pub use device::{execute_kernel, DeviceMemory, Scratch};
pub use exec::{
    execute_fused, execute_ordered, execute_ordered_parallel, ExecConfig, ExecSpecError,
    ExecStrategy, DEFAULT_BLOCK, DEFAULT_LANE_CHUNK,
};
pub use fuse::{
    fuse_graph, fuse_graph_with, fuse_kernel, fuse_kernel_with, ExecStats, FOp, FuseConfig,
    FuseStats, FusedKernel, SlotUniform,
};
pub use graph::{CudaGraph, CycleTiming, ExecMode, GpuRuntime, StreamExec};
pub use ir::{Bucket, KBin, KUn, Kernel, KernelStats, Op, Slot, TaskGraphIr};
pub use model::{GpuModel, LaunchCosts};
