//! CUDA Graph and stream/event execution models (§3.2.2).
//!
//! Both modes execute the same kernels bit-exactly; they differ only in
//! the modeled launch overheads:
//!
//! * [`ExecMode::Stream`] — the state-of-the-art capture algorithm of
//!   [23, 24]: kernels are levelized and issued round-robin over a fixed
//!   number of streams, with events expressing cross-stream dependencies.
//!   Every kernel pays a CPU launch call, every cross-stream edge an
//!   event, *every cycle*.
//! * [`ExecMode::Graph`] — define-once-run-repeatedly CUDA Graph: one
//!   instantiation, then a single CPU launch per cycle with a small
//!   amortized per-node scheduling cost on the device.

use desim::{Resource, Time, Trace};

use crate::bitplane::{run_bitplane_cycle, BitLayout};
use crate::device::{execute_kernel, DeviceMemory, Scratch};
use crate::exec::{execute_ordered, execute_ordered_parallel, ExecConfig, ExecStrategy};
use crate::fuse::{fuse_graph, ExecStats, FuseStats, FusedKernel, SlotUniform};
use crate::ir::TaskGraphIr;
use crate::model::GpuModel;

/// How a cycle's task graph is offloaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Stream/event execution over `streams` CUDA streams.
    Stream { streams: usize },
    /// Instantiated CUDA Graph execution.
    Graph,
}

/// An instantiated CUDA graph: a validated task graph plus its
/// preprocessed launch order and levelization.
#[derive(Debug, Clone)]
pub struct CudaGraph {
    pub ir: TaskGraphIr,
    /// Topological launch order.
    pub order: Vec<usize>,
    /// Level (longest dependency chain) of each kernel.
    pub levels: Vec<u32>,
    /// One-time instantiation cost charged to the CPU.
    pub instantiate_ns: Time,
    /// Fused programs, indexed like `ir.kernels` — built once here
    /// (CUDA-Graph capture time), executed every cycle.
    pub fused: Vec<FusedKernel>,
    /// Uniform-slot analysis the fusion was specialized against.
    pub uniform: Option<SlotUniform>,
    /// Bit-transposed layout for the [`ExecStrategy::BitPlane`] strategy
    /// (`None` falls back to vectorized execution under that strategy).
    pub bit: Option<BitLayout>,
}

impl CudaGraph {
    /// Validate and instantiate a task graph (no uniform-slot analysis —
    /// every load is treated as per-lane data).
    pub fn instantiate(ir: TaskGraphIr, model: &GpuModel) -> Result<CudaGraph, String> {
        CudaGraph::instantiate_with(ir, model, None)
    }

    /// Validate and instantiate, specializing the fused programs against
    /// a uniform-slot analysis (see [`SlotUniform::analyze`]).
    pub fn instantiate_with(
        ir: TaskGraphIr,
        model: &GpuModel,
        uniform: Option<SlotUniform>,
    ) -> Result<CudaGraph, String> {
        CudaGraph::instantiate_full(ir, model, uniform, None)
    }

    /// Validate and instantiate with both analyses: the uniform-slot
    /// specialization and (optionally) a precompiled bit-transposed
    /// layout for [`ExecStrategy::BitPlane`].
    pub fn instantiate_full(
        ir: TaskGraphIr,
        model: &GpuModel,
        uniform: Option<SlotUniform>,
        bit: Option<BitLayout>,
    ) -> Result<CudaGraph, String> {
        let order = ir.topo_order()?;
        for k in &ir.kernels {
            k.validate()?;
        }
        let levels = ir.levels();
        let instantiate_ns = ir.kernels.len() as Time * model.launch.graph_instantiate_node_ns;
        let fused = fuse_graph(&ir, uniform.as_ref());
        Ok(CudaGraph {
            ir,
            order,
            levels,
            instantiate_ns,
            fused,
            uniform,
            bit,
        })
    }

    /// Re-instantiate the same task graph against another GPU model,
    /// preserving the uniform-slot analysis and bit layout (used when a
    /// shard migrates a graph onto a different device).
    pub fn reinstantiate(&self, model: &GpuModel) -> Result<CudaGraph, String> {
        CudaGraph::instantiate_full(
            self.ir.clone(),
            model,
            self.uniform.clone(),
            self.bit.clone(),
        )
    }

    /// Aggregate fusion + uniform statistics for the metrics path.
    /// `scalar_ops_per_cycle` is a runtime quantity, filled by callers
    /// that track executed cycles (e.g. [`GpuRuntime::exec_stats`]).
    pub fn static_exec_stats(&self) -> ExecStats {
        let mut fuse = FuseStats::default();
        for fk in &self.fused {
            fuse.accumulate(&fk.stats);
        }
        let (uniform_slots, total_slots) = self
            .uniform
            .as_ref()
            .map(|u| (u.uniform_count() as u64, u.total_count() as u64))
            .unwrap_or((0, 0));
        ExecStats {
            fuse,
            uniform_slots,
            total_slots,
            scalar_ops_per_cycle: 0.0,
        }
    }

    /// Number of kernels.
    pub fn len(&self) -> usize {
        self.ir.kernels.len()
    }

    /// `true` when the graph has no kernels.
    pub fn is_empty(&self) -> bool {
        self.ir.kernels.is_empty()
    }
}

/// Timing outcome of one launched cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleTiming {
    /// When the launching CPU thread becomes free again.
    pub cpu_end: Time,
    /// When the last kernel of the cycle completes on the GPU.
    pub gpu_end: Time,
}

/// The device runtime: persists the SM pool across cycles so GPU
/// occupancy and utilization emerge from block scheduling.
pub struct GpuRuntime {
    pub model: GpuModel,
    sm: Resource,
    /// Functional-execution strategy (scalar / vectorized / parallel).
    pub exec: ExecConfig,
    /// Per-worker scratch pool for block-parallel execution.
    par_scratch: Vec<Scratch>,
    /// Functional cycles executed (for per-cycle stats).
    cycles: u64,
    /// Ops computed once as scalars instead of per lane, summed.
    scalar_ops: u64,
}

/// A micro-executor for stream-mode bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct StreamExec {
    /// Completion time of the last kernel issued to each stream.
    pub stream_free: Vec<Time>,
}

impl GpuRuntime {
    pub fn new(model: GpuModel) -> Self {
        GpuRuntime::with_exec(model, ExecConfig::default())
    }

    /// Build a runtime with an explicit functional-execution strategy.
    pub fn with_exec(model: GpuModel, exec: ExecConfig) -> Self {
        let sm = Resource::new("gpu", model.sms);
        let par_scratch = (0..exec.thread_count()).map(|_| Scratch::new()).collect();
        GpuRuntime {
            model,
            sm,
            exec,
            par_scratch,
            cycles: 0,
            scalar_ops: 0,
        }
    }

    /// Reset the virtual GPU clock (e.g. between benchmark scenarios).
    pub fn reset(&mut self) {
        self.sm.reset();
    }

    /// Fusion/uniform stats plus the measured scalar-op rate of this
    /// runtime's executed cycles.
    pub fn exec_stats(&self, graph: &CudaGraph) -> ExecStats {
        let mut st = graph.static_exec_stats();
        if self.cycles > 0 {
            st.scalar_ops_per_cycle = self.scalar_ops as f64 / self.cycles as f64;
        }
        st
    }

    /// Functionally execute + time one cycle of `graph` for stimulus
    /// threads `[tid0, tid0+group)`, with the launch becoming possible at
    /// `ready` (after `set_inputs` finished for this group).
    #[allow(clippy::too_many_arguments)]
    pub fn run_cycle(
        &mut self,
        graph: &CudaGraph,
        mode: ExecMode,
        dev: &mut DeviceMemory,
        scratch: &mut Scratch,
        tid0: usize,
        group: usize,
        ready: Time,
        trace: Option<&mut Trace>,
    ) -> CycleTiming {
        // Functional execution (identical for both modes and all
        // strategies — bit-exactness is enforced by differential tests),
        // then timing.
        match self.exec.strategy {
            ExecStrategy::Scalar => {
                for &k in &graph.order {
                    execute_kernel(&graph.ir.kernels[k], dev, scratch, tid0, group);
                }
            }
            ExecStrategy::Vectorized => {
                execute_ordered(
                    &graph.fused,
                    &graph.order,
                    dev,
                    scratch,
                    tid0,
                    group,
                    self.exec.lane_chunk,
                );
                self.scalar_ops += std::mem::take(&mut scratch.scalar_ops);
            }
            ExecStrategy::BlockParallel { block, .. } => {
                execute_ordered_parallel(
                    &graph.fused,
                    &graph.order,
                    dev,
                    &mut self.par_scratch,
                    tid0,
                    group,
                    block,
                    self.exec.lane_chunk,
                );
                for s in &mut self.par_scratch {
                    self.scalar_ops += std::mem::take(&mut s.scalar_ops);
                }
            }
            ExecStrategy::BitPlane { block, .. } => match &graph.bit {
                Some(bit) => {
                    run_bitplane_cycle(
                        bit,
                        &graph.order,
                        dev,
                        &mut self.par_scratch,
                        tid0,
                        group,
                        block,
                        self.exec.lane_chunk,
                    );
                    for s in &mut self.par_scratch {
                        self.scalar_ops += std::mem::take(&mut s.scalar_ops);
                    }
                }
                None => {
                    // No layout was compiled for this graph: run the
                    // vectorized engine, which is bit-identical.
                    execute_ordered(
                        &graph.fused,
                        &graph.order,
                        dev,
                        scratch,
                        tid0,
                        group,
                        self.exec.lane_chunk,
                    );
                    self.scalar_ops += std::mem::take(&mut scratch.scalar_ops);
                }
            },
        }
        self.cycles += 1;
        self.time_cycle(graph, mode, group, ready, trace)
    }

    /// Timing-only variant of [`GpuRuntime::run_cycle`]: advances the
    /// virtual clocks without touching device memory. Modeled time is
    /// independent of signal values, so this is exact for extrapolation.
    pub fn time_cycle(
        &mut self,
        graph: &CudaGraph,
        mode: ExecMode,
        group: usize,
        ready: Time,
        mut trace: Option<&mut Trace>,
    ) -> CycleTiming {
        let n = graph.len();
        let mut end = vec![0 as Time; n];
        match mode {
            ExecMode::Graph => {
                let cpu_end = ready + self.model.launch.graph_launch_ns;
                for &k in &graph.order {
                    let dep_ready = graph.ir.deps[k].iter().map(|&p| end[p]).max().unwrap_or(0);
                    let kready = cpu_end.max(dep_ready) + self.model.launch.graph_node_ns;
                    end[k] = self.schedule_kernel(graph, k, group, kready, trace.as_deref_mut());
                }
                let gpu_end = end.iter().copied().max().unwrap_or(cpu_end);
                CycleTiming { cpu_end, gpu_end }
            }
            ExecMode::Stream { streams } => {
                let streams = streams.max(1);
                let mut stream_free = vec![ready; streams];
                let mut stream_of = vec![0usize; n];
                let mut cpu_now = ready;
                // Issue kernels level by level, round-robin across streams
                // — the capture algorithm that maximizes concurrency.
                let mut by_level: Vec<Vec<usize>> = Vec::new();
                for &k in &graph.order {
                    let l = graph.levels[k] as usize;
                    if by_level.len() <= l {
                        by_level.resize(l + 1, Vec::new());
                    }
                    by_level[l].push(k);
                }
                let mut rr = 0usize;
                for level in &by_level {
                    for &k in level {
                        let s = rr % streams;
                        rr += 1;
                        stream_of[k] = s;
                        // CPU: event waits for cross-stream deps + the launch.
                        let cross = graph.ir.deps[k]
                            .iter()
                            .filter(|&&p| stream_of[p] != s)
                            .count() as Time;
                        cpu_now +=
                            cross * self.model.launch.event_ns + self.model.launch.stream_kernel_ns;
                        let dep_ready = graph.ir.deps[k]
                            .iter()
                            .map(|&p| {
                                let e = end[p];
                                if stream_of[p] != s {
                                    e + self.model.launch.event_ns
                                } else {
                                    e
                                }
                            })
                            .max()
                            .unwrap_or(0);
                        let kready = cpu_now.max(dep_ready).max(stream_free[s]);
                        end[k] =
                            self.schedule_kernel(graph, k, group, kready, trace.as_deref_mut());
                        stream_free[s] = end[k];
                    }
                }
                let gpu_end = end.iter().copied().max().unwrap_or(cpu_now);
                CycleTiming {
                    cpu_end: cpu_now,
                    gpu_end,
                }
            }
        }
    }

    /// Place one kernel's blocks on the SM pool; returns its end time.
    fn schedule_kernel(
        &mut self,
        graph: &CudaGraph,
        k: usize,
        group: usize,
        ready: Time,
        trace: Option<&mut Trace>,
    ) -> Time {
        let stats = &graph.ir.kernels[k].stats;
        let blocks = self.model.blocks_for(group);
        let block_time = self.model.block_time(stats);
        // Bound heap traffic: schedule at most `sms` slot-tasks, each
        // carrying a whole wave-chain of blocks.
        let slots = blocks.min(self.model.sms);
        let per_slot = blocks.div_ceil(slots) as Time * block_time;
        let per_slot = per_slot.max(self.model.launch.min_kernel_ns);
        let mut start = Time::MAX;
        let mut endmax = 0;
        for _ in 0..slots {
            let (s, e) = self.sm.schedule(ready, per_slot);
            start = start.min(s);
            endmax = endmax.max(e);
        }
        if let Some(tr) = trace {
            tr.record("gpu", start, endmax, &graph.ir.kernels[k].name);
        }
        endmax
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Bucket, KBin, Kernel, Op, Slot};

    fn slot(offset: u32) -> Slot {
        Slot {
            bucket: Bucket::B32,
            offset,
        }
    }

    /// kernel: var32[out] = var32[a] + var32[b]
    fn add_kernel(name: &str, a: u32, b: u32, out: u32) -> Kernel {
        Kernel::new(
            name,
            vec![
                Op::Load {
                    dst: 0,
                    slot: slot(a),
                },
                Op::Load {
                    dst: 1,
                    slot: slot(b),
                },
                Op::Bin {
                    op: KBin::Add,
                    dst: 2,
                    a: 0,
                    b: 1,
                    width: 32,
                },
                Op::Store {
                    src: 2,
                    slot: slot(out),
                    width: 32,
                },
            ],
        )
    }

    fn diamond() -> TaskGraphIr {
        // k0: s2 = s0+s1 ; k1: s3 = s2+s0 ; k2: s4 = s2+s1 ; k3: s5 = s3+s4
        TaskGraphIr {
            kernels: vec![
                add_kernel("k0", 0, 1, 2),
                add_kernel("k1", 2, 0, 3),
                add_kernel("k2", 2, 1, 4),
                add_kernel("k3", 3, 4, 5),
            ],
            deps: vec![vec![], vec![0], vec![0], vec![1, 2]],
        }
    }

    fn run(mode: ExecMode) -> (DeviceMemory, CycleTiming) {
        let model = GpuModel::default();
        let g = CudaGraph::instantiate(diamond(), &model).unwrap();
        let mut rt = GpuRuntime::new(model);
        let n = 16;
        let mut dev = DeviceMemory::new(n, 0, 0, 6, 0);
        for t in 0..n {
            dev.store(slot(0), t, t as u64);
            dev.store(slot(1), t, 100);
        }
        let mut scratch = Scratch::new();
        let t = rt.run_cycle(&g, mode, &mut dev, &mut scratch, 0, n, 0, None);
        (dev, t)
    }

    #[test]
    fn graph_and_stream_agree_functionally() {
        let (d1, _) = run(ExecMode::Graph);
        let (d2, _) = run(ExecMode::Stream { streams: 4 });
        for t in 0..16 {
            // s5 = (s0+s1)+s0 + (s0+s1)+s1
            let expect = (t + 100) + t + (t + 100) + 100;
            assert_eq!(d1.load(slot(5), t as usize), expect);
            assert_eq!(d2.load(slot(5), t as usize), expect);
        }
    }

    #[test]
    fn graph_mode_is_faster_than_streams() {
        let (_, tg) = run(ExecMode::Graph);
        let (_, ts) = run(ExecMode::Stream { streams: 4 });
        assert!(
            tg.gpu_end < ts.gpu_end,
            "graph {} should beat streams {}",
            tg.gpu_end,
            ts.gpu_end
        );
    }

    #[test]
    fn stream_cpu_cost_scales_with_kernels() {
        let model = GpuModel::default();
        let g = CudaGraph::instantiate(diamond(), &model).unwrap();
        let mut rt = GpuRuntime::new(model.clone());
        let mut dev = DeviceMemory::new(4, 0, 0, 6, 0);
        let mut scratch = Scratch::new();
        let ts = rt.run_cycle(
            &g,
            ExecMode::Stream { streams: 2 },
            &mut dev,
            &mut scratch,
            0,
            4,
            0,
            None,
        );
        // 4 kernel launches minimum on the CPU.
        assert!(ts.cpu_end >= 4 * model.launch.stream_kernel_ns);
        let mut rt2 = GpuRuntime::new(model.clone());
        let tg = rt2.run_cycle(&g, ExecMode::Graph, &mut dev, &mut scratch, 0, 4, 0, None);
        assert_eq!(tg.cpu_end, model.launch.graph_launch_ns);
    }

    #[test]
    fn ready_time_delays_everything() {
        let model = GpuModel::default();
        let g = CudaGraph::instantiate(diamond(), &model).unwrap();
        let mut rt = GpuRuntime::new(model);
        let mut dev = DeviceMemory::new(4, 0, 0, 6, 0);
        let mut scratch = Scratch::new();
        let t = rt.run_cycle(
            &g,
            ExecMode::Graph,
            &mut dev,
            &mut scratch,
            0,
            4,
            1_000_000,
            None,
        );
        assert!(t.cpu_end > 1_000_000);
        assert!(t.gpu_end > 1_000_000);
    }

    #[test]
    fn trace_records_kernels() {
        let model = GpuModel::default();
        let g = CudaGraph::instantiate(diamond(), &model).unwrap();
        let mut rt = GpuRuntime::new(model);
        let mut dev = DeviceMemory::new(4, 0, 0, 6, 0);
        let mut scratch = Scratch::new();
        let mut trace = Trace::new();
        rt.run_cycle(
            &g,
            ExecMode::Graph,
            &mut dev,
            &mut scratch,
            0,
            4,
            0,
            Some(&mut trace),
        );
        assert_eq!(trace.intervals("gpu").len(), 4);
    }

    #[test]
    fn instantiation_cost_scales_with_nodes() {
        let model = GpuModel::default();
        let g = CudaGraph::instantiate(diamond(), &model).unwrap();
        assert_eq!(g.instantiate_ns, 4 * model.launch.graph_instantiate_node_ns);
    }
}
