//! Vectorized and block-parallel execution of fused kernel programs.
//!
//! Three compounding layers over the scalar reference interpreter in
//! [`crate::device`]:
//!
//! * **Lane-chunked vectorized loops** — every (op, bucket) pair is
//!   monomorphized into a tight slice-to-slice sweep with bounds checks
//!   hoisted out (split borrows + `zip`), so rustc autovectorizes the
//!   inner loop exactly the way a coalesced CUDA kernel streams
//!   `array[offset * N + tid]`.
//! * **Uniform-slot specialization** — registers fed only by provably
//!   lane-invariant slots ([`crate::fuse::SlotUniform`]) and constants
//!   live in a scalar shadow file and are computed once per op, not once
//!   per lane; they are broadcast only on demotion to per-lane use.
//! * **Block-parallel execution** — the tid range is split into disjoint
//!   lane blocks executed on a scoped host-thread pool (one [`Scratch`]
//!   per worker, raw-pointer device access over provably disjoint lane
//!   sub-ranges).
//!
//! Bit-exactness versus [`crate::device::execute_kernel`] is enforced by
//! construction: every monomorphized arm calls [`apply_bin`]/[`apply_un`]
//! with a literal op so the compiler folds the dispatch *after* inlining
//! the reference semantics, and by the differential tests in
//! `tests/exec_equivalence.rs`.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::device::{apply_bin, apply_un, mask, DeviceMemory, Scratch};
use crate::fuse::{FOp, FusedKernel};
use crate::ir::{Bucket, KBin, KUn, Reg, Slot};

/// How the functional executor runs a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecStrategy {
    /// The scalar reference interpreter (pre-fusion semantics).
    Scalar,
    /// Fused + vectorized + uniform-specialized, single host thread.
    Vectorized,
    /// Vectorized execution over disjoint lane blocks on a host pool.
    /// `threads == 0` means "use available host parallelism".
    BlockParallel { threads: usize, block: usize },
    /// Bit-transposed execution ([`crate::bitplane`]): 1-bit slots live as
    /// planes of 64 lanes per word, the word remainder runs vectorized.
    /// `threads == 1` is serial; `0` means "use available parallelism";
    /// `block` is the parallel lane-block size (rounded to 64 lanes).
    BitPlane { threads: usize, block: usize },
}

/// Structured parse error for [`ExecConfig::parse`] specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecSpecError {
    /// The strategy head is not one of the known names.
    UnknownStrategy { token: String },
    /// A numeric field is empty, non-digit, or out of range.
    BadNumber { what: &'static str, token: String },
    /// Extra input after a complete, valid spec.
    TrailingInput { rest: String },
}

impl std::fmt::Display for ExecSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        const GRAMMAR: &str = "scalar|vector|par[:N[:block]]|bitpar[:N[:block]][@chunk]";
        match self {
            ExecSpecError::UnknownStrategy { token } => {
                write!(f, "unknown exec strategy `{token}` (expected {GRAMMAR})")
            }
            ExecSpecError::BadNumber { what, token } => {
                write!(f, "bad {what} `{token}` in exec spec (expected {GRAMMAR})")
            }
            ExecSpecError::TrailingInput { rest } => {
                write!(
                    f,
                    "trailing input `{rest}` after exec spec (expected {GRAMMAR})"
                )
            }
        }
    }
}

impl std::error::Error for ExecSpecError {}

/// Functional-execution configuration threaded through pipeline/shard/serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    pub strategy: ExecStrategy,
    /// Lanes swept per chunk of [`execute_ordered`] (cache-residency
    /// knob; see [`DEFAULT_LANE_CHUNK`]). `0` is treated as 1.
    pub lane_chunk: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            strategy: ExecStrategy::Vectorized,
            lane_chunk: DEFAULT_LANE_CHUNK,
        }
    }
}

impl ExecConfig {
    pub const fn scalar() -> Self {
        ExecConfig {
            strategy: ExecStrategy::Scalar,
            lane_chunk: DEFAULT_LANE_CHUNK,
        }
    }

    pub const fn vectorized() -> Self {
        ExecConfig {
            strategy: ExecStrategy::Vectorized,
            lane_chunk: DEFAULT_LANE_CHUNK,
        }
    }

    pub const fn parallel(threads: usize) -> Self {
        ExecConfig {
            strategy: ExecStrategy::BlockParallel {
                threads,
                block: DEFAULT_BLOCK,
            },
            lane_chunk: DEFAULT_LANE_CHUNK,
        }
    }

    /// Bit-transposed execution ([`crate::bitplane`]). `threads == 1` is
    /// the serial engine; `0` means "use available parallelism".
    pub const fn bitplane(threads: usize) -> Self {
        ExecConfig {
            strategy: ExecStrategy::BitPlane {
                threads,
                block: DEFAULT_BLOCK,
            },
            lane_chunk: DEFAULT_LANE_CHUNK,
        }
    }

    /// Same config with a different lane-chunk size.
    pub const fn with_lane_chunk(mut self, lane_chunk: usize) -> Self {
        self.lane_chunk = lane_chunk;
        self
    }

    /// Same config with a different parallel block size (no-op for the
    /// serial strategies).
    pub const fn with_block(mut self, block: usize) -> Self {
        match self.strategy {
            ExecStrategy::BlockParallel { threads, .. } => {
                self.strategy = ExecStrategy::BlockParallel { threads, block };
            }
            ExecStrategy::BitPlane { threads, .. } => {
                self.strategy = ExecStrategy::BitPlane { threads, block };
            }
            ExecStrategy::Scalar | ExecStrategy::Vectorized => {}
        }
        self
    }

    /// Parse a CLI spec: `scalar`, `vector`, `par[:threads[:block]]`, or
    /// `bitpar[:threads[:block]]`, each optionally suffixed with
    /// `@<lane_chunk>` (e.g. `vector@512`, `par:4:2048@128`, `bitpar:0`).
    /// The whole input must be consumed: trailing characters after a valid
    /// spec are a [`ExecSpecError::TrailingInput`]/[`ExecSpecError::BadNumber`].
    pub fn parse(s: &str) -> Result<ExecConfig, ExecSpecError> {
        // Digits only: `usize::from_str` also accepts a leading `+`,
        // which `spec()` never emits and the grammar does not allow.
        fn int(what: &'static str, tok: &str) -> Result<usize, ExecSpecError> {
            let bad = || ExecSpecError::BadNumber {
                what,
                token: tok.to_string(),
            };
            if tok.is_empty() || !tok.bytes().all(|b| b.is_ascii_digit()) {
                return Err(bad());
            }
            tok.parse().map_err(|_| bad())
        }

        let (base, chunk) = match s.split_once('@') {
            Some((b, c)) => (b, Some(int("lane-chunk", c)?.max(1))),
            None => (s, None),
        };
        let mut toks = base.split(':');
        let head = toks.next().unwrap_or("");
        let rest: Vec<&str> = toks.collect();
        let arity = match head {
            "scalar" | "vector" | "vectorized" => 0,
            "par" | "parallel" | "bitpar" => 2,
            _ => {
                return Err(ExecSpecError::UnknownStrategy {
                    token: head.to_string(),
                })
            }
        };
        if rest.len() > arity {
            return Err(ExecSpecError::TrailingInput {
                rest: rest[arity..].join(":"),
            });
        }
        let cfg = match head {
            "scalar" => ExecConfig::scalar(),
            "vector" | "vectorized" => ExecConfig::vectorized(),
            "par" | "parallel" | "bitpar" => {
                let default_threads = if head == "bitpar" { 1 } else { 0 };
                let threads = match rest.first() {
                    Some(t) => int("thread count", t)?,
                    None => default_threads,
                };
                let block = match rest.get(1) {
                    Some(b) => int("block size", b)?,
                    None => DEFAULT_BLOCK,
                };
                if head == "bitpar" {
                    ExecConfig::bitplane(threads).with_block(block)
                } else {
                    ExecConfig::parallel(threads).with_block(block)
                }
            }
            _ => unreachable!(),
        };
        Ok(match chunk {
            Some(c) => cfg.with_lane_chunk(c),
            None => cfg,
        })
    }

    /// Canonical spec string that [`ExecConfig::parse`] round-trips.
    pub fn spec(&self) -> String {
        let mut s = match self.strategy {
            ExecStrategy::Scalar => "scalar".to_string(),
            ExecStrategy::Vectorized => "vector".to_string(),
            ExecStrategy::BlockParallel { threads, block } => {
                if block == DEFAULT_BLOCK {
                    format!("par:{threads}")
                } else {
                    format!("par:{threads}:{block}")
                }
            }
            ExecStrategy::BitPlane { threads, block } => {
                if threads == 1 && block == DEFAULT_BLOCK {
                    "bitpar".to_string()
                } else if block == DEFAULT_BLOCK {
                    format!("bitpar:{threads}")
                } else {
                    format!("bitpar:{threads}:{block}")
                }
            }
        };
        if self.lane_chunk != DEFAULT_LANE_CHUNK {
            s.push_str(&format!("@{}", self.lane_chunk));
        }
        s
    }

    /// Worker-thread count this config wants (1 for serial strategies).
    pub fn thread_count(&self) -> usize {
        match self.strategy {
            ExecStrategy::Scalar | ExecStrategy::Vectorized => 1,
            ExecStrategy::BlockParallel { threads, .. }
            | ExecStrategy::BitPlane { threads, .. } => {
                if threads == 0 {
                    std::thread::available_parallelism().map_or(4, |n| n.get())
                } else {
                    threads
                }
            }
        }
    }
}

/// Lane block size for block-parallel execution: big enough to amortize
/// scratch sweeps, small enough to load-balance (a GPU thread block).
pub const DEFAULT_BLOCK: usize = 1024;

// ---------------------------------------------------------------------------
// Lane element abstraction over the four width buckets.

trait Lane: Copy {
    fn get(self) -> u64;
    fn put(v: u64) -> Self;
}

macro_rules! impl_lane {
    ($($t:ty),*) => {$(
        impl Lane for $t {
            #[inline(always)]
            fn get(self) -> u64 {
                self as u64
            }
            #[inline(always)]
            fn put(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}
impl_lane!(u8, u16, u32, u64);

/// Run `$body` with `$row` bound to the shared lane sub-slice of `$slot`.
macro_rules! with_row {
    ($dev:expr, $slot:expr, $tid0:expr, $group:expr, |$row:ident| $body:expr) => {{
        let base = $slot.offset as usize * $dev.n() + $tid0;
        match $slot.bucket {
            Bucket::B8 => {
                let $row = &$dev.var8[base..base + $group];
                $body
            }
            Bucket::B16 => {
                let $row = &$dev.var16[base..base + $group];
                $body
            }
            Bucket::B32 => {
                let $row = &$dev.var32[base..base + $group];
                $body
            }
            Bucket::B64 => {
                let $row = &$dev.var64[base..base + $group];
                $body
            }
        }
    }};
}

/// Mutable variant of [`with_row!`].
macro_rules! with_row_mut {
    ($dev:expr, $slot:expr, $tid0:expr, $group:expr, |$row:ident| $body:expr) => {{
        let base = $slot.offset as usize * $dev.n() + $tid0;
        match $slot.bucket {
            Bucket::B8 => {
                let $row = &mut $dev.var8[base..base + $group];
                $body
            }
            Bucket::B16 => {
                let $row = &mut $dev.var16[base..base + $group];
                $body
            }
            Bucket::B32 => {
                let $row = &mut $dev.var32[base..base + $group];
                $body
            }
            Bucket::B64 => {
                let $row = &mut $dev.var64[base..base + $group];
                $body
            }
        }
    }};
}

/// Whole-bucket variants for gather/scatter (per-lane indices).
macro_rules! with_bucket {
    ($dev:expr, $bucket:expr, |$arr:ident| $body:expr) => {
        match $bucket {
            Bucket::B8 => {
                let $arr = &$dev.var8[..];
                $body
            }
            Bucket::B16 => {
                let $arr = &$dev.var16[..];
                $body
            }
            Bucket::B32 => {
                let $arr = &$dev.var32[..];
                $body
            }
            Bucket::B64 => {
                let $arr = &$dev.var64[..];
                $body
            }
        }
    };
}

macro_rules! with_bucket_mut {
    ($dev:expr, $bucket:expr, |$arr:ident| $body:expr) => {
        match $bucket {
            Bucket::B8 => {
                let $arr = &mut $dev.var8[..];
                $body
            }
            Bucket::B16 => {
                let $arr = &mut $dev.var16[..];
                $body
            }
            Bucket::B32 => {
                let $arr = &mut $dev.var32[..];
                $body
            }
            Bucket::B64 => {
                let $arr = &mut $dev.var64[..];
                $body
            }
        }
    };
}

/// Monomorphize a runtime [`KBin`] into a literal for the macro `$arm`.
macro_rules! for_kbin {
    ($op:expr, $arm:ident) => {
        match $op {
            KBin::Add => $arm!(KBin::Add),
            KBin::Sub => $arm!(KBin::Sub),
            KBin::Mul => $arm!(KBin::Mul),
            KBin::Div => $arm!(KBin::Div),
            KBin::Rem => $arm!(KBin::Rem),
            KBin::And => $arm!(KBin::And),
            KBin::Or => $arm!(KBin::Or),
            KBin::Xor => $arm!(KBin::Xor),
            KBin::Xnor => $arm!(KBin::Xnor),
            KBin::Shl => $arm!(KBin::Shl),
            KBin::Shr => $arm!(KBin::Shr),
            KBin::Sshr => $arm!(KBin::Sshr),
            KBin::Eq => $arm!(KBin::Eq),
            KBin::Ne => $arm!(KBin::Ne),
            KBin::Ltu => $arm!(KBin::Ltu),
            KBin::Leu => $arm!(KBin::Leu),
            KBin::Gtu => $arm!(KBin::Gtu),
            KBin::Geu => $arm!(KBin::Geu),
            KBin::LAnd => $arm!(KBin::LAnd),
            KBin::LOr => $arm!(KBin::LOr),
        }
    };
}

macro_rules! for_kun {
    ($op:expr, $arm:ident) => {
        match $op {
            KUn::Not => $arm!(KUn::Not),
            KUn::Neg => $arm!(KUn::Neg),
            KUn::LNot => $arm!(KUn::LNot),
            KUn::RedAnd => $arm!(KUn::RedAnd),
            KUn::RedOr => $arm!(KUn::RedOr),
            KUn::RedXor => $arm!(KUn::RedXor),
        }
    };
}

// ---------------------------------------------------------------------------
// Scalar-register bookkeeping.

#[inline(always)]
fn sc(s: &Scratch, r: Reg) -> Option<u64> {
    if s.is_scalar[r as usize] {
        Some(s.sregs[r as usize])
    } else {
        None
    }
}

#[inline(always)]
fn set_scalar(s: &mut Scratch, r: Reg, v: u64) {
    s.sregs[r as usize] = v;
    s.is_scalar[r as usize] = true;
    s.scalar_ops += 1;
}

#[inline(always)]
fn clear_scalar(s: &mut Scratch, r: Reg) {
    s.is_scalar[r as usize] = false;
}

/// Demote a scalar register to per-lane storage (broadcast).
fn materialize(s: &mut Scratch, r: Reg) {
    if s.is_scalar[r as usize] {
        let v = s.sregs[r as usize];
        s.reg_mut(r).fill(v);
        s.is_scalar[r as usize] = false;
    }
}

/// Split-borrow one shared + one mutable register lane.
///
/// # Safety
/// Caller must guarantee `dst != a`.
unsafe fn two_regs(s: &mut Scratch, a: Reg, dst: Reg) -> (&[u64], &mut [u64]) {
    debug_assert!(dst != a);
    let g = s.group;
    let ptr = s.regs.as_mut_ptr();
    let av = std::slice::from_raw_parts(ptr.add(a as usize * g), g);
    let dv = std::slice::from_raw_parts_mut(ptr.add(dst as usize * g), g);
    (av, dv)
}

/// Split-borrow two shared + one mutable register lane.
///
/// # Safety
/// Caller must guarantee `dst != a && dst != b`.
unsafe fn three_regs(s: &mut Scratch, a: Reg, b: Reg, dst: Reg) -> (&[u64], &[u64], &mut [u64]) {
    debug_assert!(dst != a && dst != b);
    let g = s.group;
    let ptr = s.regs.as_mut_ptr();
    let av = std::slice::from_raw_parts(ptr.add(a as usize * g), g);
    let bv = std::slice::from_raw_parts(ptr.add(b as usize * g), g);
    let dv = std::slice::from_raw_parts_mut(ptr.add(dst as usize * g), g);
    (av, bv, dv)
}

/// Split-borrow three shared + one mutable register lane.
///
/// # Safety
/// Caller must guarantee `dst` differs from `c`, `a`, and `b`.
unsafe fn four_regs(
    s: &mut Scratch,
    c: Reg,
    a: Reg,
    b: Reg,
    dst: Reg,
) -> (&[u64], &[u64], &[u64], &mut [u64]) {
    debug_assert!(dst != c && dst != a && dst != b);
    let g = s.group;
    let ptr = s.regs.as_mut_ptr();
    let cv = std::slice::from_raw_parts(ptr.add(c as usize * g), g);
    let av = std::slice::from_raw_parts(ptr.add(a as usize * g), g);
    let bv = std::slice::from_raw_parts(ptr.add(b as usize * g), g);
    let dv = std::slice::from_raw_parts_mut(ptr.add(dst as usize * g), g);
    (cv, av, bv, dv)
}

// ---------------------------------------------------------------------------
// Generic row sweeps (monomorphized per bucket element type by the
// with_row!/with_row_mut! dispatch).

fn row_load<E: Lane>(row: &[E], out: &mut [u64]) {
    for (o, v) in out.iter_mut().zip(row) {
        *o = v.get();
    }
}

fn row_store<E: Lane>(row: &mut [E], src: &[u64], m: u64) {
    for (o, v) in row.iter_mut().zip(src) {
        *o = E::put(*v & m);
    }
}

fn row_fill<E: Lane>(row: &mut [E], v: u64) {
    row.fill(E::put(v));
}

// ---------------------------------------------------------------------------
// Vector op sweeps.

fn vbin(s: &mut Scratch, op: KBin, dst: Reg, a: Reg, b: Reg, w: u32, group: usize) {
    macro_rules! arm {
        ($o:expr) => {{
            if dst != a && dst != b {
                let (av, bv, dv) = unsafe { three_regs(s, a, b, dst) };
                for ((d, &x), &y) in dv.iter_mut().zip(av).zip(bv) {
                    *d = apply_bin($o, x, y, w);
                }
            } else {
                for t in 0..group {
                    let x = s.read_reg(a, t);
                    let y = s.read_reg(b, t);
                    s.reg_mut(dst)[t] = apply_bin($o, x, y, w);
                }
            }
        }};
    }
    for_kbin!(op, arm);
}

fn vbin_imm(s: &mut Scratch, op: KBin, dst: Reg, a: Reg, imm: u64, w: u32, swapped: bool) {
    macro_rules! arm {
        ($o:expr) => {{
            if dst != a {
                let (av, dv) = unsafe { two_regs(s, a, dst) };
                if swapped {
                    for (d, &x) in dv.iter_mut().zip(av) {
                        *d = apply_bin($o, imm, x, w);
                    }
                } else {
                    for (d, &x) in dv.iter_mut().zip(av) {
                        *d = apply_bin($o, x, imm, w);
                    }
                }
            } else {
                let dv = s.reg_mut(dst);
                if swapped {
                    for d in dv.iter_mut() {
                        *d = apply_bin($o, imm, *d, w);
                    }
                } else {
                    for d in dv.iter_mut() {
                        *d = apply_bin($o, *d, imm, w);
                    }
                }
            }
        }};
    }
    for_kbin!(op, arm);
}

fn vun(s: &mut Scratch, op: KUn, dst: Reg, a: Reg, w: u32) {
    macro_rules! arm {
        ($o:expr) => {{
            if dst != a {
                let (av, dv) = unsafe { two_regs(s, a, dst) };
                for (d, &x) in dv.iter_mut().zip(av) {
                    *d = apply_un($o, x, w);
                }
            } else {
                for d in s.reg_mut(dst).iter_mut() {
                    *d = apply_un($o, *d, w);
                }
            }
        }};
    }
    for_kun!(op, arm);
}

fn vmux(s: &mut Scratch, dst: Reg, cond: Reg, a: Reg, b: Reg, group: usize) {
    if dst != cond && dst != a && dst != b {
        let (cv, av, bv, dv) = unsafe { four_regs(s, cond, a, b, dst) };
        for (((d, &c), &x), &y) in dv.iter_mut().zip(cv).zip(av).zip(bv) {
            *d = if c != 0 { x } else { y };
        }
    } else {
        for t in 0..group {
            let c = s.read_reg(cond, t);
            let v = if c != 0 {
                s.read_reg(a, t)
            } else {
                s.read_reg(b, t)
            };
            s.reg_mut(dst)[t] = v;
        }
    }
}

/// `dst = row (op) other-reg` (row position per `swapped`).
fn vload_bin<E: Lane>(
    row: &[E],
    s: &mut Scratch,
    op: KBin,
    dst: Reg,
    b: Reg,
    w: u32,
    swapped: bool,
) {
    macro_rules! arm {
        ($o:expr) => {{
            if dst != b {
                let (bv, dv) = unsafe { two_regs(s, b, dst) };
                if swapped {
                    for ((d, &y), v) in dv.iter_mut().zip(bv).zip(row) {
                        *d = apply_bin($o, y, v.get(), w);
                    }
                } else {
                    for ((d, &y), v) in dv.iter_mut().zip(bv).zip(row) {
                        *d = apply_bin($o, v.get(), y, w);
                    }
                }
            } else {
                let dv = s.reg_mut(dst);
                if swapped {
                    for (d, v) in dv.iter_mut().zip(row) {
                        *d = apply_bin($o, *d, v.get(), w);
                    }
                } else {
                    for (d, v) in dv.iter_mut().zip(row) {
                        *d = apply_bin($o, v.get(), *d, w);
                    }
                }
            }
        }};
    }
    for_kbin!(op, arm);
}

/// `dst = row (op) imm` (operand order per `swapped`).
fn vload_bin_imm<E: Lane>(
    row: &[E],
    s: &mut Scratch,
    op: KBin,
    dst: Reg,
    imm: u64,
    w: u32,
    swapped: bool,
) {
    macro_rules! arm {
        ($o:expr) => {{
            let dv = s.reg_mut(dst);
            if swapped {
                for (d, v) in dv.iter_mut().zip(row) {
                    *d = apply_bin($o, imm, v.get(), w);
                }
            } else {
                for (d, v) in dv.iter_mut().zip(row) {
                    *d = apply_bin($o, v.get(), imm, w);
                }
            }
        }};
    }
    for_kbin!(op, arm);
}

/// `row = a (op) b` — the bin's own mask covers the store width.
fn vbin_store<E: Lane>(row: &mut [E], av: &[u64], bv: &[u64], op: KBin, w: u32) {
    macro_rules! arm {
        ($o:expr) => {
            for ((o, &x), &y) in row.iter_mut().zip(av).zip(bv) {
                *o = E::put(apply_bin($o, x, y, w));
            }
        };
    }
    for_kbin!(op, arm);
}

fn vbin_imm_store<E: Lane>(row: &mut [E], av: &[u64], op: KBin, imm: u64, w: u32, swapped: bool) {
    macro_rules! arm {
        ($o:expr) => {
            if swapped {
                for (o, &x) in row.iter_mut().zip(av) {
                    *o = E::put(apply_bin($o, imm, x, w));
                }
            } else {
                for (o, &x) in row.iter_mut().zip(av) {
                    *o = E::put(apply_bin($o, x, imm, w));
                }
            }
        };
    }
    for_kbin!(op, arm);
}

fn vun_store<E: Lane>(row: &mut [E], av: &[u64], op: KUn, w: u32) {
    macro_rules! arm {
        ($o:expr) => {
            for (o, &x) in row.iter_mut().zip(av) {
                *o = E::put(apply_un($o, x, w));
            }
        };
    }
    for_kun!(op, arm);
}

fn vmux_store<E: Lane>(row: &mut [E], cv: &[u64], av: &[u64], bv: &[u64], m: u64) {
    for (((o, &c), &x), &y) in row.iter_mut().zip(cv).zip(av).zip(bv) {
        *o = E::put(if c != 0 { x } else { y } & m);
    }
}

fn vmux_loads<EA: Lane, EB: Lane>(ra: &[EA], rb: &[EB], cv: &[u64], dv: &mut [u64]) {
    for (((d, &c), x), y) in dv.iter_mut().zip(cv).zip(ra).zip(rb) {
        *d = if c != 0 { x.get() } else { y.get() };
    }
}

#[allow(clippy::too_many_arguments)]
fn vgather<E: Lane>(
    arr: &[E],
    n: usize,
    offset: u32,
    depth: u32,
    tid0: usize,
    iv: &[u64],
    out: &mut [u64],
) {
    for (t, (o, &i)) in out.iter_mut().zip(iv).enumerate() {
        *o = if i < depth as u64 {
            arr[(offset as usize + i as usize) * n + tid0 + t].get()
        } else {
            0
        };
    }
}

#[allow(clippy::too_many_arguments)]
fn vscatter<E: Lane>(
    arr: &mut [E],
    n: usize,
    offset: u32,
    depth: u32,
    tid0: usize,
    iv: &[u64],
    pv: &[u64],
    sv: &[u64],
    m: u64,
) {
    for (t, ((&i, &p), &v)) in iv.iter().zip(pv).zip(sv).enumerate() {
        if p != 0 && i < depth as u64 {
            arr[(offset as usize + i as usize) * n + tid0 + t] = E::put(v & m);
        }
    }
}

// ---------------------------------------------------------------------------
// The fused-op interpreter.

/// Execute one fused kernel for threads `[tid0, tid0 + group)`.
pub fn execute_fused(
    fk: &FusedKernel,
    dev: &mut DeviceMemory,
    scratch: &mut Scratch,
    tid0: usize,
    group: usize,
) {
    debug_assert!(tid0 + group <= dev.n());
    scratch.ensure(fk.num_regs, group);
    for &f in &fk.fops {
        exec_fop(f, dev, scratch, tid0, group);
    }
}

fn exec_fop(f: FOp, dev: &mut DeviceMemory, s: &mut Scratch, tid0: usize, group: usize) {
    match f {
        FOp::Const { dst, value } => set_scalar(s, dst, value),
        FOp::Copy { dst, a } => match sc(s, a) {
            Some(v) => set_scalar(s, dst, v),
            None => {
                clear_scalar(s, dst);
                if dst != a {
                    let (av, dv) = unsafe { two_regs(s, a, dst) };
                    dv.copy_from_slice(av);
                }
            }
        },
        FOp::Load { dst, slot, uniform } => {
            if uniform {
                set_scalar(s, dst, dev.load(slot, tid0));
            } else {
                clear_scalar(s, dst);
                with_row!(dev, slot, tid0, group, |row| row_load(row, s.reg_mut(dst)));
            }
        }
        FOp::Store { src, slot, width } => {
            let m = mask(width);
            match sc(s, src) {
                Some(v) => {
                    s.scalar_ops += 1;
                    with_row_mut!(dev, slot, tid0, group, |row| row_fill(row, v & m));
                }
                None => with_row_mut!(dev, slot, tid0, group, |row| row_store(row, s.reg(src), m)),
            }
        }
        FOp::ConstStore { slot, value } => {
            s.scalar_ops += 1;
            with_row_mut!(dev, slot, tid0, group, |row| row_fill(row, value));
        }
        FOp::LoadIdx {
            dst,
            slot,
            idx,
            depth,
            uniform,
        } => {
            debug_assert!(
                slot.offset as usize + depth as usize <= dev.bucket_len(slot.bucket),
                "memory at {slot:?} depth {depth} exceeds allocated extent"
            );
            match sc(s, idx) {
                Some(i) => {
                    if i >= depth as u64 {
                        set_scalar(s, dst, 0);
                    } else {
                        let row = Slot {
                            bucket: slot.bucket,
                            offset: slot.offset + i as u32,
                        };
                        if uniform {
                            set_scalar(s, dst, dev.load(row, tid0));
                        } else {
                            clear_scalar(s, dst);
                            with_row!(dev, row, tid0, group, |r| row_load(r, s.reg_mut(dst)));
                        }
                    }
                }
                None => {
                    clear_scalar(s, dst);
                    let n = dev.n();
                    if dst != idx {
                        let (iv, dv) = unsafe { two_regs(s, idx, dst) };
                        with_bucket!(dev, slot.bucket, |arr| vgather(
                            arr,
                            n,
                            slot.offset,
                            depth,
                            tid0,
                            iv,
                            dv
                        ));
                    } else {
                        for t in 0..group {
                            let i = s.read_reg(idx, t);
                            let v = dev.load_idx(slot, tid0 + t, i, depth);
                            s.reg_mut(dst)[t] = v;
                        }
                    }
                }
            }
        }
        FOp::StoreIdxCond {
            src,
            slot,
            idx,
            depth,
            pred,
            width,
        } => {
            let m = mask(width);
            if let (Some(p), Some(i), Some(v)) = (sc(s, pred), sc(s, idx), sc(s, src)) {
                s.scalar_ops += 1;
                if p != 0 && i < depth as u64 {
                    let row = Slot {
                        bucket: slot.bucket,
                        offset: slot.offset + i as u32,
                    };
                    with_row_mut!(dev, row, tid0, group, |r| row_fill(r, v & m));
                }
            } else {
                materialize(s, pred);
                materialize(s, idx);
                materialize(s, src);
                let n = dev.n();
                let (iv, pv, sv) = (s.reg(idx), s.reg(pred), s.reg(src));
                with_bucket_mut!(dev, slot.bucket, |arr| vscatter(
                    arr,
                    n,
                    slot.offset,
                    depth,
                    tid0,
                    iv,
                    pv,
                    sv,
                    m
                ));
            }
        }
        FOp::Bin {
            op,
            dst,
            a,
            b,
            width,
        } => match (sc(s, a), sc(s, b)) {
            (Some(x), Some(y)) => set_scalar(s, dst, apply_bin(op, x, y, width)),
            (Some(x), None) => {
                clear_scalar(s, dst);
                vbin_imm(s, op, dst, b, x, width, true);
            }
            (None, Some(y)) => {
                clear_scalar(s, dst);
                vbin_imm(s, op, dst, a, y, width, false);
            }
            (None, None) => {
                clear_scalar(s, dst);
                vbin(s, op, dst, a, b, width, group);
            }
        },
        FOp::BinImm {
            op,
            dst,
            a,
            imm,
            width,
            swapped,
        } => match sc(s, a) {
            Some(x) => {
                let v = if swapped {
                    apply_bin(op, imm, x, width)
                } else {
                    apply_bin(op, x, imm, width)
                };
                set_scalar(s, dst, v);
            }
            None => {
                clear_scalar(s, dst);
                vbin_imm(s, op, dst, a, imm, width, swapped);
            }
        },
        FOp::Un { op, dst, a, width } => match sc(s, a) {
            Some(x) => set_scalar(s, dst, apply_un(op, x, width)),
            None => {
                clear_scalar(s, dst);
                vun(s, op, dst, a, width);
            }
        },
        FOp::Mux { dst, cond, a, b } => match sc(s, cond) {
            Some(c) => {
                let src = if c != 0 { a } else { b };
                exec_fop(FOp::Copy { dst, a: src }, dev, s, tid0, group);
            }
            None => {
                materialize(s, a);
                materialize(s, b);
                clear_scalar(s, dst);
                vmux(s, dst, cond, a, b, group);
            }
        },
        FOp::Extract {
            dst,
            a,
            shift,
            emask,
        } => match sc(s, a) {
            Some(x) => set_scalar(s, dst, (x >> shift) & emask),
            None => {
                clear_scalar(s, dst);
                if dst != a {
                    let (av, dv) = unsafe { two_regs(s, a, dst) };
                    for (d, &x) in dv.iter_mut().zip(av) {
                        *d = (x >> shift) & emask;
                    }
                } else {
                    for d in s.reg_mut(dst).iter_mut() {
                        *d = (*d >> shift) & emask;
                    }
                }
            }
        },
        FOp::LoadBin {
            op,
            dst,
            slot,
            b,
            width,
            swapped,
            uniform,
        } => {
            if uniform {
                let x = dev.load(slot, tid0);
                match sc(s, b) {
                    Some(y) => {
                        let v = if swapped {
                            apply_bin(op, y, x, width)
                        } else {
                            apply_bin(op, x, y, width)
                        };
                        set_scalar(s, dst, v);
                    }
                    None => {
                        // Row is the immediate now; flip `swapped` so the
                        // remaining register keeps its operand position.
                        clear_scalar(s, dst);
                        vbin_imm(s, op, dst, b, x, width, !swapped);
                    }
                }
            } else {
                match sc(s, b) {
                    Some(y) => {
                        clear_scalar(s, dst);
                        with_row!(dev, slot, tid0, group, |row| vload_bin_imm(
                            row, s, op, dst, y, width, swapped
                        ));
                    }
                    None => {
                        clear_scalar(s, dst);
                        with_row!(dev, slot, tid0, group, |row| vload_bin(
                            row, s, op, dst, b, width, swapped
                        ));
                    }
                }
            }
        }
        FOp::LoadBinImm {
            op,
            dst,
            slot,
            imm,
            width,
            swapped,
            uniform,
        } => {
            if uniform {
                let x = dev.load(slot, tid0);
                let v = if swapped {
                    apply_bin(op, imm, x, width)
                } else {
                    apply_bin(op, x, imm, width)
                };
                set_scalar(s, dst, v);
            } else {
                clear_scalar(s, dst);
                with_row!(dev, slot, tid0, group, |row| vload_bin_imm(
                    row, s, op, dst, imm, width, swapped
                ));
            }
        }
        FOp::BinStore {
            op,
            a,
            b,
            slot,
            width,
        } => match (sc(s, a), sc(s, b)) {
            (Some(x), Some(y)) => {
                s.scalar_ops += 1;
                let v = apply_bin(op, x, y, width);
                with_row_mut!(dev, slot, tid0, group, |row| row_fill(row, v));
            }
            (Some(x), None) => {
                let bv = s.reg(b);
                with_row_mut!(dev, slot, tid0, group, |row| vbin_imm_store(
                    row, bv, op, x, width, true
                ));
            }
            (None, Some(y)) => {
                let av = s.reg(a);
                with_row_mut!(dev, slot, tid0, group, |row| vbin_imm_store(
                    row, av, op, y, width, false
                ));
            }
            (None, None) => {
                let (av, bv) = (s.reg(a), s.reg(b));
                with_row_mut!(dev, slot, tid0, group, |row| vbin_store(
                    row, av, bv, op, width
                ));
            }
        },
        FOp::BinImmStore {
            op,
            a,
            imm,
            slot,
            width,
            swapped,
        } => match sc(s, a) {
            Some(x) => {
                s.scalar_ops += 1;
                let v = if swapped {
                    apply_bin(op, imm, x, width)
                } else {
                    apply_bin(op, x, imm, width)
                };
                with_row_mut!(dev, slot, tid0, group, |row| row_fill(row, v));
            }
            None => {
                let av = s.reg(a);
                with_row_mut!(dev, slot, tid0, group, |row| vbin_imm_store(
                    row, av, op, imm, width, swapped
                ));
            }
        },
        FOp::UnStore { op, a, slot, width } => match sc(s, a) {
            Some(x) => {
                s.scalar_ops += 1;
                let v = apply_un(op, x, width);
                with_row_mut!(dev, slot, tid0, group, |row| row_fill(row, v));
            }
            None => {
                let av = s.reg(a);
                with_row_mut!(dev, slot, tid0, group, |row| vun_store(row, av, op, width));
            }
        },
        FOp::MuxStore {
            cond,
            a,
            b,
            slot,
            width,
        } => {
            let m = mask(width);
            if let (Some(c), Some(x), Some(y)) = (sc(s, cond), sc(s, a), sc(s, b)) {
                s.scalar_ops += 1;
                let v = if c != 0 { x } else { y } & m;
                with_row_mut!(dev, slot, tid0, group, |row| row_fill(row, v));
            } else {
                materialize(s, cond);
                materialize(s, a);
                materialize(s, b);
                let (cv, av, bv) = (s.reg(cond), s.reg(a), s.reg(b));
                with_row_mut!(dev, slot, tid0, group, |row| vmux_store(row, cv, av, bv, m));
            }
        }
        FOp::MuxLoads {
            dst,
            cond,
            slot_a,
            slot_b,
            uniform_a,
            uniform_b,
        } => match sc(s, cond) {
            Some(c) => {
                let (slot, uniform) = if c != 0 {
                    (slot_a, uniform_a)
                } else {
                    (slot_b, uniform_b)
                };
                exec_fop(FOp::Load { dst, slot, uniform }, dev, s, tid0, group);
            }
            None => {
                clear_scalar(s, dst);
                if dst != cond {
                    let (cv, dv) = unsafe { two_regs(s, cond, dst) };
                    with_row!(dev, slot_a, tid0, group, |ra| with_row!(
                        dev,
                        slot_b,
                        tid0,
                        group,
                        |rb| vmux_loads(ra, rb, cv, dv)
                    ));
                } else {
                    for t in 0..group {
                        let c = s.read_reg(cond, t);
                        let v = if c != 0 {
                            dev.load(slot_a, tid0 + t)
                        } else {
                            dev.load(slot_b, tid0 + t)
                        };
                        s.reg_mut(dst)[t] = v;
                    }
                }
            }
        },
    }
}

// ---------------------------------------------------------------------------
// Whole-cycle drivers.

/// Execute fused kernels in `order` for one lane range (single thread).
pub fn execute_ordered(
    fused: &[FusedKernel],
    order: &[usize],
    dev: &mut DeviceMemory,
    scratch: &mut Scratch,
    tid0: usize,
    group: usize,
    lane_chunk: usize,
) {
    // Lane-chunked: the whole kernel sequence runs chunk-by-chunk so the
    // scratch register rows (8 B/lane) and the touched device rows stay
    // cache-resident across every fop of the cycle, instead of each fop
    // streaming the full lane range through the cache. Lanes are
    // independent, so any chunk order is bit-identical.
    let lane_chunk = lane_chunk.max(1);
    let end = tid0 + group;
    let mut t = tid0;
    while t < end {
        let g = lane_chunk.min(end - t);
        for &k in order {
            execute_fused(&fused[k], dev, scratch, t, g);
        }
        t += g;
    }
}

/// Default lanes swept per chunk of [`execute_ordered`]: 256 lanes keep a
/// u64 register row at 2 KB, so a kernel's whole register file sits in
/// L1/L2 while the chunk runs every fop of the cycle (measured fastest of
/// 256/512/1024 on the riscv-mini 8192-lane benchmark). The runtime value
/// lives in [`ExecConfig::lane_chunk`] so the autotuner can search it
/// per design/host.
pub const DEFAULT_LANE_CHUNK: usize = 256;

/// Raw device pointer that crosses the thread-pool boundary. Safe because
/// every worker touches a disjoint lane sub-range of each bucket row
/// (`offset * N + tid` with disjoint `tid` intervals never collide).
struct DevPtr(*mut DeviceMemory);
unsafe impl Send for DevPtr {}
unsafe impl Sync for DevPtr {}

/// Execute a full cycle (all kernels in `order`) block-parallel: the lane
/// range is cut into blocks of `block` lanes, claimed from an atomic
/// counter by `scratches.len()` scoped workers.
#[allow(clippy::too_many_arguments)]
pub fn execute_ordered_parallel(
    fused: &[FusedKernel],
    order: &[usize],
    dev: &mut DeviceMemory,
    scratches: &mut [Scratch],
    tid0: usize,
    group: usize,
    block: usize,
    lane_chunk: usize,
) {
    let block = block.max(1);
    let nblocks = group.div_ceil(block);
    let workers = scratches.len().min(nblocks).max(1);
    if workers <= 1 || group == 0 {
        execute_ordered(
            fused,
            order,
            dev,
            &mut scratches[0],
            tid0,
            group,
            lane_chunk,
        );
        return;
    }
    let next = AtomicUsize::new(0);
    let devp = DevPtr(dev as *mut DeviceMemory);
    let devp = &devp;
    let next = &next;
    std::thread::scope(|sc| {
        for scratch in scratches[..workers].iter_mut() {
            sc.spawn(move || loop {
                let bi = next.fetch_add(1, Ordering::Relaxed);
                if bi >= nblocks {
                    break;
                }
                let t0 = tid0 + bi * block;
                let g = block.min(tid0 + group - t0);
                // SAFETY: blocks are disjoint lane intervals; every op
                // accesses only its own lanes of each row.
                let dev = unsafe { &mut *devp.0 };
                execute_ordered(fused, order, dev, scratch, t0, g, lane_chunk);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::execute_kernel;
    use crate::fuse::fuse_kernel;
    use crate::ir::{Kernel, Op};

    fn s(bucket: Bucket, offset: u32) -> Slot {
        Slot { bucket, offset }
    }

    fn demo_kernel() -> Kernel {
        Kernel::new(
            "demo",
            vec![
                Op::Load {
                    dst: 0,
                    slot: s(Bucket::B16, 0),
                },
                Op::Const { dst: 1, value: 3 },
                Op::Bin {
                    op: KBin::Mul,
                    dst: 2,
                    a: 0,
                    b: 1,
                    width: 14,
                },
                Op::Load {
                    dst: 3,
                    slot: s(Bucket::B16, 1),
                },
                Op::Bin {
                    op: KBin::Xor,
                    dst: 4,
                    a: 2,
                    b: 3,
                    width: 14,
                },
                Op::Store {
                    src: 4,
                    slot: s(Bucket::B16, 2),
                    width: 14,
                },
            ],
        )
    }

    fn seed_dev(n: usize) -> DeviceMemory {
        let mut dev = DeviceMemory::new(n, 0, 3, 0, 0);
        for t in 0..n {
            dev.store(s(Bucket::B16, 0), t, (t as u64 * 7 + 1) & 0x3fff);
            dev.store(s(Bucket::B16, 1), t, (t as u64 * 13 + 5) & 0x3fff);
        }
        dev
    }

    #[test]
    fn fused_matches_scalar() {
        let n = 33;
        let k = demo_kernel();
        let fk = fuse_kernel(&k, None);
        let mut d1 = seed_dev(n);
        let mut d2 = seed_dev(n);
        execute_kernel(&k, &mut d1, &mut Scratch::new(), 0, n);
        execute_fused(&fk, &mut d2, &mut Scratch::new(), 0, n);
        assert_eq!(d1.var16, d2.var16);
    }

    #[test]
    fn parallel_matches_scalar() {
        let n = 257;
        let k = demo_kernel();
        let fk = fuse_kernel(&k, None);
        let mut d1 = seed_dev(n);
        let mut d2 = seed_dev(n);
        execute_kernel(&k, &mut d1, &mut Scratch::new(), 0, n);
        let mut pool: Vec<Scratch> = (0..3).map(|_| Scratch::new()).collect();
        execute_ordered_parallel(
            &[fk],
            &[0],
            &mut d2,
            &mut pool,
            0,
            n,
            64,
            DEFAULT_LANE_CHUNK,
        );
        assert_eq!(d1.var16, d2.var16);
    }

    #[test]
    fn exec_config_parse() {
        assert_eq!(ExecConfig::parse("scalar").unwrap(), ExecConfig::scalar());
        assert_eq!(
            ExecConfig::parse("vector").unwrap(),
            ExecConfig::vectorized()
        );
        assert_eq!(
            ExecConfig::parse("par:8").unwrap().strategy,
            ExecStrategy::BlockParallel {
                threads: 8,
                block: DEFAULT_BLOCK
            }
        );
        assert_eq!(
            ExecConfig::parse("bitpar").unwrap().strategy,
            ExecStrategy::BitPlane {
                threads: 1,
                block: DEFAULT_BLOCK
            }
        );
        assert_eq!(
            ExecConfig::parse("bitpar:0:2048").unwrap().strategy,
            ExecStrategy::BitPlane {
                threads: 0,
                block: 2048
            }
        );
        assert!(ExecConfig::parse("wat").is_err());
        assert!(ExecConfig::parse("vector@zero").is_err());
    }

    #[test]
    fn exec_config_parse_rejects_trailing_garbage() {
        assert_eq!(
            ExecConfig::parse("vector@1024junk"),
            Err(ExecSpecError::BadNumber {
                what: "lane-chunk",
                token: "1024junk".to_string()
            })
        );
        assert_eq!(
            ExecConfig::parse("scalar:3"),
            Err(ExecSpecError::TrailingInput {
                rest: "3".to_string()
            })
        );
        assert_eq!(
            ExecConfig::parse("par:4:1024:9"),
            Err(ExecSpecError::TrailingInput {
                rest: "9".to_string()
            })
        );
        assert_eq!(
            ExecConfig::parse("par:+4"),
            Err(ExecSpecError::BadNumber {
                what: "thread count",
                token: "+4".to_string()
            })
        );
        assert_eq!(
            ExecConfig::parse("bitpar:"),
            Err(ExecSpecError::BadNumber {
                what: "thread count",
                token: String::new()
            })
        );
        assert_eq!(
            ExecConfig::parse("warp"),
            Err(ExecSpecError::UnknownStrategy {
                token: "warp".to_string()
            })
        );
        // Errors render with the grammar hint for the CLI.
        let msg = ExecConfig::parse("vector@1024junk")
            .unwrap_err()
            .to_string();
        assert!(msg.contains("lane-chunk") && msg.contains("bitpar"));
    }

    #[test]
    fn exec_config_spec_round_trips() {
        for spec in [
            ExecConfig::scalar(),
            ExecConfig::vectorized(),
            ExecConfig::vectorized().with_lane_chunk(512),
            ExecConfig::parallel(4),
            ExecConfig::parallel(4).with_block(2048),
            ExecConfig::parallel(0).with_block(4096).with_lane_chunk(64),
            ExecConfig::bitplane(1),
            ExecConfig::bitplane(0),
            ExecConfig::bitplane(8).with_block(128),
            ExecConfig::bitplane(2).with_lane_chunk(64),
        ] {
            assert_eq!(ExecConfig::parse(&spec.spec()).unwrap(), spec);
        }
        assert_eq!(
            ExecConfig::parse("par:4:2048@128").unwrap(),
            ExecConfig::parallel(4)
                .with_block(2048)
                .with_lane_chunk(128)
        );
        assert_eq!(ExecConfig::bitplane(1).spec(), "bitpar");
    }
}
