//! Functional SIMT execution over the width-bucketed device memory.
//!
//! One GPU thread simulates one stimulus (§3.1). The executor runs each
//! op across a contiguous thread range before moving to the next op —
//! warp-synchronous semantics, with the op-outer/thread-inner loop shape
//! giving the host CPU the same streaming access pattern a coalesced GPU
//! kernel enjoys.

use crate::ir::{Bucket, KBin, KUn, Kernel, Op, Slot};

/// Mask with the low `width` bits set (width 1..=64).
#[inline(always)]
pub fn mask(width: u32) -> u64 {
    debug_assert!((1..=64).contains(&width));
    if width >= 64 {
        !0
    } else {
        (1u64 << width) - 1
    }
}

/// The device's global memory: four width-bucketed arrays, each holding
/// `len_i * N` elements (`N` = batch size), laid out `offset * N + tid`.
#[derive(Debug, Clone)]
pub struct DeviceMemory {
    n: usize,
    pub var8: Vec<u8>,
    pub var16: Vec<u16>,
    pub var32: Vec<u32>,
    pub var64: Vec<u64>,
    /// Optional bit-transposed region for 1-bit slots. While attached, the
    /// planes are authoritative for their slots and the matching `var8`
    /// rows are zero (see [`crate::bitplane`]); the single-element
    /// `load`/`store` shims below route through it transparently.
    pub(crate) bitplane: Option<Box<crate::bitplane::BitplaneMemory>>,
}

impl DeviceMemory {
    /// Allocate arrays for `n` stimulus with the given element counts per
    /// bucket (the transpiler's memory plan totals).
    pub fn new(n: usize, len8: u32, len16: u32, len32: u32, len64: u32) -> Self {
        DeviceMemory {
            n,
            var8: vec![0; len8 as usize * n],
            var16: vec![0; len16 as usize * n],
            var32: vec![0; len32 as usize * n],
            var64: vec![0; len64 as usize * n],
            bitplane: None,
        }
    }

    /// Batch size N.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total allocated bytes (GPU memory footprint).
    pub fn bytes(&self) -> usize {
        self.var8.len() + self.var16.len() * 2 + self.var32.len() * 4 + self.var64.len() * 8
    }

    /// Read one element.
    #[inline(always)]
    pub fn load(&self, slot: Slot, tid: usize) -> u64 {
        let i = slot.offset as usize * self.n + tid;
        match slot.bucket {
            Bucket::B8 => {
                if let Some(bp) = &self.bitplane {
                    if let Some(p) = bp.plane_for(slot.offset) {
                        return bp.get(p, tid);
                    }
                }
                self.var8[i] as u64
            }
            Bucket::B16 => self.var16[i] as u64,
            Bucket::B32 => self.var32[i] as u64,
            Bucket::B64 => self.var64[i],
        }
    }

    /// Write one element (truncating to the bucket element type).
    #[inline(always)]
    pub fn store(&mut self, slot: Slot, tid: usize, value: u64) {
        let i = slot.offset as usize * self.n + tid;
        match slot.bucket {
            Bucket::B8 => {
                if let Some(bp) = &mut self.bitplane {
                    if let Some(p) = bp.plane_for(slot.offset) {
                        bp.set(p, tid, value);
                        return;
                    }
                }
                self.var8[i] = value as u8;
            }
            Bucket::B16 => self.var16[i] = value as u16,
            Bucket::B32 => self.var32[i] = value as u32,
            Bucket::B64 => self.var64[i] = value,
        }
    }

    /// Elements allocated in `bucket` (per stimulus).
    #[inline(always)]
    pub fn bucket_len(&self, bucket: Bucket) -> usize {
        let total = match bucket {
            Bucket::B8 => self.var8.len(),
            Bucket::B16 => self.var16.len(),
            Bucket::B32 => self.var32.len(),
            Bucket::B64 => self.var64.len(),
        };
        total.checked_div(self.n).unwrap_or(0)
    }

    /// Read a memory word `mem[idx]` for a variable based at `slot`.
    #[inline(always)]
    pub fn load_idx(&self, slot: Slot, tid: usize, idx: u64, depth: u32) -> u64 {
        // An inconsistent memory plan would make an in-range `idx` read the
        // *next* variable's slots; catch that in debug builds.
        debug_assert!(
            slot.offset as usize + depth as usize <= self.bucket_len(slot.bucket),
            "memory at {slot:?} depth {depth} exceeds allocated extent {}",
            self.bucket_len(slot.bucket)
        );
        if idx >= depth as u64 {
            return 0;
        }
        self.load(
            Slot {
                bucket: slot.bucket,
                offset: slot.offset + idx as u32,
            },
            tid,
        )
    }
}

/// Reusable per-kernel register arena: register-major layout
/// `regs[r * group + t]` so each op's thread loop is a contiguous sweep.
///
/// The vectorized executor additionally keeps a scalar shadow file
/// (`sregs`/`is_scalar`): a register proven lane-invariant lives as one
/// `u64` and is broadcast into `regs` only on demotion to per-lane use.
#[derive(Debug, Default)]
pub struct Scratch {
    pub(crate) regs: Vec<u64>,
    pub(crate) group: usize,
    pub(crate) sregs: Vec<u64>,
    pub(crate) is_scalar: Vec<bool>,
    /// Ops executed once as scalars instead of per lane (uniform wins).
    pub scalar_ops: u64,
}

impl Scratch {
    pub fn new() -> Self {
        Scratch::default()
    }

    pub(crate) fn ensure(&mut self, num_regs: u16, group: usize) {
        let need = num_regs as usize * group;
        if self.regs.len() < need {
            self.regs.resize(need, 0);
        }
        if self.sregs.len() < num_regs as usize {
            self.sregs.resize(num_regs as usize, 0);
            self.is_scalar.resize(num_regs as usize, false);
        }
        self.group = group;
    }

    #[inline(always)]
    pub(crate) fn reg(&self, r: u16) -> &[u64] {
        &self.regs[r as usize * self.group..r as usize * self.group + self.group]
    }

    #[inline(always)]
    pub(crate) fn reg_mut(&mut self, r: u16) -> &mut [u64] {
        &mut self.regs[r as usize * self.group..r as usize * self.group + self.group]
    }

    /// Copy a register lane out (for tests/debug).
    pub fn read_reg(&self, r: u16, t: usize) -> u64 {
        self.regs[r as usize * self.group + t]
    }
}

/// Apply a binary op at a width. Division semantics match two-state
/// Verilog: `x/0 = all-ones`, `x%0 = 0`.
#[inline(always)]
pub fn apply_bin(op: KBin, a: u64, b: u64, width: u32) -> u64 {
    let m = mask(width);
    match op {
        KBin::Add => a.wrapping_add(b) & m,
        KBin::Sub => a.wrapping_sub(b) & m,
        KBin::Mul => a.wrapping_mul(b) & m,
        KBin::Div => a.checked_div(b).map_or(m, |q| q & m),
        KBin::Rem => {
            if b == 0 {
                0
            } else {
                (a % b) & m
            }
        }
        KBin::And => a & b,
        KBin::Or => a | b,
        KBin::Xor => a ^ b,
        KBin::Xnor => !(a ^ b) & m,
        KBin::Shl => {
            if b >= width as u64 {
                0
            } else {
                (a << b) & m
            }
        }
        KBin::Shr => {
            if b >= width as u64 {
                0
            } else {
                a >> b
            }
        }
        KBin::Sshr => {
            let sign = (a >> (width - 1)) & 1;
            if b >= width as u64 {
                if sign == 1 {
                    m
                } else {
                    0
                }
            } else {
                let shifted = a >> b;
                if sign == 1 && b > 0 {
                    let fill = m & !(m >> b);
                    shifted | fill
                } else {
                    shifted
                }
            }
        }
        KBin::Eq => (a == b) as u64,
        KBin::Ne => (a != b) as u64,
        KBin::Ltu => (a < b) as u64,
        KBin::Leu => (a <= b) as u64,
        KBin::Gtu => (a > b) as u64,
        KBin::Geu => (a >= b) as u64,
        KBin::LAnd => (a != 0 && b != 0) as u64,
        KBin::LOr => (a != 0 || b != 0) as u64,
    }
}

/// Apply a unary op at a width.
#[inline(always)]
pub fn apply_un(op: KUn, a: u64, width: u32) -> u64 {
    let m = mask(width);
    match op {
        KUn::Not => !a & m,
        KUn::Neg => a.wrapping_neg() & m,
        KUn::LNot => (a == 0) as u64,
        KUn::RedAnd => (a & m == m) as u64,
        KUn::RedOr => (a != 0) as u64,
        KUn::RedXor => (a.count_ones() & 1) as u64,
    }
}

/// Execute `kernel` for threads `[tid0, tid0 + group)`.
///
/// This is the heart of the functional GPU: op-outer, thread-inner.
pub fn execute_kernel(
    kernel: &Kernel,
    dev: &mut DeviceMemory,
    scratch: &mut Scratch,
    tid0: usize,
    group: usize,
) {
    debug_assert!(tid0 + group <= dev.n());
    scratch.ensure(kernel.num_regs, group);
    for op in &kernel.ops {
        match *op {
            Op::Const { dst, value } => {
                scratch.reg_mut(dst).fill(value);
            }
            Op::Load { dst, slot } => {
                let base = slot.offset as usize * dev.n + tid0;
                let out = scratch.reg_mut(dst);
                match slot.bucket {
                    Bucket::B8 => {
                        for (o, v) in out.iter_mut().zip(&dev.var8[base..base + group]) {
                            *o = *v as u64;
                        }
                    }
                    Bucket::B16 => {
                        for (o, v) in out.iter_mut().zip(&dev.var16[base..base + group]) {
                            *o = *v as u64;
                        }
                    }
                    Bucket::B32 => {
                        for (o, v) in out.iter_mut().zip(&dev.var32[base..base + group]) {
                            *o = *v as u64;
                        }
                    }
                    Bucket::B64 => {
                        out.copy_from_slice(&dev.var64[base..base + group]);
                    }
                }
            }
            Op::Store { src, slot, width } => {
                let m = mask(width);
                let base = slot.offset as usize * dev.n + tid0;
                let input = scratch.reg(src);
                match slot.bucket {
                    Bucket::B8 => {
                        for (o, v) in dev.var8[base..base + group].iter_mut().zip(input) {
                            *o = (*v & m) as u8;
                        }
                    }
                    Bucket::B16 => {
                        for (o, v) in dev.var16[base..base + group].iter_mut().zip(input) {
                            *o = (*v & m) as u16;
                        }
                    }
                    Bucket::B32 => {
                        for (o, v) in dev.var32[base..base + group].iter_mut().zip(input) {
                            *o = (*v & m) as u32;
                        }
                    }
                    Bucket::B64 => {
                        for (o, v) in dev.var64[base..base + group].iter_mut().zip(input) {
                            *o = *v & m;
                        }
                    }
                }
            }
            Op::LoadIdx {
                dst,
                slot,
                idx,
                depth,
            } => {
                // Gather: per-thread index — this is the uncoalesced path.
                for t in 0..group {
                    let i = scratch.read_reg(idx, t);
                    let v = dev.load_idx(slot, tid0 + t, i, depth);
                    scratch.reg_mut(dst)[t] = v;
                }
            }
            Op::StoreIdxCond {
                src,
                slot,
                idx,
                depth,
                pred,
                width,
            } => {
                let m = mask(width);
                for t in 0..group {
                    if scratch.read_reg(pred, t) != 0 {
                        let i = scratch.read_reg(idx, t);
                        if i < depth as u64 {
                            let v = scratch.read_reg(src, t) & m;
                            dev.store(
                                Slot {
                                    bucket: slot.bucket,
                                    offset: slot.offset + i as u32,
                                },
                                tid0 + t,
                                v,
                            );
                        }
                    }
                }
            }
            Op::Bin {
                op,
                dst,
                a,
                b,
                width,
            } => {
                if dst == a || dst == b {
                    for t in 0..group {
                        let va = scratch.read_reg(a, t);
                        let vb = scratch.read_reg(b, t);
                        scratch.reg_mut(dst)[t] = apply_bin(op, va, vb, width);
                    }
                } else {
                    // Disjoint registers: split borrows for a tight loop.
                    let (av, bv, dv) = unsafe { scratch.three_regs(a, b, dst) };
                    for t in 0..group {
                        dv[t] = apply_bin(op, av[t], bv[t], width);
                    }
                }
            }
            Op::Un { op, dst, a, width } => {
                for t in 0..group {
                    let va = scratch.read_reg(a, t);
                    scratch.reg_mut(dst)[t] = apply_un(op, va, width);
                }
            }
            Op::Mux { dst, cond, a, b } => {
                for t in 0..group {
                    let c = scratch.read_reg(cond, t);
                    let v = if c != 0 {
                        scratch.read_reg(a, t)
                    } else {
                        scratch.read_reg(b, t)
                    };
                    scratch.reg_mut(dst)[t] = v;
                }
            }
        }
    }
}

impl Scratch {
    /// Split-borrow three distinct register lanes: `a` and `b` shared,
    /// `dst` mutable.
    ///
    /// # Safety
    /// Caller must guarantee `dst != a && dst != b`.
    unsafe fn three_regs(&mut self, a: u16, b: u16, dst: u16) -> (&[u64], &[u64], &mut [u64]) {
        debug_assert!(dst != a && dst != b);
        let g = self.group;
        let ptr = self.regs.as_mut_ptr();
        let av = std::slice::from_raw_parts(ptr.add(a as usize * g), g);
        let bv = std::slice::from_raw_parts(ptr.add(b as usize * g), g);
        let dv = std::slice::from_raw_parts_mut(ptr.add(dst as usize * g), g);
        (av, bv, dv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Kernel, Slot};

    fn s(bucket: Bucket, offset: u32) -> Slot {
        Slot { bucket, offset }
    }

    #[test]
    fn add_kernel_across_threads() {
        let n = 8;
        let mut dev = DeviceMemory::new(n, 2, 0, 0, 0);
        for t in 0..n {
            dev.store(s(Bucket::B8, 0), t, t as u64);
        }
        let k = Kernel::new(
            "add1",
            vec![
                Op::Load {
                    dst: 0,
                    slot: s(Bucket::B8, 0),
                },
                Op::Const { dst: 1, value: 1 },
                Op::Bin {
                    op: KBin::Add,
                    dst: 2,
                    a: 0,
                    b: 1,
                    width: 8,
                },
                Op::Store {
                    src: 2,
                    slot: s(Bucket::B8, 1),
                    width: 8,
                },
            ],
        );
        let mut scratch = Scratch::new();
        execute_kernel(&k, &mut dev, &mut scratch, 0, n);
        for t in 0..n {
            assert_eq!(dev.load(s(Bucket::B8, 1), t), t as u64 + 1);
        }
    }

    #[test]
    fn partial_range_leaves_other_threads() {
        let n = 8;
        let mut dev = DeviceMemory::new(n, 1, 0, 0, 0);
        let k = Kernel::new(
            "one",
            vec![
                Op::Const { dst: 0, value: 7 },
                Op::Store {
                    src: 0,
                    slot: s(Bucket::B8, 0),
                    width: 8,
                },
            ],
        );
        let mut scratch = Scratch::new();
        execute_kernel(&k, &mut dev, &mut scratch, 2, 3);
        let vals: Vec<u64> = (0..n).map(|t| dev.load(s(Bucket::B8, 0), t)).collect();
        assert_eq!(vals, vec![0, 0, 7, 7, 7, 0, 0, 0]);
    }

    #[test]
    fn store_masks_to_width() {
        let mut dev = DeviceMemory::new(1, 0, 1, 0, 0);
        let k = Kernel::new(
            "mask",
            vec![
                Op::Const {
                    dst: 0,
                    value: 0xffff,
                },
                Op::Store {
                    src: 0,
                    slot: s(Bucket::B16, 0),
                    width: 14,
                },
            ],
        );
        execute_kernel(&k, &mut dev, &mut Scratch::new(), 0, 1);
        assert_eq!(dev.load(s(Bucket::B16, 0), 0), 0x3fff);
    }

    #[test]
    fn memory_gather_and_guarded_scatter() {
        let n = 4;
        // Memory of 4 words at offsets 0..4 in var32, plus idx at r-space.
        let mut dev = DeviceMemory::new(n, 0, 0, 4, 0);
        for t in 0..n {
            for w in 0..4 {
                dev.store(s(Bucket::B32, w), t, (w as u64) * 10 + t as u64);
            }
        }
        let k = Kernel::new(
            "mem",
            vec![
                Op::Const { dst: 0, value: 2 }, // idx = 2
                Op::LoadIdx {
                    dst: 1,
                    slot: s(Bucket::B32, 0),
                    idx: 0,
                    depth: 4,
                },
                Op::Const { dst: 2, value: 1 }, // pred
                Op::Const { dst: 3, value: 3 }, // idx = 3
                Op::StoreIdxCond {
                    src: 1,
                    slot: s(Bucket::B32, 0),
                    idx: 3,
                    depth: 4,
                    pred: 2,
                    width: 32,
                },
            ],
        );
        execute_kernel(&k, &mut dev, &mut Scratch::new(), 0, n);
        for t in 0..n {
            // mem[3] = mem[2]
            assert_eq!(dev.load(s(Bucket::B32, 3), t), 20 + t as u64);
        }
    }

    #[test]
    fn out_of_range_gather_returns_zero() {
        let mut dev = DeviceMemory::new(1, 0, 0, 2, 0);
        dev.store(s(Bucket::B32, 0), 0, 5);
        let k = Kernel::new(
            "oob",
            vec![
                Op::Const { dst: 0, value: 9 },
                Op::LoadIdx {
                    dst: 1,
                    slot: s(Bucket::B32, 0),
                    idx: 0,
                    depth: 2,
                },
                Op::Store {
                    src: 1,
                    slot: s(Bucket::B32, 1),
                    width: 32,
                },
            ],
        );
        execute_kernel(&k, &mut dev, &mut Scratch::new(), 0, 1);
        assert_eq!(dev.load(s(Bucket::B32, 1), 0), 0);
    }

    #[test]
    fn sshr_sign_fill() {
        assert_eq!(apply_bin(KBin::Sshr, 0b1000_0000, 3, 8), 0b1111_0000);
        assert_eq!(apply_bin(KBin::Sshr, 0b0100_0000, 3, 8), 0b0000_1000);
        assert_eq!(apply_bin(KBin::Sshr, 0x8000_0000, 31, 32), 0xffff_ffff);
        assert_eq!(apply_bin(KBin::Sshr, 0x8000_0000, 40, 32), 0xffff_ffff);
        assert_eq!(apply_bin(KBin::Sshr, 0x4000_0000, 40, 32), 0);
    }

    #[test]
    fn division_by_zero_semantics() {
        assert_eq!(apply_bin(KBin::Div, 42, 0, 8), 0xff);
        assert_eq!(apply_bin(KBin::Rem, 42, 0, 8), 0);
    }

    #[test]
    fn shifts_saturate() {
        assert_eq!(apply_bin(KBin::Shl, 1, 64, 32), 0);
        assert_eq!(apply_bin(KBin::Shr, 0xff, 64, 8), 0);
        assert_eq!(apply_bin(KBin::Shl, 1, 31, 32), 0x8000_0000);
    }

    #[test]
    fn reductions() {
        assert_eq!(apply_un(KUn::RedAnd, 0xff, 8), 1);
        assert_eq!(apply_un(KUn::RedAnd, 0x7f, 8), 0);
        assert_eq!(apply_un(KUn::RedXor, 0b0111, 4), 1);
        assert_eq!(apply_un(KUn::Neg, 1, 4), 0xf);
    }

    #[test]
    fn load_idx_within_extent_is_fine() {
        let dev = DeviceMemory::new(2, 0, 0, 4, 0);
        assert_eq!(dev.bucket_len(Bucket::B32), 4);
        // offset 1, depth 3 -> touches offsets 1..4, exactly in extent.
        assert_eq!(dev.load_idx(s(Bucket::B32, 1), 0, 2, 3), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "exceeds allocated extent")]
    fn load_idx_past_extent_asserts() {
        let dev = DeviceMemory::new(2, 0, 0, 4, 0);
        // offset 2, depth 4 -> would silently read the next variable's
        // slots at offsets 4..6; the debug assertion must catch it even
        // when `idx` itself is in range.
        dev.load_idx(s(Bucket::B32, 2), 0, 1, 4);
    }

    #[test]
    fn in_place_bin_aliasing_is_safe() {
        let mut dev = DeviceMemory::new(2, 1, 0, 0, 0);
        let k = Kernel::new(
            "alias",
            vec![
                Op::Const { dst: 0, value: 3 },
                Op::Bin {
                    op: KBin::Add,
                    dst: 0,
                    a: 0,
                    b: 0,
                    width: 8,
                }, // dst aliases srcs
                Op::Store {
                    src: 0,
                    slot: s(Bucket::B8, 0),
                    width: 8,
                },
            ],
        );
        execute_kernel(&k, &mut dev, &mut Scratch::new(), 0, 2);
        assert_eq!(dev.load(s(Bucket::B8, 0), 0), 6);
    }

    // -----------------------------------------------------------------
    // Bucket-boundary behavior: width-64 masks, load_idx extents, and
    // peek/poke truncation at each bucket's element type.

    #[test]
    fn mask_covers_full_width_range() {
        assert_eq!(mask(1), 1);
        assert_eq!(mask(8), 0xff);
        assert_eq!(mask(63), (1u64 << 63) - 1);
        // Width 64 must not overflow the shift: full mask.
        assert_eq!(mask(64), u64::MAX);
    }

    #[test]
    fn width64_ops_do_not_truncate() {
        let mut dev = DeviceMemory::new(2, 0, 0, 0, 2);
        let k = Kernel::new(
            "w64",
            vec![
                Op::Const {
                    dst: 0,
                    value: u64::MAX,
                },
                Op::Const { dst: 1, value: 1 },
                // MAX + 1 wraps to 0 at width 64; MAX - 1 keeps bit 63.
                Op::Bin {
                    op: KBin::Add,
                    dst: 2,
                    a: 0,
                    b: 1,
                    width: 64,
                },
                Op::Bin {
                    op: KBin::Sub,
                    dst: 3,
                    a: 0,
                    b: 1,
                    width: 64,
                },
                Op::Store {
                    src: 2,
                    slot: s(Bucket::B64, 0),
                    width: 64,
                },
                Op::Store {
                    src: 3,
                    slot: s(Bucket::B64, 1),
                    width: 64,
                },
            ],
        );
        execute_kernel(&k, &mut dev, &mut Scratch::new(), 0, 2);
        assert_eq!(dev.load(s(Bucket::B64, 0), 0), 0);
        assert_eq!(dev.load(s(Bucket::B64, 1), 0), u64::MAX - 1);
    }

    #[test]
    fn store_truncates_to_bucket_element() {
        let mut dev = DeviceMemory::new(1, 1, 1, 1, 1);
        // Host pokes truncate to the bucket element type, independent of
        // any op width: B8 keeps the low 8 bits, B16 the low 16, etc.
        dev.store(s(Bucket::B8, 0), 0, 0x1ff);
        assert_eq!(dev.load(s(Bucket::B8, 0), 0), 0xff);
        dev.store(s(Bucket::B16, 0), 0, 0xab_cdef);
        assert_eq!(dev.load(s(Bucket::B16, 0), 0), 0xcdef);
        dev.store(s(Bucket::B32, 0), 0, 0xdead_beef_0bad_f00d);
        assert_eq!(dev.load(s(Bucket::B32, 0), 0), 0x0bad_f00d);
        dev.store(s(Bucket::B64, 0), 0, u64::MAX);
        assert_eq!(dev.load(s(Bucket::B64, 0), 0), u64::MAX);
    }

    #[test]
    fn bucket_len_reports_per_stimulus_extents() {
        let dev = DeviceMemory::new(4, 3, 2, 1, 0);
        assert_eq!(dev.bucket_len(Bucket::B8), 3);
        assert_eq!(dev.bucket_len(Bucket::B16), 2);
        assert_eq!(dev.bucket_len(Bucket::B32), 1);
        assert_eq!(dev.bucket_len(Bucket::B64), 0);
    }

    #[test]
    fn load_idx_bounds_and_extent() {
        let mut dev = DeviceMemory::new(2, 4, 0, 0, 0);
        for i in 0..4 {
            dev.store(s(Bucket::B8, i), 1, 10 + i as u64);
        }
        // In-range reads index consecutive slots of the same lane.
        assert_eq!(dev.load_idx(s(Bucket::B8, 0), 1, 0, 4), 10);
        assert_eq!(dev.load_idx(s(Bucket::B8, 1), 1, 2, 3), 13);
        // Out-of-range indices read as zero (two-state X semantics),
        // including indices far beyond the array.
        assert_eq!(dev.load_idx(s(Bucket::B8, 0), 1, 4, 4), 0);
        assert_eq!(dev.load_idx(s(Bucket::B8, 0), 1, u64::MAX, 4), 0);
        // The final element of the declared extent is reachable.
        assert_eq!(dev.load_idx(s(Bucket::B8, 0), 1, 3, 4), 13);
    }

    #[test]
    #[should_panic(expected = "exceeds allocated extent")]
    #[cfg(debug_assertions)]
    fn load_idx_rejects_overdeclared_depth() {
        let dev = DeviceMemory::new(2, 4, 0, 0, 0);
        // Depth 5 from offset 0 overruns the 4-element B8 extent: an
        // inconsistent memory plan must be caught, not read neighbors.
        dev.load_idx(s(Bucket::B8, 0), 0, 1, 5);
    }
}
