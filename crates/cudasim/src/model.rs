//! Analytic timing model of the RTX A6000.
//!
//! Constants come from public A6000 specs (84 SMs, ~1.8 GHz boost,
//! 768 GB/s GDDR6) and from the CUDA call overheads the paper measures
//! around Figure 10 (multi-microsecond stream launches vs. a single graph
//! launch per cycle). The model is first-order on purpose: the
//! reproduction targets the *shape* of the results, and EXPERIMENTS.md
//! records every place where shape is compared against the paper.

use crate::ir::KernelStats;
use desim::Time;

/// CUDA call overheads (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchCosts {
    /// CPU time to launch one kernel into a stream (`cudaLaunchKernel`).
    pub stream_kernel_ns: u64,
    /// CPU time to record/wait one event (cross-stream dependency).
    pub event_ns: u64,
    /// CPU time to launch a whole instantiated CUDA graph.
    pub graph_launch_ns: u64,
    /// Amortized GPU-side scheduling overhead per node inside a graph.
    pub graph_node_ns: u64,
    /// One-time cost per node to instantiate a CUDA graph.
    pub graph_instantiate_node_ns: u64,
    /// Minimum wall time of any kernel, however tiny (driver + dispatch).
    pub min_kernel_ns: u64,
}

impl Default for LaunchCosts {
    fn default() -> Self {
        LaunchCosts {
            stream_kernel_ns: 20_000,
            event_ns: 6_000,
            graph_launch_ns: 8_000,
            graph_node_ns: 350,
            graph_instantiate_node_ns: 9_000,
            min_kernel_ns: 6_000,
        }
    }
}

/// The GPU device model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    /// Streaming multiprocessors.
    pub sms: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// INT32 lanes per SM (Ampere: 64).
    pub int_lanes_per_sm: u32,
    /// Peak DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Achievable fraction of peak bandwidth for coalesced access.
    pub coalesced_eff: f64,
    /// Fraction of coalesced traffic served by L1/L2 instead of DRAM.
    pub cache_hit: f64,
    /// Slowdown multiplier for gather/scatter (uncoalesced) bytes.
    pub gather_penalty: f64,
    /// Threads per block the transpiler launches with.
    pub threads_per_block: u32,
    pub launch: LaunchCosts,
}

impl Default for GpuModel {
    /// RTX A6000.
    fn default() -> Self {
        GpuModel {
            sms: 84,
            clock_ghz: 1.8,
            int_lanes_per_sm: 64,
            dram_gbps: 768.0,
            coalesced_eff: 0.65,
            cache_hit: 0.90,
            gather_penalty: 6.0,
            threads_per_block: 256,
            launch: LaunchCosts::default(),
        }
    }
}

impl GpuModel {
    /// Derive a heterogeneous-pool variant running at `speed` times this
    /// model's throughput (clock and memory bandwidth scale together, the
    /// way a binned/power-limited part of the same architecture behaves).
    /// The per-kernel duration floor is device-side execution and scales
    /// too; host-side launch overheads (stream/graph launches, events)
    /// stay fixed.
    pub fn scaled(&self, speed: f64) -> GpuModel {
        assert!(speed > 0.0, "device speed factor must be positive");
        let mut m = self.clone();
        m.clock_ghz *= speed;
        m.dram_gbps *= speed;
        m.launch.min_kernel_ns = ((self.launch.min_kernel_ns as f64 / speed) as u64).max(1);
        m
    }

    /// Number of thread blocks a kernel over `n_threads` stimulus needs.
    pub fn blocks_for(&self, n_threads: usize) -> usize {
        n_threads.div_ceil(self.threads_per_block as usize).max(1)
    }

    /// Execution time of ONE thread block of a kernel (ns): the larger of
    /// its compute time and its memory time, as in a roofline model.
    pub fn block_time(&self, stats: &KernelStats) -> Time {
        let threads = self.threads_per_block as f64;
        // Compute: alu ops issued over the SM's int lanes.
        let compute_ns =
            stats.alu_ops as f64 * threads / (self.int_lanes_per_sm as f64 * self.clock_ghz);
        // Memory: per-SM share of DRAM bandwidth; gathers pay the penalty.
        let per_sm_bw = self.dram_gbps * self.coalesced_eff / self.sms as f64; // GB/s == bytes/ns
        let eff_bytes = stats.bytes as f64 * (1.0 - self.cache_hit)
            + stats.gather_bytes as f64 * self.gather_penalty * (1.0 - self.cache_hit);
        let mem_ns = eff_bytes * threads / per_sm_bw;
        let busy = compute_ns.max(mem_ns);
        // Fixed block dispatch overhead.
        (busy as u64).saturating_add(300)
    }

    /// Standalone duration of a kernel over `n_threads`, assuming an idle
    /// GPU (blocks wave-scheduled over the SM pool).
    pub fn kernel_time(&self, stats: &KernelStats, n_threads: usize) -> Time {
        let blocks = self.blocks_for(n_threads);
        let waves = blocks.div_ceil(self.sms) as u64;
        (waves * self.block_time(stats)).max(self.launch.min_kernel_ns)
    }

    /// Host-to-device (or back) copy time for `bytes` over PCIe 4.0 x16.
    pub fn pcie_copy_time(&self, bytes: u64) -> Time {
        // ~24 GB/s effective + 8 us latency.
        (bytes as f64 / 24.0) as u64 + 8_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(alu: u64, bytes: u64) -> KernelStats {
        KernelStats {
            alu_ops: alu,
            loads: bytes / 8,
            stores: 0,
            bytes,
            gather_ops: 0,
            gather_bytes: 0,
        }
    }

    #[test]
    fn bigger_kernels_take_longer() {
        let m = GpuModel::default();
        assert!(m.block_time(&stats(1000, 64)) > m.block_time(&stats(10, 64)));
        assert!(m.block_time(&stats(10, 4096)) > m.block_time(&stats(10, 64)));
    }

    #[test]
    fn kernel_time_scales_with_waves() {
        // Large enough that the minimum-kernel floor does not bind.
        let m = GpuModel::default();
        let s = stats(20_000, 4096);
        let small = m.kernel_time(&s, 256); // 1 block
        let big = m.kernel_time(&s, 256 * 84 * 4); // 4 waves
        assert!(
            big >= small * 3,
            "waves must scale duration: {small} vs {big}"
        );
    }

    #[test]
    fn sub_wave_batches_cost_the_same() {
        // Up to one wave, adding stimulus is free — the data-parallelism
        // headroom that makes batch simulation win (Figure 13's flat
        // region for RTLflow).
        let m = GpuModel::default();
        let s = stats(20_000, 4096);
        assert_eq!(m.kernel_time(&s, 256), m.kernel_time(&s, 84 * 256));
    }

    #[test]
    fn gather_traffic_is_penalized() {
        let m = GpuModel::default();
        let coalesced = KernelStats {
            bytes: 1024,
            ..Default::default()
        };
        let gathered = KernelStats {
            gather_bytes: 1024,
            gather_ops: 128,
            ..Default::default()
        };
        assert!(m.block_time(&gathered) > m.block_time(&coalesced) * 3);
    }

    #[test]
    fn min_kernel_time_floors_tiny_kernels() {
        let m = GpuModel::default();
        let s = stats(1, 8);
        assert_eq!(m.kernel_time(&s, 32), m.launch.min_kernel_ns);
    }
}
