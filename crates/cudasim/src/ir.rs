//! SIMT kernel IR — the "CUDA" our transpiler targets.
//!
//! A kernel is straight-line (no branches): control flow has been lowered
//! to predication/muxes by the transpiler, exactly like the full-cycle
//! simulation code the paper generates. Every value is at most 64 bits
//! wide; arbitrary-width semantics are achieved by masking at the width
//! recorded on each op.

use std::fmt;

/// Register index inside a kernel's scratch file.
pub type Reg = u16;

/// The four width-bucketed global arrays of §3.1.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bucket {
    B8,
    B16,
    B32,
    B64,
}

impl Bucket {
    /// Smallest bucket that fits `width` bits.
    pub fn for_width(width: u32) -> Bucket {
        match width {
            0..=8 => Bucket::B8,
            9..=16 => Bucket::B16,
            17..=32 => Bucket::B32,
            _ => Bucket::B64,
        }
    }

    /// Element size in bytes (drives the memory-traffic model).
    pub fn bytes(self) -> u64 {
        match self {
            Bucket::B8 => 1,
            Bucket::B16 => 2,
            Bucket::B32 => 4,
            Bucket::B64 => 8,
        }
    }

    /// C element type name, for CUDA text emission.
    pub fn ctype(self) -> &'static str {
        match self {
            Bucket::B8 => "uint8_t",
            Bucket::B16 => "uint16_t",
            Bucket::B32 => "uint32_t",
            Bucket::B64 => "uint64_t",
        }
    }

    /// Array variable name in emitted CUDA.
    pub fn cname(self) -> &'static str {
        match self {
            Bucket::B8 => "var8",
            Bucket::B16 => "var16",
            Bucket::B32 => "var32",
            Bucket::B64 => "var64",
        }
    }
}

/// A storage location: element `offset` of a bucket (replicated N times,
/// one element per stimulus).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    pub bucket: Bucket,
    pub offset: u32,
}

/// Binary kernel operations. All unsigned 64-bit with masking to `width`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KBin {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Xnor,
    Shl,
    Shr,
    /// Arithmetic right shift; the sign bit is bit `width-1`.
    Sshr,
    Eq,
    Ne,
    Ltu,
    Leu,
    Gtu,
    Geu,
    LAnd,
    LOr,
}

/// Unary kernel operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KUn {
    Not,
    Neg,
    LNot,
    RedAnd,
    RedOr,
    RedXor,
}

/// One SIMT instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `dst = value`
    Const { dst: Reg, value: u64 },
    /// `dst = bucket[offset*N + tid]`
    Load { dst: Reg, slot: Slot },
    /// `bucket[offset*N + tid] = src & mask(width)`
    Store { src: Reg, slot: Slot, width: u32 },
    /// Memory word read: `dst = bucket[(offset+idx)*N + tid]`, 0 if
    /// `idx >= depth`.
    LoadIdx {
        dst: Reg,
        slot: Slot,
        idx: Reg,
        depth: u32,
    },
    /// Guarded memory word write: executed only where `pred != 0` and
    /// `idx < depth`.
    StoreIdxCond {
        src: Reg,
        slot: Slot,
        idx: Reg,
        depth: u32,
        pred: Reg,
        width: u32,
    },
    /// `dst = a (op) b`, masked to `width`.
    Bin {
        op: KBin,
        dst: Reg,
        a: Reg,
        b: Reg,
        width: u32,
    },
    /// `dst = (op) a`, masked to `width`.
    Un {
        op: KUn,
        dst: Reg,
        a: Reg,
        width: u32,
    },
    /// `dst = cond ? a : b`
    Mux { dst: Reg, cond: Reg, a: Reg, b: Reg },
}

impl Op {
    /// Register written by this op, if any.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Op::Const { dst, .. }
            | Op::Load { dst, .. }
            | Op::LoadIdx { dst, .. }
            | Op::Bin { dst, .. }
            | Op::Un { dst, .. }
            | Op::Mux { dst, .. } => Some(*dst),
            Op::Store { .. } | Op::StoreIdxCond { .. } => None,
        }
    }

    /// Registers read by this op.
    pub fn srcs(&self) -> Vec<Reg> {
        match self {
            Op::Const { .. } | Op::Load { .. } => vec![],
            Op::Store { src, .. } => vec![*src],
            Op::LoadIdx { idx, .. } => vec![*idx],
            Op::StoreIdxCond { src, idx, pred, .. } => vec![*src, *idx, *pred],
            Op::Bin { a, b, .. } => vec![*a, *b],
            Op::Un { a, .. } => vec![*a],
            Op::Mux { cond, a, b, .. } => vec![*cond, *a, *b],
        }
    }
}

/// Static op counts of a kernel — the timing model's inputs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// ALU-ish operations (const/bin/un/mux).
    pub alu_ops: u64,
    /// Global loads (bytes accounted separately).
    pub loads: u64,
    /// Global stores.
    pub stores: u64,
    /// Coalesced bytes moved per thread (plain loads + stores).
    pub bytes: u64,
    /// Gather/scatter (per-thread-indexed) accesses — the uncoalesced path.
    pub gather_ops: u64,
    /// Bytes moved by gather/scatter accesses per thread.
    pub gather_bytes: u64,
}

/// A straight-line SIMT kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    pub name: String,
    pub ops: Vec<Op>,
    pub num_regs: u16,
    pub stats: KernelStats,
}

impl Kernel {
    /// Build a kernel, computing `num_regs` and `stats` from the ops.
    pub fn new(name: impl Into<String>, ops: Vec<Op>) -> Kernel {
        let mut num_regs = 0u16;
        let mut stats = KernelStats::default();
        for op in &ops {
            if let Some(d) = op.dst() {
                num_regs = num_regs.max(d + 1);
            }
            for s in op.srcs() {
                num_regs = num_regs.max(s + 1);
            }
            match op {
                Op::Const { .. } | Op::Bin { .. } | Op::Un { .. } | Op::Mux { .. } => {
                    stats.alu_ops += 1
                }
                Op::Load { slot, .. } => {
                    stats.loads += 1;
                    stats.bytes += slot.bucket.bytes();
                }
                Op::Store { slot, .. } => {
                    stats.stores += 1;
                    stats.bytes += slot.bucket.bytes();
                }
                Op::LoadIdx { slot, .. } => {
                    stats.loads += 1;
                    stats.gather_ops += 1;
                    stats.gather_bytes += slot.bucket.bytes();
                }
                Op::StoreIdxCond { slot, .. } => {
                    stats.stores += 1;
                    stats.gather_ops += 1;
                    stats.gather_bytes += slot.bucket.bytes();
                }
            }
        }
        Kernel {
            name: name.into(),
            ops,
            num_regs,
            stats,
        }
    }

    /// Verify SSA-ish sanity: every register read was written earlier.
    pub fn validate(&self) -> Result<(), String> {
        let mut written = vec![false; self.num_regs as usize];
        for (i, op) in self.ops.iter().enumerate() {
            for s in op.srcs() {
                if !written[s as usize] {
                    return Err(format!(
                        "kernel `{}` op {i}: register r{s} read before write",
                        self.name
                    ));
                }
            }
            if let Some(d) = op.dst() {
                written[d as usize] = true;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kernel {} (regs={}, ops={})",
            self.name,
            self.num_regs,
            self.ops.len()
        )
    }
}

/// A partitioned task graph of kernels — what CUDA Graph executes.
///
/// `deps[k]` lists kernels that must complete before kernel `k` starts.
#[derive(Debug, Clone, Default)]
pub struct TaskGraphIr {
    pub kernels: Vec<Kernel>,
    pub deps: Vec<Vec<usize>>,
}

impl TaskGraphIr {
    /// Topological order (kernels are inserted already ordered by the
    /// transpiler; this verifies and returns it).
    pub fn topo_order(&self) -> Result<Vec<usize>, String> {
        let n = self.kernels.len();
        let mut indeg = vec![0usize; n];
        for d in &self.deps {
            for &_p in d {}
        }
        for (k, ds) in self.deps.iter().enumerate() {
            indeg[k] = ds.len();
        }
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (k, ds) in self.deps.iter().enumerate() {
            for &p in ds {
                succs[p].push(k);
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(u);
            for &v in &succs[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        if order.len() != n {
            return Err("cycle in kernel task graph".into());
        }
        Ok(order)
    }

    /// Levelize: `level[k]` = longest dependency chain ending at `k`.
    pub fn levels(&self) -> Vec<u32> {
        let order = self.topo_order().expect("task graph must be acyclic");
        let mut level = vec![0u32; self.kernels.len()];
        for &k in &order {
            for &p in &self.deps[k] {
                level[k] = level[k].max(level[p] + 1);
            }
        }
        level
    }

    /// Width statistics per level (kernel concurrency, Figure 14).
    pub fn level_widths(&self) -> Vec<usize> {
        let levels = self.levels();
        let depth = levels.iter().map(|&l| l + 1).max().unwrap_or(0) as usize;
        let mut widths = vec![0usize; depth];
        for &l in &levels {
            widths[l as usize] += 1;
        }
        widths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot8(offset: u32) -> Slot {
        Slot {
            bucket: Bucket::B8,
            offset,
        }
    }

    #[test]
    fn bucket_selection() {
        assert_eq!(Bucket::for_width(1), Bucket::B8);
        assert_eq!(Bucket::for_width(8), Bucket::B8);
        assert_eq!(Bucket::for_width(9), Bucket::B16);
        assert_eq!(Bucket::for_width(14), Bucket::B16);
        assert_eq!(Bucket::for_width(32), Bucket::B32);
        assert_eq!(Bucket::for_width(33), Bucket::B64);
        assert_eq!(Bucket::for_width(64), Bucket::B64);
    }

    #[test]
    fn kernel_stats_count_ops() {
        let k = Kernel::new(
            "k",
            vec![
                Op::Load {
                    dst: 0,
                    slot: slot8(0),
                },
                Op::Const { dst: 1, value: 1 },
                Op::Bin {
                    op: KBin::Add,
                    dst: 2,
                    a: 0,
                    b: 1,
                    width: 8,
                },
                Op::Store {
                    src: 2,
                    slot: slot8(1),
                    width: 8,
                },
            ],
        );
        assert_eq!(k.num_regs, 3);
        assert_eq!(k.stats.alu_ops, 2);
        assert_eq!(k.stats.loads, 1);
        assert_eq!(k.stats.stores, 1);
        assert_eq!(k.stats.bytes, 2);
        k.validate().unwrap();
    }

    #[test]
    fn validate_rejects_read_before_write() {
        let k = Kernel::new(
            "bad",
            vec![Op::Store {
                src: 3,
                slot: slot8(0),
                width: 8,
            }],
        );
        assert!(k.validate().is_err());
    }

    #[test]
    fn topo_order_detects_cycles() {
        let k = Kernel::new("k", vec![Op::Const { dst: 0, value: 0 }]);
        let g = TaskGraphIr {
            kernels: vec![k.clone(), k.clone()],
            deps: vec![vec![1], vec![0]],
        };
        assert!(g.topo_order().is_err());
    }

    #[test]
    fn level_widths_reflect_parallelism() {
        let k = Kernel::new("k", vec![Op::Const { dst: 0, value: 0 }]);
        // Diamond: 0 -> {1, 2} -> 3
        let g = TaskGraphIr {
            kernels: vec![k.clone(), k.clone(), k.clone(), k.clone()],
            deps: vec![vec![], vec![0], vec![0], vec![1, 2]],
        };
        assert_eq!(g.level_widths(), vec![1, 2, 1]);
        assert_eq!(g.levels(), vec![0, 1, 1, 2]);
    }
}
