//! In-process K-part co-simulation.
//!
//! Runs every part in one address space with the exact per-cycle
//! protocol the cluster uses — poke inputs, run `pre`, apply the
//! previous cycle's boundary payloads, run `mid`, extract exports, run
//! `post`; after the final cycle apply the last exports and `refresh` —
//! so the determinism tests and the CLI verify path exercise the same
//! codec and phase split as the distributed mode, minus the sockets.

use crate::engine::PartEngine;
use cudasim::{ExecConfig, Scratch};
use partition::PartitionSpec;
use rtlir::{Design, RtlGraph};
use stimulus::{PortMap, StimulusSource};

/// Fold one stimulus's parent-ordered output values into the digest the
/// monolithic path computes (`MemoryPlan::output_digest`): FNV-1a over
/// the output list.
pub fn fold_digest(outputs: &[u64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &o in outputs {
        h ^= o;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Simulate `cycles` cycles of `source` against `design` cut into `k`
/// parts, in groups of `group_size` stimuli. Returns per-stimulus output
/// digests, bit-identical to `pipeline::simulate_sharded`.
pub fn simulate_modelpar(
    design: &Design,
    source: &dyn StimulusSource,
    cycles: u64,
    k: usize,
    exec: &ExecConfig,
    group_size: usize,
) -> Result<Vec<u64>, String> {
    let graph = RtlGraph::build(design).map_err(|e| e.to_string())?;
    let spec = PartitionSpec::compute(design, &graph, k)?;
    let engines: Vec<PartEngine> = (0..k)
        .map(|p| PartEngine::build(design, &spec, p))
        .collect::<Result<_, _>>()?;

    let map = PortMap::from_design(design);
    let lanes = map.len();
    if source.num_ports() != lanes {
        return Err(format!(
            "stimulus provides {} ports, design wants {lanes}",
            source.num_ports()
        ));
    }
    let n = source.num_stimulus();
    let group_size = group_size.max(1);
    let mut digests = vec![0u64; n];
    let mut frame = vec![0u64; lanes];

    let mut tid0 = 0usize;
    while tid0 < n {
        let len = group_size.min(n - tid0);
        let mut devs: Vec<_> = engines
            .iter()
            .map(|e| e.program.plan.alloc_device(len))
            .collect();
        let mut scratches: Vec<Vec<Scratch>> = engines
            .iter()
            .map(|_| {
                (0..exec.thread_count().max(1))
                    .map(|_| Scratch::new())
                    .collect()
            })
            .collect();
        // Exports extracted at the end of the previous cycle, per part.
        let mut in_flight: Vec<Option<Vec<u8>>> = vec![None; k];

        for c in 0..cycles {
            for (e, dev) in engines.iter().zip(devs.iter_mut()) {
                for s in 0..len {
                    source.fill_frame(tid0 + s, c, &mut frame);
                    for (j, &lv) in e.sub.parent_inputs.iter().enumerate() {
                        e.program.plan.poke(dev, lv, s, map.mask(j, frame[j]));
                    }
                }
            }
            for ((e, dev), sc) in engines
                .iter()
                .zip(devs.iter_mut())
                .zip(scratches.iter_mut())
            {
                e.run_phase(&e.pre, dev, sc, 0, len, exec);
            }
            if c > 0 {
                apply_all(&engines, &mut devs, &in_flight, len)?;
            }
            for ((e, dev), sc) in engines
                .iter()
                .zip(devs.iter_mut())
                .zip(scratches.iter_mut())
            {
                e.run_phase(&e.mid, dev, sc, 0, len, exec);
            }
            for (p, (e, dev)) in engines.iter().zip(devs.iter()).enumerate() {
                in_flight[p] = (e.export_codec.num_vars() > 0).then(|| e.extract_exports(dev, len));
            }
            for ((e, dev), sc) in engines
                .iter()
                .zip(devs.iter_mut())
                .zip(scratches.iter_mut())
            {
                e.run_phase(&e.post, dev, sc, 0, len, exec);
            }
        }
        // Final settle: apply the last cycle's exports, re-run pass 1 so
        // comb-driven outputs reflect final state everywhere.
        if cycles > 0 {
            apply_all(&engines, &mut devs, &in_flight, len)?;
            for ((e, dev), sc) in engines
                .iter()
                .zip(devs.iter_mut())
                .zip(scratches.iter_mut())
            {
                if !e.imports.is_empty() {
                    e.run_phase(&e.refresh, dev, sc, 0, len, exec);
                }
            }
        }

        let mut outs = vec![0u64; design.outputs.len()];
        for s in 0..len {
            for (e, dev) in engines.iter().zip(devs.iter()) {
                for (j, &pos) in e.out_positions.iter().enumerate() {
                    outs[pos] = e.program.plan.peek(dev, e.sub.outputs[j], s);
                }
            }
            digests[tid0 + s] = fold_digest(&outs);
        }
        tid0 += len;
    }
    Ok(digests)
}

fn apply_all(
    engines: &[PartEngine],
    devs: &mut [cudasim::DeviceMemory],
    payloads: &[Option<Vec<u8>>],
    len: usize,
) -> Result<(), String> {
    for (e, dev) in engines.iter().zip(devs.iter_mut()) {
        for link in &e.imports {
            let payload = payloads[link.from]
                .as_ref()
                .ok_or_else(|| format!("part {} sent no boundary payload", link.from))?;
            e.apply_import(link, payload, dev, len)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use designs::Benchmark;
    use stimulus::RandomSource;

    fn check(b: Benchmark, k: usize, n: usize, cycles: u64) {
        let d = b.elaborate().unwrap();
        let map = PortMap::from_design(&d);
        let src = RandomSource::new(&map, n, 0xc0ffee);
        let exec = ExecConfig::default();
        let mono = simulate_modelpar(&d, &src, cycles, 1, &exec, 64).unwrap();
        let cut = simulate_modelpar(&d, &src, cycles, k, &exec, 64).unwrap();
        assert_eq!(mono, cut, "{b:?} k={k} diverged");
    }

    #[test]
    fn handshake_2way_matches_1way() {
        check(Benchmark::Handshake, 2, 96, 24);
    }

    #[test]
    fn riscv_mini_3way_matches_1way() {
        check(Benchmark::RiscvMini, 3, 48, 16);
    }
}
