//! Packed boundary-exchange payloads.
//!
//! One exporter packs *all* its boundary-out variables for the whole
//! stimulus group into a single byte payload per cycle; the controller
//! fans the identical payload to every importing part. The layout is a
//! pure function of the exporter's sorted boundary variable widths, so
//! both ends derive it independently:
//!
//! * **Bit section first**: every 1-bit variable, in order, as
//!   `ceil(n/64)` little-endian `u64` words — lane `i`'s bit lands in
//!   bit `i % 64` of word `i / 64` ([`cudasim::pack_bit_lanes`]). With
//!   control-heavy designs most boundary nets are valid/ready bits, so
//!   this is 64 stimuli per machine word, an 8× win over the smallest
//!   byte bucket.
//! * **Word section**: wider variables in order, width-bucketed to 1, 2,
//!   4 or 8 little-endian bytes per lane.

use cudasim::{pack_bit_lanes, unpack_bit_lanes};

/// Packing/unpacking schedule for one exporter's boundary set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryCodec {
    widths: Vec<u32>,
    /// Variable positions (into `widths`) packed bit-transposed.
    bit_vars: Vec<usize>,
    /// `(position, bytes_per_lane)` for the word section, in order.
    word_vars: Vec<(usize, usize)>,
}

fn bucket_bytes(width: u32) -> usize {
    match width {
        0..=8 => 1,
        9..=16 => 2,
        17..=32 => 4,
        _ => 8,
    }
}

impl BoundaryCodec {
    /// Build the codec for an exporter's boundary variables (the order
    /// of `widths` is the sorted parent-variable order both sides use).
    pub fn new(widths: &[u32]) -> BoundaryCodec {
        let bit_vars = (0..widths.len()).filter(|&i| widths[i] == 1).collect();
        let word_vars = (0..widths.len())
            .filter(|&i| widths[i] > 1)
            .map(|i| (i, bucket_bytes(widths[i])))
            .collect();
        BoundaryCodec {
            widths: widths.to_vec(),
            bit_vars,
            word_vars,
        }
    }

    /// Number of variables in the codec.
    pub fn num_vars(&self) -> usize {
        self.widths.len()
    }

    /// Exact payload size for `n` lanes.
    pub fn packed_len(&self, n: usize) -> usize {
        self.bit_vars.len() * n.div_ceil(64) * 8
            + self.word_vars.iter().map(|&(_, b)| b * n).sum::<usize>()
    }

    /// Pack `n` lanes; `get(var_ix, lane)` supplies each value.
    pub fn pack(&self, n: usize, mut get: impl FnMut(usize, usize) -> u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.packed_len(n));
        for &vi in &self.bit_vars {
            for w in pack_bit_lanes((0..n).map(|lane| get(vi, lane))) {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        for &(vi, bytes) in &self.word_vars {
            for lane in 0..n {
                out.extend_from_slice(&get(vi, lane).to_le_bytes()[..bytes]);
            }
        }
        out
    }

    /// Unpack a payload of `n` lanes; `put(var_ix, lane, value)` receives
    /// each value. Rejects size mismatches without calling `put`.
    pub fn unpack(
        &self,
        data: &[u8],
        n: usize,
        mut put: impl FnMut(usize, usize, u64),
    ) -> Result<(), String> {
        let want = self.packed_len(n);
        if data.len() != want {
            return Err(format!(
                "boundary payload is {} bytes, expected {want} for {n} lanes",
                data.len()
            ));
        }
        let mut pos = 0usize;
        let bit_words = n.div_ceil(64);
        for &vi in &self.bit_vars {
            let mut words = Vec::with_capacity(bit_words);
            for _ in 0..bit_words {
                words.push(u64::from_le_bytes(data[pos..pos + 8].try_into().unwrap()));
                pos += 8;
            }
            let ok = unpack_bit_lanes(&words, n, |lane, bit| put(vi, lane, bit));
            debug_assert!(ok, "length was pre-checked");
        }
        for &(vi, bytes) in &self.word_vars {
            for lane in 0..n {
                let mut buf = [0u8; 8];
                buf[..bytes].copy_from_slice(&data[pos..pos + bytes]);
                pos += bytes;
                put(vi, lane, u64::from_le_bytes(buf));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane_val(vi: usize, lane: usize, widths: &[u32]) -> u64 {
        let raw = stimulus::splitmix64((vi as u64) << 32 | lane as u64);
        let w = widths[vi];
        if w >= 64 {
            raw
        } else {
            raw & ((1u64 << w) - 1)
        }
    }

    #[test]
    fn roundtrip_mixed_widths() {
        let widths = [1u32, 1, 8, 1, 13, 32, 64, 1, 5];
        let codec = BoundaryCodec::new(&widths);
        for n in [1usize, 7, 64, 65, 200] {
            let payload = codec.pack(n, |vi, lane| lane_val(vi, lane, &widths));
            assert_eq!(payload.len(), codec.packed_len(n));
            let mut got = vec![vec![u64::MAX; n]; widths.len()];
            codec
                .unpack(&payload, n, |vi, lane, v| got[vi][lane] = v)
                .unwrap();
            for (vi, lanes) in got.iter().enumerate() {
                for (lane, &v) in lanes.iter().enumerate() {
                    assert_eq!(v, lane_val(vi, lane, &widths), "var {vi}/{lane}");
                }
            }
        }
    }

    #[test]
    fn one_bit_nets_cost_a_word_per_64_lanes() {
        let codec = BoundaryCodec::new(&[1, 1, 1, 1]);
        assert_eq!(codec.packed_len(64), 4 * 8);
        assert_eq!(codec.packed_len(65), 4 * 16);
        // Bucketed bytes otherwise.
        let wide = BoundaryCodec::new(&[8, 16, 32, 64]);
        assert_eq!(wide.packed_len(10), 10 * (1 + 2 + 4 + 8));
    }

    #[test]
    fn wrong_size_is_rejected_without_callback() {
        let codec = BoundaryCodec::new(&[1, 24]);
        let good = codec.pack(16, |_, _| 0);
        let mut calls = 0;
        assert!(codec
            .unpack(&good[..good.len() - 1], 16, |_, _, _| calls += 1)
            .is_err());
        assert!(codec.unpack(&good, 17, |_, _, _| calls += 1).is_err());
        assert_eq!(calls, 0);
    }

    #[test]
    fn empty_codec_packs_nothing() {
        let codec = BoundaryCodec::new(&[]);
        assert_eq!(codec.packed_len(128), 0);
        assert!(codec.pack(128, |_, _| unreachable!()).is_empty());
        codec.unpack(&[], 128, |_, _, _| unreachable!()).unwrap();
    }
}
