//! Extract a standalone [`Design`] for one [`ModelPart`].
//!
//! The sub-design keeps only the variables the part's processes touch
//! (plus every parent input, the clock, and the part's owned outputs),
//! remapped to a dense id space — per-part device memory is sized by the
//! surviving variables, which is what lets a design that exceeds one
//! worker's footprint budget run across several.
//!
//! Flag rules that carry the determinism contract:
//!
//! * `is_state` survives only on variables a *local* sequential process
//!   (owned or replicated) writes. Remote state arriving through the
//!   boundary must not be state here: state slots get a shadow and are
//!   overwritten by the commit kernel, which would clobber the applied
//!   boundary value with a never-written shadow zero.
//! * Boundary imports gain `is_input`, so the uniform-slot and bitplane
//!   analyses treat them as non-uniform roots exactly like stimulus.
//! * `is_output` survives only on outputs this part owns; only the owner
//!   reports a variable's value to the digest fold.

use partition::ModelPart;
use rtlir::elab::{EExpr, Process, Stm, Target};
use rtlir::{Design, VarId};

/// A part's design plus the parent-to-local variable maps the runtime
/// needs to poke stimulus and boundary values.
#[derive(Debug, Clone)]
pub struct SubDesign {
    pub design: Design,
    /// Parent [`VarId`] → local id, `None` when pruned.
    pub map: Vec<Option<VarId>>,
    /// Local ids of the parent's inputs, in parent declaration order
    /// (the stimulus frame layout is the parent's).
    pub parent_inputs: Vec<VarId>,
    /// Local ids of `part.boundary_in`, same (sorted-parent) order.
    pub boundary_in: Vec<VarId>,
    /// Local ids of `part.boundary_out`, same order.
    pub boundary_out: Vec<VarId>,
    /// Local ids of the owned outputs, in parent output order.
    pub outputs: Vec<VarId>,
}

fn remap_expr(e: &EExpr, m: &[Option<VarId>]) -> EExpr {
    let v = |id: VarId| m[id].expect("sub-design references pruned var");
    match e {
        EExpr::Const(c) => EExpr::Const(c.clone()),
        EExpr::Var(id) => EExpr::Var(v(*id)),
        EExpr::ReadMem { var, idx } => EExpr::ReadMem {
            var: v(*var),
            idx: Box::new(remap_expr(idx, m)),
        },
        EExpr::Unary { op, arg, width } => EExpr::Unary {
            op: *op,
            arg: Box::new(remap_expr(arg, m)),
            width: *width,
        },
        EExpr::Binary { op, a, b, width } => EExpr::Binary {
            op: *op,
            a: Box::new(remap_expr(a, m)),
            b: Box::new(remap_expr(b, m)),
            width: *width,
        },
        EExpr::Mux { cond, t, e, width } => EExpr::Mux {
            cond: Box::new(remap_expr(cond, m)),
            t: Box::new(remap_expr(t, m)),
            e: Box::new(remap_expr(e, m)),
            width: *width,
        },
        EExpr::Concat { parts, width } => EExpr::Concat {
            parts: parts.iter().map(|p| remap_expr(p, m)).collect(),
            width: *width,
        },
        EExpr::Slice { arg, lsb, width } => EExpr::Slice {
            arg: Box::new(remap_expr(arg, m)),
            lsb: *lsb,
            width: *width,
        },
        EExpr::IndexBit { arg, idx } => EExpr::IndexBit {
            arg: Box::new(remap_expr(arg, m)),
            idx: Box::new(remap_expr(idx, m)),
        },
        EExpr::Resize { arg, width } => EExpr::Resize {
            arg: Box::new(remap_expr(arg, m)),
            width: *width,
        },
    }
}

fn remap_target(t: &Target, m: &[Option<VarId>]) -> Target {
    let v = |id: VarId| m[id].expect("sub-design writes pruned var");
    match t {
        Target::Var(id) => Target::Var(v(*id)),
        Target::Slice { var, lsb, width } => Target::Slice {
            var: v(*var),
            lsb: *lsb,
            width: *width,
        },
        Target::DynBit { var, idx } => Target::DynBit {
            var: v(*var),
            idx: remap_expr(idx, m),
        },
        Target::Mem { var, idx } => Target::Mem {
            var: v(*var),
            idx: remap_expr(idx, m),
        },
    }
}

fn remap_stms(stms: &[Stm], m: &[Option<VarId>]) -> Vec<Stm> {
    stms.iter()
        .map(|s| match s {
            Stm::Assign { target, rhs } => Stm::Assign {
                target: remap_target(target, m),
                rhs: remap_expr(rhs, m),
            },
            Stm::If {
                cond,
                then_s,
                else_s,
            } => Stm::If {
                cond: remap_expr(cond, m),
                then_s: remap_stms(then_s, m),
                else_s: remap_stms(else_s, m),
            },
        })
        .collect()
}

fn collect_stm_vars(stms: &[Stm], used: &mut std::collections::BTreeSet<VarId>) {
    for s in stms {
        match s {
            Stm::Assign { target, rhs } => {
                used.insert(target.var());
                match target {
                    Target::DynBit { idx, .. } | Target::Mem { idx, .. } => {
                        idx.visit_reads(&mut |v| {
                            used.insert(v);
                        })
                    }
                    _ => {}
                }
                rhs.visit_reads(&mut |v| {
                    used.insert(v);
                });
            }
            Stm::If {
                cond,
                then_s,
                else_s,
            } => {
                cond.visit_reads(&mut |v| {
                    used.insert(v);
                });
                collect_stm_vars(then_s, used);
                collect_stm_vars(else_s, used);
            }
        }
    }
}

/// Build the standalone design for part `index` of a cut.
pub fn build_subdesign(design: &Design, part: &ModelPart, index: usize) -> SubDesign {
    use std::collections::BTreeSet;

    let included: Vec<usize> = {
        let mut p: Vec<usize> = part
            .seq
            .iter()
            .chain(&part.replicas)
            .chain(&part.comb)
            .copied()
            .collect();
        p.sort_unstable();
        p.dedup();
        p
    };

    // Variables that survive: everything the processes touch, plus all
    // parent inputs (frame layout), the clock, and the owned outputs.
    let mut used: BTreeSet<VarId> = BTreeSet::new();
    for &p in &included {
        collect_stm_vars(&design.processes[p].body, &mut used);
    }
    used.extend(design.inputs.iter().copied());
    used.extend(part.outputs.iter().copied());
    if let Some(clk) = design.clock {
        used.insert(clk);
    }

    // State survives only where a local seq process writes it.
    let local_seq_writes: BTreeSet<VarId> = part
        .seq
        .iter()
        .chain(&part.replicas)
        .flat_map(|&p| design.processes[p].writes.iter().copied())
        .collect();
    let boundary_in: BTreeSet<VarId> = part.boundary_in.iter().copied().collect();
    let owned_out: BTreeSet<VarId> = part.outputs.iter().copied().collect();

    let mut map: Vec<Option<VarId>> = vec![None; design.vars.len()];
    let mut vars = Vec::with_capacity(used.len());
    for &v in &used {
        let parent = &design.vars[v];
        map[v] = Some(vars.len());
        vars.push(rtlir::elab::Var {
            name: parent.name.clone(),
            width: parent.width,
            depth: parent.depth,
            is_state: parent.is_state && local_seq_writes.contains(&v),
            is_input: parent.is_input || boundary_in.contains(&v),
            is_output: parent.is_output && owned_out.contains(&v),
        });
    }

    let processes: Vec<Process> = included
        .iter()
        .map(|&p| {
            let src = &design.processes[p];
            Process {
                kind: src.kind,
                name: src.name.clone(),
                body: remap_stms(&src.body, &map),
                reads: src.reads.iter().map(|&v| map[v].unwrap()).collect(),
                writes: src.writes.iter().map(|&v| map[v].unwrap()).collect(),
                line: src.line,
            }
        })
        .collect();

    let parent_inputs: Vec<VarId> = design.inputs.iter().map(|&v| map[v].unwrap()).collect();
    let boundary_in_local: Vec<VarId> = part.boundary_in.iter().map(|&v| map[v].unwrap()).collect();
    let boundary_out_local: Vec<VarId> =
        part.boundary_out.iter().map(|&v| map[v].unwrap()).collect();
    let outputs_local: Vec<VarId> = part.outputs.iter().map(|&v| map[v].unwrap()).collect();

    // Boundary imports are poked like stimulus; appending them after the
    // parent inputs makes every analysis treat them as non-uniform roots.
    let inputs: Vec<VarId> = parent_inputs
        .iter()
        .chain(&boundary_in_local)
        .copied()
        .collect();

    let sub = Design {
        name: format!("{}__p{index}", design.name),
        vars,
        processes,
        inputs,
        outputs: outputs_local.clone(),
        clock: design.clock.map(|c| map[c].unwrap()),
    };
    SubDesign {
        design: sub,
        map,
        parent_inputs,
        boundary_in: boundary_in_local,
        boundary_out: boundary_out_local,
        outputs: outputs_local,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use designs::Benchmark;
    use partition::PartitionSpec;
    use rtlir::RtlGraph;

    #[test]
    fn subdesigns_shrink_and_stay_buildable() {
        let d = Benchmark::RiscvMini.elaborate().unwrap();
        let g = RtlGraph::build(&d).unwrap();
        let spec = PartitionSpec::compute(&d, &g, 3).unwrap();
        let mut total_vars = 0usize;
        for (i, part) in spec.parts.iter().enumerate() {
            let sub = build_subdesign(&d, part, i);
            total_vars += sub.design.vars.len();
            assert!(sub.design.vars.len() <= d.vars.len());
            // The sub-design must elaborate into a valid RTL graph.
            let sg = RtlGraph::build(&sub.design).unwrap();
            assert_eq!(
                sg.seq_nodes.len(),
                part.seq.len() + part.replicas.len(),
                "part {i} seq count"
            );
            // Boundary imports are input ports of the sub-design.
            for &b in &sub.boundary_in {
                assert!(sub.design.vars[b].is_input);
                assert!(!sub.design.vars[b].is_state);
            }
            // Exports stay state (the local ff writes them).
            for &b in &sub.boundary_out {
                assert!(sub.design.vars[b].is_state);
            }
        }
        // Pruning must bite: parts together may replicate some logic,
        // but each part alone is a strict subset of the parent.
        assert!(total_vars > 0);
    }

    #[test]
    fn part_names_are_distinct() {
        let d = Benchmark::Handshake.elaborate().unwrap();
        let g = RtlGraph::build(&d).unwrap();
        let spec = PartitionSpec::compute(&d, &g, 2).unwrap();
        let s0 = build_subdesign(&d, &spec.parts[0], 0);
        let s1 = build_subdesign(&d, &spec.parts[1], 1);
        assert_ne!(s0.design.name, s1.design.name);
        assert_ne!(
            rtlir::design_hash(&s0.design),
            rtlir::design_hash(&s1.design)
        );
    }
}
