//! A compiled, phase-split execution engine for one model part.
//!
//! The kernel schedule of a part's [`KernelProgram`] is split by a taint
//! analysis over the boundary imports:
//!
//! * `pre` — pass-1 kernels whose transitive inputs never touch a
//!   boundary import. These are safe to evaluate while the previous
//!   cycle's boundary frame is still in flight (the communication /
//!   compute overlap of the co-simulation protocol).
//! * `mid` — the remaining pass-1 kernels plus ff and commit. Run after
//!   the imports for this cycle are applied.
//! * `post` — the pass-2 re-settle. Its view of remote state is one
//!   cycle stale, which is fine mid-run (pass-1 recomputes every comb
//!   value next cycle) but not at the very end — hence `refresh`.
//! * `refresh` — all pass-1 kernels; run once after the final boundary
//!   application so comb-driven outputs settle against final state
//!   before the digest peeks them.

use crate::boundary::BoundaryCodec;
use crate::subdesign::{build_subdesign, SubDesign};
use cudasim::{
    execute_kernel, execute_ordered, execute_ordered_parallel, DeviceMemory, ExecConfig,
    ExecStrategy, Scratch,
};
use partition::PartitionSpec;
use rtlir::{Design, RtlGraph, VarId};
use transpile::{default_partition, KernelProgram};

/// Decode schedule for boundary frames arriving from one exporter part.
#[derive(Debug, Clone)]
pub struct ImportLink {
    /// Exporting part index.
    pub from: usize,
    /// Codec over the exporter's full boundary-out set.
    pub codec: BoundaryCodec,
    /// Local variable per exporter position; `None` for exported
    /// variables this part does not read.
    pub targets: Vec<Option<VarId>>,
}

/// One part, compiled and ready to co-simulate.
pub struct PartEngine {
    pub part: usize,
    pub sub: SubDesign,
    pub program: KernelProgram,
    /// Hash of the *sub*-design (checkpoint images are tagged with it).
    pub design_hash: u64,
    /// Positions of this part's owned outputs within the parent's
    /// output list (for the digest fold).
    pub out_positions: Vec<usize>,
    /// Codec for this part's own exports (empty boundary set ⇒ no frame).
    pub export_codec: BoundaryCodec,
    pub imports: Vec<ImportLink>,
    pub pre: Vec<usize>,
    pub mid: Vec<usize>,
    pub post: Vec<usize>,
    pub refresh: Vec<usize>,
}

impl PartEngine {
    /// Compile part `part` of `spec`. Pure function of `(design, spec,
    /// part)` — a worker handed only the design source re-derives the
    /// engine the controller planned with.
    pub fn build(design: &Design, spec: &PartitionSpec, part: usize) -> Result<PartEngine, String> {
        let mp = spec
            .parts
            .get(part)
            .ok_or_else(|| format!("part {part} out of range (k={})", spec.k))?;
        let sub = build_subdesign(design, mp, part);
        let graph = RtlGraph::build(&sub.design).map_err(|e| e.to_string())?;
        let partition = default_partition(&sub.design, &graph);
        let program = KernelProgram::build(&sub.design, &graph, &partition)?;
        let design_hash = rtlir::design_hash(&sub.design);

        // Taint: pass-1 tasks transitively reading a boundary import.
        let boundary: std::collections::BTreeSet<VarId> = sub.boundary_in.iter().copied().collect();
        let num_tasks = program.num_tasks;
        let mut tainted = vec![false; num_tasks];
        for (t, nodes) in partition.iter().enumerate() {
            for &n in nodes {
                let p = &sub.design.processes[graph.nodes[n].process];
                if p.reads.iter().any(|v| boundary.contains(v)) {
                    tainted[t] = true;
                }
            }
        }
        for &e in &program.order {
            if e < num_tasks && !tainted[e] {
                tainted[e] = program.graph.deps[e].iter().any(|&d| tainted[d]);
            }
        }

        let ff_idx = num_tasks;
        let commit_idx = num_tasks + 1;
        let mut pre = Vec::new();
        let mut mid = Vec::new();
        let mut post = Vec::new();
        let mut refresh = Vec::new();
        for &e in &program.order {
            if e < num_tasks {
                refresh.push(e);
                if tainted[e] {
                    mid.push(e);
                } else {
                    pre.push(e);
                }
            } else if program.has_seq && (e == ff_idx || e == commit_idx) {
                mid.push(e);
            } else {
                post.push(e);
            }
        }

        let out_positions: Vec<usize> = mp
            .outputs
            .iter()
            .map(|o| design.outputs.iter().position(|p| p == o).unwrap())
            .collect();
        let widths_of =
            |vars: &[VarId]| -> Vec<u32> { vars.iter().map(|&v| design.vars[v].width).collect() };
        let export_codec = BoundaryCodec::new(&widths_of(&mp.boundary_out));
        let my_imports: std::collections::BTreeSet<VarId> =
            mp.boundary_in.iter().copied().collect();
        let mut imports = Vec::new();
        for (q, qp) in spec.parts.iter().enumerate() {
            if q == part || qp.boundary_out.iter().all(|v| !my_imports.contains(v)) {
                continue;
            }
            let targets = qp
                .boundary_out
                .iter()
                .map(|v| {
                    if my_imports.contains(v) {
                        Some(sub.map[*v].expect("imported var pruned"))
                    } else {
                        None
                    }
                })
                .collect();
            imports.push(ImportLink {
                from: q,
                codec: BoundaryCodec::new(&widths_of(&qp.boundary_out)),
                targets,
            });
        }

        Ok(PartEngine {
            part,
            sub,
            program,
            design_hash,
            out_positions,
            export_codec,
            imports,
            pre,
            mid,
            post,
            refresh,
        })
    }

    /// Execute one phase under `exec`. `scratches` must hold at least one
    /// element (one per worker thread for block-parallel execution).
    ///
    /// `BitPlane` downgrades to the vectorized word-domain executor: the
    /// phase split slices the schedule mid-cycle, which the transposed
    /// layout's attach/detach life cycle does not support — and every
    /// strategy is bit-identical, so only throughput differs.
    pub fn run_phase(
        &self,
        phase: &[usize],
        dev: &mut DeviceMemory,
        scratches: &mut [Scratch],
        tid0: usize,
        group: usize,
        exec: &ExecConfig,
    ) {
        match exec.strategy {
            ExecStrategy::Scalar => {
                for &e in phase {
                    execute_kernel(
                        &self.program.graph.kernels[e],
                        dev,
                        &mut scratches[0],
                        tid0,
                        group,
                    );
                }
            }
            ExecStrategy::Vectorized | ExecStrategy::BitPlane { .. } => execute_ordered(
                &self.program.fused,
                phase,
                dev,
                &mut scratches[0],
                tid0,
                group,
                exec.lane_chunk,
            ),
            ExecStrategy::BlockParallel { block, .. } => execute_ordered_parallel(
                &self.program.fused,
                phase,
                dev,
                scratches,
                tid0,
                group,
                block,
                exec.lane_chunk,
            ),
        }
    }

    /// Pack this part's exports for lanes `0..n` of `dev`.
    pub fn extract_exports(&self, dev: &DeviceMemory, n: usize) -> Vec<u8> {
        self.export_codec.pack(n, |vi, lane| {
            self.program.plan.peek(dev, self.sub.boundary_out[vi], lane)
        })
    }

    /// Apply one exporter's payload to lanes `0..n` of `dev`.
    pub fn apply_import(
        &self,
        link: &ImportLink,
        payload: &[u8],
        dev: &mut DeviceMemory,
        n: usize,
    ) -> Result<(), String> {
        link.codec.unpack(payload, n, |vi, lane, value| {
            if let Some(v) = link.targets[vi] {
                self.program.plan.poke(dev, v, lane, value);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use designs::Benchmark;

    #[test]
    fn phases_cover_the_whole_schedule() {
        let d = Benchmark::RiscvMini.elaborate().unwrap();
        let g = RtlGraph::build(&d).unwrap();
        let spec = PartitionSpec::compute(&d, &g, 3).unwrap();
        for p in 0..3 {
            let e = PartEngine::build(&d, &spec, p).unwrap();
            assert_eq!(
                e.pre.len() + e.mid.len() + e.post.len(),
                e.program.order.len(),
                "part {p} phases must partition the schedule"
            );
            assert_eq!(e.refresh.len(), e.program.num_tasks);
            // pre must be closed under task deps (safe to run early).
            let pre: std::collections::BTreeSet<usize> = e.pre.iter().copied().collect();
            for &t in &e.pre {
                for &dep in &e.program.graph.deps[t] {
                    assert!(pre.contains(&dep), "pre task {t} depends on non-pre {dep}");
                }
            }
        }
    }

    #[test]
    fn import_links_mirror_exports() {
        let d = Benchmark::Handshake.elaborate().unwrap();
        let g = RtlGraph::build(&d).unwrap();
        let spec = PartitionSpec::compute(&d, &g, 2).unwrap();
        let engines: Vec<PartEngine> = (0..2)
            .map(|p| PartEngine::build(&d, &spec, p).unwrap())
            .collect();
        for e in &engines {
            for link in &e.imports {
                let exporter = &engines[link.from];
                assert_eq!(link.codec, exporter.export_codec);
                assert!(link.targets.iter().any(Option::is_some));
            }
        }
    }
}
