//! Model-parallel co-simulation of one design cut into K parts.
//!
//! `partition::modelcut` decides *what* runs where; this crate makes the
//! parts executable and keeps them bit-identical to the monolithic
//! simulation:
//!
//! * [`subdesign`] — extract a standalone [`rtlir::Design`] for one
//!   [`partition::ModelPart`]: only the part's processes and the
//!   variables they touch survive (so the per-part device footprint
//!   genuinely shrinks), boundary imports become input ports, and
//!   non-local state loses its `is_state` flag so commit never clobbers
//!   an applied boundary value.
//! * [`boundary`] — the packed per-cycle exchange format: 1-bit nets are
//!   bit-transposed 64 stimuli per word (via [`cudasim::pack_bit_lanes`]),
//!   wider nets are width-bucketed little-endian, in sorted parent
//!   variable order so every part derives the same layout independently.
//! * [`engine`] — a compiled [`PartEngine`] whose cycle is split into
//!   three phases: `pre` (kernels provably independent of remote state —
//!   safe to run while the previous cycle's boundary frame is still in
//!   flight), `mid` (remote-tainted kernels + ff + commit, run after the
//!   imports are applied), and `post` (the pass-2 re-settle).
//! * [`sim`] — an in-process K-part co-simulator used by the determinism
//!   tests and the CLI's verify path; the cluster controller/worker wire
//!   the same engines across TCP.
//!
//! Determinism contract: for any K, the folded per-stimulus output
//! digests equal `pipeline::simulate_sharded`'s bit for bit.

pub mod boundary;
pub mod engine;
pub mod sim;
pub mod subdesign;

pub use boundary::BoundaryCodec;
pub use engine::{ImportLink, PartEngine};
pub use sim::{fold_digest, simulate_modelpar};
pub use subdesign::{build_subdesign, SubDesign};
