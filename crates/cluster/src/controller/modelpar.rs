//! Model-parallel scheduling: one group, K workers, boundary relay.
//!
//! The controller cuts the design with `partition::PartitionSpec` (the
//! same pure function of `(design, k)` every worker re-derives, so no
//! plan has to travel on the wire), dispatches part `p` of each group to
//! worker `p`, and relays each part's per-cycle [`Frame::Boundary`]
//! export to the parts that import from it. Groups run sequentially —
//! the K workers co-simulate one group at a time.
//!
//! # Rollback protocol
//!
//! Any part death dooms the whole group epoch: survivors are aborted
//! (`PartAbort`, echoed back as an ack so stale boundary traffic can be
//! drained), the dead part's worker is replaced from the registry, the
//! epoch counter is bumped (workers discard frames from older epochs),
//! and all K parts are re-dispatched from the deepest checkpoint cycle
//! present in *every* part's checkpoint map — all parts must restart at
//! the same cycle or the boundary exchange desynchronizes. Because group
//! inputs are a pure function of `(stimulus id, cycle)` and parts are
//! deterministic, the rerun is bit-identical.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use partition::PartitionSpec;
use stimulus::StimulusSource;

use super::{lock, ClusterJobResult, Controller, WorkerConn};
use crate::error::ClusterError;
use crate::wire::{
    read_frame, write_frame, BatchDescriptor, Frame, GroupDispatch, PartDispatch, PartResult,
};

/// Hard cap on rollback epochs per group; hitting it means deaths are
/// arriving faster than the group can make checkpoint progress.
const MAX_EPOCHS: u32 = 64;

/// Controller-side view of the cut: just enough topology to validate
/// results, relay boundaries, and fold digests — the workers own the
/// compiled engines.
struct ModelPlan {
    k: usize,
    /// `design.outputs.len()` — the digest fold width.
    num_outputs: usize,
    /// `out_positions[p][o]` is where part p's o-th owned output lands
    /// in the parent output list (mirrors `PartEngine::out_positions`).
    out_positions: Vec<Vec<usize>>,
    /// For each part, the parts that import its boundary exports
    /// (mirrors `PartEngine::imports`, from the exporter's side).
    importers_of: Vec<Vec<usize>>,
}

impl ModelPlan {
    fn build(
        verilog: &str,
        top: &str,
        k: usize,
        design_key: u64,
    ) -> Result<ModelPlan, ClusterError> {
        let design = netlist::load_design(verilog, top)
            .map_err(|e| ClusterError::Design(format!("elaborate '{top}': {e}")))?;
        let graph = rtlir::RtlGraph::build(&design)
            .map_err(|e| ClusterError::Design(format!("design {design_key:#018x}: {e}")))?;
        let spec = PartitionSpec::compute(&design, &graph, k).map_err(ClusterError::Design)?;
        let out_positions = spec
            .parts
            .iter()
            .map(|p| {
                p.outputs
                    .iter()
                    .map(|o| {
                        design
                            .outputs
                            .iter()
                            .position(|d| d == o)
                            .expect("part owns an output the design lacks")
                    })
                    .collect()
            })
            .collect();
        let importers_of = (0..k)
            .map(|p| {
                let exports: BTreeSet<_> = spec.parts[p].boundary_out.iter().collect();
                (0..k)
                    .filter(|&q| {
                        q != p
                            && spec.parts[q]
                                .boundary_in
                                .iter()
                                .any(|v| exports.contains(v))
                    })
                    .collect()
            })
            .collect();
        Ok(ModelPlan {
            k,
            num_outputs: design.outputs.len(),
            out_positions,
            importers_of,
        })
    }
}

/// Context one group epoch shares between its K session threads.
struct GroupCtx<'a> {
    desc: &'a BatchDescriptor,
    plan: &'a ModelPlan,
    len: usize,
    tid0: u64,
    /// Serialized write handles, one per part connection: boundary
    /// fan-out from any session thread and the initial dispatch both go
    /// through these, so frames never interleave on a socket.
    writers: Vec<Mutex<TcpStream>>,
    /// Checkpoint images per part, keyed by cycle. Kept across epochs —
    /// a snapshot of deterministic state is valid regardless of which
    /// epoch captured it.
    ck: &'a Mutex<Vec<BTreeMap<u64, Vec<u8>>>>,
    /// Set by the first session that sees its part die; the survivors
    /// bail at their next frame instead of waiting out the group.
    failed: &'a AtomicBool,
}

/// How one part's session thread ended.
enum SessionEnd {
    /// The part finished this epoch and its result validated.
    Done(Box<PartResult>),
    /// The connection died (EOF, wire error, timeout, bad result shape).
    Died { timed_out: bool },
    /// Another part died first; this worker is presumed alive and gets
    /// an abort/drain instead of a replacement.
    Bailed,
}

impl Controller {
    /// Run one batch with the design cut into `k` model-parallel parts
    /// co-simulated across `k` workers. Digests are bit-identical to
    /// [`Controller::run_batch`] and to a local `simulate_sharded` run.
    pub fn run_batch_modelpar(
        &self,
        design_key: u64,
        source: &dyn StimulusSource,
        cycles: u64,
        k: usize,
    ) -> Result<Vec<u64>, ClusterError> {
        if k == 0 {
            return Err(ClusterError::Protocol(
                "model-parallel needs k >= 1 parts".into(),
            ));
        }
        let t0 = Instant::now();
        let (verilog, top) = {
            let designs = lock(&self.shared.designs);
            let entry = designs
                .get(&design_key)
                .ok_or(ClusterError::UnknownDesign(design_key))?;
            (entry.verilog.clone(), entry.top.clone())
        };
        let plan = ModelPlan::build(&verilog, &top, k, design_key)?;
        let (desc, groups) = self.materialize(design_key, source, cycles)?;
        if groups.is_empty() {
            let mut m = lock(&self.shared.metrics);
            m.busy += t0.elapsed();
            m.batches += 1;
            return Ok(Vec::new());
        }

        let mut conns = self.take_k_workers(k)?;
        let result = self.run_modelpar_groups(&desc, &groups, &plan, &mut conns);
        // Hand the surviving connections back to the registry.
        let mut reg = lock(&self.shared.registry);
        reg.extend(conns);
        drop(reg);
        self.shared.registry_cv.notify_all();

        let mut m = lock(&self.shared.metrics);
        m.busy += t0.elapsed();
        if result.is_ok() {
            m.batches += 1;
        }
        result
    }

    /// Run coalesced jobs model-parallel (serve's footprint-overflow
    /// path); the model-parallel analogue of [`Controller::run_jobs`].
    pub fn run_jobs_modelpar(
        &self,
        design_key: u64,
        jobs: Vec<Box<dyn StimulusSource>>,
        cycles: u64,
        k: usize,
    ) -> Result<ClusterJobResult, ClusterError> {
        let stacked = stimulus::StackedSource::new(jobs);
        let ranges: Vec<_> = (0..stacked.num_segments())
            .map(|j| stacked.segment_range(j))
            .collect();
        let digests = self.run_batch_modelpar(design_key, &stacked, cycles, k)?;
        Ok(ClusterJobResult { digests, ranges })
    }

    /// Take exactly `k` idle workers, waiting up to `rejoin_grace` for
    /// enough registrations; the rest stay in the registry (they serve
    /// as replacements after a part death).
    fn take_k_workers(&self, k: usize) -> Result<Vec<WorkerConn>, ClusterError> {
        let deadline = Instant::now() + self.shared.cfg.rejoin_grace;
        let mut reg = lock(&self.shared.registry);
        while reg.len() < k {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(ClusterError::NoWorkers(format!(
                    "model-parallel k={k} needs {k} idle workers, {} registered",
                    reg.len()
                )));
            }
            reg = self
                .shared
                .registry_cv
                .wait_timeout(reg, left)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        let at = reg.len() - k;
        Ok(reg.drain(at..).collect())
    }

    /// Prepare a connection for model-parallel duty: arm the heartbeat
    /// read deadline and ship the batch descriptor once per worker.
    fn init_modelpar_conn(
        &self,
        conn: &mut WorkerConn,
        desc: &BatchDescriptor,
        started: &mut HashSet<u32>,
    ) -> Result<(), ClusterError> {
        conn.stream
            .set_read_timeout(Some(self.shared.cfg.heartbeat_timeout))?;
        if started.insert(conn.id) {
            let bytes = write_frame(&mut conn.stream, &Frame::BatchStart(desc.clone()))
                .map_err(ClusterError::Wire)?;
            self.count_tx(conn, bytes);
        }
        Ok(())
    }

    /// Co-simulate every group sequentially across the K connections,
    /// rolling all parts back to a common checkpoint on any death.
    fn run_modelpar_groups(
        &self,
        desc: &BatchDescriptor,
        groups: &[GroupDispatch],
        plan: &ModelPlan,
        conns: &mut [WorkerConn],
    ) -> Result<Vec<u64>, ClusterError> {
        let mut started: HashSet<u32> = HashSet::new();
        for conn in conns.iter_mut() {
            self.init_modelpar_conn(conn, desc, &mut started)?;
        }
        let mut digests = vec![0u64; desc.n as usize];
        for g in groups {
            let len = g.len as usize;
            let ck = Mutex::new(vec![BTreeMap::new(); plan.k]);
            let mut epoch = 0u32;
            let results: Vec<PartResult> = loop {
                // Deepest cycle checkpointed by *every* part — the only
                // cycle all K can restart from in lockstep.
                let start_cycle = {
                    let maps = lock(&ck);
                    maps[0]
                        .keys()
                        .rev()
                        .find(|&&cy| maps.iter().all(|m| m.contains_key(&cy)))
                        .copied()
                        .unwrap_or(0)
                };
                let failed = AtomicBool::new(false);
                let writers: Vec<Mutex<TcpStream>> = conns
                    .iter()
                    .map(|c| c.stream.try_clone().map(Mutex::new))
                    .collect::<Result<_, _>>()?;
                let ctx = GroupCtx {
                    desc,
                    plan,
                    len,
                    tid0: g.tid0,
                    writers,
                    ck: &ck,
                    failed: &failed,
                };
                let dispatches: Vec<PartDispatch> = (0..plan.k)
                    .map(|p| PartDispatch {
                        batch: desc.batch,
                        group: g.group,
                        part: p as u32,
                        k: plan.k as u32,
                        epoch,
                        tid0: g.tid0,
                        len: g.len,
                        start_cycle,
                        resume_image: if start_cycle > 0 {
                            lock(&ck)[p][&start_cycle].clone()
                        } else {
                            Vec::new()
                        },
                        frames: g.frames.clone(),
                    })
                    .collect();
                if start_cycle > 0 {
                    let mut m = lock(&self.shared.metrics);
                    m.groups_resumed += 1;
                    m.resume_cycles_skipped += start_cycle;
                    m.max_resume_cycle = m.max_resume_cycle.max(start_cycle);
                }

                let ends: Vec<SessionEnd> = std::thread::scope(|s| {
                    let handles: Vec<_> = conns
                        .iter_mut()
                        .zip(dispatches)
                        .enumerate()
                        .map(|(p, (conn, d))| {
                            let ctx = &ctx;
                            s.spawn(move || self.part_session(p, conn, d, ctx))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().unwrap_or(SessionEnd::Died { timed_out: false }))
                        .collect()
                });

                if ends.iter().all(|e| matches!(e, SessionEnd::Done(_))) {
                    lock(&self.shared.metrics).modelpar_groups += 1;
                    break ends
                        .into_iter()
                        .map(|e| match e {
                            SessionEnd::Done(r) => *r,
                            _ => unreachable!("checked all Done"),
                        })
                        .collect();
                }

                // Rollback: replace the dead, abort-and-drain the rest,
                // bump the epoch, re-dispatch everyone from start_cycle.
                lock(&self.shared.metrics).modelpar_rollbacks += 1;
                for (p, end) in ends.iter().enumerate() {
                    let alive = match end {
                        SessionEnd::Died { timed_out } => {
                            self.record_part_death(&conns[p], *timed_out);
                            false
                        }
                        SessionEnd::Done(_) | SessionEnd::Bailed => {
                            let ok =
                                self.abort_and_drain(&mut conns[p], desc.batch, g.group, epoch);
                            if !ok {
                                self.record_part_death(&conns[p], false);
                            }
                            ok
                        }
                    };
                    if !alive {
                        let mut fresh = self
                            .take_one_worker(self.shared.cfg.rejoin_grace)
                            .ok_or_else(|| {
                                ClusterError::NoWorkers(format!(
                                    "part {p} of group {} died and no replacement registered \
                                     within {:?}",
                                    g.group, self.shared.cfg.rejoin_grace
                                ))
                            })?;
                        self.init_modelpar_conn(&mut fresh, desc, &mut started)?;
                        conns[p] = fresh;
                    }
                }
                epoch += 1;
                if epoch >= MAX_EPOCHS {
                    return Err(ClusterError::Protocol(format!(
                        "group {}: {MAX_EPOCHS} rollbacks without completing",
                        g.group
                    )));
                }
            };

            // Scatter each part's owned outputs into parent order and
            // fold — the same digest the monolithic path computes.
            let mut outs = vec![0u64; plan.num_outputs];
            for s in 0..len {
                for (p, r) in results.iter().enumerate() {
                    for (o, &pos) in plan.out_positions[p].iter().enumerate() {
                        outs[pos] = r.outputs[o * len + s];
                    }
                }
                digests[g.tid0 as usize + s] = ::modelpar::fold_digest(&outs);
            }
            let mut m = lock(&self.shared.metrics);
            for r in &results {
                m.overlap_hidden_ns += r.hidden_ns;
                m.exchange_stall_ns += r.stall_ns;
            }
        }
        Ok(digests)
    }

    /// One part's dispatch + relay loop for one epoch. Reads the part's
    /// socket, fans its boundary exports out to importers, stores its
    /// checkpoints, and returns its validated result.
    fn part_session(
        &self,
        p: usize,
        conn: &mut WorkerConn,
        d: PartDispatch,
        ctx: &GroupCtx<'_>,
    ) -> SessionEnd {
        let started = Instant::now();
        let frame = Frame::RunPart(d);
        {
            let mut w = lock(&ctx.writers[p]);
            match write_frame(&mut *w, &frame) {
                Ok(bytes) => {
                    self.count_tx(conn, bytes);
                    lock(&self.shared.metrics).dispatches += 1;
                }
                Err(_) => {
                    ctx.failed.store(true, Ordering::Release);
                    return SessionEnd::Died { timed_out: false };
                }
            }
        }
        let Frame::RunPart(d) = frame else {
            unreachable!("built as RunPart above")
        };
        let expect_outputs = ctx.plan.out_positions[p].len() * ctx.len;

        loop {
            match read_frame(&mut conn.stream) {
                Ok((frame, bytes)) => {
                    self.count_rx(conn, bytes);
                    if ctx.failed.load(Ordering::Acquire) {
                        return SessionEnd::Bailed;
                    }
                    match frame {
                        Frame::Boundary(b)
                            if b.batch == d.batch
                                && b.group == d.group
                                && b.epoch == d.epoch
                                && b.part == d.part =>
                        {
                            {
                                let mut m = lock(&self.shared.metrics);
                                m.boundary_bytes += b.payload.len() as u64;
                                m.boundary_frames += 1;
                            }
                            for &q in &ctx.plan.importers_of[p] {
                                // A fan-out write failure is part q's
                                // death; q's own session detects it.
                                let mut w = lock(&ctx.writers[q]);
                                let _ = write_frame(&mut *w, &Frame::Boundary(b.clone()));
                            }
                        }
                        Frame::PartCheckpoint(u)
                            if u.batch == d.batch
                                && u.group == d.group
                                && u.part == d.part
                                && u.epoch == d.epoch
                                && u.tid0 == ctx.tid0
                                && u.cycle > 0
                                && u.cycle < ctx.desc.cycles
                                && !u.image.is_empty() =>
                        {
                            let image_len = u.image.len() as u64;
                            lock(ctx.ck)[p].insert(u.cycle, u.image);
                            let mut m = lock(&self.shared.metrics);
                            m.checkpoints_received += 1;
                            m.checkpoint_bytes += image_len;
                        }
                        Frame::PartDone(r) => {
                            if r.epoch != d.epoch {
                                continue; // stale epoch: drained later
                            }
                            if r.batch == d.batch
                                && r.group == d.group
                                && r.part == d.part
                                && r.tid0 == ctx.tid0
                                && r.outputs.len() == expect_outputs
                            {
                                let mut m = lock(&self.shared.metrics);
                                m.chunks_committed += 1;
                                let acc = m.worker(conn.id, conn.capacity);
                                acc.groups += 1;
                                acc.chunks += 1;
                                acc.busy += started.elapsed();
                                return SessionEnd::Done(Box::new(r));
                            }
                            ctx.failed.store(true, Ordering::Release);
                            return SessionEnd::Died { timed_out: false };
                        }
                        Frame::Heartbeat { .. } | Frame::HeartbeatAck { .. } => {}
                        Frame::Error { .. } => {
                            ctx.failed.store(true, Ordering::Release);
                            return SessionEnd::Died { timed_out: false };
                        }
                        _ => {}
                    }
                }
                Err(e) => {
                    let timed_out = e.is_timeout();
                    if timed_out && ctx.failed.load(Ordering::Acquire) {
                        // The epoch is already doomed; this worker is
                        // merely quiet, not necessarily dead.
                        return SessionEnd::Bailed;
                    }
                    ctx.failed.store(true, Ordering::Release);
                    return SessionEnd::Died { timed_out };
                }
            }
        }
    }

    /// Abort one surviving part and drain its socket until the abort
    /// echo arrives, discarding stale boundary/checkpoint/result traffic
    /// from the doomed epoch. Returns whether the worker is still alive.
    fn abort_and_drain(&self, conn: &mut WorkerConn, batch: u64, group: u32, epoch: u32) -> bool {
        let abort = Frame::PartAbort {
            batch,
            group,
            epoch,
        };
        match write_frame(&mut conn.stream, &abort) {
            Ok(bytes) => self.count_tx(conn, bytes),
            Err(_) => return false,
        }
        loop {
            match read_frame(&mut conn.stream) {
                Ok((
                    Frame::PartAbort {
                        batch: b,
                        group: g,
                        epoch: e,
                    },
                    bytes,
                )) => {
                    self.count_rx(conn, bytes);
                    if b == batch && g == group && e >= epoch {
                        return true;
                    }
                }
                Ok((_, bytes)) => self.count_rx(conn, bytes),
                Err(_) => return false,
            }
        }
    }

    /// Record a part connection's death in the shared metrics.
    fn record_part_death(&self, conn: &WorkerConn, timed_out: bool) {
        let mut m = lock(&self.shared.metrics);
        m.worker_deaths += 1;
        if timed_out {
            m.heartbeat_timeouts += 1;
        }
        m.worker(conn.id, conn.capacity).alive = false;
    }
}
