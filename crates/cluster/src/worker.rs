//! The cluster worker: connects to a controller, registers with its
//! capacity, and executes dispatched groups through the same
//! `pipeline`/`cudasim` functional executor the single-process flow uses.
//!
//! A worker is deliberately stateless across groups: every `RunGroup`
//! carries its materialized input frames, so executing a group twice —
//! or on a different worker after a requeue — produces bit-identical
//! digests. The only warm state is the per-design engine cache
//! ([`rtlir::design_hash`]-keyed), which survives reconnects.
//!
//! Failure behaviour is driven by [`WorkerFault`] for tests and the
//! `cluster-sim` demo: `Disconnect` drops the socket mid-batch (the
//! controller sees EOF), `Silent` stops responding without closing (the
//! controller's heartbeat timeout has to notice). A consumed fault does
//! not re-fire after the worker reconnects, so a faulted worker rejoins
//! as a healthy one.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cudasim::{Checkpoint, DeviceMemory, ExecConfig, Scratch};
use modelpar::PartEngine;
use rtlir::Design;
use stimulus::PortMap;
use transpile::KernelProgram;

use crate::error::ClusterError;
use crate::wire::{
    read_frame, write_frame, BatchDescriptor, BoundaryFrame, CheckpointUpdate, Frame,
    PartCheckpointUpdate, PartDispatch, PartResult, ResultChunk, VERSION,
};

/// How an injected fault manifests on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Close the connection abruptly: the controller reads EOF.
    Disconnect,
    /// Go quiet without closing: only the controller's heartbeat
    /// timeout can detect this.
    Silent,
}

/// Kill this worker at its `after_pickups`-th group pickup (0-based,
/// mirroring `shard::FaultSpec` coordinates). Consumed once.
#[derive(Debug, Clone, Copy)]
pub struct WorkerFault {
    pub after_pickups: u64,
    pub mode: FaultMode,
    /// `None`: die at pickup, before any compute (the original
    /// behaviour). `Some(k)`: pick the group up, compute `k` cycles —
    /// emitting every due checkpoint along the way — and die mid-group,
    /// which is what makes checkpoint resume observable.
    pub mid_cycle: Option<u64>,
}

impl WorkerFault {
    /// Die at the `after_pickups`-th pickup, before any compute.
    pub fn at_pickup(after_pickups: u64, mode: FaultMode) -> Self {
        WorkerFault {
            after_pickups,
            mode,
            mid_cycle: None,
        }
    }

    /// Die `cycle` cycles into the `after_pickups`-th picked-up group.
    pub fn mid_group(after_pickups: u64, cycle: u64, mode: FaultMode) -> Self {
        WorkerFault {
            after_pickups,
            mode,
            mid_cycle: Some(cycle),
        }
    }
}

/// Worker-side configuration.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Advertised relative throughput weight; the controller sizes this
    /// worker's initial queue share by it.
    pub capacity: u32,
    /// Functional execution strategy for group cycles.
    pub exec: ExecConfig,
    /// Tuned-artifact cache policy, consulted when a batch's engine is
    /// built. A tuned design runs with its tuned partition/fuse config —
    /// and its tuned exec, unless `exec` was set to a non-default value.
    pub tuned: autotune::TunePolicy,
    /// Optional injected fault.
    pub fault: Option<WorkerFault>,
    /// How often to emit `Heartbeat` frames while a group computes.
    /// Every frame the controller reads restarts its per-group read
    /// deadline, so this must stay well under the controller's
    /// `heartbeat_timeout` or long groups are falsely declared dead.
    pub heartbeat_interval: Duration,
    /// Reconnect after a connection loss (including an injected
    /// `Disconnect`). `Goodbye` always ends the worker.
    pub reconnect: bool,
    /// First reconnect backoff; doubles per failed attempt (jittered,
    /// via the shared [`desim::Backoff`] schedule).
    pub backoff_start: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Connection attempts per (re)connect before giving up.
    pub max_attempts: u32,
    /// Ship a device snapshot to the controller every this many cycles
    /// while a group computes, so a requeued group can resume from its
    /// last checkpointed cycle instead of cycle 0. `0` disables
    /// checkpointing.
    pub checkpoint_interval: u64,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            capacity: 1,
            exec: ExecConfig::default(),
            tuned: autotune::TunePolicy::default(),
            fault: None,
            heartbeat_interval: Duration::from_millis(100),
            reconnect: true,
            backoff_start: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
            max_attempts: 8,
            checkpoint_interval: 0,
        }
    }
}

/// A warm per-design engine: elaborated design + prepared kernel program.
struct Engine {
    design: Design,
    program: KernelProgram,
    map: PortMap,
    /// The tuned artifact this engine was built with, if the cache hit.
    tuned: Option<autotune::TunedArtifact>,
}

/// What one batch needs at group-execution time.
struct BatchInfo {
    design_key: u64,
    cycles: u64,
    lanes: u32,
}

/// Spawn [`run_worker`] on its own thread (the in-process loopback shape
/// used by `cluster-sim` and the tests).
pub fn spawn_worker(addr: SocketAddr, cfg: WorkerConfig) -> JoinHandle<Result<(), ClusterError>> {
    std::thread::spawn(move || run_worker(addr, cfg))
}

/// Run a worker until the controller says `Goodbye`, the connection is
/// lost with reconnects disabled, or every reconnect attempt fails.
pub fn run_worker(addr: SocketAddr, mut cfg: WorkerConfig) -> Result<(), ClusterError> {
    // The engine cache outlives connections: a worker that drops and
    // rejoins does not pay elaboration again. Part engines (model-parallel
    // sub-design programs) are cached separately, keyed by the cut too.
    let mut engines: HashMap<u64, Engine> = HashMap::new();
    let mut part_engines: HashMap<(u64, u32, u32), PartEngine> = HashMap::new();
    loop {
        let stream = connect_with_backoff(addr, &cfg)?;
        match serve_connection(stream, &mut cfg, &mut engines, &mut part_engines) {
            ConnectionEnd::Goodbye => return Ok(()),
            ConnectionEnd::Lost => {
                if !cfg.reconnect {
                    return Ok(());
                }
            }
        }
    }
}

/// Dial the controller with jittered exponential backoff and register.
fn connect_with_backoff(addr: SocketAddr, cfg: &WorkerConfig) -> Result<TcpStream, ClusterError> {
    // Seeded per (port, capacity) so a fleet of identical workers
    // restarting together fans out instead of re-dialing in lockstep,
    // while each individual schedule stays deterministic.
    let seed = u64::from(addr.port()) ^ (u64::from(cfg.capacity) << 16);
    let mut backoff = desim::Backoff::new(cfg.backoff_start, cfg.backoff_max, seed);
    let mut last: Option<std::io::Error> = None;
    for attempt in 0..cfg.max_attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(backoff.next_delay());
        }
        match TcpStream::connect(addr) {
            Ok(mut stream) => {
                stream.set_nodelay(true).ok();
                write_frame(
                    &mut stream,
                    &Frame::Hello {
                        proto: VERSION,
                        capacity: cfg.capacity.max(1),
                    },
                )?;
                match read_frame(&mut stream)? {
                    (Frame::Welcome { .. }, _) => return Ok(stream),
                    (Frame::Error { context }, _) => {
                        return Err(ClusterError::Protocol(format!(
                            "controller refused registration: {context}"
                        )))
                    }
                    (other, _) => {
                        return Err(ClusterError::Protocol(format!(
                            "expected Welcome, got {other:?}"
                        )))
                    }
                }
            }
            Err(e) => last = Some(e),
        }
    }
    Err(ClusterError::Io(last.unwrap_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::TimedOut, "no connection attempts made")
    })))
}

enum ConnectionEnd {
    /// Orderly shutdown: never reconnect.
    Goodbye,
    /// EOF / wire error / injected fault: reconnect if configured.
    Lost,
}

/// Serve one registered connection until it ends.
fn serve_connection(
    mut stream: TcpStream,
    cfg: &mut WorkerConfig,
    engines: &mut HashMap<u64, Engine>,
    part_engines: &mut HashMap<(u64, u32, u32), PartEngine>,
) -> ConnectionEnd {
    let mut batches: HashMap<u64, BatchInfo> = HashMap::new();
    let mut pickups: u64 = 0;
    loop {
        let frame = match read_frame(&mut stream) {
            Ok((f, _)) => f,
            Err(_) => return ConnectionEnd::Lost,
        };
        match frame {
            Frame::BatchStart(desc) => {
                if let Err(context) = start_batch(&desc, engines, &mut batches, &cfg.tuned) {
                    // A design this worker cannot build is reported, not
                    // fatal: the controller requeues onto other workers.
                    let _ = write_frame(&mut stream, &Frame::Error { context });
                }
            }
            Frame::RunGroup(g) => {
                let mut die_mid: Option<(u64, FaultMode)> = None;
                if let Some(fault) = cfg.fault {
                    if pickups == fault.after_pickups {
                        cfg.fault = None; // consumed: rejoin healthy
                        match fault.mid_cycle {
                            None => match fault.mode {
                                FaultMode::Disconnect => return ConnectionEnd::Lost,
                                FaultMode::Silent => {
                                    // Stop responding but keep the socket
                                    // open; drain frames until the controller
                                    // gives up and closes it.
                                    while read_frame(&mut stream).is_ok() {}
                                    return ConnectionEnd::Lost;
                                }
                            },
                            // Die mid-group instead: run the group's
                            // first cycles (emitting due checkpoints),
                            // then crash without replying.
                            Some(cycle) => die_mid = Some((cycle, fault.mode)),
                        }
                    }
                }
                pickups += 1;
                // Liveness marker before the compute burst.
                if write_frame(&mut stream, &Frame::Heartbeat { seq: pickups }).is_err() {
                    return ConnectionEnd::Lost;
                }
                let result = run_with_heartbeats(&stream, cfg.heartbeat_interval, |sink| {
                    run_group(
                        &g,
                        &batches,
                        engines,
                        &cfg.exec,
                        cfg.checkpoint_interval,
                        die_mid.map(|(c, _)| c),
                        sink,
                    )
                });
                let reply = match result {
                    Ok(chunk) => Frame::Chunk(chunk),
                    Err(GroupEnd::Failed(context)) => Frame::Error { context },
                    Err(GroupEnd::Fault) => {
                        // The injected mid-group crash: no reply, the
                        // connection dies the way the fault mode says.
                        match die_mid.map(|(_, m)| m).unwrap_or(FaultMode::Disconnect) {
                            FaultMode::Disconnect => return ConnectionEnd::Lost,
                            FaultMode::Silent => {
                                while read_frame(&mut stream).is_ok() {}
                                return ConnectionEnd::Lost;
                            }
                        }
                    }
                };
                if write_frame(&mut stream, &reply).is_err() {
                    return ConnectionEnd::Lost;
                }
            }
            Frame::RunPart(p) => {
                let mut dispatch = p;
                loop {
                    let mut die_mid: Option<u64> = None;
                    let mut die_mode = FaultMode::Disconnect;
                    if let Some(fault) = cfg.fault {
                        if pickups == fault.after_pickups {
                            cfg.fault = None; // consumed: rejoin healthy
                            match fault.mid_cycle {
                                None => match fault.mode {
                                    FaultMode::Disconnect => return ConnectionEnd::Lost,
                                    FaultMode::Silent => {
                                        while read_frame(&mut stream).is_ok() {}
                                        return ConnectionEnd::Lost;
                                    }
                                },
                                Some(cycle) => {
                                    die_mid = Some(cycle);
                                    die_mode = fault.mode;
                                }
                            }
                        }
                    }
                    pickups += 1;
                    if write_frame(&mut stream, &Frame::Heartbeat { seq: pickups }).is_err() {
                        return ConnectionEnd::Lost;
                    }
                    let end = match ensure_part_engine(&dispatch, &batches, engines, part_engines) {
                        Err(context) => PartEnd::Failed(context),
                        Ok(key) => {
                            let pe = &part_engines[&key];
                            let info = &batches[&dispatch.batch];
                            run_with_heartbeats(&stream, cfg.heartbeat_interval, |sink| {
                                run_part(&stream, sink, &dispatch, info, pe, cfg, die_mid)
                            })
                        }
                    };
                    match end {
                        PartEnd::Done(r) => {
                            if write_frame(&mut stream, &Frame::PartDone(*r)).is_err() {
                                return ConnectionEnd::Lost;
                            }
                            break;
                        }
                        PartEnd::Failed(context) => {
                            if write_frame(&mut stream, &Frame::Error { context }).is_err() {
                                return ConnectionEnd::Lost;
                            }
                            break;
                        }
                        // The abort ack was already echoed from inside the
                        // boundary wait; just drop the doomed epoch.
                        PartEnd::Aborted => break,
                        PartEnd::Preempted(next) => {
                            dispatch = *next;
                            continue;
                        }
                        PartEnd::Lost => return ConnectionEnd::Lost,
                        PartEnd::Goodbye => return ConnectionEnd::Goodbye,
                        PartEnd::Fault => match die_mode {
                            FaultMode::Disconnect => return ConnectionEnd::Lost,
                            FaultMode::Silent => {
                                while read_frame(&mut stream).is_ok() {}
                                return ConnectionEnd::Lost;
                            }
                        },
                    }
                }
            }
            // A rollback barrier arriving while no part is running (this
            // part already finished its epoch): ack it so the controller's
            // drain completes, then wait for the re-dispatch.
            Frame::PartAbort {
                batch,
                group,
                epoch,
            } => {
                if write_frame(
                    &mut stream,
                    &Frame::PartAbort {
                        batch,
                        group,
                        epoch,
                    },
                )
                .is_err()
                {
                    return ConnectionEnd::Lost;
                }
            }
            Frame::Heartbeat { seq } => {
                if write_frame(&mut stream, &Frame::HeartbeatAck { seq }).is_err() {
                    return ConnectionEnd::Lost;
                }
            }
            Frame::Goodbye => return ConnectionEnd::Goodbye,
            // Acks and stray frames are harmless; a controller bug must
            // not crash the worker.
            Frame::HeartbeatAck { .. } | Frame::Error { .. } => {}
            Frame::Hello { .. } | Frame::Welcome { .. } | Frame::Chunk(_) => {}
            Frame::Checkpoint(_) => {}
            // Stale boundary traffic between parts is discarded, same as
            // inside the wait loop (rollback makes it harmless).
            Frame::Boundary(_) | Frame::PartDone(_) | Frame::PartCheckpoint(_) => {}
        }
    }
}

/// A mutex-serialized side channel for frames written *while a group
/// computes* — checkpoint snapshots from the compute thread and
/// heartbeats from the ticker share one cloned stream, so their frame
/// bytes can never interleave on the wire. Send failures are swallowed:
/// a checkpoint is an optimization, and a dying connection surfaces at
/// the reply write anyway.
pub(crate) struct FrameSink<'a> {
    stream: Option<&'a Mutex<TcpStream>>,
}

impl FrameSink<'_> {
    fn send(&self, frame: &Frame) {
        if let Some(m) = self.stream {
            if let Ok(mut s) = m.lock() {
                let _ = write_frame(&mut *s, frame);
            }
        }
    }
}

/// Run `compute` while a ticker thread writes `Heartbeat` frames on a
/// clone of `stream` every `interval`, so a group whose compute outlives
/// the controller's `heartbeat_timeout` keeps extending its per-group
/// read deadline instead of being falsely declared dead. `compute`
/// receives a [`FrameSink`] sharing the ticker's stream (mutex-guarded)
/// for mid-compute checkpoint frames. The ticker is joined (via the
/// scope) before this returns, so the caller's reply write can never
/// interleave with a heartbeat or checkpoint frame.
fn run_with_heartbeats<T>(
    stream: &TcpStream,
    interval: Duration,
    compute: impl FnOnce(&FrameSink<'_>) -> T,
) -> T {
    let done = AtomicBool::new(false);
    // If the clone fails we just compute without heartbeats or
    // checkpoints: short groups still finish inside the controller's
    // deadline.
    let shared = stream.try_clone().ok().map(Mutex::new);
    std::thread::scope(|s| {
        if let Some(m) = shared.as_ref() {
            let done = &done;
            s.spawn(move || {
                let step = Duration::from_millis(10).min(interval.max(Duration::from_millis(1)));
                let mut seq = 0u64;
                loop {
                    let mut slept = Duration::ZERO;
                    while slept < interval {
                        // Short sleep steps keep the post-compute join
                        // prompt without a condvar.
                        if done.load(Ordering::Acquire) {
                            return;
                        }
                        std::thread::sleep(step);
                        slept += step;
                    }
                    if done.load(Ordering::Acquire) {
                        return;
                    }
                    seq += 1;
                    let dead = match m.lock() {
                        Ok(mut s) => write_frame(&mut *s, &Frame::Heartbeat { seq }).is_err(),
                        Err(_) => true,
                    };
                    if dead {
                        return;
                    }
                }
            });
        }
        let sink = FrameSink {
            stream: shared.as_ref(),
        };
        let result = compute(&sink);
        done.store(true, Ordering::Release);
        result
    })
}

/// Elaborate + prepare (or reuse) the engine for a batch descriptor.
fn start_batch(
    desc: &BatchDescriptor,
    engines: &mut HashMap<u64, Engine>,
    batches: &mut HashMap<u64, BatchInfo>,
    policy: &autotune::TunePolicy,
) -> Result<(), String> {
    if let std::collections::hash_map::Entry::Vacant(slot) = engines.entry(desc.design_key) {
        let design = netlist::load_design(&desc.verilog, &desc.top)
            .map_err(|e| format!("batch {}: elaborate '{}': {e}", desc.batch, desc.top))?;
        let key = rtlir::design_hash(&design);
        if key != desc.design_key {
            return Err(format!(
                "batch {}: design hash mismatch (controller {:#018x}, worker {key:#018x})",
                desc.batch, desc.design_key
            ));
        }
        let model = cudasim::GpuModel::default();
        // Engine-cache fill consults the tuned-artifact cache; a miss or
        // a failing tuned build degrades to `pipeline::prepare` semantics.
        let (built, tuned) = autotune::prepare_with_policy(&design, &model, policy);
        let (program, _graph) = built.map_err(|e| format!("batch {}: prepare: {e}", desc.batch))?;
        let map = PortMap::from_design(&design);
        slot.insert(Engine {
            design,
            program,
            map,
            tuned,
        });
    }
    let lanes = engines[&desc.design_key].map.len() as u32;
    if desc.lanes != lanes {
        return Err(format!(
            "batch {}: controller says {} input lanes, design has {lanes}",
            desc.batch, desc.lanes
        ));
    }
    batches.insert(
        desc.batch,
        BatchInfo {
            design_key: desc.design_key,
            cycles: desc.cycles,
            lanes,
        },
    );
    Ok(())
}

/// Why a group run produced no chunk.
enum GroupEnd {
    /// Contextful execution failure, reported to the controller.
    Failed(String),
    /// An injected mid-group crash fired: die without replying.
    Fault,
}

/// Functionally execute one dispatched group and digest its outputs.
/// Every failure path is a contextful `Err` — a malformed dispatch must
/// never panic the worker.
///
/// Cycle-resume discipline: a dispatch carrying a valid checkpoint image
/// restores the device state and starts at `resume_cycle`; since the
/// per-cycle step is a pure function of (device state, that cycle's
/// input frames), the continuation is bit-identical to a cold run. An
/// image that fails *any* validation (decode, design, range, shape)
/// falls back to cycle 0 — resume is an optimization, never a
/// correctness dependency.
fn run_group(
    g: &crate::wire::GroupDispatch,
    batches: &HashMap<u64, BatchInfo>,
    engines: &HashMap<u64, Engine>,
    exec: &ExecConfig,
    checkpoint_interval: u64,
    die_at_cycle: Option<u64>,
    sink: &FrameSink<'_>,
) -> Result<ResultChunk, GroupEnd> {
    let fail = GroupEnd::Failed;
    let info = batches.get(&g.batch).ok_or_else(|| {
        fail(format!(
            "group {} references unknown batch {}",
            g.group, g.batch
        ))
    })?;
    let engine = engines
        .get(&info.design_key)
        .ok_or_else(|| fail(format!("batch {} lost its engine", g.batch)))?;
    // Tuned exec applies only when the configured exec is the default —
    // an explicit strategy choice always wins over the cache.
    let exec = &autotune::resolve_exec(*exec, engine.tuned.as_ref());
    let len = g.len as usize;
    let lanes = info.lanes as usize;
    let expect = len
        .checked_mul(info.cycles as usize)
        .and_then(|x| x.checked_mul(lanes))
        .ok_or_else(|| fail(format!("group {}: frame count overflows", g.group)))?;
    if g.frames.len() != expect {
        return Err(fail(format!(
            "group {}: {} frame words, expected {expect} ({len} stim × {} cycles × {lanes} lanes)",
            g.group,
            g.frames.len(),
            info.cycles
        )));
    }
    let mut dev = engine.program.plan.alloc_device(len);
    let mut start_cycle = 0u64;
    if g.resume_cycle > 0 && !g.resume_image.is_empty() {
        if let Ok(ck) = Checkpoint::decode(&g.resume_image) {
            if ck.design_hash == info.design_key
                && ck.cycle == g.resume_cycle
                && ck.cycle < info.cycles
                && ck.tid0 == g.tid0
                && ck.n() == len
                && ck.restore_into(&mut dev).is_ok()
            {
                start_cycle = ck.cycle;
            }
        }
    }
    let mut scratches: Vec<Scratch> = (0..exec.thread_count().max(1))
        .map(|_| Scratch::new())
        .collect();
    for c in start_cycle as usize..info.cycles as usize {
        for s in 0..len {
            let base = (s * info.cycles as usize + c) * lanes;
            for (lane, port) in engine.map.ports.iter().enumerate() {
                engine
                    .program
                    .plan
                    .poke(&mut dev, port.var, s, g.frames[base + lane]);
            }
        }
        engine
            .program
            .run_cycle_exec(&mut dev, &mut scratches, 0, len, exec);
        let completed = c as u64 + 1;
        if checkpoint_interval > 0
            && completed.is_multiple_of(checkpoint_interval)
            && completed < info.cycles
        {
            let image = Checkpoint::capture(&dev, info.design_key, completed, g.tid0).encode();
            sink.send(&Frame::Checkpoint(CheckpointUpdate {
                batch: g.batch,
                group: g.group,
                tid0: g.tid0,
                cycle: completed,
                image,
            }));
        }
        if die_at_cycle.is_some_and(|k| completed >= k) {
            return Err(GroupEnd::Fault);
        }
    }
    let digests = (0..len)
        .map(|i| engine.program.plan.output_digest(&dev, &engine.design, i))
        .collect();
    Ok(ResultChunk {
        batch: g.batch,
        group: g.group,
        tid0: g.tid0,
        digests,
    })
}

/// How a model-parallel part run ended.
enum PartEnd {
    /// Finished: final outputs and overlap timings, ready to reply.
    Done(Box<PartResult>),
    /// Contextful failure, reported to the controller.
    Failed(String),
    /// The controller aborted this epoch; the ack was already echoed.
    Aborted,
    /// A fresh dispatch arrived mid-part (defensive; the controller
    /// normally aborts first). The caller restarts with it.
    Preempted(Box<PartDispatch>),
    /// The connection died.
    Lost,
    /// Orderly shutdown arrived mid-wait.
    Goodbye,
    /// An injected mid-part crash fired: die without replying.
    Fault,
}

/// Build (or reuse) the compiled engine for one part of a K-way cut.
/// The cut is a pure function of `(design, k)`, so the worker re-derives
/// exactly the partition the controller planned with.
fn ensure_part_engine(
    p: &PartDispatch,
    batches: &HashMap<u64, BatchInfo>,
    engines: &HashMap<u64, Engine>,
    part_engines: &mut HashMap<(u64, u32, u32), PartEngine>,
) -> Result<(u64, u32, u32), String> {
    let info = batches.get(&p.batch).ok_or_else(|| {
        format!(
            "part {} of group {} references unknown batch {}",
            p.part, p.group, p.batch
        )
    })?;
    let key = (info.design_key, p.k, p.part);
    if let std::collections::hash_map::Entry::Vacant(e) = part_engines.entry(key) {
        let engine = engines
            .get(&info.design_key)
            .ok_or_else(|| format!("batch {} lost its engine", p.batch))?;
        let graph = rtlir::RtlGraph::build(&engine.design)
            .map_err(|e| format!("part {}: graph: {e}", p.part))?;
        let spec = partition::PartitionSpec::compute(&engine.design, &graph, p.k as usize)
            .map_err(|e| format!("k={}: {e}", p.k))?;
        let pe = PartEngine::build(&engine.design, &spec, p.part as usize)
            .map_err(|e| format!("part {}: {e}", p.part))?;
        e.insert(pe);
    }
    Ok(key)
}

/// Everything a boundary wait needs about the running part.
struct PartCtx<'a> {
    stream: &'a TcpStream,
    sink: &'a FrameSink<'a>,
    p: &'a PartDispatch,
    pe: &'a PartEngine,
    len: usize,
}

/// Boundary-exchange bookkeeping across the cycle loop.
struct ExchangeState {
    /// Out-of-order frames keyed `(exporter part, cycle)`. Peers with no
    /// imports of their own can run ahead; their frames buffer here.
    buffered: HashMap<(u32, u64), Vec<u8>>,
    /// Exchange latency hidden behind compute (ns).
    hidden_ns: u64,
    /// Time spent blocked waiting for boundary frames (ns).
    stall_ns: u64,
    /// When this part's own export for the previous cycle went out —
    /// the start of the window in which the exchange is in flight.
    exchange_start: Option<Instant>,
}

/// Execute one dispatched part of a model-parallel group: the same
/// poke / `pre` / apply-imports / `mid` / export / `post` cycle protocol
/// as `modelpar::simulate_modelpar`, with the boundary payloads crossing
/// the controller instead of a function call. `pre` runs while the
/// previous cycle's exchange is still in flight — that window is the
/// communication/compute overlap reported as `hidden_ns`.
fn run_part(
    stream: &TcpStream,
    sink: &FrameSink<'_>,
    p: &PartDispatch,
    info: &BatchInfo,
    pe: &PartEngine,
    cfg: &WorkerConfig,
    die_at_cycle: Option<u64>,
) -> PartEnd {
    let exec = &cfg.exec;
    let len = p.len as usize;
    let lanes = info.lanes as usize;
    let cycles = info.cycles;
    let expect = len
        .checked_mul(cycles as usize)
        .and_then(|x| x.checked_mul(lanes));
    if expect != Some(p.frames.len()) {
        return PartEnd::Failed(format!(
            "part {}: {} frame words, expected {expect:?}",
            p.part,
            p.frames.len()
        ));
    }
    let mut dev = pe.program.plan.alloc_device(len);
    let mut start_cycle = 0u64;
    if p.start_cycle > 0 {
        // Unlike data-parallel resume, a part may NOT silently fall back
        // to cycle 0: all K parts must restart from the same cycle or
        // determinism breaks. A bad image is an error the controller
        // turns into another rollback.
        let ok = Checkpoint::decode(&p.resume_image).is_ok_and(|ck| {
            ck.design_hash == pe.design_hash
                && ck.cycle == p.start_cycle
                && ck.cycle < cycles
                && ck.tid0 == p.tid0
                && ck.n() == len
                && ck.restore_into(&mut dev).is_ok()
        });
        if !ok {
            return PartEnd::Failed(format!(
                "part {}: resume image for cycle {} failed validation",
                p.part, p.start_cycle
            ));
        }
        start_cycle = p.start_cycle;
    }
    let mut scratches: Vec<Scratch> = (0..exec.thread_count().max(1))
        .map(|_| Scratch::new())
        .collect();
    let mut xs = ExchangeState {
        buffered: HashMap::new(),
        hidden_ns: 0,
        stall_ns: 0,
        exchange_start: None,
    };
    let ctx = PartCtx {
        stream,
        sink,
        p,
        pe,
        len,
    };
    let has_exports = pe.export_codec.num_vars() > 0;
    let boundary = |cycle: u64, payload: Vec<u8>| {
        Frame::Boundary(BoundaryFrame {
            batch: p.batch,
            group: p.group,
            part: p.part,
            epoch: p.epoch,
            cycle,
            payload,
        })
    };
    // A resumed part re-announces its boundary state for the cycle just
    // before the restart point: the restored device holds exactly the
    // post-commit state of `start_cycle - 1`, which is what peers need to
    // apply at `start_cycle`.
    if start_cycle > 0 && has_exports {
        sink.send(&boundary(start_cycle - 1, pe.extract_exports(&dev, len)));
        xs.exchange_start = Some(Instant::now());
    }
    for c in start_cycle..cycles {
        for s in 0..len {
            let base = (s * cycles as usize + c as usize) * lanes;
            for (lane, &lv) in pe.sub.parent_inputs.iter().enumerate() {
                pe.program.plan.poke(&mut dev, lv, s, p.frames[base + lane]);
            }
        }
        pe.run_phase(&pe.pre, &mut dev, &mut scratches, 0, len, exec);
        if c > 0 && !pe.imports.is_empty() {
            if let Err(end) = wait_and_apply(&ctx, &mut dev, c - 1, &mut xs) {
                return end;
            }
        }
        pe.run_phase(&pe.mid, &mut dev, &mut scratches, 0, len, exec);
        if has_exports {
            sink.send(&boundary(c, pe.extract_exports(&dev, len)));
            xs.exchange_start = Some(Instant::now());
        }
        pe.run_phase(&pe.post, &mut dev, &mut scratches, 0, len, exec);
        let completed = c + 1;
        if cfg.checkpoint_interval > 0
            && completed.is_multiple_of(cfg.checkpoint_interval)
            && completed < cycles
        {
            let image = Checkpoint::capture(&dev, pe.design_hash, completed, p.tid0).encode();
            sink.send(&Frame::PartCheckpoint(PartCheckpointUpdate {
                batch: p.batch,
                group: p.group,
                part: p.part,
                epoch: p.epoch,
                tid0: p.tid0,
                cycle: completed,
                image,
            }));
        }
        if die_at_cycle.is_some_and(|k| completed >= k) {
            return PartEnd::Fault;
        }
    }
    // Final settle: apply the peers' last exports and re-run pass 1 so
    // comb-driven outputs reflect final remote state (mid-run, pass-2's
    // one-cycle-stale view self-corrects; at the end nothing would).
    if cycles > 0 && !pe.imports.is_empty() {
        if let Err(end) = wait_and_apply(&ctx, &mut dev, cycles - 1, &mut xs) {
            return end;
        }
        pe.run_phase(&pe.refresh, &mut dev, &mut scratches, 0, len, exec);
    }
    let mut outputs = vec![0u64; pe.sub.outputs.len() * len];
    for (o, &lv) in pe.sub.outputs.iter().enumerate() {
        for s in 0..len {
            outputs[o * len + s] = pe.program.plan.peek(&dev, lv, s);
        }
    }
    PartEnd::Done(Box::new(PartResult {
        batch: p.batch,
        group: p.group,
        part: p.part,
        epoch: p.epoch,
        tid0: p.tid0,
        outputs,
        hidden_ns: xs.hidden_ns,
        stall_ns: xs.stall_ns,
    }))
}

/// Block until every import peer's boundary frame for `cycle` is here,
/// then apply them all. Frames for other cycles buffer; control frames
/// (abort, re-dispatch, shutdown) end the part via `Err`.
fn wait_and_apply(
    ctx: &PartCtx<'_>,
    dev: &mut DeviceMemory,
    cycle: u64,
    xs: &mut ExchangeState,
) -> Result<(), PartEnd> {
    let p = ctx.p;
    let wait_start = Instant::now();
    if let Some(t0) = xs.exchange_start.take() {
        // Time between sending our own export and needing the peers' —
        // exchange latency hidden behind post/poke/pre compute.
        xs.hidden_ns += wait_start.duration_since(t0).as_nanos() as u64;
    }
    for link in &ctx.pe.imports {
        let key = (link.from as u32, cycle);
        while !xs.buffered.contains_key(&key) {
            match read_frame(&mut &*ctx.stream) {
                Ok((Frame::Boundary(b), _)) => {
                    if b.batch == p.batch && b.group == p.group && b.epoch == p.epoch {
                        xs.buffered.insert((b.part, b.cycle), b.payload);
                    }
                }
                Ok((
                    Frame::PartAbort {
                        batch,
                        group,
                        epoch,
                    },
                    _,
                )) => {
                    // Always echo the ack; only abort when it names an
                    // epoch at least as new as the one running.
                    ctx.sink.send(&Frame::PartAbort {
                        batch,
                        group,
                        epoch,
                    });
                    if batch == p.batch && group == p.group && epoch >= p.epoch {
                        return Err(PartEnd::Aborted);
                    }
                }
                Ok((Frame::RunPart(next), _)) => return Err(PartEnd::Preempted(Box::new(next))),
                Ok((Frame::Heartbeat { seq }, _)) => ctx.sink.send(&Frame::HeartbeatAck { seq }),
                Ok((Frame::Goodbye, _)) => return Err(PartEnd::Goodbye),
                Ok(_) => {}
                Err(_) => return Err(PartEnd::Lost),
            }
        }
        let payload = &xs.buffered[&key];
        if let Err(e) = ctx.pe.apply_import(link, payload, dev, ctx.len) {
            return Err(PartEnd::Failed(format!(
                "part {}: boundary from part {}: {e}",
                p.part, link.from
            )));
        }
    }
    // Applied frames can never be needed again; drop them (and anything
    // older) to bound memory when peers run ahead.
    xs.buffered.retain(|&(_, cyc), _| cyc > cycle);
    xs.stall_ns += wait_start.elapsed().as_nanos() as u64;
    Ok(())
}
