//! Deterministic chaos schedules.
//!
//! `--chaos <seed>` turns the single-fault injection of `--kill-worker`
//! into a scripted campaign: a pure function of `(seed, workers, cycles,
//! checkpoint_interval)` decides which workers die, at which pickup, how
//! many cycles into their group, and whether they disconnect or go
//! silent. Because the schedule is deterministic, a failing CI chaos run
//! reproduces locally from nothing but the seed — and because every
//! fault is scripted at cycle granularity, the schedule can deliberately
//! kill workers *past* a checkpoint boundary, proving the resume path
//! end to end (`--verify` compares against the uninterrupted run).

use stimulus::splitmix64;

use crate::worker::{FaultMode, WorkerFault};

/// A scripted set of worker faults derived from one seed.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    pub seed: u64,
    /// `(worker index, fault)` — at most one fault per worker.
    pub faults: Vec<(usize, WorkerFault)>,
}

impl ChaosPlan {
    /// Script faults for a `workers`-strong cluster running `cycles`
    /// cycles per batch. Roughly half the workers (always at least one,
    /// and always leaving one survivor when there is more than one
    /// worker) die mid-group; when `checkpoint_interval` is active the
    /// death cycle is scripted at or past the first checkpoint boundary
    /// so recovery must resume rather than restart.
    pub fn generate(seed: u64, workers: usize, cycles: u64, checkpoint_interval: u64) -> ChaosPlan {
        let mut faults: Vec<(usize, WorkerFault)> = Vec::new();
        if workers == 0 || cycles == 0 {
            return ChaosPlan { seed, faults };
        }
        let victims = if workers == 1 {
            1
        } else {
            (workers / 2).max(1).min(workers - 1)
        };
        let mut s = splitmix64(seed ^ 0x9e37_79b9_7f4a_7c15);
        for _ in 0..victims {
            // Distinct victim via linear probing.
            s = splitmix64(s);
            let mut w = (s % workers as u64) as usize;
            while faults.iter().any(|&(v, _)| v == w) {
                w = (w + 1) % workers;
            }
            s = splitmix64(s);
            let mode = if s.is_multiple_of(4) {
                FaultMode::Silent
            } else {
                FaultMode::Disconnect
            };
            s = splitmix64(s);
            // Death cycle: past the first checkpoint boundary when one
            // exists, otherwise anywhere inside the group's run.
            let mid_cycle = if checkpoint_interval > 0 && cycles > checkpoint_interval {
                checkpoint_interval + s % (cycles - checkpoint_interval)
            } else {
                1 + s % cycles.max(1)
            };
            // Always the first pickup: a later pickup might never happen
            // on a small batch, silently turning the campaign into a
            // no-fault run.
            faults.push((
                w,
                WorkerFault {
                    after_pickups: 0,
                    mode,
                    mid_cycle: Some(mid_cycle),
                },
            ));
        }
        faults.sort_by_key(|&(w, _)| w);
        ChaosPlan { seed, faults }
    }

    /// The fault scripted for worker `index`, if any.
    pub fn fault_for(&self, index: usize) -> Option<WorkerFault> {
        self.faults
            .iter()
            .find(|&&(w, _)| w == index)
            .map(|&(_, f)| f)
    }

    /// Human-readable schedule, one line per scripted fault.
    pub fn describe(&self) -> String {
        let mut out = format!("chaos seed {:#x}:\n", self.seed);
        for (w, f) in &self.faults {
            out.push_str(&format!(
                "  worker {w}: {} at pickup {}{}\n",
                match f.mode {
                    FaultMode::Disconnect => "disconnect",
                    FaultMode::Silent => "go silent",
                },
                f.after_pickups,
                match f.mid_cycle {
                    Some(c) => format!(", {c} cycles into the group"),
                    None => String::new(),
                }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_inputs() {
        let a = ChaosPlan::generate(7, 4, 64, 16);
        let b = ChaosPlan::generate(7, 4, 64, 16);
        assert_eq!(a.faults.len(), b.faults.len());
        for ((wa, fa), (wb, fb)) in a.faults.iter().zip(&b.faults) {
            assert_eq!(wa, wb);
            assert_eq!(fa.after_pickups, fb.after_pickups);
            assert_eq!(fa.mode, fb.mode);
            assert_eq!(fa.mid_cycle, fb.mid_cycle);
        }
    }

    #[test]
    fn leaves_a_survivor_and_respects_checkpoint_boundary() {
        for seed in 0..32u64 {
            let plan = ChaosPlan::generate(seed, 4, 64, 16);
            assert!(!plan.faults.is_empty());
            assert!(plan.faults.len() < 4, "must leave a survivor");
            let victims: std::collections::BTreeSet<usize> =
                plan.faults.iter().map(|&(w, _)| w).collect();
            assert_eq!(victims.len(), plan.faults.len(), "victims distinct");
            for (_, f) in &plan.faults {
                let c = f.mid_cycle.expect("chaos faults are mid-group");
                assert!(
                    (16..64).contains(&c),
                    "death cycle {c} must land at/past the checkpoint boundary"
                );
            }
        }
    }

    #[test]
    fn single_worker_and_zero_cycles_edge_cases() {
        let plan = ChaosPlan::generate(3, 1, 8, 0);
        assert_eq!(plan.faults.len(), 1);
        assert!(plan.fault_for(0).is_some());
        assert!(ChaosPlan::generate(3, 0, 8, 4).faults.is_empty());
        assert!(ChaosPlan::generate(3, 4, 0, 4).faults.is_empty());
        assert!(plan.describe().contains("worker 0"));
    }
}
