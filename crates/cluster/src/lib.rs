//! `cluster` — fault-tolerant multi-node distributed simulation over TCP.
//!
//! The paper accelerates batch-stimulus RTL simulation on one GPU; this
//! crate is the layer that takes the flow beyond one host (in the spirit
//! of Parendi's thousand-way partitioning, see PAPERS.md): a
//! **controller** cuts a coalesced batch into stimulus groups and
//! schedules them over TCP onto registered **workers**, each of which
//! runs the same warm per-design engine
//! ([`rtlir::design_hash`]-keyed) through the existing
//! `pipeline`/`cudasim` vectorized executor and streams result chunks
//! back as groups complete.
//!
//! Everything is `std`-only — `std::net::TcpStream` and a hand-rolled
//! length-prefixed binary wire protocol ([`wire`]) — so the workspace
//! stays fully offline.
//!
//! # Fault tolerance
//!
//! The failure model mirrors `shard::fault`, one layer up:
//!
//! * group inputs are materialized controller-side as a pure function of
//!   `(stimulus id, cycle)` and shipped with each dispatch, so re-running
//!   a group anywhere is idempotent;
//! * digests commit only when a result chunk arrives (first commit
//!   wins), so partial work from a dying worker cannot leak;
//! * a dead worker — detected by EOF, a wire error, or a heartbeat
//!   timeout — has its in-flight group and backlog requeued round-robin
//!   onto survivors, and workers reconnect with exponential backoff so a
//!   batch stranded with zero workers can adopt a returning one;
//! * with a `checkpoint_interval` configured, workers ship mid-group
//!   device snapshots (versioned, checksummed [`cudasim::Checkpoint`]
//!   images over the v2 `Checkpoint` frame), and a requeued group
//!   resumes on a survivor from its last checkpointed cycle instead of
//!   cycle 0 — still bit-identical, because the per-cycle step is a pure
//!   function of (device state, that cycle's inputs).
//!
//! Results are therefore bit-identical regardless of worker count,
//! capacities, mid-run deaths, or checkpoint resumes — verified end to
//! end by `tests/cluster_determinism.rs` against single-process
//! `simulate_sharded`, and under scripted [`chaos::ChaosPlan`] fault
//! campaigns.
//!
//! # Model parallelism (wire v3)
//!
//! Besides the batch axis, the controller can cut the *design* into K
//! parts ([`partition::PartitionSpec`]) and co-simulate one group across
//! K workers ([`Controller::run_batch_modelpar`]): each worker compiles
//! its part's sub-design ([`modelpar::PartEngine`]) and exchanges packed
//! boundary-signal frames ([`wire::BoundaryFrame`], width-bucketed with
//! bit-transposed 1-bit nets) once per cycle, relayed by the controller.
//! Exchange latency overlaps with the part levels that don't depend on
//! remote inputs; a partition-replica death rolls every part back to the
//! deepest common checkpoint cycle and re-dispatches under a bumped
//! epoch, preserving bit-identical digests.

pub mod chaos;
pub mod controller;
pub mod error;
pub mod metrics;
pub mod wire;
pub mod worker;

pub use chaos::ChaosPlan;
pub use controller::{ClusterConfig, ClusterJobResult, Controller};
pub use error::ClusterError;
pub use metrics::{ClusterMetrics, WorkerReport};
pub use wire::{
    BoundaryFrame, CheckpointUpdate, Frame, PartCheckpointUpdate, PartDispatch, PartResult,
    WireError, MAX_PAYLOAD, VERSION,
};
pub use worker::{run_worker, spawn_worker, FaultMode, WorkerConfig, WorkerFault};
