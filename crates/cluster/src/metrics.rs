//! Cluster-wide and per-worker accounting, accumulated across batches.

use std::time::Duration;

use desim::Json;

/// What one worker connection did over the controller's lifetime.
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Controller-assigned worker id.
    pub worker: u32,
    /// Advertised capacity weight from the worker's `Hello`.
    pub capacity: u32,
    /// `false` once the controller declared the worker dead.
    pub alive: bool,
    /// Groups committed by this worker (requeued pickups do not count).
    pub groups: u64,
    /// Result chunks streamed back.
    pub chunks: u64,
    /// Wall time this worker spent with a group in flight.
    pub busy: Duration,
    /// `busy` over the total time the controller spent running batches —
    /// the per-worker utilization of the cluster.
    pub utilization: f64,
    /// Bytes sent to / received from this worker.
    pub bytes_tx: u64,
    pub bytes_rx: u64,
}

/// Counters for the whole cluster since the controller was bound.
#[derive(Debug, Clone, Default)]
pub struct ClusterMetrics {
    pub workers: Vec<WorkerReport>,
    /// Batches completed.
    pub batches: u64,
    /// Group dispatches sent to workers (re-dispatches after requeue
    /// count again — this is the wire-level dispatch count).
    pub dispatches: u64,
    /// Result chunks received and committed.
    pub chunks_committed: u64,
    /// Groups put back onto survivors after a worker death.
    pub requeues: u64,
    /// Workers declared dead (heartbeat timeout, EOF, or wire error).
    pub worker_deaths: u64,
    /// Of those deaths, how many were detected as heartbeat timeouts
    /// (the silent-failure path) rather than closed connections.
    pub heartbeat_timeouts: u64,
    /// Registrations accepted after at least one worker death — a
    /// replacement or a returning worker rejoining the pool.
    pub reconnects: u64,
    /// Total registrations accepted.
    pub registrations: u64,
    /// Registrations refused (bad protocol version / malformed hello).
    pub rejected_hellos: u64,
    /// Mid-group checkpoint frames accepted from workers.
    pub checkpoints_received: u64,
    /// Total bytes of accepted checkpoint images.
    pub checkpoint_bytes: u64,
    /// Re-dispatches that carried a checkpoint image — groups that
    /// resumed from a checkpointed cycle instead of cycle 0.
    pub groups_resumed: u64,
    /// Total cycles those resumed dispatches did *not* have to recompute.
    pub resume_cycles_skipped: u64,
    /// The highest resumed-from cycle seen — > 0 proves mid-batch
    /// resume actually happened.
    pub max_resume_cycle: u64,
    /// Model-parallel groups completed (each spans K workers).
    pub modelpar_groups: u64,
    /// All-K rollbacks after a partition-replica death mid-group.
    pub modelpar_rollbacks: u64,
    /// Boundary-exchange payload bytes received from parts.
    pub boundary_bytes: u64,
    /// Boundary frames received from parts (one per exporting part per
    /// cycle, so `boundary_bytes / boundary_frames` is the per-cycle
    /// per-part exchange size).
    pub boundary_frames: u64,
    /// Exchange latency parts hid behind compute (summed ns).
    pub overlap_hidden_ns: u64,
    /// Time parts spent stalled waiting for boundary frames (summed ns).
    pub exchange_stall_ns: u64,
    /// Wall time spent inside `run_batch` calls.
    pub busy: Duration,
}

impl ClusterMetrics {
    /// Mean utilization across workers that committed work.
    pub fn mean_utilization(&self) -> f64 {
        let active: Vec<&WorkerReport> = self.workers.iter().filter(|w| w.groups > 0).collect();
        if active.is_empty() {
            return 0.0;
        }
        active.iter().map(|w| w.utilization).sum::<f64>() / active.len() as f64
    }

    /// Render the per-worker table plus cluster totals (the
    /// `cluster-sim` report).
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "  {:>4}  {:>4}  {:>6}  {:>7}  {:>7}  {:>9}  {:>6}  {:>9}  {:>9}\n",
            "wkr", "cap", "alive", "groups", "chunks", "busy(ms)", "util%", "tx(B)", "rx(B)"
        ));
        for w in &self.workers {
            out.push_str(&format!(
                "  {:>4}  {:>4}  {:>6}  {:>7}  {:>7}  {:>9.2}  {:>6.1}  {:>9}  {:>9}\n",
                w.worker,
                w.capacity,
                if w.alive { "yes" } else { "DEAD" },
                w.groups,
                w.chunks,
                w.busy.as_secs_f64() * 1e3,
                w.utilization * 100.0,
                w.bytes_tx,
                w.bytes_rx,
            ));
        }
        out.push_str(&format!(
            "  {} batches, {} dispatches, {} chunks committed\n",
            self.batches, self.dispatches, self.chunks_committed
        ));
        out.push_str(&format!(
            "  deaths {} (timeouts {})  requeued {}  reconnects {}  registrations {}\n",
            self.worker_deaths,
            self.heartbeat_timeouts,
            self.requeues,
            self.reconnects,
            self.registrations,
        ));
        out.push_str(&format!(
            "  checkpoints {} ({} B)  resumed {} (skipped {} cycles, deepest cycle {})\n",
            self.checkpoints_received,
            self.checkpoint_bytes,
            self.groups_resumed,
            self.resume_cycles_skipped,
            self.max_resume_cycle,
        ));
        if self.modelpar_groups > 0 || self.modelpar_rollbacks > 0 || self.boundary_frames > 0 {
            let per_frame = self
                .boundary_bytes
                .checked_div(self.boundary_frames)
                .unwrap_or(0);
            let exchange = self.overlap_hidden_ns + self.exchange_stall_ns;
            let hidden_pct = if exchange > 0 {
                self.overlap_hidden_ns as f64 * 100.0 / exchange as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  model-parallel: {} groups, {} rollbacks  boundary {} B in {} frames \
                 ({per_frame} B/cycle/part)\n",
                self.modelpar_groups,
                self.modelpar_rollbacks,
                self.boundary_bytes,
                self.boundary_frames,
            ));
            out.push_str(&format!(
                "  exchange overlap: {:.2} ms hidden, {:.2} ms stalled ({hidden_pct:.1}% hidden)\n",
                self.overlap_hidden_ns as f64 / 1e6,
                self.exchange_stall_ns as f64 / 1e6,
            ));
        }
        out
    }

    /// Machine-readable snapshot (`cluster-sim --json`), joining the
    /// same `desim::Json` emission path as serve/shard metrics.
    pub fn to_json(&self) -> Json {
        let workers: Vec<Json> = self
            .workers
            .iter()
            .map(|w| {
                Json::obj()
                    .field("worker", w.worker as u64)
                    .field("capacity", w.capacity as u64)
                    .field("alive", w.alive)
                    .field("groups", w.groups)
                    .field("chunks", w.chunks)
                    .field("busy_ms", w.busy.as_secs_f64() * 1e3)
                    .field("utilization", w.utilization)
                    .field("bytes_tx", w.bytes_tx)
                    .field("bytes_rx", w.bytes_rx)
            })
            .collect();
        Json::obj()
            .field("batches", self.batches)
            .field("dispatches", self.dispatches)
            .field("chunks_committed", self.chunks_committed)
            .field("requeues", self.requeues)
            .field("worker_deaths", self.worker_deaths)
            .field("heartbeat_timeouts", self.heartbeat_timeouts)
            .field("reconnects", self.reconnects)
            .field("registrations", self.registrations)
            .field("rejected_hellos", self.rejected_hellos)
            .field("checkpoints_received", self.checkpoints_received)
            .field("checkpoint_bytes", self.checkpoint_bytes)
            .field("groups_resumed", self.groups_resumed)
            .field("resume_cycles_skipped", self.resume_cycles_skipped)
            .field("max_resume_cycle", self.max_resume_cycle)
            .field("modelpar_groups", self.modelpar_groups)
            .field("modelpar_rollbacks", self.modelpar_rollbacks)
            .field("boundary_bytes", self.boundary_bytes)
            .field("boundary_frames", self.boundary_frames)
            .field("overlap_hidden_ns", self.overlap_hidden_ns)
            .field("exchange_stall_ns", self.exchange_stall_ns)
            .field("busy_ms", self.busy.as_secs_f64() * 1e3)
            .field("mean_utilization", self.mean_utilization())
            .field("workers", Json::Arr(workers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ClusterMetrics {
        ClusterMetrics {
            workers: vec![
                WorkerReport {
                    worker: 1,
                    capacity: 2,
                    alive: true,
                    groups: 6,
                    chunks: 6,
                    busy: Duration::from_millis(30),
                    utilization: 0.6,
                    bytes_tx: 1000,
                    bytes_rx: 400,
                },
                WorkerReport {
                    worker: 2,
                    capacity: 1,
                    alive: false,
                    groups: 2,
                    chunks: 2,
                    busy: Duration::from_millis(10),
                    utilization: 0.2,
                    bytes_tx: 500,
                    bytes_rx: 200,
                },
            ],
            batches: 1,
            dispatches: 9,
            chunks_committed: 8,
            requeues: 1,
            worker_deaths: 1,
            heartbeat_timeouts: 0,
            reconnects: 0,
            registrations: 2,
            rejected_hellos: 0,
            checkpoints_received: 3,
            checkpoint_bytes: 4096,
            groups_resumed: 1,
            resume_cycles_skipped: 16,
            max_resume_cycle: 16,
            modelpar_groups: 2,
            modelpar_rollbacks: 1,
            boundary_bytes: 2048,
            boundary_frames: 32,
            overlap_hidden_ns: 3_000_000,
            exchange_stall_ns: 1_000_000,
            busy: Duration::from_millis(50),
        }
    }

    #[test]
    fn mean_utilization_ignores_idle_workers() {
        let mut m = sample();
        assert!((m.mean_utilization() - 0.4).abs() < 1e-12);
        m.workers[1].groups = 0;
        assert!((m.mean_utilization() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn table_flags_dead_workers() {
        let t = sample().table();
        assert!(t.contains("DEAD"));
        assert!(t.contains("reconnects"));
        assert!(t.contains("resumed 1"));
        // The model-parallel row reports boundary traffic and overlap.
        assert!(t.contains("2 groups, 1 rollbacks"));
        assert!(t.contains("boundary 2048 B in 32 frames (64 B/cycle/part)"));
        assert!(t.contains("75.0% hidden"));
    }

    #[test]
    fn json_carries_counters_and_worker_array() {
        let j = sample().to_json().to_string();
        assert!(j.contains("\"requeues\":1"));
        assert!(j.contains("\"worker_deaths\":1"));
        assert!(j.contains("\"checkpoints_received\":3"));
        assert!(j.contains("\"groups_resumed\":1"));
        assert!(j.contains("\"max_resume_cycle\":16"));
        assert!(j.contains("\"modelpar_rollbacks\":1"));
        assert!(j.contains("\"boundary_bytes\":2048"));
        assert!(j.contains("\"overlap_hidden_ns\":3000000"));
        assert!(j.contains("\"exchange_stall_ns\":1000000"));
        assert!(j.contains("\"workers\":[{"));
    }
}
