//! The cluster wire protocol: length-prefixed, versioned binary frames.
//!
//! Every message on a controller↔worker connection is one frame:
//!
//! ```text
//! magic "RFLC" | version u16 | kind u8 | payload_len u32 | payload bytes
//! ```
//!
//! All integers are little-endian. Strings are `u32 length + UTF-8`;
//! `u64` arrays are `u32 count + data`. Decoding is total: any truncated,
//! corrupted, oversized, or unknown input yields a [`WireError`] — never
//! a panic — because a malformed remote payload must not take down a
//! worker or the controller. Payloads are capped at [`MAX_PAYLOAD`] so a
//! corrupted length prefix cannot trigger a giant allocation.
//!
//! The protocol is deliberately value-oriented: stimulus travel as
//! *materialized frame slices* (a pure function of `(stimulus, cycle)`
//! evaluated controller-side), so a group re-dispatched after a worker
//! death re-executes on bit-identical inputs no matter which survivor
//! picks it up.

use std::io::{Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"RFLC";
/// Protocol version carried in every frame header and in [`Frame::Hello`].
/// v2 added mid-batch checkpointing: the `Checkpoint` frame kind and the
/// resume fields on [`GroupDispatch`]. v3 added model-parallel
/// co-simulation: `RunPart`, `Boundary`, `PartDone`, `PartAbort` and
/// `PartCheckpoint`. A v2 decoder rejects every v3 frame with a
/// structured `BadVersion` error before looking at the kind byte.
pub const VERSION: u16 = 3;
/// Upper bound on a frame payload (256 MiB). A corrupted length prefix
/// beyond this is rejected before any allocation happens.
pub const MAX_PAYLOAD: u32 = 256 << 20;

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum WireError {
    /// Underlying socket/stream error (includes read timeouts).
    Io(std::io::Error),
    /// The stream ended mid-frame.
    Truncated { context: &'static str },
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Header version != [`VERSION`].
    BadVersion(u16),
    /// Unrecognized frame kind byte.
    UnknownKind(u8),
    /// Payload length exceeds [`MAX_PAYLOAD`] (on decode: a corrupted
    /// length prefix; on encode: a frame too big to represent on the
    /// wire, caught before any peer can misparse it).
    TooLarge(u64),
    /// Structurally invalid payload (bad UTF-8, inconsistent counts…).
    Malformed(String),
}

impl WireError {
    /// `true` when the error is a read timeout rather than a dead peer —
    /// the controller's heartbeat detector treats the two differently
    /// only in its report, both requeue the worker's groups.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            )
        )
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o: {e}"),
            WireError::Truncated { context } => write!(f, "truncated frame ({context})"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::BadVersion(v) => {
                write!(f, "protocol version {v} (this build speaks {VERSION})")
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            WireError::TooLarge(n) => {
                write!(f, "payload length {n} exceeds the {MAX_PAYLOAD}-byte cap")
            }
            WireError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// Announces one coalesced batch to a worker before its groups arrive.
/// Carries the full design source so a cold worker can build its engine;
/// workers cache engines by `design_key`, so repeats are free.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchDescriptor {
    /// Controller-unique batch id.
    pub batch: u64,
    /// Structural design fingerprint ([`rtlir::design_hash`]); the
    /// worker's engine-cache key, cross-checked after elaboration.
    pub design_key: u64,
    /// Top module name.
    pub top: String,
    /// Verilog source of the DUT.
    pub verilog: String,
    /// Clock cycles every group of this batch runs.
    pub cycles: u64,
    /// Input lanes per stimulus frame.
    pub lanes: u32,
    /// Total stimulus across the whole batch (for reporting).
    pub n: u64,
}

/// One schedulable unit of work: a contiguous stimulus group with its
/// materialized input frames.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupDispatch {
    pub batch: u64,
    /// Group index within the batch.
    pub group: u32,
    /// First *global* stimulus id of the group.
    pub tid0: u64,
    /// Stimulus in the group.
    pub len: u32,
    /// Stimulus-major frame data:
    /// `frames[(s_local * cycles + c) * lanes + lane]`, length
    /// `len * cycles * lanes`.
    pub frames: Vec<u64>,
    /// Cycle to resume from: 0 for a cold start, otherwise the cycle
    /// index the attached `resume_image` was captured at.
    pub resume_cycle: u64,
    /// Encoded [`cudasim::Checkpoint`] image to restore before running
    /// (empty for a cold start). A worker that cannot validate the image
    /// falls back to cycle 0 — resuming is an optimization, never a
    /// correctness dependency.
    pub resume_image: Vec<u8>,
}

/// Worker → controller: a mid-group device snapshot, shipped every
/// `checkpoint_interval` cycles so the controller can re-dispatch a dead
/// worker's group from its last checkpointed cycle instead of cycle 0.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointUpdate {
    pub batch: u64,
    /// Group index within the batch.
    pub group: u32,
    /// First *global* stimulus id of the group (cross-checked on receipt).
    pub tid0: u64,
    /// Cycles fully completed when the snapshot was taken.
    pub cycle: u64,
    /// Encoded [`cudasim::Checkpoint`] image.
    pub image: Vec<u8>,
}

/// Controller → worker: run one *part* of a model-parallel group. The
/// worker derives the cut locally from `(design, k)` — the dispatch only
/// names which part this worker plays and where to (re)start.
#[derive(Debug, Clone, PartialEq)]
pub struct PartDispatch {
    pub batch: u64,
    /// Group index within the batch.
    pub group: u32,
    /// Which part of the K-way cut this worker simulates.
    pub part: u32,
    /// Total parts in the cut.
    pub k: u32,
    /// Rollback epoch: bumped by the controller on every re-dispatch
    /// after a partition-replica death. Stale traffic from older epochs
    /// is discarded by both ends.
    pub epoch: u32,
    /// First *global* stimulus id of the group.
    pub tid0: u64,
    /// Stimulus in the group.
    pub len: u32,
    /// Cycle to start from: 0 for a cold start, otherwise the common
    /// checkpoint cycle all parts roll back to.
    pub start_cycle: u64,
    /// Encoded [`cudasim::Checkpoint`] of *this part's* sub-design state
    /// at `start_cycle` (empty for a cold start).
    pub resume_image: Vec<u8>,
    /// Stimulus-major frame data, identical layout to
    /// [`GroupDispatch::frames`] (every part drives the full input set).
    pub frames: Vec<u64>,
}

/// One part's packed boundary exports for one cycle. Workers send it to
/// the controller, which fans the identical payload to every importing
/// part; the payload layout is the exporter's `BoundaryCodec` schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundaryFrame {
    pub batch: u64,
    pub group: u32,
    /// Exporting part.
    pub part: u32,
    pub epoch: u32,
    /// Cycle whose *post-commit* state the payload carries.
    pub cycle: u64,
    pub payload: Vec<u8>,
}

/// Worker → controller: one part finished its group.
#[derive(Debug, Clone, PartialEq)]
pub struct PartResult {
    pub batch: u64,
    pub group: u32,
    pub part: u32,
    pub epoch: u32,
    pub tid0: u64,
    /// Final values of the part's owned outputs, output-major:
    /// `outputs[o * len + s]` for owned-output index `o`, local lane `s`.
    pub outputs: Vec<u64>,
    /// Exchange latency hidden behind `pre`-phase compute (summed ns).
    pub hidden_ns: u64,
    /// Time spent blocked waiting for boundary frames (summed ns).
    pub stall_ns: u64,
}

/// Worker → controller: a mid-run snapshot of one part's sub-design
/// state, used to derive the common rollback cycle after a death.
#[derive(Debug, Clone, PartialEq)]
pub struct PartCheckpointUpdate {
    pub batch: u64,
    pub group: u32,
    pub part: u32,
    pub epoch: u32,
    pub tid0: u64,
    /// Cycles fully completed when the snapshot was taken.
    pub cycle: u64,
    /// Encoded [`cudasim::Checkpoint`] of the sub-design device.
    pub image: Vec<u8>,
}

/// A completed group's digests, streamed back as the group finishes.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultChunk {
    pub batch: u64,
    pub group: u32,
    pub tid0: u64,
    /// One output digest per stimulus of the group.
    pub digests: Vec<u64>,
}

/// Every message of the protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker → controller registration. `proto` must equal [`VERSION`];
    /// `capacity` is the worker's advertised relative throughput weight.
    Hello { proto: u16, capacity: u32 },
    /// Controller → worker registration ack with the assigned id.
    Welcome { worker_id: u32 },
    /// Controller → worker: a new batch is about to dispatch groups.
    BatchStart(BatchDescriptor),
    /// Controller → worker: run one group.
    RunGroup(GroupDispatch),
    /// Worker → controller: one finished group's digests.
    Chunk(ResultChunk),
    /// Liveness probe (either direction).
    Heartbeat { seq: u64 },
    /// Liveness reply echoing the probe's sequence number.
    HeartbeatAck { seq: u64 },
    /// A contextful, non-fatal-to-the-peer failure report.
    Error { context: String },
    /// Orderly shutdown; the receiver stops without reconnecting.
    Goodbye,
    /// Worker → controller: mid-group device snapshot for crash resume.
    Checkpoint(CheckpointUpdate),
    /// Controller → worker: run one part of a model-parallel group (v3).
    RunPart(PartDispatch),
    /// One cycle's packed boundary exports, relayed both directions (v3).
    Boundary(BoundaryFrame),
    /// Worker → controller: a part's final outputs and timings (v3).
    PartDone(PartResult),
    /// Rollback barrier (v3). Controller → worker: abandon the named
    /// group's current epoch. The worker echoes the frame back as an ack,
    /// which lets the controller drain stale boundary traffic in between.
    PartAbort { batch: u64, group: u32, epoch: u32 },
    /// Worker → controller: mid-run part snapshot for rollback (v3).
    PartCheckpoint(PartCheckpointUpdate),
}

const KIND_HELLO: u8 = 1;
const KIND_WELCOME: u8 = 2;
const KIND_BATCH_START: u8 = 3;
const KIND_RUN_GROUP: u8 = 4;
const KIND_CHUNK: u8 = 5;
const KIND_HEARTBEAT: u8 = 6;
const KIND_HEARTBEAT_ACK: u8 = 7;
const KIND_ERROR: u8 = 8;
const KIND_GOODBYE: u8 = 9;
const KIND_CHECKPOINT: u8 = 10;
const KIND_RUN_PART: u8 = 11;
const KIND_BOUNDARY: u8 = 12;
const KIND_PART_DONE: u8 = 13;
const KIND_PART_ABORT: u8 = 14;
const KIND_PART_CHECKPOINT: u8 = 15;

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => KIND_HELLO,
            Frame::Welcome { .. } => KIND_WELCOME,
            Frame::BatchStart(_) => KIND_BATCH_START,
            Frame::RunGroup(_) => KIND_RUN_GROUP,
            Frame::Chunk(_) => KIND_CHUNK,
            Frame::Heartbeat { .. } => KIND_HEARTBEAT,
            Frame::HeartbeatAck { .. } => KIND_HEARTBEAT_ACK,
            Frame::Error { .. } => KIND_ERROR,
            Frame::Goodbye => KIND_GOODBYE,
            Frame::Checkpoint(_) => KIND_CHECKPOINT,
            Frame::RunPart(_) => KIND_RUN_PART,
            Frame::Boundary(_) => KIND_BOUNDARY,
            Frame::PartDone(_) => KIND_PART_DONE,
            Frame::PartAbort { .. } => KIND_PART_ABORT,
            Frame::PartCheckpoint(_) => KIND_PART_CHECKPOINT,
        }
    }

    /// Encode into one self-contained frame (header + payload). A frame
    /// whose payload exceeds [`MAX_PAYLOAD`] is refused here: writing it
    /// would either be rejected by every receiver (up to 4 GiB) or
    /// silently truncate the `u32` length prefix and desync the stream
    /// (beyond 4 GiB).
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut payload = Vec::new();
        match self {
            Frame::Hello { proto, capacity } => {
                put_u16(&mut payload, *proto);
                put_u32(&mut payload, *capacity);
            }
            Frame::Welcome { worker_id } => put_u32(&mut payload, *worker_id),
            Frame::BatchStart(b) => {
                put_u64(&mut payload, b.batch);
                put_u64(&mut payload, b.design_key);
                put_str(&mut payload, &b.top);
                put_str(&mut payload, &b.verilog);
                put_u64(&mut payload, b.cycles);
                put_u32(&mut payload, b.lanes);
                put_u64(&mut payload, b.n);
            }
            Frame::RunGroup(g) => {
                put_u64(&mut payload, g.batch);
                put_u32(&mut payload, g.group);
                put_u64(&mut payload, g.tid0);
                put_u32(&mut payload, g.len);
                put_u64s(&mut payload, &g.frames);
                put_u64(&mut payload, g.resume_cycle);
                put_bytes(&mut payload, &g.resume_image);
            }
            Frame::Chunk(c) => {
                put_u64(&mut payload, c.batch);
                put_u32(&mut payload, c.group);
                put_u64(&mut payload, c.tid0);
                put_u64s(&mut payload, &c.digests);
            }
            Frame::Heartbeat { seq } | Frame::HeartbeatAck { seq } => put_u64(&mut payload, *seq),
            Frame::Error { context } => put_str(&mut payload, context),
            Frame::Goodbye => {}
            Frame::Checkpoint(u) => {
                put_u64(&mut payload, u.batch);
                put_u32(&mut payload, u.group);
                put_u64(&mut payload, u.tid0);
                put_u64(&mut payload, u.cycle);
                put_bytes(&mut payload, &u.image);
            }
            Frame::RunPart(p) => {
                put_u64(&mut payload, p.batch);
                put_u32(&mut payload, p.group);
                put_u32(&mut payload, p.part);
                put_u32(&mut payload, p.k);
                put_u32(&mut payload, p.epoch);
                put_u64(&mut payload, p.tid0);
                put_u32(&mut payload, p.len);
                put_u64(&mut payload, p.start_cycle);
                put_bytes(&mut payload, &p.resume_image);
                put_u64s(&mut payload, &p.frames);
            }
            Frame::Boundary(b) => {
                put_u64(&mut payload, b.batch);
                put_u32(&mut payload, b.group);
                put_u32(&mut payload, b.part);
                put_u32(&mut payload, b.epoch);
                put_u64(&mut payload, b.cycle);
                put_bytes(&mut payload, &b.payload);
            }
            Frame::PartDone(r) => {
                put_u64(&mut payload, r.batch);
                put_u32(&mut payload, r.group);
                put_u32(&mut payload, r.part);
                put_u32(&mut payload, r.epoch);
                put_u64(&mut payload, r.tid0);
                put_u64s(&mut payload, &r.outputs);
                put_u64(&mut payload, r.hidden_ns);
                put_u64(&mut payload, r.stall_ns);
            }
            Frame::PartAbort {
                batch,
                group,
                epoch,
            } => {
                put_u64(&mut payload, *batch);
                put_u32(&mut payload, *group);
                put_u32(&mut payload, *epoch);
            }
            Frame::PartCheckpoint(u) => {
                put_u64(&mut payload, u.batch);
                put_u32(&mut payload, u.group);
                put_u32(&mut payload, u.part);
                put_u32(&mut payload, u.epoch);
                put_u64(&mut payload, u.tid0);
                put_u64(&mut payload, u.cycle);
                put_bytes(&mut payload, &u.image);
            }
        }
        if payload.len() as u64 > u64::from(MAX_PAYLOAD) {
            return Err(WireError::TooLarge(payload.len() as u64));
        }
        let mut out = Vec::with_capacity(11 + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(self.kind());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }

    /// Decode one frame from the front of `data`; returns the frame and
    /// the number of bytes consumed. Never panics on any input.
    pub fn decode(data: &[u8]) -> Result<(Frame, usize), WireError> {
        if data.len() < 11 {
            return Err(WireError::Truncated { context: "header" });
        }
        if data[0..4] != MAGIC {
            return Err(WireError::BadMagic([data[0], data[1], data[2], data[3]]));
        }
        let version = u16::from_le_bytes([data[4], data[5]]);
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let kind = data[6];
        let plen = u32::from_le_bytes([data[7], data[8], data[9], data[10]]);
        if plen > MAX_PAYLOAD {
            return Err(WireError::TooLarge(u64::from(plen)));
        }
        let plen = plen as usize;
        if data.len() < 11 + plen {
            return Err(WireError::Truncated { context: "payload" });
        }
        let frame = decode_payload(kind, &data[11..11 + plen])?;
        Ok((frame, 11 + plen))
    }
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cursor {
        data: payload,
        pos: 0,
    };
    let frame = match kind {
        KIND_HELLO => Frame::Hello {
            proto: c.u16()?,
            capacity: c.u32()?,
        },
        KIND_WELCOME => Frame::Welcome {
            worker_id: c.u32()?,
        },
        KIND_BATCH_START => Frame::BatchStart(BatchDescriptor {
            batch: c.u64()?,
            design_key: c.u64()?,
            top: c.string()?,
            verilog: c.string()?,
            cycles: c.u64()?,
            lanes: c.u32()?,
            n: c.u64()?,
        }),
        KIND_RUN_GROUP => Frame::RunGroup(GroupDispatch {
            batch: c.u64()?,
            group: c.u32()?,
            tid0: c.u64()?,
            len: c.u32()?,
            frames: c.u64s()?,
            resume_cycle: c.u64()?,
            resume_image: c.bytes()?,
        }),
        KIND_CHUNK => Frame::Chunk(ResultChunk {
            batch: c.u64()?,
            group: c.u32()?,
            tid0: c.u64()?,
            digests: c.u64s()?,
        }),
        KIND_HEARTBEAT => Frame::Heartbeat { seq: c.u64()? },
        KIND_HEARTBEAT_ACK => Frame::HeartbeatAck { seq: c.u64()? },
        KIND_ERROR => Frame::Error {
            context: c.string()?,
        },
        KIND_GOODBYE => Frame::Goodbye,
        KIND_CHECKPOINT => Frame::Checkpoint(CheckpointUpdate {
            batch: c.u64()?,
            group: c.u32()?,
            tid0: c.u64()?,
            cycle: c.u64()?,
            image: c.bytes()?,
        }),
        KIND_RUN_PART => Frame::RunPart(PartDispatch {
            batch: c.u64()?,
            group: c.u32()?,
            part: c.u32()?,
            k: c.u32()?,
            epoch: c.u32()?,
            tid0: c.u64()?,
            len: c.u32()?,
            start_cycle: c.u64()?,
            resume_image: c.bytes()?,
            frames: c.u64s()?,
        }),
        KIND_BOUNDARY => Frame::Boundary(BoundaryFrame {
            batch: c.u64()?,
            group: c.u32()?,
            part: c.u32()?,
            epoch: c.u32()?,
            cycle: c.u64()?,
            payload: c.bytes()?,
        }),
        KIND_PART_DONE => Frame::PartDone(PartResult {
            batch: c.u64()?,
            group: c.u32()?,
            part: c.u32()?,
            epoch: c.u32()?,
            tid0: c.u64()?,
            outputs: c.u64s()?,
            hidden_ns: c.u64()?,
            stall_ns: c.u64()?,
        }),
        KIND_PART_ABORT => Frame::PartAbort {
            batch: c.u64()?,
            group: c.u32()?,
            epoch: c.u32()?,
        },
        KIND_PART_CHECKPOINT => Frame::PartCheckpoint(PartCheckpointUpdate {
            batch: c.u64()?,
            group: c.u32()?,
            part: c.u32()?,
            epoch: c.u32()?,
            tid0: c.u64()?,
            cycle: c.u64()?,
            image: c.bytes()?,
        }),
        other => return Err(WireError::UnknownKind(other)),
    };
    if c.pos != payload.len() {
        return Err(WireError::Malformed(format!(
            "{} trailing payload bytes",
            payload.len() - c.pos
        )));
    }
    Ok(frame)
}

/// Write one frame to a stream; returns the bytes written. A frame too
/// large for the wire format is refused with [`WireError::TooLarge`]
/// before any byte is written, so the stream never desyncs.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<usize, WireError> {
    let bytes = frame.encode()?;
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len())
}

/// Read one frame from a stream; returns the frame and its wire size.
/// An EOF before the first header byte is reported as `Truncated`, any
/// later short read as the underlying i/o error.
pub fn read_frame(r: &mut impl Read) -> Result<(Frame, usize), WireError> {
    let mut header = [0u8; 11];
    r.read_exact(&mut header).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated { context: "header" }
        } else {
            WireError::Io(e)
        }
    })?;
    if header[0..4] != MAGIC {
        return Err(WireError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let plen = u32::from_le_bytes([header[7], header[8], header[9], header[10]]);
    if plen > MAX_PAYLOAD {
        return Err(WireError::TooLarge(u64::from(plen)));
    }
    let mut payload = vec![0u8; plen as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated { context: "payload" }
        } else {
            WireError::Io(e)
        }
    })?;
    let frame = decode_payload(header[6], &payload)?;
    Ok((frame, 11 + plen as usize))
}

// --------------------------------------------------------------------------
// Little-endian field encoding.

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_u64s(out: &mut Vec<u8>, vs: &[u64]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_bytes(out: &mut Vec<u8>, bs: &[u8]) {
    put_u32(out, bs.len() as u32);
    out.extend_from_slice(bs);
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.data.len() - self.pos < n {
            return Err(WireError::Truncated { context: "field" });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("string is not UTF-8".into()))
    }

    fn u64s(&mut self) -> Result<Vec<u64>, WireError> {
        let count = self.u32()? as usize;
        // A corrupted count must fail on the honest length check, not
        // attempt a huge up-front allocation.
        if self.data.len() - self.pos < count.saturating_mul(8) {
            return Err(WireError::Truncated {
                context: "u64 array",
            });
        }
        (0..count).map(|_| self.u64()).collect()
    }

    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let count = self.u32()? as usize;
        // Same discipline as `u64s`: the honest length check runs before
        // any allocation sized from the (possibly corrupted) count.
        Ok(self.take(count)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stimulus::splitmix64;

    /// Deterministic generator for the property tests.
    struct Gen(u64);

    impl Gen {
        fn next(&mut self) -> u64 {
            self.0 = splitmix64(self.0);
            self.0
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }

        fn string(&mut self, max: usize) -> String {
            let len = self.below(max as u64) as usize;
            (0..len)
                .map(|_| char::from_u32(32 + (self.below(95)) as u32).unwrap())
                .collect()
        }

        fn u64s(&mut self, max: usize) -> Vec<u64> {
            let len = self.below(max as u64) as usize;
            (0..len).map(|_| self.next()).collect()
        }

        fn bytes(&mut self, max: usize) -> Vec<u8> {
            let len = self.below(max as u64) as usize;
            (0..len).map(|_| self.next() as u8).collect()
        }

        fn frame(&mut self) -> Frame {
            match self.below(15) {
                0 => Frame::Hello {
                    proto: self.next() as u16,
                    capacity: self.next() as u32,
                },
                1 => Frame::Welcome {
                    worker_id: self.next() as u32,
                },
                2 => Frame::BatchStart(BatchDescriptor {
                    batch: self.next(),
                    design_key: self.next(),
                    top: self.string(16),
                    verilog: self.string(200),
                    cycles: self.next(),
                    lanes: self.next() as u32,
                    n: self.next(),
                }),
                3 => Frame::RunGroup(GroupDispatch {
                    batch: self.next(),
                    group: self.next() as u32,
                    tid0: self.next(),
                    len: self.next() as u32,
                    frames: self.u64s(64),
                    resume_cycle: self.below(1000),
                    resume_image: self.bytes(96),
                }),
                4 => Frame::Chunk(ResultChunk {
                    batch: self.next(),
                    group: self.next() as u32,
                    tid0: self.next(),
                    digests: self.u64s(64),
                }),
                5 => Frame::Heartbeat { seq: self.next() },
                6 => Frame::HeartbeatAck { seq: self.next() },
                7 => Frame::Error {
                    context: self.string(80),
                },
                8 => Frame::Checkpoint(CheckpointUpdate {
                    batch: self.next(),
                    group: self.next() as u32,
                    tid0: self.next(),
                    cycle: self.next(),
                    image: self.bytes(128),
                }),
                9 => Frame::RunPart(PartDispatch {
                    batch: self.next(),
                    group: self.next() as u32,
                    part: self.below(8) as u32,
                    k: self.below(8) as u32,
                    epoch: self.below(4) as u32,
                    tid0: self.next(),
                    len: self.next() as u32,
                    start_cycle: self.below(1000),
                    resume_image: self.bytes(96),
                    frames: self.u64s(64),
                }),
                10 => Frame::Boundary(BoundaryFrame {
                    batch: self.next(),
                    group: self.next() as u32,
                    part: self.below(8) as u32,
                    epoch: self.below(4) as u32,
                    cycle: self.next(),
                    payload: self.bytes(160),
                }),
                11 => Frame::PartDone(PartResult {
                    batch: self.next(),
                    group: self.next() as u32,
                    part: self.below(8) as u32,
                    epoch: self.below(4) as u32,
                    tid0: self.next(),
                    outputs: self.u64s(64),
                    hidden_ns: self.next(),
                    stall_ns: self.next(),
                }),
                12 => Frame::PartAbort {
                    batch: self.next(),
                    group: self.next() as u32,
                    epoch: self.below(4) as u32,
                },
                13 => Frame::PartCheckpoint(PartCheckpointUpdate {
                    batch: self.next(),
                    group: self.next() as u32,
                    part: self.below(8) as u32,
                    epoch: self.below(4) as u32,
                    tid0: self.next(),
                    cycle: self.next(),
                    image: self.bytes(128),
                }),
                _ => Frame::Goodbye,
            }
        }
    }

    #[test]
    fn random_frames_roundtrip() {
        let mut g = Gen(0xc105_7e12);
        for case in 0..500 {
            let frame = g.frame();
            let bytes = frame.encode().unwrap();
            let (back, used) = Frame::decode(&bytes)
                .unwrap_or_else(|e| panic!("case {case}: decode failed: {e} for {frame:?}"));
            assert_eq!(used, bytes.len(), "case {case}: whole frame consumed");
            assert_eq!(back, frame, "case {case}: roundtrip must be exact");
        }
    }

    #[test]
    fn stream_roundtrip_concatenated() {
        let mut g = Gen(7);
        let frames: Vec<Frame> = (0..32).map(|_| g.frame()).collect();
        let mut bytes = Vec::new();
        for f in &frames {
            write_frame(&mut bytes, f).unwrap();
        }
        let mut r = &bytes[..];
        for f in &frames {
            let (back, _) = read_frame(&mut r).unwrap();
            assert_eq!(&back, f);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn every_truncation_errors_never_panics() {
        let mut g = Gen(0xdead);
        for _ in 0..50 {
            let frame = g.frame();
            let bytes = frame.encode().unwrap();
            for cut in 0..bytes.len() {
                let r = Frame::decode(&bytes[..cut]);
                assert!(
                    r.is_err(),
                    "decoding a {cut}-byte prefix of a {}-byte frame must error",
                    bytes.len()
                );
                // And the streaming path likewise.
                assert!(read_frame(&mut &bytes[..cut]).is_err());
            }
        }
    }

    #[test]
    fn corrupted_bytes_never_panic() {
        let mut g = Gen(0xbeef);
        for _ in 0..40 {
            let frame = g.frame();
            let bytes = frame.encode().unwrap();
            for i in 0..bytes.len() {
                let mut bad = bytes.clone();
                bad[i] ^= 0x41;
                // Any outcome but a panic is acceptable: corruption in a
                // value field still decodes (to a different frame), while
                // header/structure corruption must error.
                let _ = Frame::decode(&bad);
                let _ = read_frame(&mut &bad[..]);
            }
        }
    }

    #[test]
    fn header_corruptions_error_specifically() {
        let bytes = Frame::Goodbye.encode().unwrap();
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Frame::decode(&bad_magic),
            Err(WireError::BadMagic(_))
        ));

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xff;
        assert!(matches!(
            Frame::decode(&bad_version),
            Err(WireError::BadVersion(_))
        ));

        let mut bad_kind = bytes.clone();
        bad_kind[6] = 0x7f;
        assert!(matches!(
            Frame::decode(&bad_kind),
            Err(WireError::UnknownKind(0x7f))
        ));

        let mut huge_len = bytes;
        huge_len[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::decode(&huge_len),
            Err(WireError::TooLarge(_))
        ));
    }

    #[test]
    fn oversized_payload_is_refused_at_encode_time() {
        // One u64 past the cap: the sender must refuse, because every
        // receiver would reject the frame as TooLarge anyway.
        let frame = Frame::RunGroup(GroupDispatch {
            batch: 1,
            group: 0,
            tid0: 0,
            len: 1,
            frames: vec![0u64; MAX_PAYLOAD as usize / 8],
            resume_cycle: 0,
            resume_image: Vec::new(),
        });
        assert!(matches!(frame.encode(), Err(WireError::TooLarge(_))));
        let mut sink = Vec::new();
        assert!(
            matches!(write_frame(&mut sink, &frame), Err(WireError::TooLarge(_))),
            "write_frame must refuse before touching the stream"
        );
        assert!(sink.is_empty(), "no bytes may reach the wire");
    }

    #[test]
    fn corrupted_array_count_is_rejected_without_allocation() {
        let frame = Frame::Chunk(ResultChunk {
            batch: 1,
            group: 2,
            tid0: 3,
            digests: vec![4, 5, 6],
        });
        let mut bytes = frame.encode().unwrap();
        // The digest count lives right after batch(8)+group(4)+tid0(8).
        let count_at = 11 + 8 + 4 + 8;
        bytes[count_at..count_at + 4].copy_from_slice(&0x00ff_ffffu32.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn corrupted_image_count_is_rejected_without_allocation() {
        let frame = Frame::Checkpoint(CheckpointUpdate {
            batch: 1,
            group: 2,
            tid0: 3,
            cycle: 4,
            image: vec![9, 9, 9],
        });
        let mut bytes = frame.encode().unwrap();
        // The image byte count lives after batch(8)+group(4)+tid0(8)+cycle(8).
        let count_at = 11 + 8 + 4 + 8 + 8;
        bytes[count_at..count_at + 4].copy_from_slice(&0x00ff_ffffu32.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn boundary_frames_roundtrip_and_survive_fuzzing() {
        let mut g = Gen(0xb0_0d41);
        for case in 0..200 {
            let frame = Frame::Boundary(BoundaryFrame {
                batch: g.next(),
                group: g.next() as u32,
                part: g.below(8) as u32,
                epoch: g.below(4) as u32,
                cycle: g.next(),
                payload: g.bytes(512),
            });
            let bytes = frame.encode().unwrap();
            let (back, used) = Frame::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len(), "case {case}");
            assert_eq!(back, frame, "case {case}");
            // Every truncation errors, never panics.
            for cut in 0..bytes.len() {
                assert!(Frame::decode(&bytes[..cut]).is_err());
            }
            // Single-byte corruption never panics either.
            for i in 0..bytes.len() {
                let mut bad = bytes.clone();
                bad[i] ^= 0x41;
                let _ = Frame::decode(&bad);
                let _ = read_frame(&mut &bad[..]);
            }
        }
        // A corrupted payload count fails the honest length check.
        let bytes = Frame::Boundary(BoundaryFrame {
            batch: 1,
            group: 2,
            part: 0,
            epoch: 0,
            cycle: 3,
            payload: vec![7; 16],
        })
        .encode()
        .unwrap();
        let mut bad = bytes;
        // The payload byte count lives after batch(8)+group(4)+part(4)+epoch(4)+cycle(8).
        let count_at = 11 + 8 + 4 + 4 + 4 + 8;
        bad[count_at..count_at + 4].copy_from_slice(&0x00ff_ffffu32.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bad),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn v2_decoder_rejects_v3_frames_with_a_structured_error() {
        // The version gate sits in front of the kind byte, so a peer
        // speaking v2 reports every v3 frame as BadVersion — it never
        // reaches the (to it, unknown) kind and never panics. Simulate
        // the converse here: a v3 frame stamped with a v2 header must be
        // rejected by this decoder as BadVersion(2).
        let frame = Frame::Boundary(BoundaryFrame {
            batch: 42,
            group: 1,
            part: 2,
            epoch: 0,
            cycle: 99,
            payload: vec![0xab; 24],
        });
        let mut bytes = frame.encode().unwrap();
        bytes[4..6].copy_from_slice(&2u16.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::BadVersion(2))
        ));
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(WireError::BadVersion(2))
        ));
    }

    #[test]
    fn trailing_garbage_in_payload_is_malformed() {
        let mut bytes = Frame::Heartbeat { seq: 9 }.encode().unwrap();
        // Grow the payload by one byte and fix up the length prefix.
        bytes.push(0);
        let plen = (bytes.len() - 11) as u32;
        bytes[7..11].copy_from_slice(&plen.to_le_bytes());
        assert!(matches!(
            Frame::decode(&bytes),
            Err(WireError::Malformed(_))
        ));
    }
}
