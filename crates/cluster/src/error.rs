//! Cluster-level error type: everything that can go wrong between
//! "bind a controller" and "hand back bit-identical digests".

use crate::wire::WireError;

/// Why a cluster operation failed. Every variant carries enough context
/// to act on (retry, re-register, add workers) without a stack trace.
#[derive(Debug)]
pub enum ClusterError {
    /// Socket-level failure outside a frame exchange (bind, connect…).
    Io(std::io::Error),
    /// A frame could not be read, written, or decoded.
    Wire(WireError),
    /// The peer sent a well-formed frame that violates the protocol
    /// state machine (e.g. a chunk for an unknown batch).
    Protocol(String),
    /// A batch needs workers but none are registered and alive (and no
    /// replacement arrived within the rejoin grace period).
    NoWorkers(String),
    /// Elaboration or engine construction failed for a design.
    Design(String),
    /// A batch referenced a design key that was never registered.
    UnknownDesign(u64),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Io(e) => write!(f, "cluster i/o: {e}"),
            ClusterError::Wire(e) => write!(f, "cluster wire: {e}"),
            ClusterError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClusterError::NoWorkers(m) => write!(f, "no live workers: {m}"),
            ClusterError::Design(m) => write!(f, "design error: {m}"),
            ClusterError::UnknownDesign(k) => {
                write!(
                    f,
                    "design {k:#018x} was never registered with the controller"
                )
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<std::io::Error> for ClusterError {
    fn from(e: std::io::Error) -> ClusterError {
        ClusterError::Io(e)
    }
}

impl From<WireError> for ClusterError {
    fn from(e: WireError) -> ClusterError {
        ClusterError::Wire(e)
    }
}
