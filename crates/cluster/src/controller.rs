//! The cluster controller: worker registry, capacity-weighted batch
//! scheduling, heartbeat failure detection, and requeue onto survivors.
//!
//! # Scheduling model
//!
//! A batch is cut into contiguous stimulus groups (the same granularity
//! `shard` uses) and the groups are split contiguously across the
//! registered workers, weighted by each worker's advertised capacity
//! (largest-remainder rounding). Each worker connection gets its own
//! I/O thread; a worker that drains its queue steals the back half of
//! the largest live queue, so capacity weights only have to be roughly
//! right.
//!
//! # Failure model (mirrors `shard::fault`)
//!
//! Group inputs are materialized controller-side as a pure function of
//! `(stimulus id, cycle)` and shipped with every dispatch, and digests
//! are committed only when a group's result chunk arrives — so
//! re-executing a group after a worker death (or after a false-positive
//! heartbeat timeout) is idempotent. A dead worker's in-flight group and
//! backlog are requeued round-robin onto survivors; if *no* survivor
//! remains, the controller waits up to `rejoin_grace` for a replacement
//! registration (workers reconnect with exponential backoff) and adopts
//! it mid-batch. Results are therefore bit-identical regardless of
//! worker count, capacities, or mid-run deaths — the cluster analogue of
//! `tests/shard_determinism.rs`.

mod modelpar;

use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use stimulus::StimulusSource;

use crate::error::ClusterError;
use crate::metrics::{ClusterMetrics, WorkerReport};
use crate::wire::{
    read_frame, write_frame, BatchDescriptor, Frame, GroupDispatch, WireError, VERSION,
};

/// Controller-side scheduling configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Stimulus per dispatched group — the requeue/steal granularity.
    pub group_size: usize,
    /// A worker that stays silent this long with a group in flight is
    /// declared dead and its work requeued.
    pub heartbeat_timeout: Duration,
    /// How long a batch with zero live workers waits for a replacement
    /// registration before failing.
    pub rejoin_grace: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            group_size: 1024,
            heartbeat_timeout: Duration::from_secs(2),
            rejoin_grace: Duration::from_secs(2),
        }
    }
}

/// A batch of coalesced jobs run remotely: the flat digests plus each
/// job's slice (the cluster analogue of `shard::ShardJobResult`).
#[derive(Debug)]
pub struct ClusterJobResult {
    pub digests: Vec<u64>,
    /// `ranges[j]` is job j's slice of `digests`.
    pub ranges: Vec<std::ops::Range<usize>>,
}

/// A registered, currently idle worker connection.
struct WorkerConn {
    id: u32,
    capacity: u32,
    stream: TcpStream,
}

/// A design the controller can ship to workers.
struct DesignEntry {
    verilog: String,
    top: String,
    lanes: u32,
}

/// Per-worker accounting, accumulated across batches (and deaths: a
/// worker that reconnects gets a fresh id and a fresh row).
#[derive(Default)]
struct WorkerAcc {
    capacity: u32,
    alive: bool,
    groups: u64,
    chunks: u64,
    busy: Duration,
    bytes_tx: u64,
    bytes_rx: u64,
}

#[derive(Default)]
struct MetricsAcc {
    workers: BTreeMap<u32, WorkerAcc>,
    batches: u64,
    dispatches: u64,
    chunks_committed: u64,
    requeues: u64,
    worker_deaths: u64,
    heartbeat_timeouts: u64,
    reconnects: u64,
    registrations: u64,
    rejected_hellos: u64,
    checkpoints_received: u64,
    checkpoint_bytes: u64,
    groups_resumed: u64,
    resume_cycles_skipped: u64,
    max_resume_cycle: u64,
    modelpar_groups: u64,
    modelpar_rollbacks: u64,
    boundary_bytes: u64,
    boundary_frames: u64,
    overlap_hidden_ns: u64,
    exchange_stall_ns: u64,
    busy: Duration,
}

impl MetricsAcc {
    fn worker(&mut self, id: u32, capacity: u32) -> &mut WorkerAcc {
        let acc = self.workers.entry(id).or_default();
        if acc.capacity == 0 {
            acc.capacity = capacity;
            acc.alive = true;
        }
        acc
    }
}

/// State shared between the accept thread, batch runs, and the public
/// handle.
struct Shared {
    cfg: ClusterConfig,
    stop: AtomicBool,
    registry: Mutex<Vec<WorkerConn>>,
    registry_cv: Condvar,
    metrics: Mutex<MetricsAcc>,
    designs: Mutex<BTreeMap<u64, DesignEntry>>,
    next_worker: AtomicU32,
    next_batch: AtomicU64,
}

/// The cluster controller. Bind it, point workers at [`Controller::addr`],
/// register designs, then run batches.
pub struct Controller {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
}

impl Controller {
    /// Bind a listener (use `"127.0.0.1:0"` for loopback clusters) and
    /// start accepting worker registrations.
    pub fn bind(addr: &str, cfg: ClusterConfig) -> Result<Controller, ClusterError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cfg,
            stop: AtomicBool::new(false),
            registry: Mutex::new(Vec::new()),
            registry_cv: Condvar::new(),
            metrics: Mutex::new(MetricsAcc::default()),
            designs: Mutex::new(BTreeMap::new()),
            next_worker: AtomicU32::new(1),
            next_batch: AtomicU64::new(1),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(Controller {
            shared,
            addr,
            accept: Mutex::new(Some(accept)),
        })
    }

    /// The bound address workers should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until at least `n` workers are registered and idle, up to
    /// `timeout`.
    pub fn wait_for_workers(&self, n: usize, timeout: Duration) -> Result<(), ClusterError> {
        let deadline = Instant::now() + timeout;
        let mut reg = lock(&self.shared.registry);
        while reg.len() < n {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(ClusterError::NoWorkers(format!(
                    "{} of {n} workers registered within {timeout:?}",
                    reg.len()
                )));
            }
            reg = self
                .shared
                .registry_cv
                .wait_timeout(reg, left)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        Ok(())
    }

    /// Number of currently idle registered workers.
    pub fn num_workers(&self) -> usize {
        lock(&self.shared.registry).len()
    }

    /// Register a design by source (Verilog subset or Yosys JSON netlist;
    /// the frontend is auto-detected); returns its key
    /// ([`rtlir::design_hash`]), which batches reference.
    pub fn register_design(&self, verilog: &str, top: &str) -> Result<u64, ClusterError> {
        let design = netlist::load_design(verilog, top)
            .map_err(|e| ClusterError::Design(format!("elaborate '{top}': {e}")))?;
        let key = rtlir::design_hash(&design);
        let lanes = stimulus::PortMap::from_design(&design).len() as u32;
        lock(&self.shared.designs).insert(
            key,
            DesignEntry {
                verilog: verilog.to_string(),
                top: top.to_string(),
                lanes,
            },
        );
        Ok(key)
    }

    /// Whether `key` was registered (serve's overflow router checks this
    /// before sending a batch remote).
    pub fn has_design(&self, key: u64) -> bool {
        lock(&self.shared.designs).contains_key(&key)
    }

    /// Probe every idle worker; drops the ones that fail to ack.
    /// Returns the number of live workers registered afterwards.
    pub fn ping_all(&self) -> usize {
        // Probe with the registry lock released: each dead worker costs
        // a full heartbeat_timeout, and holding the lock that long would
        // stall registrations (`handle_hello`) and batch starts.
        let conns = std::mem::take(&mut *lock(&self.shared.registry));
        let mut kept = Vec::new();
        for mut w in conns {
            let ok = w
                .stream
                .set_read_timeout(Some(self.shared.cfg.heartbeat_timeout))
                .is_ok()
                && write_frame(&mut w.stream, &Frame::Heartbeat { seq: 0 }).is_ok()
                && matches!(
                    read_frame(&mut w.stream),
                    Ok((Frame::HeartbeatAck { .. }, _))
                );
            if ok {
                kept.push(w);
            } else {
                let mut m = lock(&self.shared.metrics);
                m.worker_deaths += 1;
                m.worker(w.id, w.capacity).alive = false;
            }
        }
        let mut reg = lock(&self.shared.registry);
        reg.extend(kept);
        let n = reg.len();
        drop(reg);
        self.shared.registry_cv.notify_all();
        n
    }

    /// Run one batch of `cycles` over `source` on the cluster; returns
    /// one output digest per stimulus, bit-identical to a local run.
    pub fn run_batch(
        &self,
        design_key: u64,
        source: &dyn StimulusSource,
        cycles: u64,
    ) -> Result<Vec<u64>, ClusterError> {
        let t0 = Instant::now();
        let (desc, groups) = self.materialize(design_key, source, cycles)?;
        let result = self.run_materialized(&desc, &groups);
        let mut m = lock(&self.shared.metrics);
        m.busy += t0.elapsed();
        if result.is_ok() {
            m.batches += 1;
        }
        result
    }

    /// Run a set of coalesced jobs as one batch (serve's remote path);
    /// returns the flat digests plus each job's range.
    pub fn run_jobs(
        &self,
        design_key: u64,
        jobs: Vec<Box<dyn StimulusSource>>,
        cycles: u64,
    ) -> Result<ClusterJobResult, ClusterError> {
        let stacked = stimulus::StackedSource::new(jobs);
        let ranges: Vec<_> = (0..stacked.num_segments())
            .map(|j| stacked.segment_range(j))
            .collect();
        let digests = self.run_batch(design_key, &stacked, cycles)?;
        Ok(ClusterJobResult { digests, ranges })
    }

    /// Snapshot the accumulated cluster metrics.
    pub fn metrics(&self) -> ClusterMetrics {
        let m = lock(&self.shared.metrics);
        let total = m.busy.as_secs_f64();
        ClusterMetrics {
            workers: m
                .workers
                .iter()
                .map(|(&id, a)| WorkerReport {
                    worker: id,
                    capacity: a.capacity,
                    alive: a.alive,
                    groups: a.groups,
                    chunks: a.chunks,
                    busy: a.busy,
                    utilization: if total > 0.0 {
                        a.busy.as_secs_f64() / total
                    } else {
                        0.0
                    },
                    bytes_tx: a.bytes_tx,
                    bytes_rx: a.bytes_rx,
                })
                .collect(),
            batches: m.batches,
            dispatches: m.dispatches,
            chunks_committed: m.chunks_committed,
            requeues: m.requeues,
            worker_deaths: m.worker_deaths,
            heartbeat_timeouts: m.heartbeat_timeouts,
            reconnects: m.reconnects,
            registrations: m.registrations,
            rejected_hellos: m.rejected_hellos,
            checkpoints_received: m.checkpoints_received,
            checkpoint_bytes: m.checkpoint_bytes,
            groups_resumed: m.groups_resumed,
            resume_cycles_skipped: m.resume_cycles_skipped,
            max_resume_cycle: m.max_resume_cycle,
            modelpar_groups: m.modelpar_groups,
            modelpar_rollbacks: m.modelpar_rollbacks,
            boundary_bytes: m.boundary_bytes,
            boundary_frames: m.boundary_frames,
            overlap_hidden_ns: m.overlap_hidden_ns,
            exchange_stall_ns: m.exchange_stall_ns,
            busy: m.busy,
        }
    }

    /// Orderly shutdown: say `Goodbye` to every idle worker (they exit
    /// instead of reconnecting) and stop accepting registrations.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = lock(&self.accept).take() {
            let _ = h.join();
        }
        let mut reg = lock(&self.shared.registry);
        for mut w in reg.drain(..) {
            let _ = write_frame(&mut w.stream, &Frame::Goodbye);
        }
    }

    /// Cut the batch into groups and materialize every group's input
    /// frames (a pure function of `(stimulus id, cycle)` — the property
    /// that makes re-dispatch after a fault bit-identical).
    fn materialize(
        &self,
        design_key: u64,
        source: &dyn StimulusSource,
        cycles: u64,
    ) -> Result<(BatchDescriptor, Vec<GroupDispatch>), ClusterError> {
        let designs = lock(&self.shared.designs);
        let entry = designs
            .get(&design_key)
            .ok_or(ClusterError::UnknownDesign(design_key))?;
        let n = source.num_stimulus();
        let lanes = entry.lanes as usize;
        if source.num_ports() != lanes {
            return Err(ClusterError::Protocol(format!(
                "stimulus source has {} lanes, design {design_key:#018x} has {lanes}",
                source.num_ports()
            )));
        }
        let desc = BatchDescriptor {
            batch: self.shared.next_batch.fetch_add(1, Ordering::SeqCst),
            design_key,
            top: entry.top.clone(),
            verilog: entry.verilog.clone(),
            cycles,
            lanes: entry.lanes,
            n: n as u64,
        };
        drop(designs);

        // Split so every GroupDispatch fits the wire's payload cap:
        // group frames cost `len * cycles * lanes * 8` bytes plus a few
        // fixed fields, and a frame over MAX_PAYLOAD would be refused at
        // encode time. Smaller groups never change the digests — each
        // stimulus is independent — only the scheduling granularity.
        const DISPATCH_FIXED_BYTES: u128 = 64;
        let bytes_per_stim = (cycles as u128) * (lanes as u128) * 8;
        let budget = u128::from(crate::wire::MAX_PAYLOAD) - DISPATCH_FIXED_BYTES;
        if n > 0 && bytes_per_stim > budget {
            return Err(ClusterError::Protocol(format!(
                "one stimulus needs {bytes_per_stim} frame bytes ({cycles} cycles × {} lanes), \
                 exceeding the {}-byte frame payload cap",
                desc.lanes,
                crate::wire::MAX_PAYLOAD
            )));
        }
        let wire_cap = (budget / bytes_per_stim.max(1)).min(usize::MAX as u128) as usize;
        let group_size = self
            .shared
            .cfg
            .group_size
            .max(1)
            .min(n.max(1))
            .min(wire_cap.max(1));
        let num_groups = n.div_ceil(group_size);
        let mut frame = vec![0u64; lanes];
        let mut groups = Vec::with_capacity(num_groups);
        for g in 0..num_groups {
            let tid0 = g * group_size;
            let len = group_size.min(n - tid0);
            let mut frames = Vec::with_capacity(len * cycles as usize * lanes);
            for s in 0..len {
                for c in 0..cycles {
                    source.fill_frame(tid0 + s, c, &mut frame);
                    frames.extend_from_slice(&frame);
                }
            }
            groups.push(GroupDispatch {
                batch: desc.batch,
                group: g as u32,
                tid0: tid0 as u64,
                len: len as u32,
                frames,
                resume_cycle: 0,
                resume_image: Vec::new(),
            });
        }
        Ok((desc, groups))
    }

    /// Schedule the materialized groups across the registered workers.
    fn run_materialized(
        &self,
        desc: &BatchDescriptor,
        groups: &[GroupDispatch],
    ) -> Result<Vec<u64>, ClusterError> {
        let n = desc.n as usize;
        if groups.is_empty() {
            return Ok(Vec::new());
        }
        let mut conns = self.take_workers(self.shared.cfg.rejoin_grace)?;
        let caps: Vec<u32> = conns.iter().map(|w| w.capacity.max(1)).collect();
        let counts = weighted_counts(groups.len(), &caps);

        // Per-worker-slot queues of group indices, capacity-weighted and
        // contiguous, so a uniform cluster reproduces shard's placement.
        let mut queues: Vec<VecDeque<usize>> = Vec::with_capacity(conns.len());
        let mut next = 0usize;
        for &c in &counts {
            queues.push((next..next + c).collect());
            next += c;
        }

        let state = Mutex::new(BatchState {
            queues,
            alive: vec![true; conns.len()],
            inflight: vec![None; conns.len()],
            committed: vec![false; groups.len()],
            orphans: Vec::new(),
            remaining: groups.len(),
            digests: vec![0u64; n],
            checkpoints: vec![None; groups.len()],
        });
        let cv = Condvar::new();

        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for (slot, conn) in conns.drain(..).enumerate() {
                let (state, cv) = (&state, &cv);
                handles
                    .push(s.spawn(move || self.batch_worker(slot, conn, desc, groups, state, cv)));
            }

            // Monitor: watch for completion, and adopt a replacement
            // worker mid-batch when every current worker has died.
            loop {
                let mut st = lock(&state);
                if st.remaining == 0 {
                    break;
                }
                if st.alive.iter().any(|&a| a) {
                    st = cv
                        .wait_timeout(st, Duration::from_millis(25))
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                    drop(st);
                    continue;
                }
                // All dead: the orphan queue holds every uncommitted
                // group. Wait for a reconnecting/replacement worker.
                drop(st);
                match self.take_one_worker(self.shared.cfg.rejoin_grace) {
                    Some(conn) => {
                        let mut st = lock(&state);
                        let orphans: VecDeque<usize> = st.orphans.drain(..).collect();
                        let slot = st.queues.len();
                        st.queues.push(orphans);
                        st.alive.push(true);
                        st.inflight.push(None);
                        drop(st);
                        cv.notify_all();
                        let (state, cv) = (&state, &cv);
                        handles.push(
                            s.spawn(move || self.batch_worker(slot, conn, desc, groups, state, cv)),
                        );
                    }
                    None => break,
                }
            }

            // Threads exit on their own once remaining == 0 or their
            // worker died; survivors hand their connection back.
            let mut reg = lock(&self.shared.registry);
            for h in handles {
                if let Ok(Some(conn)) = h.join() {
                    reg.push(conn);
                }
            }
            drop(reg);
            self.shared.registry_cv.notify_all();
        });

        let st = state.into_inner().unwrap_or_else(|e| e.into_inner());
        if st.remaining != 0 {
            return Err(ClusterError::NoWorkers(format!(
                "batch {}: every worker died with {} groups left and no replacement arrived \
                 within {:?}",
                desc.batch, st.remaining, self.shared.cfg.rejoin_grace
            )));
        }
        Ok(st.digests)
    }

    /// Take every idle worker (waiting up to `grace` for the first one).
    fn take_workers(&self, grace: Duration) -> Result<Vec<WorkerConn>, ClusterError> {
        let deadline = Instant::now() + grace;
        let mut reg = lock(&self.shared.registry);
        while reg.is_empty() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(ClusterError::NoWorkers(
                    "no workers registered; start workers pointing at the controller address"
                        .into(),
                ));
            }
            reg = self
                .shared
                .registry_cv
                .wait_timeout(reg, left)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        Ok(std::mem::take(&mut *reg))
    }

    /// Take one idle worker, waiting up to `grace` for a registration.
    fn take_one_worker(&self, grace: Duration) -> Option<WorkerConn> {
        let deadline = Instant::now() + grace;
        let mut reg = lock(&self.shared.registry);
        loop {
            if let Some(w) = reg.pop() {
                return Some(w);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            reg = self
                .shared
                .registry_cv
                .wait_timeout(reg, left)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// One worker connection's I/O loop for one batch. Returns the
    /// connection if the worker survived (it goes back to the registry).
    fn batch_worker(
        &self,
        slot: usize,
        mut conn: WorkerConn,
        desc: &BatchDescriptor,
        groups: &[GroupDispatch],
        state: &Mutex<BatchState>,
        cv: &Condvar,
    ) -> Option<WorkerConn> {
        let hb = self.shared.cfg.heartbeat_timeout;
        if conn.stream.set_read_timeout(Some(hb)).is_err() {
            self.die(slot, &mut conn, state, cv, false);
            return None;
        }
        match write_frame(&mut conn.stream, &Frame::BatchStart(desc.clone())) {
            Ok(bytes) => self.count_tx(&conn, bytes),
            Err(_) => {
                self.die(slot, &mut conn, state, cv, false);
                return None;
            }
        }

        loop {
            // Claim work: own queue first, then steal the back half of
            // the largest live queue (shard's elastic policy). The claim
            // also carries the group's latest checkpoint, if a previous
            // (now dead) worker shipped one.
            let (g, resume) = {
                let mut st = lock(state);
                loop {
                    if st.remaining == 0 {
                        return Some(conn);
                    }
                    if let Some(g) = st.queues[slot].pop_front() {
                        st.inflight[slot] = Some(g);
                        let resume = st.checkpoints[g].clone();
                        break (g, resume);
                    }
                    let victim = (0..st.queues.len())
                        .filter(|&v| v != slot && st.alive[v] && !st.queues[v].is_empty())
                        .max_by_key(|&v| st.queues[v].len());
                    if let Some(v) = victim {
                        let keep = st.queues[v].len() / 2;
                        let stolen = st.queues[v].split_off(keep);
                        st.queues[slot] = stolen;
                        continue;
                    }
                    st = cv
                        .wait_timeout(st, Duration::from_millis(25))
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                }
            };

            let started = Instant::now();
            let mut dispatch = groups[g].clone();
            if let Some((cycle, image)) = resume {
                // Attach the resume image only when the combined frame
                // still fits the wire cap; otherwise fall back to a cold
                // start (resume is an optimization, never required).
                let budget = crate::wire::MAX_PAYLOAD as usize;
                if dispatch.frames.len() * 8 + image.len() + 128 <= budget {
                    dispatch.resume_cycle = cycle;
                    dispatch.resume_image = image;
                    let mut m = lock(&self.shared.metrics);
                    m.groups_resumed += 1;
                    m.resume_cycles_skipped += cycle;
                    m.max_resume_cycle = m.max_resume_cycle.max(cycle);
                }
            }
            match write_frame(&mut conn.stream, &Frame::RunGroup(dispatch)) {
                Ok(bytes) => {
                    self.count_tx(&conn, bytes);
                    lock(&self.shared.metrics).dispatches += 1;
                }
                Err(_) => {
                    self.die(slot, &mut conn, state, cv, false);
                    return None;
                }
            }

            // Await the chunk; heartbeats extend the deadline because
            // every successful read restarts the socket timeout.
            loop {
                match read_frame(&mut conn.stream) {
                    Ok((Frame::Heartbeat { .. } | Frame::HeartbeatAck { .. }, bytes)) => {
                        self.count_rx(&conn, bytes);
                    }
                    Ok((Frame::Chunk(c), bytes)) => {
                        self.count_rx(&conn, bytes);
                        let item = &groups[g];
                        if c.batch != desc.batch
                            || c.group != item.group
                            || c.tid0 != item.tid0
                            || c.digests.len() != item.len as usize
                        {
                            self.die(slot, &mut conn, state, cv, false);
                            return None;
                        }
                        let mut st = lock(state);
                        st.inflight[slot] = None;
                        // First commit wins; a re-run after a
                        // false-positive timeout is bit-identical anyway.
                        if !st.committed[g] {
                            st.committed[g] = true;
                            st.remaining -= 1;
                            // The group's checkpoint can never be needed
                            // again: drop the image to bound memory.
                            st.checkpoints[g] = None;
                            let at = item.tid0 as usize;
                            st.digests[at..at + c.digests.len()].copy_from_slice(&c.digests);
                            let mut m = lock(&self.shared.metrics);
                            m.chunks_committed += 1;
                            let acc = m.worker(conn.id, conn.capacity);
                            acc.groups += 1;
                            acc.chunks += 1;
                            acc.busy += started.elapsed();
                        }
                        drop(st);
                        cv.notify_all();
                        break;
                    }
                    Ok((Frame::Checkpoint(u), bytes)) => {
                        self.count_rx(&conn, bytes);
                        // A mid-group snapshot from the worker. Validate
                        // against the dispatched group before storing:
                        // a confused or malicious worker must not plant
                        // state under another group's identity.
                        let gi = u.group as usize;
                        if u.batch == desc.batch
                            && gi < groups.len()
                            && groups[gi].tid0 == u.tid0
                            && u.cycle > 0
                            && u.cycle < desc.cycles
                            && !u.image.is_empty()
                        {
                            let image_len = u.image.len() as u64;
                            let mut st = lock(state);
                            let better = !st.committed[gi]
                                && st.checkpoints[gi]
                                    .as_ref()
                                    .is_none_or(|(cy, _)| u.cycle > *cy);
                            if better {
                                st.checkpoints[gi] = Some((u.cycle, u.image));
                            }
                            drop(st);
                            let mut m = lock(&self.shared.metrics);
                            m.checkpoints_received += 1;
                            m.checkpoint_bytes += image_len;
                        }
                    }
                    Ok((Frame::Error { .. }, bytes)) => {
                        // The worker cannot run this batch (engine build
                        // failure, bad dispatch): requeue elsewhere.
                        self.count_rx(&conn, bytes);
                        self.die(slot, &mut conn, state, cv, false);
                        return None;
                    }
                    Ok((_, bytes)) => {
                        self.count_rx(&conn, bytes);
                    }
                    Err(e) => {
                        self.die(slot, &mut conn, state, cv, e.is_timeout());
                        return None;
                    }
                }
            }
        }
    }

    /// Declare a worker dead: requeue its in-flight group and backlog
    /// round-robin onto survivors (or the orphan queue when none
    /// remain), and record the death.
    fn die(
        &self,
        slot: usize,
        conn: &mut WorkerConn,
        state: &Mutex<BatchState>,
        cv: &Condvar,
        timed_out: bool,
    ) {
        let mut st = lock(state);
        st.alive[slot] = false;
        let mut orphans: Vec<usize> = st.inflight[slot].take().into_iter().collect();
        orphans.extend(st.queues[slot].drain(..));
        let survivors: Vec<usize> = (0..st.alive.len()).filter(|&v| st.alive[v]).collect();
        let requeued = orphans.len() as u64;
        if survivors.is_empty() {
            st.orphans.extend(orphans);
        } else {
            for (i, g) in orphans.into_iter().enumerate() {
                st.queues[survivors[i % survivors.len()]].push_back(g);
            }
        }
        drop(st);
        cv.notify_all();
        let mut m = lock(&self.shared.metrics);
        m.worker_deaths += 1;
        m.requeues += requeued;
        if timed_out {
            m.heartbeat_timeouts += 1;
        }
        m.worker(conn.id, conn.capacity).alive = false;
    }

    fn count_tx(&self, conn: &WorkerConn, bytes: usize) {
        lock(&self.shared.metrics)
            .worker(conn.id, conn.capacity)
            .bytes_tx += bytes as u64;
    }

    fn count_rx(&self, conn: &WorkerConn, bytes: usize) {
        lock(&self.shared.metrics)
            .worker(conn.id, conn.capacity)
            .bytes_rx += bytes as u64;
    }
}

impl Drop for Controller {
    fn drop(&mut self) {
        if !self.shared.stop.load(Ordering::SeqCst) {
            self.shutdown();
        }
    }
}

/// Mutable scheduling state of one in-flight batch.
struct BatchState {
    /// Per-worker-slot queues of group indices.
    queues: Vec<VecDeque<usize>>,
    alive: Vec<bool>,
    inflight: Vec<Option<usize>>,
    committed: Vec<bool>,
    /// Uncommitted groups stranded with zero survivors, awaiting an
    /// adopted replacement worker.
    orphans: Vec<usize>,
    remaining: usize,
    digests: Vec<u64>,
    /// Latest mid-group checkpoint per group `(cycle, image)`; survives
    /// the snapshotting worker's death so a requeued dispatch resumes
    /// from it instead of cycle 0. Cleared on commit to bound memory.
    checkpoints: Vec<Option<(u64, Vec<u8>)>>,
}

/// Accept registrations until shutdown.
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let seed = listener
        .local_addr()
        .map(|a| u64::from(a.port()))
        .unwrap_or(0);
    let mut backoff =
        desim::Backoff::new(Duration::from_millis(5), Duration::from_millis(200), seed);
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                backoff.reset();
                handle_hello(stream, &shared);
            }
            Err(_) => {
                // A persistent accept failure (fd exhaustion…) must
                // neither busy-spin nor outlive shutdown; the shared
                // jittered schedule ramps the retry pace down.
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(backoff.next_delay());
            }
        }
    }
}

/// Process one dialing worker's `Hello`.
fn handle_hello(mut stream: TcpStream, shared: &Arc<Shared>) {
    stream.set_nodelay(true).ok();
    // A bounded handshake window so a stalled dialer can't wedge the
    // accept loop.
    if stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .is_err()
    {
        return;
    }
    match read_frame(&mut stream) {
        Ok((Frame::Hello { proto, capacity }, _)) if proto == VERSION => {
            let id = shared.next_worker.fetch_add(1, Ordering::SeqCst);
            if write_frame(&mut stream, &Frame::Welcome { worker_id: id }).is_err()
                || stream.set_read_timeout(None).is_err()
            {
                return;
            }
            let mut m = lock(&shared.metrics);
            m.registrations += 1;
            if m.worker_deaths > 0 {
                m.reconnects += 1;
            }
            m.worker(id, capacity.max(1));
            drop(m);
            lock(&shared.registry).push(WorkerConn {
                id,
                capacity: capacity.max(1),
                stream,
            });
            shared.registry_cv.notify_all();
        }
        Ok((Frame::Hello { proto, .. }, _)) => {
            lock(&shared.metrics).rejected_hellos += 1;
            let _ = write_frame(
                &mut stream,
                &Frame::Error {
                    context: format!("{}", WireError::BadVersion(proto)),
                },
            );
        }
        _ => {
            lock(&shared.metrics).rejected_hellos += 1;
        }
    }
}

/// Largest-remainder capacity-weighted split of `total` groups.
fn weighted_counts(total: usize, caps: &[u32]) -> Vec<usize> {
    let cap_sum: u64 = caps.iter().map(|&c| u64::from(c.max(1))).sum();
    let mut counts = Vec::with_capacity(caps.len());
    let mut rems: Vec<(u64, usize)> = Vec::with_capacity(caps.len());
    let mut assigned = 0usize;
    for (i, &c) in caps.iter().enumerate() {
        let num = total as u64 * u64::from(c.max(1));
        counts.push((num / cap_sum) as usize);
        rems.push((num % cap_sum, i));
        assigned += counts[i];
    }
    rems.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in rems.iter().take(total - assigned) {
        counts[i] += 1;
    }
    counts
}

/// Lock a mutex, shrugging off poison: batch state stays consistent
/// because every mutation is completed under the lock.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{spawn_worker, WorkerConfig};

    #[test]
    fn weighted_counts_cover_total_and_respect_capacity() {
        assert_eq!(weighted_counts(10, &[1, 1]), vec![5, 5]);
        assert_eq!(weighted_counts(10, &[3, 1]), vec![8, 2]);
        assert_eq!(weighted_counts(7, &[2, 1, 1]), vec![3, 2, 2]);
        assert_eq!(weighted_counts(1, &[1, 1, 1, 1]), vec![1, 0, 0, 0]);
        for (total, caps) in [(13, vec![5, 3, 1]), (100, vec![1, 2, 3, 4])] {
            let counts = weighted_counts(total, &caps);
            assert_eq!(counts.iter().sum::<usize>(), total);
        }
    }

    #[test]
    fn wait_for_workers_times_out_with_context() {
        let ctl = Controller::bind("127.0.0.1:0", ClusterConfig::default()).unwrap();
        let err = ctl
            .wait_for_workers(1, Duration::from_millis(30))
            .unwrap_err();
        assert!(matches!(err, ClusterError::NoWorkers(_)));
        assert!(err.to_string().contains("0 of 1"));
        ctl.shutdown();
    }

    #[test]
    fn register_rejects_bad_verilog_and_run_rejects_unknown_key() {
        let ctl = Controller::bind("127.0.0.1:0", ClusterConfig::default()).unwrap();
        assert!(matches!(
            ctl.register_design("module ???", "nope"),
            Err(ClusterError::Design(_))
        ));
        let v = "module top(input clk, input a, output q); assign q = a; endmodule";
        let design = rtlir::elaborate(v, "top").unwrap();
        let map = stimulus::PortMap::from_design(&design);
        let src = stimulus::RandomSource::new(&map, 4, 1);
        assert!(matches!(
            ctl.run_batch(42, &src, 1),
            Err(ClusterError::UnknownDesign(42))
        ));
        ctl.shutdown();
    }

    #[test]
    fn slow_group_outliving_heartbeat_timeout_is_not_declared_dead() {
        let v = "module top(input clk, input rst, input [7:0] a, output [7:0] q);
                 reg [7:0] acc;
                 always @(posedge clk) begin if (rst) acc <= 8'd0; else acc <= acc + a; end
                 assign q = acc; endmodule";
        // One giant group and a heartbeat deadline far shorter than its
        // compute: only the worker's compute-time heartbeat ticker keeps
        // the controller from a false-positive death (which would
        // requeue, time out again on every retry, and livelock).
        let ctl = Controller::bind(
            "127.0.0.1:0",
            ClusterConfig {
                group_size: 1 << 20,
                heartbeat_timeout: Duration::from_millis(150),
                rejoin_grace: Duration::from_millis(400),
            },
        )
        .unwrap();
        let key = ctl.register_design(v, "top").unwrap();
        let worker = spawn_worker(
            ctl.addr(),
            WorkerConfig {
                heartbeat_interval: Duration::from_millis(30),
                ..WorkerConfig::default()
            },
        );
        ctl.wait_for_workers(1, Duration::from_secs(5)).unwrap();

        let design = rtlir::elaborate(v, "top").unwrap();
        let map = stimulus::PortMap::from_design(&design);
        let src = stimulus::RandomSource::new(&map, 1000, 3);
        let digests = ctl.run_batch(key, &src, 500).unwrap();
        assert_eq!(digests.len(), 1000);
        let m = ctl.metrics();
        assert_eq!(
            m.worker_deaths, 0,
            "a long compute must stay alive via heartbeats (metrics: {m:?})"
        );
        assert_eq!(m.heartbeat_timeouts, 0);
        ctl.shutdown();
        worker.join().unwrap().unwrap();
    }

    #[test]
    fn loopback_model_parallel_matches_data_parallel() {
        let b = designs::Benchmark::Handshake;
        let ctl = Controller::bind(
            "127.0.0.1:0",
            ClusterConfig {
                group_size: 16,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let key = ctl.register_design(&b.source(), b.top()).unwrap();
        let workers: Vec<_> = (0..2)
            .map(|_| spawn_worker(ctl.addr(), WorkerConfig::default()))
            .collect();
        ctl.wait_for_workers(2, Duration::from_secs(5)).unwrap();

        let design = b.elaborate().unwrap();
        let map = stimulus::PortMap::from_design(&design);
        let src = stimulus::RandomSource::new(&map, 24, 0xfeed);
        let dp = ctl.run_batch(key, &src, 12).unwrap();
        let mp = ctl.run_batch_modelpar(key, &src, 12, 2).unwrap();
        assert_eq!(
            dp, mp,
            "model-parallel must match the data-parallel digests"
        );

        let m = ctl.metrics();
        assert!(m.modelpar_groups >= 1, "metrics: {m:?}");
        assert!(
            m.boundary_frames > 0,
            "parts must have exchanged boundaries"
        );
        assert!(m.boundary_bytes > 0);
        assert_eq!(m.modelpar_rollbacks, 0);
        // Both workers go back to the registry after the group.
        assert_eq!(ctl.ping_all(), 2);
        ctl.shutdown();
        for w in workers {
            w.join().unwrap().unwrap();
        }
    }

    #[test]
    fn loopback_batch_runs_and_returns_idle_workers() {
        let v = "module top(input clk, input rst, input [7:0] a, output [7:0] q);
                 reg [7:0] acc;
                 always @(posedge clk) begin if (rst) acc <= 8'd0; else acc <= acc + a; end
                 assign q = acc; endmodule";
        let ctl = Controller::bind(
            "127.0.0.1:0",
            ClusterConfig {
                group_size: 8,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let key = ctl.register_design(v, "top").unwrap();
        assert!(ctl.has_design(key));
        let workers: Vec<_> = (0..2)
            .map(|_| spawn_worker(ctl.addr(), WorkerConfig::default()))
            .collect();
        ctl.wait_for_workers(2, Duration::from_secs(5)).unwrap();

        let design = rtlir::elaborate(v, "top").unwrap();
        let map = stimulus::PortMap::from_design(&design);
        let src = stimulus::RandomSource::new(&map, 40, 0x5eed);
        let d1 = ctl.run_batch(key, &src, 6).unwrap();
        assert_eq!(d1.len(), 40);
        // Workers return to the registry and a second batch reuses the
        // warm engines.
        assert_eq!(ctl.ping_all(), 2);
        let d2 = ctl.run_batch(key, &src, 6).unwrap();
        assert_eq!(d1, d2, "same batch twice must be bit-identical");

        let m = ctl.metrics();
        assert_eq!(m.batches, 2);
        assert_eq!(m.registrations, 2);
        assert!(m.chunks_committed >= 10);
        ctl.shutdown();
        for w in workers {
            w.join().unwrap().unwrap();
        }
    }
}
