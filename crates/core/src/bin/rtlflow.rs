//! `rtlflow` — command-line front door to the flow.
//!
//! ```sh
//! rtlflow transpile design.v --top cpu --emit cuda -o cpu.cu
//! rtlflow simulate design.v --top cpu -n 4096 -c 10000
//! rtlflow simulate --benchmark riscv-mini -n 1024 -c 1000
//! rtlflow coverage design.v --top cpu -n 256 -c 500
//! rtlflow vcd design.v --top cpu -c 200 -o wave.vcd
//! rtlflow graph design.v --top cpu          # RTL graph as Graphviz DOT
//! rtlflow serve-sim --clients 8 --jobs 6    # replay a multi-client trace
//! rtlflow shard-sim --gpus 1,2,4,8          # multi-device scaling sweep
//! ```

use std::process::exit;

use rtlflow::cli::{benchmark_by_name, csv_list, Args};
use rtlflow::{fmt_duration, Benchmark, Flow, KernelProgram, PipelineConfig, PortMap};
use transpile::ToggleCoverage;

const USAGE: &str = "usage: rtlflow <command> [args]

commands:
  transpile   <file.v> --top <module> [--emit cuda|cpp] [-o <path>]
              Transpile RTL to CUDA (or Verilator-style C++) source.
  simulate    (<file.v> --top <module> | --benchmark <name>) [-n <stimulus>]
              [-c <cycles>] [--seed <u64>] [--group <size>] [--no-pipeline]
              [--streams <k>] [--verify <count>]
              [--exec scalar|vector|par[:N]|bitpar[:N[:B]]]
              Batch-simulate on the virtual A6000, optionally checking
              digests against the golden interpreter.
  bench-exec  [--fast] [--json] [--benchmark <name>] [--tuned [<dir>|off]]
              [-o <path>]
              Measure functional-execution throughput (stimulus-cycles/s)
              of the scalar, vectorized, block-parallel, and bit-transposed
              executors across the benchmark designs at batch sizes
              64/1024/8192. Designs with a cached tuned artifact get a
              `tuned` row. With --json the output file is merged per
              design: rows for designs not measured in this run are
              preserved from the existing file.
  autotune    [--benchmark <name> | --all | --fixture counter|picorv32]
              [--budget <probes>] [--budget-ms <ms>] [--seed <u64>]
              [--probe-n <stimulus>] [--probe-c <cycles>]
              [--cache-dir <dir>] [--static-cost] [--json] [-o <path>]
              Profile-guided search over exec strategy, lane chunk,
              fuser thresholds, and partition shape; persists the winner
              in the tuned-artifact cache keyed by design hash.
  shard-sim   [--benchmark <name>] [-n <stimulus>] [-c <cycles>]
              [--gpus <k1,k2,..>] [--speeds <f1,f2,..>] [--group <size>]
              [--fault-rate <p>] [--fault-seed <u64>] [--functional]
              [--seed <u64>] [--tuned [<dir>|off]] [--json]
              Sweep device counts (or one heterogeneous pool via --speeds),
              reporting measured vs analytically predicted speedup, steal
              counts, and per-device utilization.
  serve-sim   [--clients <n>] [--jobs <per-client>] [--designs <k>]
              [--max-batch <n>] [--window-ms <ms>] [--workers <n>]
              [--queue-limit <n>] [--devices <f1,f2,..>] [--seed <u64>]
              [--journal <path>] [--crash-after <k>]
              [--tuned [<dir>|off]] [--json]
              Replay a multi-client trace through the coalescing service.
              --journal write-ahead-logs every job; with --crash-after the
              service is hard-crashed after k accepted jobs and recovery
              from the journal is verified bit-identical to direct runs.
  netlist-sim (<file.json> --top <module> | --fixture counter|picorv32)
              [-n <stimulus>] [-c <cycles>] [--seed <u64>] [--rewrite on|off]
              [--exec scalar|vector|par[:N]|bitpar[:N[:B]]] [--verify <count>]
              [--json]
              Import a Yosys JSON netlist, optionally run the pattern
              rewriter, batch-simulate, and report import + rewrite stats
              (digests verified against the interpreter on the un-rewritten
              import).
  cluster-sim [--benchmark <name>] [-n <stimulus>] [-c <cycles>]
              [--workers <k>] [--capacities <c1,c2,..>] [--group <size>]
              [--model-parallel <k>]
              [--kill-worker <i>@<pickup>[+<cycle>][:silent]]
              [--checkpoint-interval <cycles>] [--chaos <seed>]
              [--seed <u64>] [--tuned [<dir>|off]] [--verify] [--json]
              Run a batch on an in-process loopback TCP cluster of k
              workers, optionally killing workers mid-run (one scripted
              fault, or a deterministic --chaos campaign) and checking
              digests bit-identical to the local sharded executor. With
              --checkpoint-interval, killed groups resume on survivors
              from their last mid-group checkpoint instead of cycle 0.
              --model-parallel <k> cuts the *design* into k parts
              co-simulated across k workers with per-cycle boundary
              exchange (a killed part rolls every part back to the
              deepest common checkpoint); digests stay bit-identical.
  coverage    (<file.v> --top <module> | --benchmark <name>) [-n <stimulus>]
              [-c <cycles>] [--seed <u64>]
              Toggle-coverage report over a random batch.
  vcd         <file.v> --top <module> [-c <cycles>] [--seed <u64>] [-o <path>]
              Dump a single-stimulus output waveform as VCD.
  graph       <file.v> --top <module> [-o <path>]
              Emit the RTL graph as Graphviz DOT.
  benchmarks  List built-in benchmark designs.
  help        Print this message.
";

fn usage() -> ! {
    eprint!("{USAGE}");
    exit(2)
}

/// `--tuned` flag → tuned-artifact cache policy. No flag (or a bare
/// `--tuned`) consults the default cache dir, `--tuned off` disables the
/// cache, `--tuned <dir>` points at an explicit one.
fn tuned_policy(args: &Args) -> rtlflow::TunePolicy {
    match args.get("tuned") {
        Some("off") => rtlflow::TunePolicy::Off,
        Some(dir) => rtlflow::TunePolicy::Dir(dir.into()),
        None => rtlflow::TunePolicy::Auto,
    }
}

fn load_flow(args: &Args) -> Flow {
    if let Some(b) = args.get("benchmark") {
        return Flow::from_benchmark(benchmark_by_name(b)).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(1)
        });
    }
    let Some(path) = args.positional.get(1) else {
        usage()
    };
    let Some(top) = args.get("top") else {
        eprintln!("--top <module> is required with a Verilog file");
        exit(2)
    };
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    Flow::from_verilog(&src, top).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(1)
    })
}

fn write_out(args: &Args, default_name: &str, content: &str) {
    match args.get("o") {
        Some(path) => {
            std::fs::write(path, content).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                exit(1)
            });
            eprintln!("wrote {path}");
        }
        None if args.has("o") => usage(),
        None => {
            if content.len() > 200_000 {
                let path = default_name;
                std::fs::write(path, content).unwrap();
                eprintln!("large output written to {path}");
            } else {
                println!("{content}");
            }
        }
    }
}

/// Convert a parsed JSON value (the netlist frontend's reader) into the
/// emitter's tree, preserving member order. `bench-exec --json` uses this
/// to carry previously-measured design rows into the merged output file.
fn jvalue_to_json(v: &netlist::json::JValue) -> desim::Json {
    use desim::Json;
    use netlist::json::JValue;
    match v {
        JValue::Null => Json::Null,
        JValue::Bool(b) => Json::Bool(*b),
        JValue::Int(i) => Json::Int(*i as i128),
        JValue::Num(n) => Json::Num(*n),
        JValue::Str(s) => Json::Str(s.clone()),
        JValue::Arr(a) => Json::Arr(a.iter().map(jvalue_to_json).collect()),
        JValue::Obj(m) => Json::Obj(
            m.iter()
                .map(|(k, v)| (k.clone(), jvalue_to_json(v)))
                .collect(),
        ),
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        usage();
    }
    let args = Args::parse(&raw);
    match raw[0].as_str() {
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
        }
        "benchmarks" => {
            println!("riscv-mini   single-cycle RV32I-subset core");
            println!("spinal       3-stage pipelined core with forwarding + branch prediction");
            println!("nvdla        deep-learning accelerator, hw_small scale (8x8x4 PEs)");
            println!("nvdla-small  4x4x2 PEs");
            println!("nvdla-tiny   2x2x1 PEs");
            println!("picorv32     vendored Yosys-JSON netlist fixture (gate-level RV32I subset)");
            println!("handshake    control-heavy valid/ready ring, almost all 1-bit signals");
        }
        "transpile" => {
            let flow = load_flow(&args);
            let (text, metrics) = match args.get("emit").unwrap_or("cuda") {
                "cpp" => rtlflow::emit_cpp(&flow.design),
                _ => rtlflow::emit_cuda(&flow.design, &flow.program),
            };
            eprintln!(
                "{}: {} LoC, {} tokens, CC_avg {:.1}, {} kernels/cycle",
                flow.design.name,
                metrics.loc,
                metrics.tokens,
                metrics.cc_avg,
                flow.cuda.len()
            );
            write_out(&args, "out.cu", &text);
        }
        "simulate" => {
            let flow = load_flow(&args);
            let n: usize = args.num("n", 1024);
            let cycles: u64 = args.num("c", 1000);
            let seed: u64 = args.num("seed", 1);
            let map = PortMap::from_design(&flow.design);
            let source = stimulus::source_for(&flow.design, &map, n, seed);
            let cfg = PipelineConfig {
                group_size: args.num("group", 1024.min(n)),
                pipelined: !args.has("no-pipeline"),
                mode: match args.get("streams") {
                    Some(s) => rtlflow::ExecMode::Stream {
                        streams: s.parse().unwrap_or(4),
                    },
                    None => rtlflow::ExecMode::Graph,
                },
                exec: match args.get("exec") {
                    Some(s) => rtlflow::ExecConfig::parse(s).unwrap_or_else(|e| {
                        eprintln!("{e}");
                        exit(2)
                    }),
                    None => rtlflow::ExecConfig::default(),
                },
                ..Default::default()
            };
            let t0 = std::time::Instant::now();
            let result = flow
                .simulate(source.as_ref(), cycles, &cfg)
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    exit(1)
                });
            println!(
                "simulated {n} stimulus x {cycles} cycles ({:?} host time)",
                t0.elapsed()
            );
            println!("modeled A6000 wall time: {}", fmt_duration(result.makespan));
            println!("GPU utilization: {:.1}%", result.gpu_utilization * 100.0);
            let unique: std::collections::HashSet<_> = result.digests.iter().collect();
            println!("{} distinct output signatures", unique.len());
            let st = &result.exec;
            println!(
                "fusion: {} ops -> {} fops ({} superops, {} consts folded, {} dead removed)",
                st.fuse.ops_in,
                st.fuse.ops_out,
                st.fuse.superops,
                st.fuse.consts_folded,
                st.fuse.dead_removed
            );
            println!(
                "uniform slots: {}/{}; scalar ops/cycle: {:.1}",
                st.uniform_slots, st.total_slots, st.scalar_ops_per_cycle
            );
            if let Some(v) = args.get("verify") {
                let count: usize = v.parse().unwrap_or(4);
                let checked = flow
                    .verify_against_golden(source.as_ref(), cycles.min(200), count)
                    .unwrap_or_else(|e| {
                        eprintln!("GOLDEN MISMATCH: {e}");
                        exit(1)
                    });
                println!("verified {checked} stimulus against the golden reference");
            }
        }
        "bench-exec" => {
            use desim::Json;
            use rtlflow::ExecConfig;

            let fast = args.has("fast");
            let policy = tuned_policy(&args);
            let all_designs = [
                "riscv-mini",
                "spinal",
                "nvdla-tiny",
                "picorv32",
                "handshake",
            ];
            // `--benchmark <name>` restricts the run to one design; with
            // --json the other designs' rows survive via the merge below.
            let designs: Vec<&str> = match args.get("benchmark") {
                Some(name) => {
                    benchmark_by_name(name); // validates the name (exits on junk)
                    vec![name]
                }
                None => all_designs.to_vec(),
            };
            let batches: [usize; 3] = [64, 1024, 8192];
            let strategies: [(&str, ExecConfig); 4] = [
                ("scalar", ExecConfig::scalar()),
                ("vectorized", ExecConfig::vectorized()),
                ("parallel", ExecConfig::parallel(0)),
                ("bitpar", ExecConfig::bitplane(1)),
            ];

            let mut design_rows: Vec<Json> = Vec::new();
            let mut table = String::new();
            for name in designs {
                let flow = Flow::from_benchmark(benchmark_by_name(name)).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    exit(1)
                });
                let map = PortMap::from_design(&flow.design);
                // Tuned config, if the cache has one for this design: the
                // program is rebuilt with the tuned partition/fuse and
                // measured with the tuned exec.
                let tuned = policy
                    .lookup(rtlir::design_hash(&flow.design))
                    .and_then(|a| {
                        autotune::prepare_tuned(&flow.design, &flow.model, &a)
                            .ok()
                            .map(|(program, _)| (a, program))
                    });
                let mut batch_rows: Vec<Json> = Vec::new();
                for &n in &batches {
                    // Fewer cycles at the biggest batch and in --fast mode:
                    // throughput is per stimulus-cycle, so the sample just
                    // needs to be large enough to dominate timer noise.
                    let cycles: u64 = match (fast, n >= 8192) {
                        (true, true) => 8,
                        (true, false) => 32,
                        (false, true) => 64,
                        (false, false) => 256,
                    };
                    let source = stimulus::source_for(&flow.design, &map, n, 7);
                    // Pokes are host set_inputs work — kept outside the
                    // timed region so throughput isolates the executor.
                    // Per-cycle durations are reduced with the median,
                    // which shrugs off preemption spikes on shared CI
                    // cores that would swamp a summed measurement.
                    let measure = |program: &KernelProgram, exec: &ExecConfig| -> f64 {
                        let mut dev = program.plan.alloc_device(n);
                        let mut scratches: Vec<cudasim::Scratch> = (0..exec.thread_count().max(1))
                            .map(|_| cudasim::Scratch::new())
                            .collect();
                        let mut frame = vec![0u64; map.len()];
                        // One untimed warm-up cycle: faults in the lazily
                        // zero-mapped device pages and warms the caches,
                        // then reset so every strategy measures the same
                        // cycle range from the same state.
                        program.run_cycle_exec(&mut dev, &mut scratches, 0, n, exec);
                        dev.reset();
                        let mut per_cycle = Vec::with_capacity(cycles as usize);
                        for c in 0..cycles {
                            for s in 0..n {
                                source.fill_frame(s, c, &mut frame);
                                for (lane, port) in map.ports.iter().enumerate() {
                                    program.plan.poke(&mut dev, port.var, s, frame[lane]);
                                }
                            }
                            let t0 = std::time::Instant::now();
                            program.run_cycle_exec(&mut dev, &mut scratches, 0, n, exec);
                            per_cycle.push(t0.elapsed());
                        }
                        per_cycle.sort();
                        let median = per_cycle[per_cycle.len() / 2];
                        n as f64 / median.as_secs_f64().max(1e-9)
                    };
                    let mut row = Json::obj().field("n", n).field("cycles", cycles);
                    table.push_str(&format!("{name:>12}  n={n:<6} c={cycles:<4}"));
                    for (label, exec) in &strategies {
                        let tput = measure(&flow.program, exec);
                        row = row.field(label, tput);
                        table.push_str(&format!("  {label} {tput:>12.0}/s"));
                    }
                    if let Some((a, program)) = &tuned {
                        let tput = measure(program, &a.exec);
                        row = row.field("tuned", tput);
                        table.push_str(&format!("  tuned {tput:>12.0}/s"));
                    }
                    table.push('\n');
                    batch_rows.push(row);
                }
                let mut drow = Json::obj().field("design", name);
                if let Some((a, _)) = &tuned {
                    drow = drow.field(
                        "tuned_config",
                        Json::obj()
                            .field("exec", a.exec.spec())
                            .field(
                                "fuse",
                                format!("{},{}", a.fuse.const_fold_min_ops, a.fuse.superop_min_ops),
                            )
                            .field("partition", a.partition.spec()),
                    );
                }
                design_rows.push(drow.field("batches", Json::Arr(batch_rows)));
            }

            if args.has("json") {
                // Merge per design instead of wholesale rewrite: rows for
                // designs not measured in this run are carried over from
                // the existing file in their original positions, and a
                // re-measured design replaces its old row in place. A
                // `--benchmark handshake` run therefore updates one row of
                // BENCH_simt.json and leaves the other four untouched.
                let path = args.get("o").unwrap_or("BENCH_simt.json");
                let mut fresh: Vec<Option<Json>> = design_rows.into_iter().map(Some).collect();
                let take = |fresh: &mut Vec<Option<Json>>, name: &str| -> Option<Json> {
                    fresh.iter_mut().find_map(|slot| {
                        match slot {
                            Some(Json::Obj(m)) => m
                                .iter()
                                .any(|(k, v)| k == "design" && *v == Json::Str(name.into())),
                            _ => false,
                        }
                        .then(|| slot.take())
                        .flatten()
                    })
                };
                let mut merged: Vec<Json> = Vec::new();
                if let Ok(prev) = std::fs::read_to_string(path) {
                    if let Ok(doc) = netlist::json::parse(&prev) {
                        for row in doc
                            .get("designs")
                            .and_then(|d| d.as_arr())
                            .unwrap_or_default()
                        {
                            let name = row.get("design").and_then(|d| d.as_str());
                            match name.and_then(|n| take(&mut fresh, n)) {
                                Some(new_row) => merged.push(new_row),
                                None => merged.push(jvalue_to_json(row)),
                            }
                        }
                    }
                }
                merged.extend(fresh.into_iter().flatten());
                let doc = Json::obj()
                    .field("fast", fast)
                    .field("unit", "stimulus-cycles/sec")
                    .field("designs", Json::Arr(merged));
                write_out(&args, "BENCH_simt.json", &format!("{doc}\n"));
            } else {
                println!(
                    "bench-exec (stimulus-cycles/sec{}):",
                    if fast { ", fast mode" } else { "" }
                );
                print!("{table}");
            }
        }
        "autotune" => {
            use desim::Json;
            use rtlflow::{tune, CostSource, TuneCache, TuneConfig};

            let targets: Vec<(String, rtlir::Design)> = if let Some(f) = args.get("fixture") {
                let (src, top) = match f {
                    "counter" => (netlist::COUNTER_JSON, "counter"),
                    "picorv32" => (netlist::PICORV32_JSON, "picorv32"),
                    other => {
                        eprintln!("unknown fixture `{other}` (counter, picorv32)");
                        exit(2)
                    }
                };
                let (design, _) = netlist::import_str(src, top).unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    exit(1)
                });
                vec![(format!("fixture-{top}"), design)]
            } else {
                let names: Vec<&str> = if args.has("all") {
                    vec![
                        "riscv-mini",
                        "spinal",
                        "nvdla-tiny",
                        "picorv32",
                        "handshake",
                    ]
                } else {
                    vec![args.get("benchmark").unwrap_or("riscv-mini")]
                };
                names
                    .into_iter()
                    .map(|name| {
                        let design = benchmark_by_name(name).elaborate().unwrap_or_else(|e| {
                            eprintln!("error: {e}");
                            exit(1)
                        });
                        (name.to_string(), design)
                    })
                    .collect()
            };
            let default_probe = rtlflow::ProbeSettings::default();
            let cfg = TuneConfig {
                seed: args.num("seed", 42),
                max_probes: args.num("budget", 24),
                budget_ms: args.num("budget-ms", 0),
                cost: if args.has("static-cost") {
                    CostSource::Static
                } else {
                    CostSource::Measured
                },
                probe: rtlflow::ProbeSettings {
                    num_stimulus: args.num("probe-n", default_probe.num_stimulus),
                    cycles: args.num("probe-c", default_probe.cycles),
                    ..default_probe
                },
                ..Default::default()
            };
            let cache = match args.get("cache-dir") {
                Some(d) => TuneCache::at(d),
                None => TuneCache::open_default(),
            };
            let json = args.has("json");
            let mut runs: Vec<Json> = Vec::new();
            for (name, design) in &targets {
                let report = tune(design, name, &cfg).unwrap_or_else(|e| {
                    eprintln!("error: tuning {name}: {e}");
                    exit(1)
                });
                let path = cache.store(&report.artifact).unwrap_or_else(|e| {
                    eprintln!("error: cannot persist artifact: {e}");
                    exit(1)
                });
                let a = &report.artifact;
                if !json {
                    println!(
                        "{name}: {:.2}x over default after {} probes ({} ms)",
                        a.speedup(),
                        a.probes,
                        report.elapsed_ms
                    );
                    println!(
                        "  winner: exec={} fuse={},{} partition={}",
                        a.exec.spec(),
                        a.fuse.const_fold_min_ops,
                        a.fuse.superop_min_ops,
                        a.partition.spec()
                    );
                    println!("  cached: {}", path.display());
                }
                runs.push(report.to_json());
            }
            if json {
                let doc = Json::obj()
                    .field("cache_dir", cache.dir().display().to_string())
                    .field("runs", Json::Arr(runs));
                write_out(&args, "AUTOTUNE.json", &format!("{doc}\n"));
            }
        }
        "coverage" => {
            let flow = load_flow(&args);
            let n: usize = args.num("n", 256);
            let cycles: u64 = args.num("c", 500);
            let seed: u64 = args.num("seed", 1);
            let map = PortMap::from_design(&flow.design);
            let source = stimulus::source_for(&flow.design, &map, n, seed);
            let mut dev = flow.program.plan.alloc_device(n);
            let mut scratch = cudasim::Scratch::new();
            let mut cov = ToggleCoverage::new(&flow.design);
            let mut frame = vec![0u64; map.len()];
            for c in 0..cycles {
                for s in 0..n {
                    source.fill_frame(s, c, &mut frame);
                    for (lane, port) in map.ports.iter().enumerate() {
                        flow.program.plan.poke(&mut dev, port.var, s, frame[lane]);
                    }
                }
                flow.program
                    .run_cycle_functional(&mut dev, &mut scratch, 0, n);
                cov.sample(&flow.design, &flow.program.plan, &dev, 0, n);
            }
            print!("{}", cov.report(&flow.design, 20));
        }
        "vcd" => {
            let flow = load_flow(&args);
            let cycles: u64 = args.num("c", 200);
            let seed: u64 = args.num("seed", 1);
            let map = PortMap::from_design(&flow.design);
            let source = stimulus::source_for(&flow.design, &map, 1, seed);
            let mut frame = vec![0u64; map.len()];
            let vcd = rtlir::vcd::dump_outputs(&flow.design, cycles, |c| {
                source.fill_frame(0, c, &mut frame);
                map.to_pokes(&frame)
            })
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                exit(1)
            });
            write_out(&args, "wave.vcd", &vcd);
        }
        "graph" => {
            let flow = load_flow(&args);
            let dot = flow.graph_info.to_dot(&flow.design);
            write_out(&args, "rtl.dot", &dot);
        }
        "shard-sim" => {
            use desim::Json;
            use rtlflow::{DevicePool, FaultSpec, HostModel, ShardConfig};

            let flow = Flow::from_benchmark(benchmark_by_name(
                args.get("benchmark").unwrap_or("riscv-mini"),
            ))
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                exit(1)
            });
            let n: usize = args.num("n", 65536);
            let cycles: u64 = args.num("c", 64);
            let group: usize = args.num("group", 1024);
            let fault_rate: f64 = args.num("fault-rate", 0.0);
            let seed: u64 = args.num("seed", 1);
            let functional = args.has("functional");
            let map = PortMap::from_design(&flow.design);
            let cfg = ShardConfig {
                group_size: group.clamp(1, n.max(1)),
                fault: (fault_rate > 0.0)
                    .then(|| FaultSpec::with_rate(fault_rate, args.num("fault-seed", 1))),
                tuned: tuned_policy(&args),
                ..Default::default()
            };
            let pools: Vec<DevicePool> = match args.get("speeds") {
                Some(s) => vec![DevicePool::with_speeds(
                    flow.model.clone(),
                    &csv_list::<f64>(s, "speeds"),
                )],
                None => csv_list::<usize>(args.get("gpus").unwrap_or("1,2,4"), "gpus")
                    .into_iter()
                    .map(|k| DevicePool::uniform(flow.model.clone(), k.max(1)))
                    .collect(),
            };

            let run = |pool: &DevicePool| {
                if functional {
                    let source = stimulus::source_for(&flow.design, &map, n, seed);
                    flow.simulate_sharded(source.as_ref(), cycles, &cfg, pool)
                        .unwrap_or_else(|e| {
                            eprintln!("error: {e}");
                            exit(1)
                        })
                } else {
                    rtlflow::model_shard_batch(
                        &flow.program,
                        &flow.cuda,
                        map.len(),
                        n,
                        cycles,
                        &cfg,
                        pool,
                    )
                }
            };
            // Baselines: measured single device, and the analytic static
            // multi-GPU model at each device count.
            let t1 = run(&DevicePool::uniform(flow.model.clone(), 1)).makespan;
            let pcfg = PipelineConfig {
                group_size: cfg.group_size,
                host: HostModel::xeon(),
                ..Default::default()
            };
            let predict = |k: usize| {
                pipeline::model_batch_multi_gpu(
                    &flow.program,
                    &flow.cuda,
                    map.len(),
                    n,
                    cycles,
                    &pcfg,
                    &flow.model,
                    k,
                )
                .makespan
            };
            let predicted_t1 = predict(1);

            let mut sweeps = Vec::new();
            for pool in &pools {
                let r = run(pool);
                let k = pool.len();
                let speedup = t1 as f64 / r.makespan as f64;
                let model_speedup = predicted_t1 as f64 / predict(k) as f64;
                sweeps.push((k, r, speedup, model_speedup));
            }

            if args.has("json") {
                let rows: Vec<Json> = sweeps
                    .iter()
                    .map(|(k, r, speedup, model_speedup)| {
                        Json::obj()
                            .field("gpus", *k)
                            .field("speedup", *speedup)
                            .field("model_speedup", *model_speedup)
                            .field("efficiency", r.metrics.scaling_efficiency(t1))
                            .field("metrics", r.metrics.to_json())
                    })
                    .collect();
                let doc = Json::obj()
                    .field("benchmark", args.get("benchmark").unwrap_or("riscv-mini"))
                    .field("n", n)
                    .field("cycles", cycles)
                    .field("functional", functional)
                    .field("fault_rate", fault_rate)
                    .field("single_device_makespan_ns", t1)
                    .field("sweeps", Json::Arr(rows));
                println!("{doc}");
            } else {
                println!(
                    "shard-sim: {} stimulus x {} cycles, group {}{}",
                    n,
                    cycles,
                    cfg.group_size,
                    if functional { "" } else { " (timing-only)" }
                );
                println!(
                    "  {:>4}  {:>12}  {:>8}  {:>9}  {:>6}  {:>7}  {:>7}",
                    "gpus", "makespan", "speedup", "predicted", "eff%", "steals", "faults"
                );
                for (k, r, speedup, model_speedup) in &sweeps {
                    println!(
                        "  {:>4}  {:>12}  {:>7.2}x  {:>8.2}x  {:>6.1}  {:>7}  {:>7}",
                        k,
                        fmt_duration(r.makespan),
                        speedup,
                        model_speedup,
                        r.metrics.scaling_efficiency(t1) * 100.0,
                        r.metrics.total_steals,
                        r.metrics.faults_injected,
                    );
                }
                for (k, r, _, _) in &sweeps {
                    println!("\nper-device ({k} gpu{}):", if *k == 1 { "" } else { "s" });
                    print!("{}", r.metrics.table());
                }
            }
        }
        "serve-sim" => {
            use rtlflow::{ServeConfig, SimService, TraceConfig};
            use std::sync::Arc;
            use std::time::Duration;

            // DUT pool: 1 = max coalescing, 2 = adds a second engine.
            let n_designs: usize = args.num("designs", 1);
            let pool = [Benchmark::RiscvMini, Benchmark::Spinal];
            let designs: Vec<Arc<rtlflow::Design>> = pool
                .iter()
                .take(n_designs.clamp(1, pool.len()))
                .map(|b| {
                    Flow::from_benchmark(*b)
                        .map(|f| Arc::new(f.design))
                        .unwrap_or_else(|e| {
                            eprintln!("error: {e}");
                            exit(1)
                        })
                })
                .collect();

            let serve_cfg = ServeConfig {
                max_batch: args.num("max-batch", 4096),
                window: Duration::from_millis(args.num("window-ms", 5)),
                queue_limit: args.num("queue-limit", 256),
                workers: args.num("workers", 2),
                devices: match args.get("devices") {
                    Some(s) => csv_list::<f64>(s, "devices"),
                    None => vec![1.0],
                },
                tuned: tuned_policy(&args),
                journal: args.get("journal").map(std::path::PathBuf::from),
                ..Default::default()
            };

            // `--crash-after <k>`: crash-resilience demo instead of the
            // trace replay. Accept k journaled jobs behind an effectively
            // infinite window (so none can flush), hard-crash the
            // service, then recover every job from the write-ahead
            // journal on a fresh service and check each one's digests
            // bit-identical to a direct local run. Exits nonzero on any
            // lost job or digest mismatch.
            if let Some(k) = args.get("crash-after") {
                let k: usize = k.parse().unwrap_or_else(|_| {
                    eprintln!("bad --crash-after `{k}` (want a job count)");
                    exit(2)
                });
                let Some(jpath) = serve_cfg.journal.clone() else {
                    eprintln!("--crash-after requires --journal <path>");
                    exit(2)
                };
                let _ = std::fs::remove_file(&jpath);
                let seed: u64 = args.num("seed", 7);
                let cycles: u64 = 40;
                let maps: Vec<PortMap> = designs.iter().map(|d| PortMap::from_design(d)).collect();
                let make_source = |which: usize, n: usize, jseed: u64| {
                    Box::new(stimulus::RandomSource::new(&maps[which], n, jseed))
                        as Box<dyn stimulus::StimulusSource>
                };

                let service = SimService::start(ServeConfig {
                    window: Duration::from_secs(3600),
                    ..serve_cfg.clone()
                });
                for i in 0..k {
                    let which = i % designs.len();
                    let n = 8 + i;
                    let jseed = seed ^ ((i as u64) << 8);
                    let spec = rtlflow::JobSpec::new(
                        std::sync::Arc::clone(&designs[which]),
                        make_source(which, n, jseed),
                        cycles,
                    )
                    .with_descriptor(format!("rand:{which}:{n}:{jseed}:{cycles}"));
                    service.submit(spec).unwrap_or_else(|e| {
                        eprintln!("error: submit {i}: {e}");
                        exit(1)
                    });
                }
                let crashed = service.crash();
                println!(
                    "crashed with {} accepted jobs ({} journal records fsync'd)",
                    crashed.jobs_accepted, crashed.journal_records
                );

                let pending = rtlflow::journal::pending(&jpath).unwrap_or_else(|e| {
                    eprintln!("error: read journal: {e}");
                    exit(1)
                });
                if pending.len() != k {
                    eprintln!(
                        "JOB LOSS: journal recovers {} of {k} accepted jobs",
                        pending.len()
                    );
                    exit(1);
                }
                let service = SimService::start(serve_cfg);
                let handles: Vec<(usize, usize, u64, rtlflow::JobHandle)> = pending
                    .iter()
                    .map(|p| {
                        let fields: Vec<&str> = p.descriptor.split(':').collect();
                        let parse = || -> Option<(usize, usize, u64, u64)> {
                            if fields.len() != 5 || fields[0] != "rand" {
                                return None;
                            }
                            Some((
                                fields[1].parse().ok()?,
                                fields[2].parse().ok()?,
                                fields[3].parse().ok()?,
                                fields[4].parse().ok()?,
                            ))
                        };
                        let (which, n, jseed, jcycles) = parse().unwrap_or_else(|| {
                            eprintln!("unrecognized journal descriptor `{}`", p.descriptor);
                            exit(1)
                        });
                        let spec = rtlflow::JobSpec::new(
                            std::sync::Arc::clone(&designs[which]),
                            make_source(which, n, jseed),
                            jcycles,
                        )
                        .with_descriptor(p.descriptor.clone())
                        .recovered_from(p.id);
                        let h = service.submit(spec).unwrap_or_else(|e| {
                            eprintln!("error: recover job {}: {e}", p.id);
                            exit(1)
                        });
                        (which, n, jseed, h)
                    })
                    .collect();
                let mut mismatches = 0usize;
                for (which, n, jseed, h) in handles {
                    let result = h.wait().unwrap_or_else(|e| {
                        eprintln!("error: recovered job failed: {e}");
                        exit(1)
                    });
                    let flow = Flow::from_benchmark(pool[which]).unwrap_or_else(|e| {
                        eprintln!("error: {e}");
                        exit(1)
                    });
                    let golden = flow
                        .simulate(
                            &stimulus::RandomSource::new(&maps[which], n, jseed),
                            cycles,
                            &PipelineConfig::default(),
                        )
                        .unwrap_or_else(|e| {
                            eprintln!("error: reference run: {e}");
                            exit(1)
                        });
                    if result.digests != golden.digests {
                        mismatches += 1;
                    }
                }
                let metrics = service.shutdown();
                if mismatches > 0 {
                    eprintln!(
                        "RECOVERY MISMATCH: {mismatches} recovered job(s) diverge from \
                         direct local runs"
                    );
                    exit(1);
                }
                println!(
                    "recovered {} job(s) from {}; all digests bit-identical to direct runs",
                    metrics.jobs_recovered,
                    jpath.display()
                );
                if args.has("json") {
                    println!("{}", metrics.to_json());
                } else {
                    print!("{}", metrics.table());
                }
                return;
            }

            let trace_cfg = TraceConfig {
                clients: args.num("clients", 8),
                jobs_per_client: args.num("jobs", 6),
                seed: args.num("seed", 7),
                ..Default::default()
            };
            let json = args.has("json");
            if !json {
                println!(
                    "serve-sim: {} clients x {} jobs over {} design(s); \
                     max batch {}, window {:?}, {} workers, queue limit {}, {} device(s)",
                    trace_cfg.clients,
                    trace_cfg.jobs_per_client,
                    designs.len(),
                    serve_cfg.max_batch,
                    serve_cfg.window,
                    serve_cfg.workers,
                    serve_cfg.queue_limit,
                    serve_cfg.devices.len()
                );
            }
            let service = SimService::start(serve_cfg);
            let report = rtlflow::serve_replay(&service, &designs, &trace_cfg);
            let metrics = service.shutdown();
            if json {
                println!("{}", metrics.to_json());
            } else {
                println!("\nclient-side trace report:");
                print!("{}", report.table());
                println!("\nservice metrics:");
                print!("{}", metrics.table());
            }
        }
        "netlist-sim" => {
            use desim::Json;

            let (src, top): (String, String) = match args.get("fixture") {
                Some("counter") => (netlist::COUNTER_JSON.to_string(), "counter".into()),
                Some("picorv32") => (netlist::PICORV32_JSON.to_string(), "picorv32".into()),
                Some(other) => {
                    eprintln!("unknown fixture `{other}` (counter, picorv32)");
                    exit(2)
                }
                None => {
                    let Some(path) = args.positional.get(1) else {
                        usage()
                    };
                    let Some(top) = args.get("top") else {
                        eprintln!("--top <module> is required with a netlist file");
                        exit(2)
                    };
                    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                        eprintln!("cannot read {path}: {e}");
                        exit(1)
                    });
                    (text, top.to_string())
                }
            };
            let (reference, import_stats) = netlist::import_str(&src, &top).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                exit(1)
            });
            let do_rewrite = match args.get("rewrite").unwrap_or("on") {
                "on" => true,
                "off" => false,
                other => {
                    eprintln!("bad value for --rewrite: `{other}` (on|off)");
                    exit(2)
                }
            };
            let mut design = reference.clone();
            let rw = do_rewrite.then(|| netlist::rewrite(&mut design));

            let flow = Flow::from_design(
                design,
                rtlflow::PartitionStrategy::PerLevel,
                rtlflow::GpuModel::default(),
            )
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                exit(1)
            });
            let n: usize = args.num("n", 1024);
            let cycles: u64 = args.num("c", 1000);
            let seed: u64 = args.num("seed", 1);
            let map = PortMap::from_design(&flow.design);
            let source = stimulus::source_for(&flow.design, &map, n, seed);
            let cfg = PipelineConfig {
                group_size: args.num("group", 1024.min(n)),
                exec: match args.get("exec") {
                    Some(s) => rtlflow::ExecConfig::parse(s).unwrap_or_else(|e| {
                        eprintln!("{e}");
                        exit(2)
                    }),
                    None => rtlflow::ExecConfig::default(),
                },
                ..Default::default()
            };
            let t0 = std::time::Instant::now();
            let result = flow
                .simulate(source.as_ref(), cycles, &cfg)
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    exit(1)
                });
            let host = t0.elapsed();

            // Verification runs the interpreter on the *un-rewritten*
            // import, so it checks the importer, the rewriter, and the
            // batch executor against each other in one pass.
            let verified = args.get("verify").map(|v| {
                let count: usize = v.parse().unwrap_or(4);
                let vc = cycles.min(200);
                let step = (n / count.max(1)).max(1);
                let mut frame = vec![0u64; map.len()];
                let mut compared = 0usize;
                for stim in (0..n).step_by(step) {
                    let mut interp = rtlflow::Interp::new(&reference).unwrap_or_else(|e| {
                        eprintln!("error: {e}");
                        exit(1)
                    });
                    for c in 0..vc {
                        source.fill_frame(stim, c, &mut frame);
                        interp.step_cycle(&map.to_pokes(&frame));
                    }
                    if cycles == vc && result.digests[stim] != interp.output_digest() {
                        eprintln!(
                            "GOLDEN MISMATCH: stimulus {stim} diverged from the \
                             un-rewritten interpreter reference"
                        );
                        exit(1);
                    }
                    compared += 1;
                }
                compared
            });

            if args.has("json") {
                let mut doc = Json::obj()
                    .field("top", top.as_str())
                    .field("n", n)
                    .field("cycles", cycles)
                    .field(
                        "import",
                        Json::obj()
                            .field("cells", import_stats.cells)
                            .field("nets", import_stats.nets)
                            .field("vars", import_stats.vars)
                            .field("processes", import_stats.processes),
                    );
                if let Some(rw) = &rw {
                    doc = doc.field(
                        "rewrite",
                        Json::obj()
                            .field("processes_in", rw.processes_in)
                            .field("processes_out", rw.processes_out)
                            .field("reduction_pct", rw.reduction_pct())
                            .field("consts_folded", rw.consts_folded)
                            .field("consts_propagated", rw.consts_propagated)
                            .field("copies_propagated", rw.copies_propagated)
                            .field("muxes_collapsed", rw.muxes_collapsed)
                            .field("subexprs_shared", rw.subexprs_shared)
                            .field("adders_widened", rw.adders_widened)
                            .field("comparators_widened", rw.comparators_widened)
                            .field("dead_removed", rw.dead_removed)
                            .field("rounds", rw.rounds),
                    );
                }
                let st = &result.exec;
                doc = doc
                    .field(
                        "fusion",
                        Json::obj()
                            .field("ops_in", st.fuse.ops_in)
                            .field("ops_out", st.fuse.ops_out)
                            .field("superops", st.fuse.superops),
                    )
                    .field("makespan_ns", result.makespan)
                    .field("gpu_utilization", result.gpu_utilization)
                    .field("host_seconds", host.as_secs_f64());
                if let Some(compared) = verified {
                    doc = doc.field("verified", compared);
                }
                println!("{doc}");
            } else {
                println!(
                    "imported {top}: {} cells, {} nets -> {} vars, {} processes",
                    import_stats.cells,
                    import_stats.nets,
                    import_stats.vars,
                    import_stats.processes
                );
                match &rw {
                    Some(rw) => print!("{}", rw.table()),
                    None => println!("rewrite: off"),
                }
                let st = &result.exec;
                println!(
                    "fusion: {} ops -> {} fops ({} superops)",
                    st.fuse.ops_in, st.fuse.ops_out, st.fuse.superops
                );
                println!("simulated {n} stimulus x {cycles} cycles ({host:?} host time)");
                println!("modeled A6000 wall time: {}", fmt_duration(result.makespan));
                if let Some(compared) = verified {
                    println!(
                        "verified {compared} stimulus against the un-rewritten \
                         interpreter reference"
                    );
                }
            }
        }
        "cluster-sim" => {
            use rtlflow::{
                ClusterConfig, Controller, DevicePool, FaultMode, ShardConfig, WorkerConfig,
                WorkerFault,
            };
            use std::time::Duration;

            let bench = benchmark_by_name(args.get("benchmark").unwrap_or("riscv-mini"));
            let n: usize = args.num("n", 4096);
            let cycles: u64 = args.num("c", 64);
            let seed: u64 = args.num("seed", 1);
            let group: usize = args.num("group", 1024);
            let capacities: Vec<u32> = match args.get("capacities") {
                Some(s) => csv_list(s, "capacities"),
                None => vec![1; args.num("workers", 4)],
            };
            if capacities.is_empty() || capacities.contains(&0) {
                eprintln!("--capacities needs positive values");
                exit(2);
            }
            // `--kill-worker i@k[+cycle][:silent]`: worker i disconnects
            // (or goes silent) at its k-th group pickup — `+cycle` delays
            // the death until that many cycles into the group, past any
            // checkpoints due by then — then rejoins healthy.
            let fault: Option<(usize, WorkerFault)> = args.get("kill-worker").map(|s| {
                let parse = || -> Option<(usize, WorkerFault)> {
                    let (spec, mode) = match s.strip_suffix(":silent") {
                        Some(rest) => (rest, FaultMode::Silent),
                        None => (s, FaultMode::Disconnect),
                    };
                    let (i, rest) = spec.split_once('@')?;
                    let (k, mid_cycle) = match rest.split_once('+') {
                        Some((k, c)) => (k, Some(c.parse().ok()?)),
                        None => (rest, None),
                    };
                    Some((
                        i.parse().ok()?,
                        WorkerFault {
                            after_pickups: k.parse().ok()?,
                            mode,
                            mid_cycle,
                        },
                    ))
                };
                parse().unwrap_or_else(|| {
                    eprintln!("bad --kill-worker `{s}` (want <worker>@<pickup>[+cycle][:silent])");
                    exit(2)
                })
            });
            if let Some((i, _)) = &fault {
                if *i >= capacities.len() {
                    eprintln!(
                        "--kill-worker names worker {i} but only {} exist",
                        capacities.len()
                    );
                    exit(2);
                }
            }
            // Mid-group snapshot cadence (0 = off): workers ship a
            // checkpoint every this-many cycles, and requeued groups
            // resume from the last one instead of cycle 0.
            let checkpoint_interval: u64 = args.num("checkpoint-interval", 0);
            // `--model-parallel k` (0 = off): cut the design into k parts
            // co-simulated across k workers instead of replicating it.
            let model_parallel: usize = args.num("model-parallel", 0);
            if model_parallel > capacities.len() {
                eprintln!(
                    "--model-parallel {model_parallel} needs that many workers, only {} spawn",
                    capacities.len()
                );
                exit(2);
            }
            // `--chaos <seed>`: replace any single --kill-worker fault
            // with a deterministic scripted campaign derived from the
            // seed (reproduce CI failures from the seed alone).
            let chaos: Option<rtlflow::ChaosPlan> = args.get("chaos").map(|s| {
                let seed: u64 = s.parse().unwrap_or_else(|_| {
                    eprintln!("bad --chaos `{s}` (want a u64 seed)");
                    exit(2)
                });
                rtlflow::ChaosPlan::generate(seed, capacities.len(), cycles, checkpoint_interval)
            });
            if let Some(plan) = &chaos {
                print!("{}", plan.describe());
            }

            let flow = Flow::from_benchmark(bench).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                exit(1)
            });
            let controller = Controller::bind(
                "127.0.0.1:0",
                ClusterConfig {
                    group_size: group.clamp(1, n.max(1)),
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| {
                eprintln!("error: bind controller: {e}");
                exit(1)
            });
            let key = controller
                .register_design(&bench.source(), bench.top())
                .unwrap_or_else(|e| {
                    eprintln!("error: register design: {e}");
                    exit(1)
                });
            let handles: Vec<_> = capacities
                .iter()
                .enumerate()
                .map(|(i, &capacity)| {
                    rtlflow::spawn_worker(
                        controller.addr(),
                        WorkerConfig {
                            capacity,
                            fault: match &chaos {
                                Some(plan) => plan.fault_for(i),
                                None => fault.as_ref().filter(|(w, _)| *w == i).map(|&(_, f)| f),
                            },
                            checkpoint_interval,
                            tuned: tuned_policy(&args),
                            ..Default::default()
                        },
                    )
                })
                .collect();
            controller
                .wait_for_workers(capacities.len(), Duration::from_secs(10))
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    exit(1)
                });

            let map = PortMap::from_design(&flow.design);
            let source = stimulus::source_for(&flow.design, &map, n, seed);
            let t0 = std::time::Instant::now();
            let digests = if model_parallel > 0 {
                controller.run_batch_modelpar(key, source.as_ref(), cycles, model_parallel)
            } else {
                controller.run_batch(key, source.as_ref(), cycles)
            }
            .unwrap_or_else(|e| {
                eprintln!("error: cluster batch: {e}");
                exit(1)
            });
            let elapsed = t0.elapsed();
            controller.shutdown();
            for h in handles {
                let _ = h.join();
            }

            let verified = args.has("verify").then(|| {
                let cfg = ShardConfig {
                    group_size: group.clamp(1, n.max(1)),
                    ..Default::default()
                };
                let local = flow
                    .simulate_sharded(
                        source.as_ref(),
                        cycles,
                        &cfg,
                        &DevicePool::uniform(flow.model.clone(), 1),
                    )
                    .unwrap_or_else(|e| {
                        eprintln!("error: local reference run: {e}");
                        exit(1)
                    });
                if local.digests != digests {
                    eprintln!("CLUSTER MISMATCH: digests diverge from the local sharded run");
                    exit(1);
                }
            });

            // The cut the controller and workers both re-derive, reported
            // for inspection (`--json` gets the full per-part table).
            let cut = (model_parallel > 0)
                .then(|| {
                    rtlflow::PartitionSpec::compute(&flow.design, &flow.graph_info, model_parallel)
                        .map(|spec| spec.cut_report(&flow.design))
                })
                .transpose()
                .unwrap_or_else(|e| {
                    eprintln!("error: cut report: {e}");
                    exit(1)
                });

            let metrics = controller.metrics();
            if args.has("json") {
                use desim::Json;
                let mut doc = Json::obj()
                    .field("benchmark", args.get("benchmark").unwrap_or("riscv-mini"))
                    .field("n", n)
                    .field("cycles", cycles)
                    .field("workers", capacities.len())
                    .field("model_parallel", model_parallel)
                    .field("host_seconds", elapsed.as_secs_f64())
                    .field("verified", verified.is_some())
                    .field("metrics", metrics.to_json());
                if let Some(report) = &cut {
                    let parts: Vec<Json> = report
                        .parts
                        .iter()
                        .map(|p| {
                            Json::obj()
                                .field("part", p.part)
                                .field("seq_processes", p.seq_processes)
                                .field("replica_processes", p.replica_processes)
                                .field("comb_processes", p.comb_processes)
                                .field("cost", p.cost)
                                .field("boundary_in_vars", p.boundary_in_vars)
                                .field("boundary_in_bits", p.boundary_in_bits)
                                .field("boundary_out_vars", p.boundary_out_vars)
                                .field("boundary_out_bits", p.boundary_out_bits)
                                .field("outputs", p.outputs)
                        })
                        .collect();
                    doc = doc.field(
                        "cut",
                        Json::obj()
                            .field("total_boundary_bits", report.total_boundary_bits)
                            .field("parts", Json::Arr(parts)),
                    );
                }
                println!("{doc}");
            } else {
                let unique: std::collections::HashSet<_> = digests.iter().collect();
                println!(
                    "cluster-sim: {n} stimulus x {cycles} cycles over {} loopback worker(s) \
                     ({elapsed:?} host time)",
                    capacities.len()
                );
                if let Some(report) = &cut {
                    println!(
                        "model-parallel cut: {} parts, {} boundary bits/cycle",
                        report.parts.len(),
                        report.total_boundary_bits
                    );
                    for p in &report.parts {
                        println!(
                            "  part {}: {} seq + {} replica + {} comb processes, cost {}, \
                             in {} bits / out {} bits, {} outputs",
                            p.part,
                            p.seq_processes,
                            p.replica_processes,
                            p.comb_processes,
                            p.cost,
                            p.boundary_in_bits,
                            p.boundary_out_bits,
                            p.outputs
                        );
                    }
                }
                println!("{} distinct output signatures", unique.len());
                if verified.is_some() {
                    println!("verified: bit-identical to the local sharded executor");
                }
                print!("{}", metrics.table());
            }
        }
        _ => usage(),
    }
}
