//! # RTLflow
//!
//! A Rust reproduction of *"From RTL to CUDA: A GPU Acceleration Flow for
//! RTL Simulation with Batch Stimulus"* (Lin et al., ICPP 2022).
//!
//! RTLflow simulates one Design-Under-Test across thousands of
//! independent stimulus simultaneously by transpiling RTL into SIMT
//! kernels (one GPU thread per stimulus) over width-bucketed, coalesced
//! device arrays, partitioning the RTL graph into a CUDA task graph with
//! an MCMC GPU-aware search, executing it as a define-once-run-repeatedly
//! CUDA graph, and overlapping CPU `set_inputs` with GPU evaluation via
//! pipeline scheduling.
//!
//! Because this reproduction targets machines without an A6000 (or any
//! GPU), the CUDA device is a *model*: kernels execute functionally
//! (bit-exact against a golden interpreter) while time advances on a
//! calibrated virtual A6000. See `DESIGN.md` for the substitution map.
//!
//! ## Quickstart
//!
//! ```
//! use rtlflow::{Flow, PartitionStrategy};
//!
//! let verilog = "
//!     module top(input clk, input rst, input [7:0] a, output [7:0] q);
//!       reg [7:0] acc;
//!       always @(posedge clk) begin
//!         if (rst) acc <= 8'd0; else acc <= acc + a;
//!       end
//!       assign q = acc;
//!     endmodule";
//! let flow = Flow::from_verilog(verilog, "top").unwrap();
//! let result = flow.simulate_random(256, 100, 42).unwrap();
//! assert_eq!(result.digests.len(), 256);
//! ```

pub use autotune::{
    tune, CostSource, PartSpec, ProbeSettings, TuneCache, TuneConfig, TunePolicy, TuneReport,
    TunedArtifact,
};
pub use baselines::{CpuModel, EssentModel, EssentSim, VerilatorModel, VerilatorSim};
pub use cluster::{
    run_worker, spawn_worker, ChaosPlan, ClusterConfig, ClusterError, ClusterJobResult,
    ClusterMetrics, Controller, FaultMode, WorkerConfig, WorkerFault, WorkerReport,
};
pub use cudasim::{
    Checkpoint, CheckpointError, CudaGraph, ExecConfig, ExecMode, ExecStats, ExecStrategy,
    FuseStats, GpuModel, LaunchCosts, SlotUniform,
};
pub use designs::{Benchmark, NvdlaConfig, NvdlaScale};
pub use desim::{fmt_duration, Backoff, Time, Trace};
pub use modelpar::{fold_digest, simulate_modelpar, BoundaryCodec, PartEngine};
pub use netlist::{load_design, ImportStats, NetlistError, RewriteStats};
pub use partition::{
    mcmc_partition, static_partition, CutReport, McmcConfig, McmcResult, ModelPart, PartCutRow,
    PartitionSpec,
};
pub use pipeline::{simulate_batch, HostModel, PipelineConfig, SimResult};
pub use rtlir::{BitVec, Design, Interp};
pub use serve::{
    journal, replay as serve_replay, ClusterBackend, DeadlineClass, JobEvent, JobHandle, JobResult,
    JobSpec, Journal, JournalEvent, JournalRecord, PendingJob, Rejected, ServeConfig, ServeMetrics,
    SimService, SubmitError, TraceConfig, TraceReport,
};
pub use shard::{
    model_shard_batch, resume_group_exec, shard_batch, shard_batch_jobs, DevicePool, DeviceReport,
    DeviceSpec, FaultSpec, ShardConfig, ShardJobResult, ShardMetrics, ShardResult,
};
pub use stimulus::{PortMap, RandomSource, RiscvSource, SliceSource, StimulusSource};
pub use transpile::{emit_cpp, emit_cuda, CodeMetrics, KernelProgram, Partition};

pub mod cli;

use rtlir::RtlGraph;

/// How the RTL graph is partitioned into GPU kernels.
#[derive(Debug, Clone)]
pub enum PartitionStrategy {
    /// One task per levelization level (the transpiler default).
    PerLevel,
    /// One task per combinational process (maximum kernel concurrency).
    PerProcess,
    /// Verilator-style hard-coded weights with parallelism parameter α
    /// (`RTLflow¬g` in Table 3).
    Static { alpha: usize },
    /// The paper's GPU-aware MCMC search (Algorithm 1).
    Mcmc(McmcConfig),
}

/// Transpilation statistics (Table 1 rows).
#[derive(Debug, Clone)]
pub struct TranspileReport {
    /// Verilog source lines.
    pub verilog_loc: usize,
    /// AST node count.
    pub ast_nodes: usize,
    /// Emitted Verilator-style C++ metrics.
    pub cpp: CodeMetrics,
    /// Emitted CUDA metrics.
    pub cuda: CodeMetrics,
    /// Wall-clock transpilation time.
    pub t_trans: std::time::Duration,
}

/// The end-to-end flow object: parse → elaborate → partition → transpile
/// → instantiate → simulate.
pub struct Flow {
    pub design: Design,
    pub graph_info: RtlGraph,
    pub program: KernelProgram,
    pub cuda: CudaGraph,
    pub model: GpuModel,
    pub partition: Partition,
}

impl Flow {
    /// Build a flow from Verilog source with the default partition and
    /// the default (A6000) GPU model.
    pub fn from_verilog(src: &str, top: &str) -> Result<Flow, String> {
        let design = rtlir::elaborate(src, top).map_err(|e| e.to_string())?;
        Flow::from_design(design, PartitionStrategy::PerLevel, GpuModel::default())
    }

    /// Build a flow from design source in either frontend format
    /// (Verilog subset or Yosys JSON netlist, auto-detected).
    pub fn from_source(src: &str, top: &str) -> Result<Flow, String> {
        let design = netlist::load_design(src, top).map_err(|e| e.to_string())?;
        Flow::from_design(design, PartitionStrategy::PerLevel, GpuModel::default())
    }

    /// Build a flow for one of the paper's benchmark designs.
    pub fn from_benchmark(b: Benchmark) -> Result<Flow, String> {
        let design = b.elaborate().map_err(|e| e.to_string())?;
        Flow::from_design(design, PartitionStrategy::PerLevel, GpuModel::default())
    }

    /// Build a flow from an elaborated design with explicit strategy/model.
    pub fn from_design(
        design: Design,
        strategy: PartitionStrategy,
        model: GpuModel,
    ) -> Result<Flow, String> {
        let graph = RtlGraph::build(&design).map_err(|e| e.to_string())?;
        let partition = match &strategy {
            PartitionStrategy::PerLevel => transpile::default_partition(&design, &graph),
            PartitionStrategy::PerProcess => transpile::per_process_partition(&design, &graph),
            PartitionStrategy::Static { alpha } => static_partition(&design, &graph, *alpha),
            PartitionStrategy::Mcmc(cfg) => mcmc_partition(&design, &graph, &model, cfg)?.partition,
        };
        let program = KernelProgram::build(&design, &graph, &partition)?;
        let cuda = CudaGraph::instantiate_full(
            program.graph.clone(),
            &model,
            Some(program.uniform.clone()),
            Some(program.bit.clone()),
        )?;
        Ok(Flow {
            design,
            graph_info: graph,
            program,
            cuda,
            model,
            partition,
        })
    }

    /// Re-partition an existing flow (cheaper than rebuilding the design).
    pub fn repartition(&mut self, strategy: PartitionStrategy) -> Result<(), String> {
        let partition = match &strategy {
            PartitionStrategy::PerLevel => {
                transpile::default_partition(&self.design, &self.graph_info)
            }
            PartitionStrategy::PerProcess => {
                transpile::per_process_partition(&self.design, &self.graph_info)
            }
            PartitionStrategy::Static { alpha } => {
                static_partition(&self.design, &self.graph_info, *alpha)
            }
            PartitionStrategy::Mcmc(cfg) => {
                mcmc_partition(&self.design, &self.graph_info, &self.model, cfg)?.partition
            }
        };
        self.program = KernelProgram::build(&self.design, &self.graph_info, &partition)?;
        self.cuda = CudaGraph::instantiate_full(
            self.program.graph.clone(),
            &self.model,
            Some(self.program.uniform.clone()),
            Some(self.program.bit.clone()),
        )?;
        self.partition = partition;
        Ok(())
    }

    /// Ordered input port map (what a stimulus drives).
    pub fn port_map(&self) -> PortMap {
        PortMap::from_design(&self.design)
    }

    /// Simulate a batch with explicit source and pipeline configuration.
    pub fn simulate(
        &self,
        source: &dyn StimulusSource,
        cycles: u64,
        cfg: &PipelineConfig,
    ) -> Result<SimResult, String> {
        let map = self.port_map();
        if source.num_ports() != map.len() {
            return Err(format!(
                "stimulus has {} lanes but design drives {} ports",
                source.num_ports(),
                map.len()
            ));
        }
        Ok(simulate_batch(
            &self.design,
            &self.program,
            &self.cuda,
            &map,
            source,
            cycles,
            cfg,
            &self.model,
        ))
    }

    /// Simulate a batch across a multi-device pool with elastic work
    /// stealing. Digests are bit-identical to [`Flow::simulate`] for any
    /// pool shape, speed mix, or injected fault schedule.
    pub fn simulate_sharded(
        &self,
        source: &dyn StimulusSource,
        cycles: u64,
        cfg: &ShardConfig,
        pool: &DevicePool,
    ) -> Result<ShardResult, String> {
        let map = self.port_map();
        if source.num_ports() != map.len() {
            return Err(format!(
                "stimulus has {} lanes but design drives {} ports",
                source.num_ports(),
                map.len()
            ));
        }
        Ok(shard_batch(
            &self.design,
            &self.program,
            &self.cuda,
            &map,
            source,
            cycles,
            cfg,
            pool,
        ))
    }

    /// Simulate `n` random stimulus for `cycles` cycles (idiomatic source
    /// per design: constrained RISC-V streams, NVDLA protocol, or pure
    /// random).
    pub fn simulate_random(&self, n: usize, cycles: u64, seed: u64) -> Result<SimResult, String> {
        let map = self.port_map();
        let source = stimulus::source_for(&self.design, &map, n, seed);
        self.simulate(source.as_ref(), cycles, &PipelineConfig::default())
    }

    /// Verify `sample` stimulus against the golden interpreter for
    /// `cycles` cycles; returns the number of compared waveform points.
    pub fn verify_against_golden(
        &self,
        source: &dyn StimulusSource,
        cycles: u64,
        sample: usize,
    ) -> Result<usize, String> {
        let map = self.port_map();
        let result = self.simulate(source, cycles, &PipelineConfig::default())?;
        let mut compared = 0;
        let step = (source.num_stimulus() / sample.max(1)).max(1);
        let mut frame = vec![0u64; map.len()];
        for s in (0..source.num_stimulus()).step_by(step) {
            let mut interp = Interp::new(&self.design).map_err(|e| e.to_string())?;
            for c in 0..cycles {
                source.fill_frame(s, c, &mut frame);
                interp.step_cycle(&map.to_pokes(&frame));
            }
            if result.digests[s] != interp.output_digest() {
                return Err(format!("stimulus {s} diverged from the golden reference"));
            }
            compared += 1;
        }
        Ok(compared)
    }

    /// Transpilation statistics for Table 1.
    pub fn transpile_report(src: &str, top: &str) -> Result<TranspileReport, String> {
        let t0 = std::time::Instant::now();
        let unit = rtlir::parse(src).map_err(|e| e.to_string())?;
        let ast_nodes = unit.count_nodes();
        let design = rtlir::elaborate(src, top).map_err(|e| e.to_string())?;
        let program = transpile::transpile(&design)?;
        let (_, cuda) = emit_cuda(&design, &program);
        let t_trans = t0.elapsed();
        let (_, cpp) = emit_cpp(&design);
        let verilog_loc = src.lines().filter(|l| !l.trim().is_empty()).count();
        Ok(TranspileReport {
            verilog_loc,
            ast_nodes,
            cpp,
            cuda,
            t_trans,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_flow_runs() {
        let verilog = "
            module top(input clk, input rst, input [7:0] a, output [7:0] q);
              reg [7:0] acc;
              always @(posedge clk) begin
                if (rst) acc <= 8'd0; else acc <= acc + a;
              end
              assign q = acc;
            endmodule";
        let flow = Flow::from_verilog(verilog, "top").unwrap();
        let result = flow.simulate_random(64, 50, 1).unwrap();
        assert_eq!(result.digests.len(), 64);
        assert!(result.makespan > 0);
    }

    #[test]
    fn strategies_agree_functionally() {
        let flow = Flow::from_benchmark(Benchmark::RiscvMini).unwrap();
        let map = flow.port_map();
        let src = RiscvSource::new(&map, 16, 99);
        let cfg = PipelineConfig::default();
        let base = flow.simulate(&src, 30, &cfg).unwrap();

        for strat in [
            PartitionStrategy::PerProcess,
            PartitionStrategy::Static { alpha: 4 },
        ] {
            let mut f2 = Flow::from_benchmark(Benchmark::RiscvMini).unwrap();
            f2.repartition(strat).unwrap();
            let r2 = f2.simulate(&src, 30, &cfg).unwrap();
            assert_eq!(base.digests, r2.digests);
        }
    }

    #[test]
    fn verify_against_golden_passes() {
        let flow = Flow::from_benchmark(Benchmark::RiscvMini).unwrap();
        let map = flow.port_map();
        let src = RiscvSource::new(&map, 8, 5);
        let compared = flow.verify_against_golden(&src, 25, 4).unwrap();
        assert!(compared >= 4);
    }

    #[test]
    fn lane_mismatch_is_rejected() {
        let flow = Flow::from_benchmark(Benchmark::RiscvMini).unwrap();
        let other = Flow::from_benchmark(Benchmark::Nvdla(NvdlaScale::Tiny)).unwrap();
        let src = stimulus::NvdlaSource::new(&other.port_map(), 4, 1);
        assert!(flow.simulate(&src, 5, &PipelineConfig::default()).is_err());
    }

    #[test]
    fn transpile_report_counts() {
        let r = Flow::transpile_report(&Benchmark::RiscvMini.source(), "riscv_mini").unwrap();
        assert!(r.verilog_loc > 100);
        assert!(r.ast_nodes > 500);
        assert!(r.cuda.loc > r.cpp.loc / 2);
        assert!(r.cuda.cc_avg < r.cpp.cc_avg);
    }
}
