//! Shared command-line plumbing for the `rtlflow` binary.
//!
//! Every subcommand (`simulate`, `bench-exec`, `shard-sim`, `serve-sim`,
//! `cluster-sim`, ...) cracks the same `--flag value` grammar; this
//! module holds the one parser they all use so a new subcommand never
//! re-implements flag handling.

use std::process::exit;

use designs::{Benchmark, NvdlaScale};

/// Minimal argument cracker: positionals + `--flag [value]` pairs.
pub struct Args {
    pub positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    pub fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(name) = a
                .strip_prefix("--")
                .or_else(|| a.strip_prefix('-').filter(|s| s.len() == 1))
            {
                let value = raw.get(i + 1).filter(|v| !v.starts_with('-')).cloned();
                if value.is_some() {
                    i += 1;
                }
                flags.push((name.to_string(), value));
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Args { positional, flags }
    }

    /// Last value given for `--name` (last wins, like most CLIs).
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// Parse `--name` as a number, exiting with a usage error on junk.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("bad value for --{name}: `{v}`");
                exit(2)
            }),
        }
    }
}

/// Parse a comma-separated list flag value (`--gpus 1,2,4`).
pub fn csv_list<T: std::str::FromStr>(s: &str, flag: &str) -> Vec<T> {
    let list: Vec<T> = s
        .split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(|p| {
            p.parse().unwrap_or_else(|_| {
                eprintln!("bad value in --{flag}: `{p}`");
                exit(2)
            })
        })
        .collect();
    if list.is_empty() {
        eprintln!("--{flag} needs at least one value");
        exit(2)
    }
    list
}

/// Resolve a benchmark name as accepted by `--benchmark`.
pub fn benchmark_by_name(name: &str) -> Benchmark {
    match name {
        "riscv-mini" | "riscv_mini" => Benchmark::RiscvMini,
        "spinal" | "Spinal" => Benchmark::Spinal,
        "nvdla" | "NVDLA" => Benchmark::Nvdla(NvdlaScale::HwSmall),
        "nvdla-small" => Benchmark::Nvdla(NvdlaScale::Small),
        "nvdla-tiny" => Benchmark::Nvdla(NvdlaScale::Tiny),
        "picorv32" => Benchmark::Picorv32,
        "handshake" => Benchmark::Handshake,
        other => {
            eprintln!("unknown benchmark `{other}` (see `rtlflow benchmarks`)");
            exit(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::parse(&s.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_positionals_flags_and_values() {
        let a = args(&["simulate", "design.v", "--top", "cpu", "-n", "64", "--json"]);
        assert_eq!(a.positional, ["simulate", "design.v"]);
        assert_eq!(a.get("top"), Some("cpu"));
        assert_eq!(a.num("n", 0usize), 64);
        assert!(a.has("json"));
        assert!(!a.has("verify"));
        assert_eq!(a.num("c", 1000u64), 1000);
    }

    #[test]
    fn last_flag_wins() {
        let a = args(&["x", "--seed", "1", "--seed", "9"]);
        assert_eq!(a.num("seed", 0u64), 9);
    }

    #[test]
    fn csv_list_trims_and_skips_empties() {
        assert_eq!(csv_list::<usize>("1, 2,,4", "gpus"), vec![1, 2, 4]);
        assert_eq!(csv_list::<f64>("1.5,0.5", "speeds"), vec![1.5, 0.5]);
    }

    #[test]
    fn benchmark_names_resolve() {
        assert!(matches!(
            benchmark_by_name("riscv-mini"),
            Benchmark::RiscvMini
        ));
        assert!(matches!(benchmark_by_name("spinal"), Benchmark::Spinal));
        assert!(matches!(
            benchmark_by_name("nvdla-tiny"),
            Benchmark::Nvdla(NvdlaScale::Tiny)
        ));
        assert!(matches!(benchmark_by_name("picorv32"), Benchmark::Picorv32));
        assert!(matches!(
            benchmark_by_name("handshake"),
            Benchmark::Handshake
        ));
    }
}
