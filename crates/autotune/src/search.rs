//! The simulated-annealing configuration search.
//!
//! One [`tune`] call probes candidate configs against a [`ProbeHarness`]
//! under a probe-count / wall-clock budget. Proposals mutate one
//! dimension at a time — exec strategy, lane chunk, block size, fuser
//! thresholds, partition shape (per-level, merged levels, or
//! feature-weight packing) — and are accepted with the Metropolis rule so
//! early probes explore and late probes exploit. The proposal stream is
//! driven entirely by a seeded [`SmallRng`], so with the deterministic
//! [`CostSource::Static`] cost model the whole trajectory (and the
//! winner) is a pure function of `(design, seed, budget)`.

use std::time::Instant;

use cudasim::ExecStrategy;
use desim::Json;
use rtlir::Design;

use crate::artifact::{PartSpec, TunedArtifact};
use crate::probe::{Candidate, ProbeHarness, ProbeSettings};
use crate::rng::SmallRng;

/// Where probe scores come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostSource {
    /// Wall-clock measurement against the real executor (the CLI
    /// default; what the paper's flow would do on hardware).
    #[default]
    Measured,
    /// Deterministic cost model — reproducibility tests and CI.
    Static,
}

/// Search budget and shape.
#[derive(Debug, Clone)]
pub struct TuneConfig {
    pub seed: u64,
    /// Probe budget, baseline probe included.
    pub max_probes: u32,
    /// Wall-clock budget in milliseconds; `0` disables the clock bound
    /// (probe count alone limits the run — required for reproducible
    /// trajectories).
    pub budget_ms: u64,
    /// Metropolis inverse temperature: acceptance of a worsening move is
    /// `exp(beta * relative_delta)`.
    pub beta: f64,
    pub probe: ProbeSettings,
    pub cost: CostSource,
    /// Whether partition mutations are in the move set (they force a
    /// re-transpile per probe, the most expensive proposal kind).
    pub search_partition: bool,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            seed: 42,
            max_probes: 24,
            budget_ms: 0,
            beta: 12.0,
            probe: ProbeSettings::default(),
            cost: CostSource::Measured,
            search_partition: true,
        }
    }
}

/// One probe in the trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeRecord {
    pub index: u32,
    /// Candidate spec string ([`Candidate::spec`]).
    pub spec: String,
    /// Score in stimulus-cycles/second (pseudo units under `Static`).
    pub score: f64,
    /// Whether the Metropolis rule accepted this candidate as the new
    /// current point.
    pub accepted: bool,
    /// Whether this probe became the best seen so far.
    pub best: bool,
}

/// The full result of one tuning run.
#[derive(Debug, Clone)]
pub struct TuneReport {
    pub artifact: TunedArtifact,
    pub trajectory: Vec<ProbeRecord>,
    pub elapsed_ms: u64,
}

impl TuneReport {
    pub fn to_json(&self) -> Json {
        let a = &self.artifact;
        let probes: Vec<Json> = self
            .trajectory
            .iter()
            .map(|p| {
                Json::obj()
                    .field("probe", p.index as u64)
                    .field("spec", p.spec.as_str())
                    .field("score", p.score)
                    .field("accepted", p.accepted)
                    .field("best", p.best)
            })
            .collect();
        Json::obj()
            .field("design", a.design_name.as_str())
            .field("design_hash", format!("{:016x}", a.design_hash))
            .field("seed", a.seed)
            .field("probes", a.probes as u64)
            .field("elapsed_ms", self.elapsed_ms)
            .field("baseline", a.baseline)
            .field("best_score", a.best_score)
            .field("speedup", a.speedup())
            .field("exec", a.exec.spec())
            .field(
                "fuse",
                format!("{},{}", a.fuse.const_fold_min_ops, a.fuse.superop_min_ops),
            )
            .field("partition", a.partition.spec())
            .field("trajectory", Json::Arr(probes))
    }
}

/// Discrete menus per dimension. Values bracket the defaults by a couple
/// of octaves each way; the search walks these rather than raw integers
/// so every proposal is a sane config.
const LANE_CHUNKS: [usize; 8] = [32, 64, 128, 256, 512, 1024, 2048, 4096];
const BLOCKS: [usize; 5] = [256, 512, 1024, 2048, 4096];
const THREADS: [usize; 4] = [0, 2, 4, 8];
/// Bit-transposed worker menu: `1` is the serial engine (often fastest —
/// the bit programs are tiny), `0` means host parallelism at run time.
const BIT_THREADS: [usize; 4] = [1, 0, 2, 4];
const FUSE_MIN_OPS: [usize; 5] = [0, 4, 16, 64, 256];
const MERGE_FACTORS: [usize; 8] = [2, 3, 4, 6, 8, 12, 16, 32];

/// Mutate one dimension of `cur`. Always returns a candidate different
/// from `cur` (re-rolls on a no-op draw, bounded).
fn propose(cur: &Candidate, rng: &mut SmallRng, search_partition: bool) -> Candidate {
    for _ in 0..64 {
        let mut next = cur.clone();
        let dims = if search_partition { 5 } else { 4 };
        match rng.gen_index(dims) {
            // Exec strategy (block size rides along for par/bitpar).
            0 => {
                next.exec.strategy = match rng.gen_index(4) {
                    0 => ExecStrategy::Scalar,
                    1 => ExecStrategy::Vectorized,
                    2 => ExecStrategy::BlockParallel {
                        threads: THREADS[rng.gen_index(THREADS.len())],
                        block: BLOCKS[rng.gen_index(BLOCKS.len())],
                    },
                    _ => ExecStrategy::BitPlane {
                        threads: BIT_THREADS[rng.gen_index(BIT_THREADS.len())],
                        block: BLOCKS[rng.gen_index(BLOCKS.len())],
                    },
                };
            }
            // Lane chunk.
            1 => {
                next.exec.lane_chunk = LANE_CHUNKS[rng.gen_index(LANE_CHUNKS.len())];
            }
            // Const-fold threshold.
            2 => {
                next.fuse.const_fold_min_ops = FUSE_MIN_OPS[rng.gen_index(FUSE_MIN_OPS.len())];
            }
            // Superop threshold.
            3 => {
                next.fuse.superop_min_ops = FUSE_MIN_OPS[rng.gen_index(FUSE_MIN_OPS.len())];
            }
            // Partition shape.
            _ => {
                next.partition = match rng.gen_index(3) {
                    0 => PartSpec::PerLevel,
                    1 => PartSpec::MergedLevels(MERGE_FACTORS[rng.gen_index(MERGE_FACTORS.len())]),
                    _ => {
                        // Feature-weight packing: perturb the current
                        // weights (or start from all-ones) and redraw the
                        // task-count target.
                        let mut weights = match &cur.partition {
                            PartSpec::Weighted { weights, .. } => weights.clone(),
                            _ => vec![1.0; partition::NUM_FEATURES],
                        };
                        let slot = rng.gen_index(weights.len());
                        weights[slot] = (weights[slot] * rng.gen_range(0.25, 4.0)).clamp(0.0, 64.0);
                        let target_tasks = 4 << rng.gen_index(5); // 4..64
                        PartSpec::Weighted {
                            weights,
                            target_tasks,
                        }
                    }
                };
            }
        }
        if next != *cur {
            return next;
        }
    }
    // Statistically unreachable; fall back to a lane-chunk bump.
    let mut next = cur.clone();
    next.exec.lane_chunk = if cur.exec.lane_chunk == 256 { 512 } else { 256 };
    next
}

/// Run the search and return the winner plus its full trajectory. The
/// returned artifact records the *best* candidate (not the final current
/// point) and the baseline score of the untuned default config.
pub fn tune(design: &Design, name: &str, cfg: &TuneConfig) -> Result<TuneReport, String> {
    let t0 = Instant::now();
    let mut harness = ProbeHarness::new(design, cfg.probe)?;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let score_of = |h: &mut ProbeHarness, c: &Candidate| -> Result<f64, String> {
        match cfg.cost {
            CostSource::Measured => h.measure(c),
            CostSource::Static => h.static_score(c),
        }
    };

    // Probe 0: the untuned baseline.
    let mut cur = Candidate::default();
    let baseline = score_of(&mut harness, &cur)?;
    let mut cur_score = baseline;
    let mut best = cur.clone();
    let mut best_score = baseline;
    let mut trajectory = vec![ProbeRecord {
        index: 0,
        spec: cur.spec(),
        score: baseline,
        accepted: true,
        best: true,
    }];

    let max_probes = cfg.max_probes.max(1);
    let mut visited: Vec<(Candidate, f64)> = Vec::new();
    for i in 1..max_probes {
        if cfg.budget_ms > 0 && t0.elapsed().as_millis() as u64 >= cfg.budget_ms {
            break;
        }
        let cand = propose(&cur, &mut rng, cfg.search_partition);
        // A candidate that fails to build (e.g. a degenerate weighted
        // partition) scores zero: it is recorded, never accepted.
        let score = score_of(&mut harness, &cand).unwrap_or(0.0);
        // Metropolis on relative improvement, maximizing score.
        let rel = (score - cur_score) / cur_score.max(1e-12);
        let accepted = score > 0.0 && (rel >= 0.0 || rng.gen_f64() < (cfg.beta * rel).exp());
        let is_best = score > best_score;
        trajectory.push(ProbeRecord {
            index: i,
            spec: cand.spec(),
            score,
            accepted,
            best: is_best,
        });
        if score > 0.0 {
            visited.push((cand.clone(), score));
        }
        if is_best {
            best = cand.clone();
            best_score = score;
        }
        if accepted {
            cur = cand;
            cur_score = score;
        }
    }

    // Playoff: wall-clock probes are noisy, and a single lucky sample
    // must not elect the winner (nor a slow baseline sample inflate the
    // recorded speedup). Re-measure the strongest distinct candidates
    // and the baseline several times, keep each one's best repeat, and
    // decide from those. Static scores are exact, so the playoff only
    // runs for measured probes — keeping static trajectories a pure
    // function of (design, seed, budget).
    let mut baseline = baseline;
    if cfg.cost == CostSource::Measured && !visited.is_empty() {
        const PLAYOFF_CANDIDATES: usize = 3;
        const PLAYOFF_REPS: usize = 3;
        visited.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut finalists: Vec<Candidate> = Vec::new();
        for (c, _) in &visited {
            if !finalists.contains(c) && *c != Candidate::default() {
                finalists.push(c.clone());
                if finalists.len() == PLAYOFF_CANDIDATES {
                    break;
                }
            }
        }
        let rerun = |h: &mut ProbeHarness, c: &Candidate| -> f64 {
            (0..PLAYOFF_REPS)
                .filter_map(|_| h.measure(c).ok())
                .fold(0.0f64, f64::max)
        };
        baseline = rerun(&mut harness, &Candidate::default()).max(1e-12);
        best = Candidate::default();
        best_score = baseline;
        for (index, cand) in (trajectory.len() as u32..).zip(finalists) {
            let score = rerun(&mut harness, &cand);
            let is_best = score > best_score;
            trajectory.push(ProbeRecord {
                index,
                spec: format!("playoff {}", cand.spec()),
                score,
                accepted: false,
                best: is_best,
            });
            if is_best {
                best = cand;
                best_score = score;
            }
        }
    }

    let artifact = TunedArtifact {
        design_hash: rtlir::design_hash(design),
        design_name: name.to_string(),
        exec: best.exec,
        fuse: best.fuse,
        partition: best.partition,
        seed: cfg.seed,
        probes: trajectory.len() as u32,
        baseline,
        best_score,
    };
    Ok(TuneReport {
        artifact,
        trajectory,
        elapsed_ms: t0.elapsed().as_millis() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use designs::{Benchmark, NvdlaScale};

    fn static_cfg(seed: u64, probes: u32) -> TuneConfig {
        TuneConfig {
            seed,
            max_probes: probes,
            cost: CostSource::Static,
            probe: ProbeSettings {
                num_stimulus: 128,
                cycles: 2,
                stim_seed: 7,
            },
            ..TuneConfig::default()
        }
    }

    #[test]
    fn tune_is_reproducible_under_static_cost() {
        let design = Benchmark::Nvdla(NvdlaScale::Tiny).elaborate().unwrap();
        let a = tune(&design, "tiny", &static_cfg(9, 12)).unwrap();
        let b = tune(&design, "tiny", &static_cfg(9, 12)).unwrap();
        assert_eq!(a.trajectory, b.trajectory);
        assert_eq!(a.artifact, b.artifact);
    }

    #[test]
    fn best_never_worse_than_baseline() {
        let design = Benchmark::Nvdla(NvdlaScale::Tiny).elaborate().unwrap();
        let r = tune(&design, "tiny", &static_cfg(1, 16)).unwrap();
        assert!(r.artifact.best_score >= r.artifact.baseline);
        assert_eq!(r.trajectory.len(), 16);
    }
}
