//! Probe execution: score one candidate configuration against the real
//! executor.
//!
//! A probe is a short seeded run with the same methodology as
//! `rtlflow bench-exec`: poke stimulus outside the timed region, execute
//! whole cycles, reduce per-cycle wall times with the *median* (robust to
//! preemption spikes on shared cores), and report throughput in
//! stimulus-cycles/second. The harness caches built [`KernelProgram`]s
//! per (fuse, partition) pair so exec-only mutations (strategy, lane
//! chunk, block size) re-use the transpiled program.

use std::collections::HashMap;

use cudasim::{ExecConfig, ExecStrategy, FuseConfig, Scratch};
use rtlir::{Design, RtlGraph};
use stimulus::{PortMap, StimulusSource};
use transpile::KernelProgram;

use crate::artifact::PartSpec;

/// One point in the search space.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    pub exec: ExecConfig,
    pub fuse: FuseConfig,
    pub partition: PartSpec,
}

impl Default for Candidate {
    /// The untuned pipeline: default exec, unthresholded fuser,
    /// per-level partition. This is the baseline every probe score is
    /// compared against.
    fn default() -> Self {
        Candidate {
            exec: ExecConfig::default(),
            fuse: FuseConfig::default(),
            partition: PartSpec::PerLevel,
        }
    }
}

impl Candidate {
    /// Human-readable one-line spec (trajectory logs, JSON output).
    pub fn spec(&self) -> String {
        format!(
            "exec={} fuse={},{} part={}",
            self.exec.spec(),
            self.fuse.const_fold_min_ops,
            self.fuse.superop_min_ops,
            self.partition.spec()
        )
    }
}

/// Probe run sizing.
#[derive(Debug, Clone, Copy)]
pub struct ProbeSettings {
    /// Batch size (stimulus lanes) per probe.
    pub num_stimulus: usize,
    /// Timed cycles per probe (one extra untimed warm-up cycle runs
    /// first).
    pub cycles: u64,
    /// Stimulus generator seed — fixed across probes so every candidate
    /// executes the identical workload.
    pub stim_seed: u64,
}

impl Default for ProbeSettings {
    fn default() -> Self {
        ProbeSettings {
            num_stimulus: 1024,
            cycles: 12,
            stim_seed: 7,
        }
    }
}

/// Program-cache key: the build-affecting dimensions of a candidate.
type ProgramKey = (usize, usize, String);

/// Reusable probe state for one design.
pub struct ProbeHarness<'a> {
    design: &'a Design,
    graph: RtlGraph,
    map: PortMap,
    source: Box<dyn StimulusSource>,
    settings: ProbeSettings,
    programs: HashMap<ProgramKey, KernelProgram>,
}

impl<'a> ProbeHarness<'a> {
    pub fn new(design: &'a Design, settings: ProbeSettings) -> Result<ProbeHarness<'a>, String> {
        let graph = RtlGraph::build(design).map_err(|e| format!("{e}"))?;
        let map = PortMap::from_design(design);
        let source = stimulus::source_for(design, &map, settings.num_stimulus, settings.stim_seed);
        Ok(ProbeHarness {
            design,
            graph,
            map,
            source,
            settings,
            programs: HashMap::new(),
        })
    }

    pub fn settings(&self) -> &ProbeSettings {
        &self.settings
    }

    /// Build (or fetch the cached) program for a candidate's fuse and
    /// partition settings.
    pub fn program_for(&mut self, cand: &Candidate) -> Result<&KernelProgram, String> {
        let key: ProgramKey = (
            cand.fuse.const_fold_min_ops,
            cand.fuse.superop_min_ops,
            cand.partition.spec(),
        );
        if !self.programs.contains_key(&key) {
            let part = cand.partition.materialize(self.design, &self.graph);
            let program = KernelProgram::build_with(self.design, &self.graph, &part, &cand.fuse)?;
            self.programs.insert(key.clone(), program);
        }
        Ok(&self.programs[&key])
    }

    /// Measure a candidate: median-per-cycle throughput in
    /// stimulus-cycles/second (the `bench-exec` metric).
    pub fn measure(&mut self, cand: &Candidate) -> Result<f64, String> {
        let n = self.settings.num_stimulus;
        let cycles = self.settings.cycles.max(1);
        self.program_for(cand)?;
        let key: ProgramKey = (
            cand.fuse.const_fold_min_ops,
            cand.fuse.superop_min_ops,
            cand.partition.spec(),
        );
        let program = &self.programs[&key];

        let mut dev = program.plan.alloc_device(n);
        let mut scratches: Vec<Scratch> = (0..cand.exec.thread_count().max(1))
            .map(|_| Scratch::new())
            .collect();
        let mut frame = vec![0u64; self.map.len()];
        // Untimed warm-up cycle faults in the lazily-mapped device pages,
        // then reset so every candidate measures from the same state.
        program.run_cycle_exec(&mut dev, &mut scratches, 0, n, &cand.exec);
        dev.reset();
        let mut per_cycle = Vec::with_capacity(cycles as usize);
        for c in 0..cycles {
            for s in 0..n {
                self.source.fill_frame(s, c, &mut frame);
                for (lane, port) in self.map.ports.iter().enumerate() {
                    program.plan.poke(&mut dev, port.var, s, frame[lane]);
                }
            }
            let t0 = std::time::Instant::now();
            program.run_cycle_exec(&mut dev, &mut scratches, 0, n, &cand.exec);
            per_cycle.push(t0.elapsed());
        }
        per_cycle.sort();
        let median = per_cycle[per_cycle.len() / 2];
        Ok(n as f64 / median.as_secs_f64().max(1e-9))
    }

    /// Deterministic cost model in pseudo stimulus-cycles/second: same
    /// candidate always scores the same value, independent of the host.
    /// Used by reproducibility tests and `--static-cost`; the real CLI
    /// default is [`ProbeHarness::measure`].
    pub fn static_score(&mut self, cand: &Candidate) -> Result<f64, String> {
        let n = self.settings.num_stimulus as f64;
        let lane_chunk = cand.exec.lane_chunk.max(1) as f64;
        let chunks = (n / lane_chunk).ceil().max(1.0);
        self.program_for(cand)?;
        let key: ProgramKey = (
            cand.fuse.const_fold_min_ops,
            cand.fuse.superop_min_ops,
            cand.partition.spec(),
        );
        let program = &self.programs[&key];

        // Per-cycle cost in abstract op units. Each kernel dispatch per
        // lane chunk pays a fixed overhead (the thing larger chunks and
        // merged levels amortize); each fused op costs one unit per lane
        // unless the slot analysis hoisted it to a single scalar.
        const DISPATCH: f64 = 24.0;
        let cost = match cand.exec.strategy {
            ExecStrategy::Scalar => {
                // The scalar reference interprets the *unfused* kernels,
                // one full pass per lane, no chunking, no hoisting.
                let ops: f64 = program
                    .order
                    .iter()
                    .map(|&k| program.graph.kernels[k].ops.len() as f64)
                    .sum();
                program.order.len() as f64 * DISPATCH + ops * n * 1.6
            }
            ExecStrategy::Vectorized => {
                let (lane_ops, hoisted) = fused_op_counts(program);
                program.order.len() as f64 * chunks * DISPATCH + lane_ops * n + hoisted * chunks
            }
            ExecStrategy::BlockParallel { threads, block } => {
                // Deterministic worker count: a `0` request means "host
                // parallelism" at run time, which the model must not
                // depend on — score it as a fixed 4-way machine.
                let workers = if threads == 0 { 4.0 } else { threads as f64 };
                let blocks = (n / (block.max(1) as f64)).ceil().max(1.0);
                let (lane_ops, hoisted) = fused_op_counts(program);
                let vec_cost = program.order.len() as f64 * chunks * DISPATCH
                    + lane_ops * n
                    + hoisted * chunks;
                // Fork/join sync per kernel wave, plus imperfect scaling.
                vec_cost / workers + program.order.len() as f64 * blocks * workers * 48.0
            }
            ExecStrategy::BitPlane { threads, block } => {
                // Word-domain remainder costs like the vector engine; bit
                // ops process 64 lanes per word; escapes pay a per-lane
                // scatter each cycle.
                let word_ops = program.bit.word_fop_count() as f64;
                let bit_ops = program.bit.bit_op_count() as f64;
                let escapes = program.bit.escape_count() as f64;
                let serial = program.order.len() as f64 * chunks * DISPATCH
                    + word_ops * n
                    + bit_ops * (n / 64.0).ceil()
                    + escapes * n;
                // As above, `0` scores as a fixed 4-way machine.
                let workers = if threads == 0 { 4.0 } else { threads as f64 };
                if workers <= 1.0 {
                    serial
                } else {
                    let blocks = (n / (block.max(1) as f64)).ceil().max(1.0);
                    serial / workers + program.order.len() as f64 * blocks * workers * 48.0
                }
            }
        };
        Ok(1e9 * n / cost.max(1.0))
    }
}

/// (per-lane fused ops, hoisted-to-scalar fused ops) across the program.
fn fused_op_counts(program: &KernelProgram) -> (f64, f64) {
    let mut lane = 0f64;
    let mut hoisted = 0f64;
    for fk in &program.fused {
        lane += fk.fops.len() as f64;
        hoisted += fk.stats.consts_folded as f64;
    }
    (lane, hoisted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use designs::{Benchmark, NvdlaScale};

    #[test]
    fn static_score_is_deterministic_and_shape_sensitive() {
        let design = Benchmark::Nvdla(NvdlaScale::Tiny).elaborate().unwrap();
        let mut h = ProbeHarness::new(&design, ProbeSettings::default()).unwrap();
        let base = Candidate::default();
        let a = h.static_score(&base).unwrap();
        let b = h.static_score(&base).unwrap();
        assert_eq!(a, b);
        // A different lane chunk must move the score (chunk count changes
        // dispatch overhead).
        let chunked = Candidate {
            exec: ExecConfig::vectorized().with_lane_chunk(32),
            ..Candidate::default()
        };
        assert_ne!(h.static_score(&chunked).unwrap(), a);
    }

    #[test]
    fn measure_runs_and_is_positive() {
        let design = Benchmark::Nvdla(NvdlaScale::Tiny).elaborate().unwrap();
        let mut h = ProbeHarness::new(
            &design,
            ProbeSettings {
                num_stimulus: 64,
                cycles: 4,
                stim_seed: 7,
            },
        )
        .unwrap();
        let score = h.measure(&Candidate::default()).unwrap();
        assert!(score > 0.0);
    }
}
