//! The persistent tuned-artifact cache.
//!
//! A [`TuneCache`] is a directory of `<design_hash:016x>.tuned` files.
//! Loads never panic and never fail a caller: corrupt, truncated,
//! version-mismatched or mis-keyed entries count as misses (with the
//! `rejected` counter bumped) so a damaged cache can only cost a rebuild,
//! never correctness. [`TunePolicy`] is the knob production subsystems
//! (serve / shard / cluster) embed in their configs to decide *which*
//! cache to consult on engine-cache fill.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::artifact::TunedArtifact;

/// Environment variable overriding the default cache directory.
pub const CACHE_DIR_ENV: &str = "RTLFLOW_TUNE_CACHE";

/// Hit/miss/corruption counters (relaxed; they are telemetry only).
#[derive(Debug, Default)]
pub struct CacheStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    /// Entries that existed but were rejected (corrupt / truncated /
    /// version mismatch / key mismatch) and therefore ignored.
    pub rejected: AtomicU64,
}

impl CacheStats {
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
        )
    }
}

/// An on-disk artifact cache rooted at one directory.
#[derive(Debug)]
pub struct TuneCache {
    dir: PathBuf,
    pub stats: CacheStats,
}

impl TuneCache {
    /// Cache rooted at an explicit directory (created lazily on store).
    pub fn at(dir: impl Into<PathBuf>) -> TuneCache {
        TuneCache {
            dir: dir.into(),
            stats: CacheStats::default(),
        }
    }

    /// The default cache directory: `$RTLFLOW_TUNE_CACHE` when set, else
    /// `$HOME/.cache/rtlflow/tuned`, else `.rtlflow-tuned` in the
    /// working directory.
    pub fn default_dir() -> PathBuf {
        if let Some(d) = std::env::var_os(CACHE_DIR_ENV) {
            return PathBuf::from(d);
        }
        match std::env::var_os("HOME") {
            Some(home) => Path::new(&home).join(".cache/rtlflow/tuned"),
            None => PathBuf::from(".rtlflow-tuned"),
        }
    }

    /// Cache rooted at [`TuneCache::default_dir`].
    pub fn open_default() -> TuneCache {
        TuneCache::at(TuneCache::default_dir())
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// File path an artifact for `design_hash` lives at.
    pub fn path_for(&self, design_hash: u64) -> PathBuf {
        self.dir.join(format!("{design_hash:016x}.tuned"))
    }

    /// Load the artifact for a design. Any failure — missing file,
    /// unreadable bytes, corrupt/truncated/version-mismatched content, or
    /// an entry whose recorded hash does not match its key — is a miss,
    /// never an error or a panic.
    pub fn load(&self, design_hash: u64) -> Option<TunedArtifact> {
        let path = self.path_for(design_hash);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match TunedArtifact::parse(&text) {
            // Stale-key guard: a file renamed onto the wrong hash (or a
            // hash-field corruption that survived re-checksumming) must
            // not apply another design's config.
            Ok(a) if a.design_hash == design_hash => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(a)
            }
            _ => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persist an artifact under its design hash (atomic rename so a
    /// concurrent loader never observes a half-written file).
    pub fn store(&self, artifact: &TunedArtifact) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.path_for(artifact.design_hash);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, artifact.serialize())?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

/// How a subsystem consults the tuned-artifact cache on engine-cache
/// fill. The default (`Auto`) makes tuned configs flow to production
/// paths with no config changes: tune once, every later serve/shard/
/// cluster engine build for that design picks the artifact up.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum TunePolicy {
    /// Consult the default cache directory ([`TuneCache::default_dir`]).
    #[default]
    Auto,
    /// Never consult the cache.
    Off,
    /// Consult an explicit cache directory (the `--tuned <dir>` CLI flag).
    Dir(PathBuf),
}

impl TunePolicy {
    /// Look up the artifact for a design under this policy.
    pub fn lookup(&self, design_hash: u64) -> Option<TunedArtifact> {
        match self {
            TunePolicy::Off => None,
            TunePolicy::Auto => TuneCache::open_default().load(design_hash),
            TunePolicy::Dir(d) => TuneCache::at(d).load(design_hash),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::PartSpec;
    use cudasim::{ExecConfig, FuseConfig};

    fn art(hash: u64) -> TunedArtifact {
        TunedArtifact {
            design_hash: hash,
            design_name: "t".into(),
            exec: ExecConfig::vectorized().with_lane_chunk(512),
            fuse: FuseConfig::default(),
            partition: PartSpec::PerLevel,
            seed: 1,
            probes: 2,
            baseline: 10.0,
            best_score: 12.0,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rtlflow-tune-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn store_load_round_trips() {
        let cache = TuneCache::at(tmpdir("roundtrip"));
        let a = art(0xabc);
        cache.store(&a).unwrap();
        assert_eq!(cache.load(0xabc).unwrap(), a);
        assert_eq!(cache.stats.snapshot(), (1, 0, 0));
    }

    #[test]
    fn missing_entry_is_a_miss() {
        let cache = TuneCache::at(tmpdir("miss"));
        assert!(cache.load(0x123).is_none());
        assert_eq!(cache.stats.snapshot(), (0, 1, 0));
    }

    #[test]
    fn mis_keyed_entry_is_rejected() {
        let cache = TuneCache::at(tmpdir("miskey"));
        let a = art(0x111);
        cache.store(&a).unwrap();
        // Rename the valid file onto a different hash's key.
        std::fs::rename(cache.path_for(0x111), cache.path_for(0x222)).unwrap();
        assert!(cache.load(0x222).is_none());
        assert_eq!(cache.stats.rejected.load(Ordering::Relaxed), 1);
    }
}
