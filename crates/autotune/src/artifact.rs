//! The versioned on-disk tuned-config artifact.
//!
//! A [`TunedArtifact`] records the winning configuration of one autotune
//! run, keyed by [`rtlir::design_hash`]. The wire format is a plain text
//! key/value file with a version header and an FNV-1a checksum trailer:
//!
//! ```text
//! rtlflow-tuned v1
//! design_hash = 0123456789abcdef
//! design_name = riscv-mini
//! exec = vector@512
//! fuse = 0,16
//! partition = merged:4
//! seed = 42
//! probes = 24
//! baseline = 1300753.5
//! best_score = 1534889.1
//! checksum = 89abcdef01234567
//! ```
//!
//! Parsing is defensive by construction: [`TunedArtifact::parse`] returns
//! `Err` (never panics) on any malformed, truncated, version-mismatched
//! or checksum-failing input, so the cache can treat corruption as a
//! plain miss.

use cudasim::{ExecConfig, FuseConfig};
use rtlir::{Design, RtlGraph};
use transpile::Partition;

/// Current artifact format version. Bump on any incompatible change;
/// older files are then ignored (treated as a cache miss), never
/// misparsed.
pub const ARTIFACT_VERSION: u32 = 1;

const HEADER: &str = "rtlflow-tuned v1";

/// How the tuned partition is re-derived from the RTL graph.
#[derive(Debug, Clone, PartialEq)]
pub enum PartSpec {
    /// Transpiler default: one task per levelization level.
    PerLevel,
    /// Merge runs of `factor` consecutive levels into one task (fewer,
    /// larger kernels: less per-kernel dispatch overhead per lane chunk,
    /// larger peephole windows).
    MergedLevels(usize),
    /// Feature-weight packing via [`partition::weighted_partition`].
    Weighted {
        weights: Vec<f64>,
        target_tasks: usize,
    },
}

impl PartSpec {
    pub fn spec(&self) -> String {
        match self {
            PartSpec::PerLevel => "per-level".to_string(),
            PartSpec::MergedLevels(f) => format!("merged:{f}"),
            PartSpec::Weighted {
                weights,
                target_tasks,
            } => {
                let ws: Vec<String> = weights.iter().map(|w| format!("{w}")).collect();
                format!("weights:{};{target_tasks}", ws.join(","))
            }
        }
    }

    pub fn parse(s: &str) -> Result<PartSpec, String> {
        if s == "per-level" {
            return Ok(PartSpec::PerLevel);
        }
        if let Some(f) = s.strip_prefix("merged:") {
            let f: usize = f.parse().map_err(|_| format!("bad merge factor `{s}`"))?;
            if f < 2 {
                return Err(format!("merge factor must be >= 2 in `{s}`"));
            }
            return Ok(PartSpec::MergedLevels(f));
        }
        if let Some(rest) = s.strip_prefix("weights:") {
            let (ws, tt) = rest
                .rsplit_once(';')
                .ok_or_else(|| format!("missing target-task count in `{s}`"))?;
            let weights: Result<Vec<f64>, _> = ws.split(',').map(str::parse).collect();
            let weights = weights.map_err(|_| format!("bad weight list in `{s}`"))?;
            if weights.is_empty() || weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
                return Err(format!("weights must be finite and non-negative in `{s}`"));
            }
            let target_tasks: usize = tt
                .parse()
                .map_err(|_| format!("bad target-task count in `{s}`"))?;
            return Ok(PartSpec::Weighted {
                weights,
                target_tasks,
            });
        }
        Err(format!("unknown partition spec `{s}`"))
    }

    /// Materialize the partition this spec describes for a design.
    pub fn materialize(&self, design: &Design, graph: &RtlGraph) -> Partition {
        match self {
            PartSpec::PerLevel => transpile::default_partition(design, graph),
            PartSpec::MergedLevels(factor) => {
                let levels = transpile::default_partition(design, graph);
                // Merging runs of *consecutive* levels keeps the induced
                // task graph acyclic: every dependency still points from
                // an earlier interval to a later one.
                levels
                    .chunks((*factor).max(1))
                    .map(|run| run.iter().flatten().copied().collect())
                    .collect()
            }
            PartSpec::Weighted {
                weights,
                target_tasks,
            } => partition::weighted_partition(design, graph, weights, *target_tasks),
        }
    }
}

/// The persisted winner of one autotune run.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedArtifact {
    /// Structural fingerprint of the design this config was tuned for.
    pub design_hash: u64,
    pub design_name: String,
    pub exec: ExecConfig,
    pub fuse: FuseConfig,
    pub partition: PartSpec,
    /// Search seed that produced this artifact.
    pub seed: u64,
    /// Probes spent (baseline included).
    pub probes: u32,
    /// Default-config probe score, stimulus-cycles/s.
    pub baseline: f64,
    /// Winning probe score, stimulus-cycles/s.
    pub best_score: f64,
}

impl TunedArtifact {
    /// Tuned speedup over the default config as measured at tune time.
    pub fn speedup(&self) -> f64 {
        if self.baseline > 0.0 {
            self.best_score / self.baseline
        } else {
            1.0
        }
    }

    /// Serialize to the versioned text format (checksum included).
    pub fn serialize(&self) -> String {
        let mut body = String::new();
        body.push_str(HEADER);
        body.push('\n');
        body.push_str(&format!("design_hash = {:016x}\n", self.design_hash));
        body.push_str(&format!("design_name = {}\n", self.design_name));
        body.push_str(&format!("exec = {}\n", self.exec.spec()));
        body.push_str(&format!(
            "fuse = {},{}\n",
            self.fuse.const_fold_min_ops, self.fuse.superop_min_ops
        ));
        body.push_str(&format!("partition = {}\n", self.partition.spec()));
        body.push_str(&format!("seed = {}\n", self.seed));
        body.push_str(&format!("probes = {}\n", self.probes));
        body.push_str(&format!("baseline = {}\n", self.baseline));
        body.push_str(&format!("best_score = {}\n", self.best_score));
        let sum = fnv1a(body.as_bytes());
        body.push_str(&format!("checksum = {sum:016x}\n"));
        body
    }

    /// Parse the text format. Never panics: every malformation is an
    /// `Err` with a reason (the cache maps those to misses).
    pub fn parse(text: &str) -> Result<TunedArtifact, String> {
        // The checksum line covers everything before it, byte-exact.
        let trailer_at = text
            .rfind("checksum = ")
            .ok_or("missing checksum trailer")?;
        let (body, trailer) = text.split_at(trailer_at);
        let sum_hex = trailer
            .strip_prefix("checksum = ")
            .and_then(|s| s.lines().next())
            .ok_or("malformed checksum trailer")?;
        let claimed = u64::from_str_radix(sum_hex.trim(), 16)
            .map_err(|_| "bad checksum value".to_string())?;
        if fnv1a(body.as_bytes()) != claimed {
            return Err("checksum mismatch (corrupt or truncated artifact)".to_string());
        }

        let mut lines = body.lines();
        if lines.next() != Some(HEADER) {
            return Err(format!("version header mismatch (want `{HEADER}`)"));
        }
        let mut get = |key: &str| -> Result<String, String> {
            lines
                .next()
                .and_then(|l| l.split_once(" = "))
                .filter(|(k, _)| *k == key)
                .map(|(_, v)| v.to_string())
                .ok_or_else(|| format!("missing field `{key}`"))
        };
        let design_hash = u64::from_str_radix(&get("design_hash")?, 16)
            .map_err(|_| "bad design_hash".to_string())?;
        let design_name = get("design_name")?;
        let exec = ExecConfig::parse(&get("exec")?).map_err(|e| e.to_string())?;
        let fuse_raw = get("fuse")?;
        let (cf, so) = fuse_raw
            .split_once(',')
            .ok_or_else(|| format!("bad fuse thresholds `{fuse_raw}`"))?;
        let fuse = FuseConfig {
            const_fold_min_ops: cf
                .parse()
                .map_err(|_| format!("bad fuse thresholds `{fuse_raw}`"))?,
            superop_min_ops: so
                .parse()
                .map_err(|_| format!("bad fuse thresholds `{fuse_raw}`"))?,
        };
        let partition = PartSpec::parse(&get("partition")?)?;
        let seed: u64 = get("seed")?.parse().map_err(|_| "bad seed".to_string())?;
        let probes: u32 = get("probes")?
            .parse()
            .map_err(|_| "bad probe count".to_string())?;
        let baseline: f64 = get("baseline")?
            .parse()
            .map_err(|_| "bad baseline".to_string())?;
        let best_score: f64 = get("best_score")?
            .parse()
            .map_err(|_| "bad best_score".to_string())?;
        if !baseline.is_finite() || !best_score.is_finite() {
            return Err("non-finite score".to_string());
        }
        Ok(TunedArtifact {
            design_hash,
            design_name,
            exec,
            fuse,
            partition,
            seed,
            probes,
            baseline,
            best_score,
        })
    }
}

/// FNV-1a, the same construction [`rtlir::design_hash`] uses.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TunedArtifact {
        TunedArtifact {
            design_hash: 0xdead_beef_0123_4567,
            design_name: "riscv-mini".into(),
            exec: ExecConfig::parallel(4)
                .with_block(2048)
                .with_lane_chunk(128),
            fuse: FuseConfig {
                const_fold_min_ops: 4,
                superop_min_ops: 16,
            },
            partition: PartSpec::Weighted {
                weights: vec![1.0, 2.5, 1.0, 1.0, 1.0, 2.0, 1.0, 4.0, 1.0, 2.0],
                target_tasks: 24,
            },
            seed: 42,
            probes: 24,
            baseline: 1_300_753.52,
            best_score: 1_534_889.13,
        }
    }

    #[test]
    fn serialize_parse_round_trips() {
        let a = sample();
        assert_eq!(TunedArtifact::parse(&a.serialize()).unwrap(), a);
        let b = TunedArtifact {
            partition: PartSpec::MergedLevels(4),
            ..sample()
        };
        assert_eq!(TunedArtifact::parse(&b.serialize()).unwrap(), b);
        let c = TunedArtifact {
            partition: PartSpec::PerLevel,
            exec: ExecConfig::vectorized(),
            ..sample()
        };
        assert_eq!(TunedArtifact::parse(&c.serialize()).unwrap(), c);
    }

    #[test]
    fn corrupt_inputs_error_without_panic() {
        let good = sample().serialize();
        // Truncations at every length.
        for cut in 0..good.len() {
            let _ = TunedArtifact::parse(&good[..cut]);
        }
        // Single-byte flips.
        for i in 0..good.len() {
            let mut bytes = good.clone().into_bytes();
            bytes[i] ^= 0x20;
            if let Ok(s) = String::from_utf8(bytes) {
                if let Ok(parsed) = TunedArtifact::parse(&s) {
                    // A flip inside the checksum's own hex digits can
                    // only survive if it flips the claimed value to the
                    // still-matching body sum — impossible here because
                    // the body is untouched and the claimed value
                    // changed; a flip in the body breaks the sum.
                    assert_eq!(parsed, sample(), "flip at {i} silently accepted a change");
                }
            }
        }
        assert!(TunedArtifact::parse("").is_err());
        assert!(TunedArtifact::parse("rtlflow-tuned v0\nchecksum = 0\n").is_err());
    }

    #[test]
    fn version_bump_is_a_miss() {
        let mut text = sample().serialize().replace("v1", "v2");
        // Re-checksum so only the version differs.
        let body_end = text.rfind("checksum = ").unwrap();
        let sum = fnv1a(&text.as_bytes()[..body_end]);
        text.truncate(body_end);
        text.push_str(&format!("checksum = {sum:016x}\n"));
        assert!(TunedArtifact::parse(&text)
            .unwrap_err()
            .contains("version header"));
    }
}
