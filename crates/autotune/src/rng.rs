//! Deterministic xorshift64* generator (same construction as the MCMC
//! partitioner's): the search only needs reproducible uniform draws, so
//! an in-tree generator replaces the external `rand` dependency (the
//! build must work offline).

pub struct SmallRng(u64);

impl SmallRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 scrambles the seed so nearby seeds diverge; the
        // state must be nonzero for xorshift.
        let mut x = seed.wrapping_add(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        SmallRng((x ^ (x >> 31)) | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// Uniform in `[lo, hi)`.
    pub fn gen_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.gen_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
