//! rtlflow-autotune: profile-guided search over exec/partition/fuse
//! configs with a persistent tuned-artifact cache.
//!
//! The GPU-flow papers pick one launch configuration per design by hand;
//! this crate searches for it instead. A [`tune`] run probes candidate
//! configurations — exec strategy + lane chunk + block size
//! ([`cudasim::ExecConfig`]), fuser thresholds ([`cudasim::FuseConfig`]),
//! and partition shape ([`PartSpec`]) — with short seeded benchmark runs
//! against the real executor, walks the space with simulated annealing
//! under a probe/wall-clock budget, and persists the winner as a
//! versioned [`TunedArtifact`] keyed by [`rtlir::design_hash`].
//!
//! Production subsystems consult the cache on engine-cache fill through
//! [`TunePolicy`]: `serve`'s warm engine cache, `shard`'s device pool and
//! the `cluster` worker all call [`prepare_with_policy`], so a design
//! tuned once is simulated with its tuned config everywhere, with no
//! config changes. Every searched dimension is semantics-preserving, so
//! tuned results stay bit-identical to the scalar reference; a corrupt or
//! stale cache entry degrades to the default config, never to a wrong
//! result.

pub mod artifact;
pub mod cache;
pub mod probe;
pub mod rng;
pub mod search;

pub use artifact::{PartSpec, TunedArtifact, ARTIFACT_VERSION};
pub use cache::{CacheStats, TuneCache, TunePolicy, CACHE_DIR_ENV};
pub use probe::{Candidate, ProbeHarness, ProbeSettings};
pub use rng::SmallRng;
pub use search::{tune, CostSource, ProbeRecord, TuneConfig, TuneReport};

use cudasim::{CudaGraph, ExecConfig, GpuModel};
use rtlir::{Design, RtlGraph};
use transpile::KernelProgram;

/// Build the program + CUDA graph for a design under a tuned artifact's
/// partition and fuse settings (the artifact's exec config is applied at
/// run time by the caller, not here).
pub fn prepare_tuned(
    design: &Design,
    model: &GpuModel,
    artifact: &TunedArtifact,
) -> Result<(KernelProgram, CudaGraph), String> {
    let graph = RtlGraph::build(design).map_err(|e| format!("{e}"))?;
    let part = artifact.partition.materialize(design, &graph);
    let program = KernelProgram::build_with(design, &graph, &part, &artifact.fuse)?;
    let cuda = CudaGraph::instantiate_full(
        program.graph.clone(),
        model,
        Some(program.uniform.clone()),
        Some(program.bit.clone()),
    )?;
    Ok((program, cuda))
}

/// The default (untuned) build — what `pipeline::prepare` does.
fn prepare_default(
    design: &Design,
    model: &GpuModel,
) -> Result<(KernelProgram, CudaGraph), String> {
    let program = transpile::transpile(design)?;
    let cuda = CudaGraph::instantiate_full(
        program.graph.clone(),
        model,
        Some(program.uniform.clone()),
        Some(program.bit.clone()),
    )?;
    Ok((program, cuda))
}

/// Engine-cache fill path: consult the tuned-artifact cache under
/// `policy`, build with the tuned config on a hit, and fall back to the
/// default build when there is no artifact *or the tuned build fails*
/// (a stale artifact must never take an engine down). Returns the build
/// plus the artifact actually applied (`None` = default config).
pub fn prepare_with_policy(
    design: &Design,
    model: &GpuModel,
    policy: &TunePolicy,
) -> (
    Result<(KernelProgram, CudaGraph), String>,
    Option<TunedArtifact>,
) {
    if let Some(artifact) = policy.lookup(rtlir::design_hash(design)) {
        if let Ok(built) = prepare_tuned(design, model, &artifact) {
            return (Ok(built), Some(artifact));
        }
    }
    (prepare_default(design, model), None)
}

/// Resolve the exec config an engine should run with: the artifact's
/// tuned exec, unless the operator explicitly configured a non-default
/// exec (an explicit choice always wins over the cache).
pub fn resolve_exec(configured: ExecConfig, tuned: Option<&TunedArtifact>) -> ExecConfig {
    match tuned {
        Some(a) if configured == ExecConfig::default() => a.exec,
        _ => configured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use designs::{Benchmark, NvdlaScale};

    #[test]
    fn policy_off_uses_default_build() {
        let design = Benchmark::Nvdla(NvdlaScale::Tiny).elaborate().unwrap();
        let model = GpuModel::default();
        let (built, tuned) = prepare_with_policy(&design, &model, &TunePolicy::Off);
        assert!(built.is_ok());
        assert!(tuned.is_none());
    }

    #[test]
    fn tuned_artifact_flows_through_prepare() {
        let design = Benchmark::Nvdla(NvdlaScale::Tiny).elaborate().unwrap();
        let model = GpuModel::default();
        let dir = std::env::temp_dir().join(format!("rtlflow-tune-flow-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = TuneConfig {
            seed: 3,
            max_probes: 6,
            cost: CostSource::Static,
            probe: ProbeSettings {
                num_stimulus: 64,
                cycles: 2,
                stim_seed: 7,
            },
            ..TuneConfig::default()
        };
        let report = tune(&design, "tiny", &cfg).unwrap();
        TuneCache::at(&dir).store(&report.artifact).unwrap();
        let (built, tuned) = prepare_with_policy(&design, &model, &TunePolicy::Dir(dir.clone()));
        assert!(built.is_ok());
        assert_eq!(tuned.unwrap(), report.artifact);
    }

    #[test]
    fn explicit_exec_beats_tuned_exec() {
        let art = TunedArtifact {
            design_hash: 1,
            design_name: "x".into(),
            exec: ExecConfig::vectorized().with_lane_chunk(1024),
            fuse: cudasim::FuseConfig::default(),
            partition: PartSpec::PerLevel,
            seed: 0,
            probes: 1,
            baseline: 1.0,
            best_score: 2.0,
        };
        assert_eq!(
            resolve_exec(ExecConfig::default(), Some(&art)),
            art.exec,
            "default config defers to the artifact"
        );
        let explicit = ExecConfig::scalar();
        assert_eq!(resolve_exec(explicit, Some(&art)), explicit);
        assert_eq!(
            resolve_exec(ExecConfig::default(), None),
            ExecConfig::default()
        );
    }
}
