//! Benchmark designs used throughout the RTLflow reproduction.
//!
//! The paper evaluates three industrial designs; we provide functionally
//! analogous designs written in (or generated into) the `rtlir` Verilog
//! subset:
//!
//! * riscv-mini ([`riscv_mini_source`]) — a single-cycle RV32I-subset CPU
//!   (register file, ALU, branch unit, data memory), analogous to
//!   ucb-bar/riscv-mini.
//! * Spinal ([`spinal_source`]) — a 3-stage pipelined RV-style core with
//!   forwarding and a 2-bit branch predictor, analogous to the
//!   VexRiscv/Spinal benchmark.
//! * NVDLA ([`nvdla_source`]) — a parametric deep-learning-accelerator generator
//!   (systolic MAC array, accumulators, activation unit, CSR block),
//!   analogous to NVDLA `hw_small`. Its size scales with the chosen
//!   [`NvdlaConfig`] so partitioning experiments have real structure to
//!   chew on.

mod handshake;
mod nvdla;
mod riscv_mini;
mod spinal;

pub use handshake::{handshake_source, handshake_source_with, HandshakeConfig};
pub use nvdla::{nvdla_source, NvdlaConfig};
pub use riscv_mini::riscv_mini_source;
pub use spinal::spinal_source;

use rtlir::{Design, Result};

/// The benchmark designs of the paper's evaluation (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    RiscvMini,
    Spinal,
    /// NVDLA at a given scale.
    Nvdla(NvdlaScale),
    /// The vendored picorv32 Yosys-JSON netlist fixture (gate-level; enters
    /// through the `netlist` frontend rather than the Verilog parser).
    Picorv32,
    /// Control-heavy handshake ring: almost all 1-bit signals, dense
    /// FSM/handshake logic (the bit-transposed executor's best case).
    Handshake,
}

/// Size presets for the NVDLA generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NvdlaScale {
    /// Tiny instance for unit tests (2x2 PEs, 1 core).
    Tiny,
    /// Small instance for fast experiments (4x4 PEs, 2 cores).
    Small,
    /// The default evaluation scale (8x8 PEs, 4 cores), standing in for
    /// the paper's `hw_small` configuration.
    HwSmall,
}

impl Benchmark {
    /// Canonical name used in tables and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::RiscvMini => "riscv-mini",
            Benchmark::Spinal => "Spinal",
            Benchmark::Nvdla(_) => "NVDLA",
            Benchmark::Picorv32 => "picorv32",
            Benchmark::Handshake => "handshake",
        }
    }

    /// Top-level module name.
    pub fn top(&self) -> &'static str {
        match self {
            Benchmark::RiscvMini => "riscv_mini",
            Benchmark::Spinal => "spinal_cpu",
            Benchmark::Nvdla(_) => "nvdla_top",
            Benchmark::Picorv32 => "picorv32",
            Benchmark::Handshake => "handshake_ring",
        }
    }

    /// Design source for this benchmark: Verilog subset text, except
    /// picorv32 which is a Yosys JSON netlist ([`netlist::load_design`]
    /// dispatches on the format).
    pub fn source(&self) -> String {
        match self {
            Benchmark::RiscvMini => riscv_mini_source(),
            Benchmark::Spinal => spinal_source(),
            Benchmark::Nvdla(scale) => nvdla_source(&NvdlaConfig::preset(*scale)),
            Benchmark::Picorv32 => netlist::PICORV32_JSON.to_string(),
            Benchmark::Handshake => handshake_source(),
        }
    }

    /// Parse + elaborate this benchmark (through the matching frontend).
    pub fn elaborate(&self) -> Result<Design> {
        netlist::load_design(&self.source(), self.top())
    }

    /// All three paper benchmarks at their evaluation scales.
    pub fn all() -> [Benchmark; 3] {
        [
            Benchmark::RiscvMini,
            Benchmark::Spinal,
            Benchmark::Nvdla(NvdlaScale::HwSmall),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_elaborate() {
        for b in [
            Benchmark::RiscvMini,
            Benchmark::Spinal,
            Benchmark::Nvdla(NvdlaScale::Tiny),
            Benchmark::Handshake,
        ] {
            let d = b
                .elaborate()
                .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            assert!(!d.inputs.is_empty(), "{} has no inputs", b.name());
            assert!(!d.outputs.is_empty(), "{} has no outputs", b.name());
            assert!(d.clock.is_some(), "{} has no clock", b.name());
        }
    }

    #[test]
    fn picorv32_elaborates_through_netlist_frontend() {
        let d = Benchmark::Picorv32.elaborate().unwrap();
        assert_eq!(d.name, "picorv32");
        assert!(d.clock.is_some());
        assert!(!d.inputs.is_empty());
        rtlir::RtlGraph::build(&d).unwrap();
    }

    #[test]
    fn benchmarks_have_graphs() {
        for b in [
            Benchmark::RiscvMini,
            Benchmark::Spinal,
            Benchmark::Nvdla(NvdlaScale::Tiny),
            Benchmark::Handshake,
        ] {
            let d = b.elaborate().unwrap();
            let g = rtlir::RtlGraph::build(&d).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            assert!(g.depth() >= 2, "{} suspiciously shallow", b.name());
        }
    }

    #[test]
    fn benchmarks_survive_print_reparse() {
        // Print each benchmark's AST back to Verilog, reparse it, and check
        // the elaborated design is behaviourally identical on a short run.
        for b in [
            Benchmark::RiscvMini,
            Benchmark::Spinal,
            Benchmark::Nvdla(NvdlaScale::Tiny),
            Benchmark::Handshake,
        ] {
            let src = b.source();
            let unit = rtlir::parse(&src).unwrap();
            let printed = rtlir::printer::print_source_unit(&unit);
            let d1 = b.elaborate().unwrap();
            let d2 = rtlir::elaborate(&printed, b.top())
                .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", b.name()));
            assert_eq!(d1.vars.len(), d2.vars.len(), "{}", b.name());
            assert_eq!(d1.processes.len(), d2.processes.len(), "{}", b.name());

            // Drive both with the same input pattern and compare digests.
            let drive = |d: &rtlir::Design| {
                let inputs: Vec<_> = d.inputs.clone();
                rtlir::interp::run_cycles(d, 25, |c| {
                    inputs
                        .iter()
                        .map(|&v| {
                            let w = d.vars[v].width;
                            (
                                v,
                                rtlir::BitVec::from_u64(c.wrapping_mul(0x9e3779b9) & 0xffff, w),
                            )
                        })
                        .collect()
                })
                .unwrap()
            };
            assert_eq!(
                drive(&d1),
                drive(&d2),
                "{} diverged after print/reparse",
                b.name()
            );
        }
    }

    #[test]
    fn nvdla_scales_monotonically() {
        let tiny = Benchmark::Nvdla(NvdlaScale::Tiny).elaborate().unwrap();
        let small = Benchmark::Nvdla(NvdlaScale::Small).elaborate().unwrap();
        assert!(small.processes.len() > tiny.processes.len());
        assert!(small.vars.len() > tiny.vars.len());
    }
}
