//! A single-cycle RV32I-subset CPU, analogous to ucb-bar/riscv-mini.
//!
//! The core executes one instruction per cycle. Instructions arrive on the
//! `instr` input port (the stimulus plays the role of instruction memory,
//! as in constrained-random instruction-stream verification); data memory
//! and the register file are internal. Outputs expose the PC, the ALU
//! result, the load data and a memory-mapped IO register so waveform
//! digests observe the architectural state.

/// Verilog source of the riscv-mini benchmark.
pub fn riscv_mini_source() -> String {
    RISCV_MINI.to_string()
}

const RISCV_MINI: &str = r#"
// ---------------------------------------------------------------- regfile
module regfile(
  input clk,
  input we,
  input [4:0] ra1,
  input [4:0] ra2,
  input [4:0] wa,
  input [31:0] wd,
  output [31:0] rd1,
  output [31:0] rd2
);
  reg [31:0] rf [0:31];
  assign rd1 = (ra1 == 5'd0) ? 32'd0 : rf[ra1];
  assign rd2 = (ra2 == 5'd0) ? 32'd0 : rf[ra2];
  always @(posedge clk) begin
    if (we && (wa != 5'd0)) rf[wa] <= wd;
  end
endmodule

// -------------------------------------------------------------------- alu
module alu(
  input [31:0] a,
  input [31:0] b,
  input [3:0] op,
  output reg [31:0] y
);
  wire [31:0] sum  = a + b;
  wire [31:0] diff = a - b;
  // Signed less-than from sign bits and unsigned difference.
  wire slt  = (a[31] == b[31]) ? diff[31] : a[31];
  wire sltu = a < b;
  always @(*) begin
    y = 32'd0;
    case (op)
      4'd0:  y = sum;
      4'd1:  y = diff;
      4'd2:  y = a & b;
      4'd3:  y = a | b;
      4'd4:  y = a ^ b;
      4'd5:  y = a << b[4:0];
      4'd6:  y = a >> b[4:0];
      4'd7:  y = a >>> b[4:0];
      4'd8:  y = {31'd0, slt};
      4'd9:  y = {31'd0, sltu};
      4'd10: y = a * b;
      4'd11: y = b;
      default: y = sum;
    endcase
  end
endmodule

// ----------------------------------------------------------- branch unit
module branch_unit(
  input [31:0] rs1,
  input [31:0] rs2,
  input [2:0] funct3,
  output reg taken
);
  wire eq  = rs1 == rs2;
  wire ltu = rs1 < rs2;
  wire [31:0] diff = rs1 - rs2;
  wire lt  = (rs1[31] == rs2[31]) ? diff[31] : rs1[31];
  always @(*) begin
    taken = 1'b0;
    case (funct3)
      3'b000: taken = eq;
      3'b001: taken = !eq;
      3'b100: taken = lt;
      3'b101: taken = !lt;
      3'b110: taken = ltu;
      3'b111: taken = !ltu;
      default: taken = 1'b0;
    endcase
  end
endmodule

// ---------------------------------------------------------------- decoder
module decoder(
  input [31:0] instr,
  output [6:0] opcode,
  output [4:0] rd,
  output [2:0] funct3,
  output [4:0] rs1,
  output [4:0] rs2,
  output [6:0] funct7,
  output [31:0] imm_i,
  output [31:0] imm_s,
  output [31:0] imm_b,
  output [31:0] imm_u,
  output [31:0] imm_j
);
  assign opcode = instr[6:0];
  assign rd     = instr[11:7];
  assign funct3 = instr[14:12];
  assign rs1    = instr[19:15];
  assign rs2    = instr[24:20];
  assign funct7 = instr[31:25];
  assign imm_i  = {{20{instr[31]}}, instr[31:20]};
  assign imm_s  = {{20{instr[31]}}, instr[31:25], instr[11:7]};
  assign imm_b  = {{19{instr[31]}}, instr[31], instr[7], instr[30:25], instr[11:8], 1'b0};
  assign imm_u  = {instr[31:12], 12'd0};
  assign imm_j  = {{11{instr[31]}}, instr[31], instr[19:12], instr[20], instr[30:21], 1'b0};
endmodule

// ---------------------------------------------------------------- control
module control(
  input [6:0] opcode,
  input [2:0] funct3,
  input [6:0] funct7,
  output reg [3:0] alu_op,
  output reg alu_b_imm,
  output reg reg_we,
  output reg [1:0] wb_sel,      // 0=alu 1=mem 2=pc+4 3=imm_u
  output reg is_branch,
  output reg is_jal,
  output reg is_jalr,
  output reg mem_we,
  output reg [1:0] imm_sel      // 0=I 1=S 2=B 3=J
);
  always @(*) begin
    alu_op = 4'd0;
    alu_b_imm = 1'b0;
    reg_we = 1'b0;
    wb_sel = 2'd0;
    is_branch = 1'b0;
    is_jal = 1'b0;
    is_jalr = 1'b0;
    mem_we = 1'b0;
    imm_sel = 2'd0;
    case (opcode)
      7'b0110011: begin // R-type
        reg_we = 1'b1;
        case (funct3)
          3'b000: alu_op = funct7[0] ? 4'd10 : (funct7[5] ? 4'd1 : 4'd0);
          3'b001: alu_op = 4'd5;
          3'b010: alu_op = 4'd8;
          3'b011: alu_op = 4'd9;
          3'b100: alu_op = 4'd4;
          3'b101: alu_op = funct7[5] ? 4'd7 : 4'd6;
          3'b110: alu_op = 4'd3;
          3'b111: alu_op = 4'd2;
          default: alu_op = 4'd0;
        endcase
      end
      7'b0010011: begin // I-type ALU
        reg_we = 1'b1;
        alu_b_imm = 1'b1;
        case (funct3)
          3'b000: alu_op = 4'd0;
          3'b001: alu_op = 4'd5;
          3'b010: alu_op = 4'd8;
          3'b011: alu_op = 4'd9;
          3'b100: alu_op = 4'd4;
          3'b101: alu_op = funct7[5] ? 4'd7 : 4'd6;
          3'b110: alu_op = 4'd3;
          3'b111: alu_op = 4'd2;
          default: alu_op = 4'd0;
        endcase
      end
      7'b0000011: begin // LW
        reg_we = 1'b1;
        alu_b_imm = 1'b1;
        wb_sel = 2'd1;
      end
      7'b0100011: begin // SW
        alu_b_imm = 1'b1;
        mem_we = 1'b1;
        imm_sel = 2'd1;
      end
      7'b1100011: begin // branches
        is_branch = 1'b1;
        imm_sel = 2'd2;
      end
      7'b1101111: begin // JAL
        is_jal = 1'b1;
        reg_we = 1'b1;
        wb_sel = 2'd2;
        imm_sel = 2'd3;
      end
      7'b1100111: begin // JALR
        is_jalr = 1'b1;
        reg_we = 1'b1;
        alu_b_imm = 1'b1;
        wb_sel = 2'd2;
      end
      7'b0110111: begin // LUI
        reg_we = 1'b1;
        wb_sel = 2'd3;
      end
      7'b0010111: begin // AUIPC (treated as LUI+pc in wb mux)
        reg_we = 1'b1;
        wb_sel = 2'd3;
      end
      default: reg_we = 1'b0;
    endcase
  end
endmodule

// ------------------------------------------------------------------- core
module riscv_mini(
  input clk,
  input rst,
  input [31:0] instr,
  input [31:0] io_in,
  output [31:0] pc_out,
  output [31:0] result,
  output [31:0] dmem_out,
  output [31:0] io_out
);
  reg [31:0] pc;
  reg [31:0] io_reg;
  reg [31:0] dmem [0:255];

  wire [6:0] opcode;
  wire [4:0] rd;
  wire [2:0] funct3;
  wire [4:0] rs1;
  wire [4:0] rs2;
  wire [6:0] funct7;
  wire [31:0] imm_i;
  wire [31:0] imm_s;
  wire [31:0] imm_b;
  wire [31:0] imm_u;
  wire [31:0] imm_j;

  decoder dec (
    .instr(instr), .opcode(opcode), .rd(rd), .funct3(funct3), .rs1(rs1),
    .rs2(rs2), .funct7(funct7), .imm_i(imm_i), .imm_s(imm_s), .imm_b(imm_b),
    .imm_u(imm_u), .imm_j(imm_j)
  );

  wire [3:0] alu_op;
  wire alu_b_imm;
  wire reg_we;
  wire [1:0] wb_sel;
  wire is_branch;
  wire is_jal;
  wire is_jalr;
  wire mem_we;
  wire [1:0] imm_sel;

  control ctl (
    .opcode(opcode), .funct3(funct3), .funct7(funct7), .alu_op(alu_op),
    .alu_b_imm(alu_b_imm), .reg_we(reg_we), .wb_sel(wb_sel),
    .is_branch(is_branch), .is_jal(is_jal), .is_jalr(is_jalr),
    .mem_we(mem_we), .imm_sel(imm_sel)
  );

  wire [31:0] rf_rd1;
  wire [31:0] rf_rd2;
  wire [31:0] wb_data;
  regfile rf (
    .clk(clk), .we(reg_we), .ra1(rs1), .ra2(rs2), .wa(rd), .wd(wb_data),
    .rd1(rf_rd1), .rd2(rf_rd2)
  );

  // Immediate select.
  reg [31:0] imm;
  always @(*) begin
    imm = imm_i;
    case (imm_sel)
      2'd1: imm = imm_s;
      2'd2: imm = imm_b;
      2'd3: imm = imm_j;
      default: imm = imm_i;
    endcase
  end

  wire [31:0] alu_b = alu_b_imm ? imm : rf_rd2;
  wire [31:0] alu_y;
  alu the_alu (.a(rf_rd1), .b(alu_b), .op(alu_op), .y(alu_y));

  wire br_taken;
  branch_unit bru (.rs1(rf_rd1), .rs2(rf_rd2), .funct3(funct3), .taken(br_taken));

  // Data memory: word addressed by alu_y[9:2]; bit 12 selects the IO page.
  wire io_sel = alu_y[12];
  wire [7:0] dmem_addr = alu_y[9:2];
  wire [31:0] load_data = io_sel ? io_in : dmem[dmem_addr];

  // Writeback.
  wire [31:0] pc_plus4 = pc + 32'd4;
  reg [31:0] wb_mux;
  always @(*) begin
    wb_mux = alu_y;
    case (wb_sel)
      2'd1: wb_mux = load_data;
      2'd2: wb_mux = pc_plus4;
      2'd3: wb_mux = (opcode == 7'b0010111) ? (pc + imm_u) : imm_u;
      default: wb_mux = alu_y;
    endcase
  end
  assign wb_data = wb_mux;

  // Next PC.
  wire [31:0] br_target = pc + imm;
  wire [31:0] jalr_target = {alu_y[31:1], 1'b0};
  reg [31:0] next_pc;
  always @(*) begin
    next_pc = pc_plus4;
    if (is_jalr) next_pc = jalr_target;
    else if (is_jal) next_pc = br_target;
    else if (is_branch && br_taken) next_pc = br_target;
  end

  always @(posedge clk) begin
    if (rst) pc <= 32'd0;
    else pc <= next_pc;
  end

  always @(posedge clk) begin
    if (mem_we && !io_sel) dmem[dmem_addr] <= rf_rd2;
  end

  always @(posedge clk) begin
    if (rst) io_reg <= 32'd0;
    else if (mem_we && io_sel) io_reg <= rf_rd2;
  end

  assign pc_out = pc;
  assign result = alu_y;
  assign dmem_out = load_data;
  assign io_out = io_reg;
endmodule
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use rtlir::{BitVec, Interp};

    /// Build an R-type instruction word.
    fn rtype(funct7: u32, rs2: u32, rs1: u32, funct3: u32, rd: u32) -> u64 {
        ((funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | 0b0110011) as u64
    }
    /// Build an I-type ALU instruction word.
    fn itype(imm: u32, rs1: u32, funct3: u32, rd: u32) -> u64 {
        (((imm & 0xfff) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | 0b0010011) as u64
    }

    #[test]
    fn addi_then_add() {
        let d = rtlir::elaborate(&riscv_mini_source(), "riscv_mini").unwrap();
        let mut sim = Interp::new(&d).unwrap();
        let instr = d.find_var("instr").unwrap();
        let rst = d.find_var("rst").unwrap();
        let result = d.find_var("result").unwrap();

        let one = |v: u64| BitVec::from_u64(v, 32);
        // reset
        sim.step_cycle(&[(rst, BitVec::from_u64(1, 1)), (instr, one(0))]);
        // addi x1, x0, 5
        sim.step_cycle(&[
            (rst, BitVec::from_u64(0, 1)),
            (instr, one(itype(5, 0, 0, 1))),
        ]);
        // addi x2, x0, 7
        sim.step_cycle(&[
            (rst, BitVec::from_u64(0, 1)),
            (instr, one(itype(7, 0, 0, 2))),
        ]);
        // add x3, x1, x2 -> alu result should be 12 combinationally
        sim.step_cycle(&[
            (rst, BitVec::from_u64(0, 1)),
            (instr, one(rtype(0, 2, 1, 0, 3))),
        ]);
        assert_eq!(sim.peek(result).unwrap().to_u64(), 12);
    }

    #[test]
    fn pc_advances_by_four() {
        let d = rtlir::elaborate(&riscv_mini_source(), "riscv_mini").unwrap();
        let mut sim = Interp::new(&d).unwrap();
        let instr = d.find_var("instr").unwrap();
        let rst = d.find_var("rst").unwrap();
        let pc = d.find_var("pc_out").unwrap();
        sim.step_cycle(&[
            (rst, BitVec::from_u64(1, 1)),
            (instr, BitVec::from_u64(0, 32)),
        ]);
        assert_eq!(sim.peek(pc).unwrap().to_u64(), 0);
        for i in 1..=3u64 {
            sim.step_cycle(&[
                (rst, BitVec::from_u64(0, 1)),
                (instr, BitVec::from_u64(itype(1, 0, 0, 1), 32)),
            ]);
            assert_eq!(sim.peek(pc).unwrap().to_u64(), 4 * i);
        }
    }

    #[test]
    #[allow(clippy::erasing_op, clippy::identity_op)]
    fn store_load_roundtrip() {
        let d = rtlir::elaborate(&riscv_mini_source(), "riscv_mini").unwrap();
        let mut sim = Interp::new(&d).unwrap();
        let instr = d.find_var("instr").unwrap();
        let rst = d.find_var("rst").unwrap();
        let dmem_out = d.find_var("dmem_out").unwrap();
        let one = |v: u64| BitVec::from_u64(v, 32);
        let lo = |v: u64| (rst, BitVec::from_u64(v, 1));

        sim.step_cycle(&[lo(1), (instr, one(0))]);
        // addi x1, x0, 0xAB
        sim.step_cycle(&[lo(0), (instr, one(itype(0xab, 0, 0, 1)))]);
        // addi x2, x0, 16  (address)
        sim.step_cycle(&[lo(0), (instr, one(itype(16, 0, 0, 2)))]);
        // sw x1, 0(x2): opcode 0100011, funct3 010
        let sw = ((0u32) << 25) | (1 << 20) | (2 << 15) | (0b010 << 12) | (0 << 7) | 0b0100011;
        sim.step_cycle(&[lo(0), (instr, one(sw as u64))]);
        // lw x3, 0(x2): opcode 0000011
        let lw = ((0u32 & 0xfff) << 20) | (2 << 15) | (0b010 << 12) | (3 << 7) | 0b0000011;
        sim.step_cycle(&[lo(0), (instr, one(lw as u64))]);
        assert_eq!(sim.peek(dmem_out).unwrap().to_u64(), 0xab);
    }

    #[test]
    #[allow(clippy::erasing_op, clippy::identity_op)]
    fn branch_taken_redirects_pc() {
        let d = rtlir::elaborate(&riscv_mini_source(), "riscv_mini").unwrap();
        let mut sim = Interp::new(&d).unwrap();
        let instr = d.find_var("instr").unwrap();
        let rst = d.find_var("rst").unwrap();
        let pc = d.find_var("pc_out").unwrap();
        let one = |v: u64| BitVec::from_u64(v, 32);
        sim.step_cycle(&[(rst, BitVec::from_u64(1, 1)), (instr, one(0))]);
        // beq x0, x0, +16 : imm_b=16 -> bits: imm[4:1]=1000? 16 = b10000
        // encode: imm[12]=0 imm[10:5]=000000 imm[4:1]=1000 imm[11]=0
        let beq = (0u32 << 31)
            | (0 << 25)
            | (0 << 20)
            | (0 << 15)
            | (0b000 << 12)
            | (0b1000 << 8)
            | (0 << 7)
            | 0b1100011;
        sim.step_cycle(&[(rst, BitVec::from_u64(0, 1)), (instr, one(beq as u64))]);
        assert_eq!(sim.peek(pc).unwrap().to_u64(), 16);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let d = rtlir::elaborate(&riscv_mini_source(), "riscv_mini").unwrap();
        let mut sim = Interp::new(&d).unwrap();
        let instr = d.find_var("instr").unwrap();
        let rst = d.find_var("rst").unwrap();
        let result = d.find_var("result").unwrap();
        let one = |v: u64| BitVec::from_u64(v, 32);
        sim.step_cycle(&[(rst, BitVec::from_u64(1, 1)), (instr, one(0))]);
        // addi x0, x0, 99 (write to x0 must be ignored)
        sim.step_cycle(&[
            (rst, BitVec::from_u64(0, 1)),
            (instr, one(itype(99, 0, 0, 0))),
        ]);
        // add x5, x0, x0 -> 0
        sim.step_cycle(&[
            (rst, BitVec::from_u64(0, 1)),
            (instr, one(rtype(0, 0, 0, 0, 5))),
        ]);
        assert_eq!(sim.peek(result).unwrap().to_u64(), 0);
    }
}
