//! Parametric deep-learning-accelerator generator, standing in for the
//! paper's NVDLA `hw_small` benchmark.
//!
//! The generated design is a classic DLA datapath:
//!
//! * a systolic MAC array (`R x C` processing elements per core) with
//!   operands flowing right/down through pipeline registers,
//! * per-column accumulator adder trees,
//! * a ReLU + shift activation unit per core,
//! * a CSR block configured over a small write bus,
//! * `G` convolution cores fed from the shared input buses, and
//! * status/checksum logic observing the whole datapath.
//!
//! Because the subset has no `generate` blocks, the generator unrolls all
//! instances into flat Verilog text — exactly what an elaborated NVDLA
//! netlist looks like to the partitioner.

use std::fmt::Write as _;

use crate::NvdlaScale;

/// Shape of a generated NVDLA instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NvdlaConfig {
    /// MAC array rows per core.
    pub rows: usize,
    /// MAC array columns per core.
    pub cols: usize,
    /// Number of convolution cores.
    pub cores: usize,
}

impl NvdlaConfig {
    /// Preset for a benchmark scale.
    pub fn preset(scale: NvdlaScale) -> Self {
        match scale {
            NvdlaScale::Tiny => NvdlaConfig {
                rows: 2,
                cols: 2,
                cores: 1,
            },
            NvdlaScale::Small => NvdlaConfig {
                rows: 4,
                cols: 4,
                cores: 2,
            },
            NvdlaScale::HwSmall => NvdlaConfig {
                rows: 8,
                cols: 8,
                cores: 4,
            },
        }
    }

    /// Total number of processing elements.
    pub fn pes(&self) -> usize {
        self.rows * self.cols * self.cores
    }
}

/// Generate the Verilog source for a given configuration.
pub fn nvdla_source(cfg: &NvdlaConfig) -> String {
    let mut v = String::with_capacity(64 * 1024);

    // ------------------------------------------------------------- PE
    v.push_str(
        r#"
module nvdla_pe(
  input clk,
  input rst,
  input [15:0] a_in,
  input [15:0] b_in,
  input en,
  input clear,
  output [15:0] a_out,
  output [15:0] b_out,
  output [37:0] acc_out
);
  reg [15:0] ra;
  reg [15:0] rb;
  reg [37:0] acc;
  always @(posedge clk) begin
    if (rst) begin
      ra <= 16'd0;
      rb <= 16'd0;
    end
    else begin
      ra <= a_in;
      rb <= b_in;
    end
  end
  always @(posedge clk) begin
    if (rst || clear) acc <= 38'd0;
    else if (en) acc <= acc + (a_in * b_in);
  end
  assign a_out = ra;
  assign b_out = rb;
  assign acc_out = acc;
endmodule

module nvdla_activation(
  input [41:0] acc,
  input [4:0] shift,
  input relu_en,
  output [31:0] y
);
  wire [41:0] shifted = acc >> shift;
  wire neg = acc[41];
  wire [41:0] relued = (relu_en && neg) ? 42'd0 : shifted;
  // Saturate to 32 bits.
  wire ovf = relued[41:32] != 10'd0;
  assign y = ovf ? 32'hffffffff : relued[31:0];
endmodule

module nvdla_csr(
  input clk,
  input rst,
  input cfg_we,
  input [3:0] cfg_addr,
  input [31:0] cfg_data,
  output [4:0] shift,
  output relu_en,
  output [15:0] bias,
  output [31:0] magic
);
  reg [31:0] r_shift;
  reg [31:0] r_relu;
  reg [31:0] r_bias;
  reg [31:0] r_magic;
  always @(posedge clk) begin
    if (rst) begin
      r_shift <= 32'd0;
      r_relu <= 32'd1;
      r_bias <= 32'd0;
      r_magic <= 32'h5a5a5a5a;
    end
    else if (cfg_we) begin
      case (cfg_addr)
        4'd0: r_shift <= cfg_data;
        4'd1: r_relu <= cfg_data;
        4'd2: r_bias <= cfg_data;
        4'd3: r_magic <= cfg_data;
        default: r_magic <= r_magic ^ cfg_data;
      endcase
    end
  end
  assign shift = r_shift[4:0];
  assign relu_en = r_relu[0];
  assign bias = r_bias[15:0];
  assign magic = r_magic;
endmodule
"#,
    );

    // ------------------------------------------------------ conv core
    emit_conv_core(&mut v, cfg);

    // ------------------------------------------------------------ top
    emit_top(&mut v, cfg);
    v
}

fn emit_conv_core(v: &mut String, cfg: &NvdlaConfig) {
    let (r, c) = (cfg.rows, cfg.cols);
    writeln!(v, "\nmodule nvdla_core(").unwrap();
    writeln!(v, "  input clk,").unwrap();
    writeln!(v, "  input rst,").unwrap();
    for i in 0..r {
        writeln!(v, "  input [15:0] a_i{i},").unwrap();
    }
    for j in 0..c {
        writeln!(v, "  input [15:0] b_i{j},").unwrap();
    }
    writeln!(v, "  input en,").unwrap();
    writeln!(v, "  input clear,").unwrap();
    writeln!(v, "  input [4:0] act_shift,").unwrap();
    writeln!(v, "  input act_relu,").unwrap();
    writeln!(v, "  output [31:0] y_out,").unwrap();
    writeln!(v, "  output [41:0] raw_out").unwrap();
    writeln!(v, ");").unwrap();

    // Inter-PE wires.
    for i in 0..r {
        for j in 0..c {
            writeln!(v, "  wire [15:0] a_{i}_{j};").unwrap();
            writeln!(v, "  wire [15:0] b_{i}_{j};").unwrap();
            writeln!(v, "  wire [37:0] acc_{i}_{j};").unwrap();
        }
    }
    // PE grid: a flows left->right, b flows top->down.
    for i in 0..r {
        for j in 0..c {
            let a_src = if j == 0 {
                format!("a_i{i}")
            } else {
                format!("a_{i}_{}", j - 1)
            };
            let b_src = if i == 0 {
                format!("b_i{j}")
            } else {
                format!("b_{}_{j}", i - 1)
            };
            writeln!(
                v,
                "  nvdla_pe pe_{i}_{j} (.clk(clk), .rst(rst), .a_in({a_src}), .b_in({b_src}), \
                 .en(en), .clear(clear), .a_out(a_{i}_{j}), .b_out(b_{i}_{j}), .acc_out(acc_{i}_{j}));"
            )
            .unwrap();
        }
    }
    // Per-column adder chains (unrolled adder tree).
    for j in 0..c {
        for i in 0..r {
            if i == 0 {
                writeln!(v, "  wire [41:0] csum_{j}_0 = {{4'd0, acc_0_{j}}};").unwrap();
            } else {
                writeln!(
                    v,
                    "  wire [41:0] csum_{j}_{i} = csum_{j}_{} + {{4'd0, acc_{i}_{j}}};",
                    i - 1
                )
                .unwrap();
            }
        }
    }
    // Row of columns reduction.
    for j in 0..c {
        if j == 0 {
            writeln!(v, "  wire [41:0] total_0 = csum_0_{};", r - 1).unwrap();
        } else {
            writeln!(
                v,
                "  wire [41:0] total_{j} = total_{} + csum_{j}_{};",
                j - 1,
                r - 1
            )
            .unwrap();
        }
    }
    writeln!(v, "  assign raw_out = total_{};", c - 1).unwrap();
    writeln!(
        v,
        "  nvdla_activation act (.acc(total_{}), .shift(act_shift), .relu_en(act_relu), .y(y_out));",
        c - 1
    )
    .unwrap();
    writeln!(v, "endmodule").unwrap();
}

fn emit_top(v: &mut String, cfg: &NvdlaConfig) {
    let (r, c, g) = (cfg.rows, cfg.cols, cfg.cores);
    writeln!(
        v,
        "\nmodule nvdla_top(\n  input clk,\n  input rst,\n  input [63:0] data_in,\n  input [63:0] weight_in,\n  input cfg_we,\n  input [3:0] cfg_addr,\n  input [31:0] cfg_data,\n  input start,\n  input clear,\n  output [63:0] acc_out,\n  output [31:0] status,\n  output [31:0] checksum\n);"
    )
    .unwrap();

    // CSR block.
    writeln!(v, "  wire [4:0] csr_shift;").unwrap();
    writeln!(v, "  wire csr_relu;").unwrap();
    writeln!(v, "  wire [15:0] csr_bias;").unwrap();
    writeln!(v, "  wire [31:0] csr_magic;").unwrap();
    writeln!(
        v,
        "  nvdla_csr csr (.clk(clk), .rst(rst), .cfg_we(cfg_we), .cfg_addr(cfg_addr), .cfg_data(cfg_data), \
         .shift(csr_shift), .relu_en(csr_relu), .bias(csr_bias), .magic(csr_magic));"
    )
    .unwrap();

    // Input distribution: slice the 64-bit buses into 16-bit lanes, with a
    // per-row/per-core rotation so each core sees different operands.
    for k in 0..g {
        for i in 0..r {
            let lane = (i + k) % 4;
            let (hi, lo) = (16 * lane + 15, 16 * lane);
            writeln!(
                v,
                "  wire [15:0] a_src_{k}_{i} = data_in[{hi}:{lo}] + 16'd{};",
                i + k * r
            )
            .unwrap();
        }
        for j in 0..c {
            let lane = (j + 2 * k + 1) % 4;
            let (hi, lo) = (16 * lane + 15, 16 * lane);
            writeln!(
                v,
                "  wire [15:0] b_src_{k}_{j} = (weight_in[{hi}:{lo}] ^ 16'd{}) + csr_bias;",
                j * 3 + k
            )
            .unwrap();
        }
    }

    // Core instances.
    for k in 0..g {
        writeln!(v, "  wire [31:0] y_{k};").unwrap();
        writeln!(v, "  wire [41:0] raw_{k};").unwrap();
        let mut conns = String::new();
        for i in 0..r {
            write!(conns, ".a_i{i}(a_src_{k}_{i}), ").unwrap();
        }
        for j in 0..c {
            write!(conns, ".b_i{j}(b_src_{k}_{j}), ").unwrap();
        }
        writeln!(
            v,
            "  nvdla_core core_{k} (.clk(clk), .rst(rst), {conns}.en(start), .clear(clear), \
             .act_shift(csr_shift), .act_relu(csr_relu), .y_out(y_{k}), .raw_out(raw_{k}));"
        )
        .unwrap();
    }

    // Output reduction.
    for k in 0..g {
        if k == 0 {
            writeln!(v, "  wire [63:0] osum_0 = {{32'd0, y_0}};").unwrap();
        } else {
            writeln!(
                v,
                "  wire [63:0] osum_{k} = osum_{} + {{32'd0, y_{k}}};",
                k - 1
            )
            .unwrap();
        }
    }
    writeln!(v, "  assign acc_out = osum_{};", g - 1).unwrap();

    // Status & checksum registers.
    writeln!(v, "  reg [31:0] busy_cycles;").unwrap();
    writeln!(v, "  reg [31:0] csum;").unwrap();
    writeln!(v, "  always @(posedge clk) begin").unwrap();
    writeln!(v, "    if (rst) busy_cycles <= 32'd0;").unwrap();
    writeln!(v, "    else if (start) busy_cycles <= busy_cycles + 32'd1;").unwrap();
    writeln!(v, "  end").unwrap();
    writeln!(v, "  always @(posedge clk) begin").unwrap();
    writeln!(v, "    if (rst) csum <= 32'd0;").unwrap();
    let mut xors = String::from("csum");
    for k in 0..g {
        write!(xors, " ^ y_{k} ^ {{raw_{k}[41:32], raw_{k}[21:0]}}").unwrap();
    }
    writeln!(
        v,
        "    else csum <= ({xors}) + {{busy_cycles[7:0], 24'd0}};"
    )
    .unwrap();
    writeln!(v, "  end").unwrap();
    writeln!(v, "  assign status = busy_cycles ^ csr_magic;").unwrap();
    writeln!(v, "  assign checksum = csum;").unwrap();
    writeln!(v, "endmodule").unwrap();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlir::{BitVec, Interp};

    #[test]
    fn tiny_instance_simulates() {
        let cfg = NvdlaConfig::preset(NvdlaScale::Tiny);
        let src = nvdla_source(&cfg);
        let d = rtlir::elaborate(&src, "nvdla_top").unwrap();
        let mut sim = Interp::new(&d).unwrap();
        let rst = d.find_var("rst").unwrap();
        let start = d.find_var("start").unwrap();
        let data = d.find_var("data_in").unwrap();
        let weight = d.find_var("weight_in").unwrap();
        let acc = d.find_var("acc_out").unwrap();
        sim.step_cycle(&[(rst, BitVec::from_u64(1, 1))]);
        for cyc in 0..20u64 {
            sim.step_cycle(&[
                (rst, BitVec::from_u64(0, 1)),
                (start, BitVec::from_u64(1, 1)),
                (data, BitVec::from_u64(cyc.wrapping_mul(0x0101_0101), 64)),
                (weight, BitVec::from_u64(0x0002_0003_0004_0005, 64)),
            ]);
        }
        // MACs accumulate something non-zero.
        assert_ne!(sim.peek(acc).unwrap().to_u64(), 0);
    }

    #[test]
    fn clear_resets_accumulators() {
        let cfg = NvdlaConfig::preset(NvdlaScale::Tiny);
        let src = nvdla_source(&cfg);
        let d = rtlir::elaborate(&src, "nvdla_top").unwrap();
        let mut sim = Interp::new(&d).unwrap();
        let rst = d.find_var("rst").unwrap();
        let start = d.find_var("start").unwrap();
        let clear = d.find_var("clear").unwrap();
        let data = d.find_var("data_in").unwrap();
        let weight = d.find_var("weight_in").unwrap();
        let acc = d.find_var("acc_out").unwrap();
        let b1 = |v: u64| BitVec::from_u64(v, 1);
        sim.step_cycle(&[(rst, b1(1))]);
        for _ in 0..5 {
            sim.step_cycle(&[
                (rst, b1(0)),
                (start, b1(1)),
                (clear, b1(0)),
                (data, BitVec::from_u64(0x0001_0001_0001_0001, 64)),
                (weight, BitVec::from_u64(0x0001_0001_0001_0001, 64)),
            ]);
        }
        assert_ne!(sim.peek(acc).unwrap().to_u64(), 0);
        // Two clear cycles flush the PE accumulators.
        for _ in 0..2 {
            sim.step_cycle(&[(rst, b1(0)), (start, b1(0)), (clear, b1(1))]);
        }
        assert_eq!(sim.peek(acc).unwrap().to_u64(), 0);
    }

    #[test]
    fn csr_shift_changes_output() {
        let cfg = NvdlaConfig::preset(NvdlaScale::Tiny);
        let src = nvdla_source(&cfg);
        let d = rtlir::elaborate(&src, "nvdla_top").unwrap();

        let run = |shift: u64| -> u64 {
            let mut sim = Interp::new(&d).unwrap();
            let rst = d.find_var("rst").unwrap();
            let start = d.find_var("start").unwrap();
            let cfg_we = d.find_var("cfg_we").unwrap();
            let cfg_addr = d.find_var("cfg_addr").unwrap();
            let cfg_data = d.find_var("cfg_data").unwrap();
            let data = d.find_var("data_in").unwrap();
            let weight = d.find_var("weight_in").unwrap();
            let acc = d.find_var("acc_out").unwrap();
            sim.step_cycle(&[(rst, BitVec::from_u64(1, 1))]);
            sim.step_cycle(&[
                (rst, BitVec::from_u64(0, 1)),
                (cfg_we, BitVec::from_u64(1, 1)),
                (cfg_addr, BitVec::from_u64(0, 4)),
                (cfg_data, BitVec::from_u64(shift, 32)),
            ]);
            for _ in 0..6 {
                sim.step_cycle(&[
                    (rst, BitVec::from_u64(0, 1)),
                    (cfg_we, BitVec::from_u64(0, 1)),
                    (start, BitVec::from_u64(1, 1)),
                    (data, BitVec::from_u64(0x0004_0004_0004_0004, 64)),
                    (weight, BitVec::from_u64(0x0004_0004_0004_0004, 64)),
                ]);
            }
            sim.peek(acc).unwrap().to_u64()
        };
        assert_ne!(run(0), run(4), "activation shift must affect outputs");
    }

    #[test]
    fn pe_count_matches_config() {
        let cfg = NvdlaConfig {
            rows: 3,
            cols: 2,
            cores: 2,
        };
        let src = nvdla_source(&cfg);
        // The PE grid lives in `nvdla_core`, which is instantiated once per
        // core — so the *source* holds rows*cols instances, while the
        // *elaborated* design holds rows*cols*cores of them.
        let n = src.matches("nvdla_pe pe_").count();
        assert_eq!(n, cfg.rows * cfg.cols);
        let d = rtlir::elaborate(&src, "nvdla_top").unwrap();
        let elaborated_pes = d
            .vars
            .iter()
            .filter(|v| v.name.ends_with(".acc") && v.name.contains(".pe_"))
            .count();
        assert_eq!(elaborated_pes, cfg.pes());
    }
}
