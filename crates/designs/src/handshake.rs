//! Control-heavy handshake-ring benchmark: a ring of valid/ready
//! handshake cells whose state is almost entirely 1-bit signals.
//!
//! Each cell is a 3-state one-hot FSM (idle → busy → done) holding one
//! data bit and a running parity; cells are chained into a ring with a
//! stimulus-driven injector at the head and a stall/drain throttle at
//! the tail. Every control and data signal in the ring is exactly one
//! bit wide and the next-state logic is pure gates and muxes, so the
//! whole ring lands in the bit-transposed execution domain where one
//! machine word carries 64 stimuli. The single deliberate exception is
//! an 8-bit beat counter observing the head handshake: it stays in the
//! width-bucketed word domain and reads a transposed 1-bit signal,
//! exercising the escape-read shim every cycle.
//!
//! Because the subset has no `generate` blocks, the generator unrolls
//! the ring into flat Verilog text, like the NVDLA generator.

use std::fmt::Write as _;

/// Shape of a generated handshake ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HandshakeConfig {
    /// Number of handshake cells in the ring.
    pub cells: usize,
}

impl Default for HandshakeConfig {
    /// The benchmark scale: 16 cells (~80 one-bit registers).
    fn default() -> Self {
        HandshakeConfig { cells: 16 }
    }
}

/// Verilog source of the handshake-ring benchmark at its default scale.
pub fn handshake_source() -> String {
    handshake_source_with(&HandshakeConfig::default())
}

/// Verilog source for an arbitrary ring size (min 2 cells).
pub fn handshake_source_with(cfg: &HandshakeConfig) -> String {
    let n = cfg.cells.max(2);
    let mut v = String::new();

    // ------------------------------------------------------------ cell
    // One-hot FSM per cell: each state is its own 1-bit register, so
    // every store in the cell is width 1 and the next-state logic is
    // and/or/not/xor — the transposable cone the bitplane layout wants.
    v.push_str(
        r#"
// ------------------------------------------------------------- hs_cell
module hs_cell(
  input clk,
  input rst,
  input in_valid,
  input din,
  input cfg,
  input out_ready,
  output in_ready,
  output out_valid,
  output dout
);
  reg s_idle, s_busy, s_done;
  reg data, parity;
  wire take = in_valid & s_idle;
  wire emit = s_done & out_ready;
  always @(posedge clk) begin
    if (rst) begin
      s_idle <= 1'b1;
      s_busy <= 1'b0;
      s_done <= 1'b0;
      data <= 1'b0;
      parity <= 1'b0;
    end else begin
      s_idle <= (s_idle & ~in_valid) | emit;
      s_busy <= take;
      s_done <= s_busy | (s_done & ~out_ready);
      if (take) data <= din ^ cfg;
      if (s_busy) parity <= parity ^ data;
    end
  end
  assign in_ready = s_idle;
  assign out_valid = s_done;
  assign dout = data ^ (cfg & parity);
endmodule
"#,
    );

    // ------------------------------------------------------------- top
    let _ = write!(
        v,
        r#"
// ------------------------------------------------------ handshake_ring
module handshake_ring(
  input clk,
  input rst,
  input inj_valid,
  input inj_bit,
  input stall,
  input drain,
  input cfg0,
  input cfg1,
  input cfg2,
  output ring_valid,
  output ring_bit,
  output head_ready,
  output activity,
  output tap,
  output [7:0] beats
);
"#
    );
    for i in 0..n {
        let _ = writeln!(v, "  wire v{i}, r{i}, d{i};");
    }
    v.push_str(
        r#"
  // Ring closure: the injector merges fresh stimulus beats with the
  // recirculating tail beat; a stalled tail neither emits nor blocks
  // injection.
"#,
    );
    let tail = n - 1;
    let _ = writeln!(v, "  wire head_valid = inj_valid | (v{tail} & ~stall);");
    let _ = writeln!(v, "  wire head_bit = inj_valid ? inj_bit : d{tail};");
    let _ = writeln!(v, "  wire tail_ready = (r0 & ~stall) | drain;");
    v.push('\n');
    for i in 0..n {
        let cfg_pin = format!("cfg{}", i % 3);
        let (iv, ib) = if i == 0 {
            ("head_valid".to_string(), "head_bit".to_string())
        } else {
            (format!("v{}", i - 1), format!("d{}", i - 1))
        };
        let ordy = if i == tail {
            "tail_ready".to_string()
        } else {
            format!("r{}", i + 1)
        };
        let _ = writeln!(
            v,
            "  hs_cell cell{i} (.clk(clk), .rst(rst), .in_valid({iv}), .din({ib}), \
             .cfg({cfg_pin}), .out_ready({ordy}), .in_ready(r{i}), .out_valid(v{i}), \
             .dout(d{i}));"
        );
    }

    // Activity tree: xor of every cell's valid, built as a linear chain
    // of 1-bit wires (still pure bit-domain logic).
    v.push('\n');
    let _ = writeln!(v, "  wire act0 = v0;");
    for i in 1..n {
        let _ = writeln!(v, "  wire act{i} = act{} ^ v{i};", i - 1);
    }

    // The one word-domain island: an 8-bit beat counter driven by the
    // 1-bit head handshake. Its adder is not bit-transposable, so the
    // counter stays bucketed and reads `head_take` through the
    // escape-read shim.
    let _ = write!(
        v,
        r#"
  wire head_take = head_valid & r0;
  reg [7:0] beat_q;
  always @(posedge clk) begin
    if (rst) beat_q <= 8'd0;
    else if (head_take) beat_q <= beat_q + 8'd1;
  end

  assign ring_valid = v{tail};
  assign ring_bit = d{tail};
  assign head_ready = r0;
  assign activity = act{tail};
  assign tap = d{mid};
  assign beats = beat_q;
endmodule
"#,
        mid = n / 2
    );
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_ring_size() {
        let src = handshake_source_with(&HandshakeConfig { cells: 5 });
        for i in 0..5 {
            assert!(src.contains(&format!("hs_cell cell{i} ")));
        }
        assert!(!src.contains("hs_cell cell5 "));
    }

    #[test]
    fn ring_is_mostly_one_bit_state() {
        let d = crate::Benchmark::Handshake.elaborate().unwrap();
        let one_bit = d.vars.iter().filter(|v| v.width == 1).count();
        assert!(
            one_bit * 10 >= d.vars.len() * 8,
            "expected >=80% 1-bit vars, got {one_bit}/{}",
            d.vars.len()
        );
    }
}
