//! A 3-stage pipelined RV-style core with forwarding, a 2-bit branch
//! predictor and a 2-stage multiplier — analogous to the VexRiscv
//! ("Spinal") benchmark used in the paper.

/// Verilog source of the Spinal benchmark.
pub fn spinal_source() -> String {
    SPINAL.to_string()
}

const SPINAL: &str = r#"
// ---------------------------------------------------------------- regfile
module spinal_regfile(
  input clk,
  input we,
  input [4:0] ra1,
  input [4:0] ra2,
  input [4:0] wa,
  input [31:0] wd,
  output [31:0] rd1,
  output [31:0] rd2
);
  reg [31:0] rf [0:31];
  assign rd1 = (ra1 == 5'd0) ? 32'd0 : rf[ra1];
  assign rd2 = (ra2 == 5'd0) ? 32'd0 : rf[ra2];
  always @(posedge clk) begin
    if (we && (wa != 5'd0)) rf[wa] <= wd;
  end
endmodule

// -------------------------------------------------------------------- alu
module spinal_alu(
  input [31:0] a,
  input [31:0] b,
  input [4:0] op,
  output reg [31:0] y
);
  wire [31:0] sum  = a + b;
  wire [31:0] diff = a - b;
  wire slt  = (a[31] == b[31]) ? diff[31] : a[31];
  wire sltu = a < b;
  wire [31:0] min_u = sltu ? a : b;
  wire [31:0] max_u = sltu ? b : a;
  always @(*) begin
    y = 32'd0;
    case (op)
      5'd0:  y = sum;
      5'd1:  y = diff;
      5'd2:  y = a & b;
      5'd3:  y = a | b;
      5'd4:  y = a ^ b;
      5'd5:  y = a << b[4:0];
      5'd6:  y = a >> b[4:0];
      5'd7:  y = a >>> b[4:0];
      5'd8:  y = {31'd0, slt};
      5'd9:  y = {31'd0, sltu};
      5'd10: y = min_u;
      5'd11: y = max_u;
      5'd12: y = ~(a | b);
      5'd13: y = b;
      default: y = sum;
    endcase
  end
endmodule

// ---------------------------------------------------- two-stage multiplier
module spinal_mdu(
  input clk,
  input [31:0] a,
  input [31:0] b,
  input start,
  output [31:0] p_lo,
  output valid
);
  // Stage 1 registers the operands, stage 2 registers the product:
  // a classic retimed multiplier.
  reg [31:0] ra;
  reg [31:0] rb;
  reg v1;
  reg [31:0] prod;
  reg v2;
  always @(posedge clk) begin
    ra <= a;
    rb <= b;
    v1 <= start;
  end
  always @(posedge clk) begin
    prod <= ra * rb;
    v2 <= v1;
  end
  assign p_lo = prod;
  assign valid = v2;
endmodule

// ------------------------------------------------ 2-bit branch predictor
module spinal_bpred(
  input clk,
  input [5:0] q_idx,
  input upd_en,
  input [5:0] upd_idx,
  input upd_taken,
  output predict
);
  reg [1:0] table2 [0:63];
  wire [1:0] q = table2[q_idx];
  assign predict = q[1];
  wire [1:0] cur = table2[upd_idx];
  reg [1:0] nxt;
  always @(*) begin
    nxt = cur;
    if (upd_taken) begin
      if (cur != 2'd3) nxt = cur + 2'd1;
    end
    else begin
      if (cur != 2'd0) nxt = cur - 2'd1;
    end
  end
  always @(posedge clk) begin
    if (upd_en) table2[upd_idx] <= nxt;
  end
endmodule

// ---------------------------------------------------------------- decoder
module spinal_decoder(
  input [31:0] instr,
  output [6:0] opcode,
  output [4:0] rd,
  output [2:0] funct3,
  output [4:0] rs1,
  output [4:0] rs2,
  output [6:0] funct7,
  output [31:0] imm_i,
  output [31:0] imm_b,
  output [31:0] imm_u
);
  assign opcode = instr[6:0];
  assign rd     = instr[11:7];
  assign funct3 = instr[14:12];
  assign rs1    = instr[19:15];
  assign rs2    = instr[24:20];
  assign funct7 = instr[31:25];
  assign imm_i  = {{20{instr[31]}}, instr[31:20]};
  assign imm_b  = {{19{instr[31]}}, instr[31], instr[7], instr[30:25], instr[11:8], 1'b0};
  assign imm_u  = {instr[31:12], 12'd0};
endmodule

// ------------------------------------------------------------------- core
module spinal_cpu(
  input clk,
  input rst,
  input [31:0] instr,
  input [31:0] io_in,
  output [31:0] pc_out,
  output [31:0] wb_out,
  output [31:0] mul_out,
  output [31:0] perf_out
);
  // ---------------- stage F: fetch bookkeeping
  reg [31:0] pc;
  reg [31:0] d_pc;
  reg [31:0] d_instr;
  reg d_valid;

  // ---------------- stage E: decode + execute
  wire [6:0] opcode;
  wire [4:0] rd;
  wire [2:0] funct3;
  wire [4:0] rs1;
  wire [4:0] rs2;
  wire [6:0] funct7;
  wire [31:0] imm_i;
  wire [31:0] imm_b;
  wire [31:0] imm_u;
  spinal_decoder dec (
    .instr(d_instr), .opcode(opcode), .rd(rd), .funct3(funct3),
    .rs1(rs1), .rs2(rs2), .funct7(funct7),
    .imm_i(imm_i), .imm_b(imm_b), .imm_u(imm_u)
  );

  // Writeback-stage registers (declared early for forwarding).
  reg [31:0] w_data;
  reg [4:0] w_rd;
  reg w_we;

  wire [31:0] rf_rd1;
  wire [31:0] rf_rd2;
  spinal_regfile rf (
    .clk(clk), .we(w_we), .ra1(rs1), .ra2(rs2), .wa(w_rd), .wd(w_data),
    .rd1(rf_rd1), .rd2(rf_rd2)
  );

  // Forwarding network: writeback result bypasses the register file.
  wire fwd1 = w_we && (w_rd != 5'd0) && (w_rd == rs1);
  wire fwd2 = w_we && (w_rd != 5'd0) && (w_rd == rs2);
  wire [31:0] op1 = fwd1 ? w_data : rf_rd1;
  wire [31:0] op2 = fwd2 ? w_data : rf_rd2;

  // Control.
  reg [4:0] alu_op;
  reg alu_b_imm;
  reg e_we;
  reg is_branch;
  reg is_mul;
  reg use_io;
  always @(*) begin
    alu_op = 5'd0;
    alu_b_imm = 1'b0;
    e_we = 1'b0;
    is_branch = 1'b0;
    is_mul = 1'b0;
    use_io = 1'b0;
    case (opcode)
      7'b0110011: begin
        e_we = 1'b1;
        is_mul = funct7[0];
        case (funct3)
          3'b000: alu_op = funct7[5] ? 5'd1 : 5'd0;
          3'b001: alu_op = 5'd5;
          3'b010: alu_op = 5'd8;
          3'b011: alu_op = 5'd9;
          3'b100: alu_op = 5'd4;
          3'b101: alu_op = funct7[5] ? 5'd7 : 5'd6;
          3'b110: alu_op = 5'd3;
          3'b111: alu_op = 5'd2;
          default: alu_op = 5'd0;
        endcase
      end
      7'b0010011: begin
        e_we = 1'b1;
        alu_b_imm = 1'b1;
        case (funct3)
          3'b000: alu_op = 5'd0;
          3'b001: alu_op = 5'd5;
          3'b010: alu_op = 5'd8;
          3'b011: alu_op = 5'd9;
          3'b100: alu_op = 5'd4;
          3'b101: alu_op = funct7[5] ? 5'd7 : 5'd6;
          3'b110: alu_op = 5'd3;
          3'b111: alu_op = 5'd2;
          default: alu_op = 5'd0;
        endcase
      end
      7'b1100011: is_branch = 1'b1;
      7'b0110111: begin e_we = 1'b1; alu_op = 5'd13; alu_b_imm = 1'b1; end
      7'b0000011: begin e_we = 1'b1; use_io = 1'b1; end
      default: e_we = 1'b0;
    endcase
  end

  wire [31:0] alu_b = alu_b_imm ? ((opcode == 7'b0110111) ? imm_u : imm_i) : op2;
  wire [31:0] alu_y;
  spinal_alu the_alu (.a(op1), .b(alu_b), .op(alu_op), .y(alu_y));

  // Branch resolution + prediction.
  wire br_eq = op1 == op2;
  wire [31:0] br_diff = op1 - op2;
  wire br_lt = (op1[31] == op2[31]) ? br_diff[31] : op1[31];
  reg br_taken;
  always @(*) begin
    br_taken = 1'b0;
    case (funct3)
      3'b000: br_taken = br_eq;
      3'b001: br_taken = !br_eq;
      3'b100: br_taken = br_lt;
      3'b101: br_taken = !br_lt;
      3'b110: br_taken = op1 < op2;
      3'b111: br_taken = !(op1 < op2);
      default: br_taken = 1'b0;
    endcase
  end

  wire predict;
  spinal_bpred bp (
    .clk(clk), .q_idx(pc[7:2]),
    .upd_en(is_branch && d_valid), .upd_idx(d_pc[7:2]),
    .upd_taken(br_taken), .predict(predict)
  );

  // Multiplier.
  wire [31:0] mdu_p;
  wire mdu_v;
  spinal_mdu mdu (.clk(clk), .a(op1), .b(op2), .start(is_mul && d_valid), .p_lo(mdu_p), .valid(mdu_v));

  // ---------------- stage W
  wire [31:0] e_result = use_io ? io_in : alu_y;
  always @(posedge clk) begin
    if (rst) begin
      w_data <= 32'd0;
      w_rd <= 5'd0;
      w_we <= 1'b0;
    end
    else begin
      w_data <= e_result;
      w_rd <= rd;
      w_we <= e_we && d_valid && !is_mul;
    end
  end

  // Multiplier writeback port shadow register (simplified: mul results
  // retire into a dedicated architectural register exposed at mul_out).
  reg [31:0] mul_acc;
  always @(posedge clk) begin
    if (rst) mul_acc <= 32'd0;
    else if (mdu_v) mul_acc <= mul_acc ^ mdu_p;
  end

  // PC + pipeline registers.
  wire [31:0] br_target = d_pc + imm_b;
  wire redirect = is_branch && d_valid && br_taken;
  always @(posedge clk) begin
    if (rst) begin
      pc <= 32'd0;
      d_pc <= 32'd0;
      d_instr <= 32'd0;
      d_valid <= 1'b0;
    end
    else begin
      pc <= redirect ? br_target : (pc + 32'd4);
      d_pc <= pc;
      d_instr <= instr;
      d_valid <= 1'b1;
    end
  end

  // Performance counters.
  reg [31:0] cycles;
  reg [31:0] retired;
  reg [31:0] bp_agree;
  always @(posedge clk) begin
    if (rst) begin
      cycles <= 32'd0;
      retired <= 32'd0;
      bp_agree <= 32'd0;
    end
    else begin
      cycles <= cycles + 32'd1;
      retired <= retired + {31'd0, d_valid};
      if (is_branch && d_valid && (predict == br_taken)) bp_agree <= bp_agree + 32'd1;
    end
  end

  assign pc_out = pc;
  assign wb_out = w_data;
  assign mul_out = mul_acc;
  assign perf_out = cycles ^ (retired << 8) ^ (bp_agree << 20);
endmodule
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use rtlir::{BitVec, Interp};

    fn itype(imm: u32, rs1: u32, funct3: u32, rd: u32) -> u64 {
        (((imm & 0xfff) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | 0b0010011) as u64
    }

    #[test]
    fn elaborates_and_runs() {
        let d = rtlir::elaborate(&spinal_source(), "spinal_cpu").unwrap();
        let mut sim = Interp::new(&d).unwrap();
        let instr = d.find_var("instr").unwrap();
        let rst = d.find_var("rst").unwrap();
        let pc = d.find_var("pc_out").unwrap();
        sim.step_cycle(&[
            (rst, BitVec::from_u64(1, 1)),
            (instr, BitVec::from_u64(0, 32)),
        ]);
        for _ in 0..10 {
            sim.step_cycle(&[
                (rst, BitVec::from_u64(0, 1)),
                (instr, BitVec::from_u64(itype(1, 0, 0, 1), 32)),
            ]);
        }
        assert_eq!(sim.peek(pc).unwrap().to_u64(), 40);
    }

    #[test]
    fn forwarding_bypasses_regfile() {
        let d = rtlir::elaborate(&spinal_source(), "spinal_cpu").unwrap();
        let mut sim = Interp::new(&d).unwrap();
        let instr = d.find_var("instr").unwrap();
        let rst = d.find_var("rst").unwrap();
        let wb = d.find_var("wb_out").unwrap();
        let z = |v: u64, w: u32| BitVec::from_u64(v, w);
        sim.step_cycle(&[(rst, z(1, 1)), (instr, z(0, 32))]);
        // addi x1, x0, 3 ; addi x1, x1, 4 (back-to-back dependency).
        // Without the forwarding network the second addi would read the
        // stale x1 (= 0) from the register file and produce 4, not 7.
        sim.step_cycle(&[(rst, z(0, 1)), (instr, z(itype(3, 0, 0, 1), 32))]);
        sim.step_cycle(&[(rst, z(0, 1)), (instr, z(itype(4, 1, 0, 1), 32))]);
        sim.step_cycle(&[(rst, z(0, 1)), (instr, z(0, 32))]);
        // The second addi's result is now sitting in the writeback register.
        assert_eq!(sim.peek(wb).unwrap().to_u64(), 7);
    }

    #[test]
    fn perf_counter_ticks() {
        let d = rtlir::elaborate(&spinal_source(), "spinal_cpu").unwrap();
        let mut sim = Interp::new(&d).unwrap();
        let instr = d.find_var("instr").unwrap();
        let rst = d.find_var("rst").unwrap();
        let perf = d.find_var("perf_out").unwrap();
        sim.step_cycle(&[
            (rst, BitVec::from_u64(1, 1)),
            (instr, BitVec::from_u64(0, 32)),
        ]);
        let p0 = sim.peek(perf).unwrap().to_u64();
        sim.step_cycle(&[
            (rst, BitVec::from_u64(0, 1)),
            (instr, BitVec::from_u64(0, 32)),
        ]);
        sim.step_cycle(&[
            (rst, BitVec::from_u64(0, 1)),
            (instr, BitVec::from_u64(0, 32)),
        ]);
        assert_ne!(sim.peek(perf).unwrap().to_u64(), p0);
    }
}
