//! Regenerate the committed `picorv32.json` fixture.
//!
//! Usage: `cargo run -p netlist --bin gen_fixtures` (writes into the
//! crate's `fixtures/` directory; pass a directory argument to write
//! elsewhere). The reproducibility test in `tests/netlist_import.rs`
//! asserts the committed file matches this generator byte-for-byte.

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| format!("{}/fixtures", env!("CARGO_MANIFEST_DIR")));
    let path = format!("{dir}/picorv32.json");
    let json = netlist::gen::picorv32_json();
    // Sanity-check before writing: the fixture must import and simulate.
    let (design, stats) = netlist::import_str(&json, "picorv32").expect("fixture must import");
    rtlir::RtlGraph::build(&design).expect("fixture must levelize");
    std::fs::write(&path, &json).expect("write fixture");
    println!(
        "wrote {path}: {} cells -> {} vars, {} processes",
        stats.cells, stats.vars, stats.processes
    );
}
