//! rtlflow-netlist: a Yosys-JSON synthesized-netlist frontend.
//!
//! Everything downstream of [`rtlir::Design`] — the interpreter, the SIMT
//! batch executors, fusion, partitioning, sharding, the server and the
//! cluster — is frontend-agnostic. This crate adds a second way in: instead
//! of the Verilog subset parser, a design can arrive as the JSON netlist
//! that `yosys -p "... ; write_json"` emits after synthesis. The flow is
//!
//! ```text
//!   design.json ── json::parse ──► yosys::Netlist ── import ──► rtlir::Design
//!                                                      │
//!                                      rewrite::rewrite (optional) ──► same
//!                                      Design, fewer processes
//! ```
//!
//! * [`json`] — a hardened, zero-dependency JSON reader (byte-offset
//!   errors, bounded nesting, order-preserving objects).
//! * [`yosys`] — the typed netlist schema (ports/cells/netnames, net-id
//!   bits, parameter decoding). Cells and netnames are sorted by name so
//!   emission order never changes [`rtlir::design_hash`].
//! * [`import`] — lowers the flattened gate/word-cell graph to `rtlir`
//!   processes: one comb process per cell output, one seq process per
//!   register, one merged write process per memory.
//! * [`rewrite`] — a pattern-rewrite pass library that undoes the damage
//!   bit-blasting does to a word-level simulator: constant folding and
//!   propagation, mux collapse, CSE, and recognition of full-adder ripple
//!   chains and XNOR/AND comparator trees into single wide ops. Reports
//!   [`rewrite::RewriteStats`].
//! * [`gen`] — the in-tree generator for the vendored `picorv32.json`
//!   fixture (the build environment has no yosys binary; see
//!   `fixtures/README.md`).
//!
//! [`load_design`] is the convenience entry point used by the CLI and the
//! cluster: it sniffs JSON vs Verilog and returns a plain
//! [`rtlir::Design`] either way.

pub mod error;
pub mod gen;
pub mod import;
pub mod json;
pub mod rewrite;
pub mod yosys;

pub use error::{NetlistError, Result};
pub use import::{import, import_str, ImportStats};
pub use rewrite::{rewrite, RewriteStats};

/// The handwritten golden fixture: an 8-bit wrapping counter whose
/// increment is a half-adder ripple chain (see `fixtures/README.md`).
pub const COUNTER_JSON: &str = include_str!("../fixtures/counter.json");

/// The generated fixture: a bit-blasted single-cycle RV32I-subset core
/// (`gen::picorv32_json()` output, committed for reproducibility).
pub const PICORV32_JSON: &str = include_str!("../fixtures/picorv32.json");

/// Load a design from source text that is either a Yosys JSON netlist or
/// the Verilog subset, dispatching on the first non-whitespace byte (a
/// JSON document starts with `{`; no Verilog module does).
///
/// `top` selects the module. Errors from the netlist path are carried as
/// [`rtlir::Error::Elab`] so callers keep a single error type.
pub fn load_design(source: &str, top: &str) -> rtlir::Result<rtlir::Design> {
    if source.trim_start().starts_with('{') {
        let (design, _) = import_str(source, top).map_err(|e| rtlir::Error::Elab(e.to_string()))?;
        Ok(design)
    } else {
        rtlir::elaborate(source, top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_design_dispatches_on_leading_brace() {
        let d = load_design(COUNTER_JSON, "counter").unwrap();
        assert_eq!(d.name, "counter");
        let v = load_design(
            "module t(input clk, input a, output reg q);\nalways @(posedge clk) q <= a;\nendmodule\n",
            "t",
        )
        .unwrap();
        assert_eq!(v.name, "t");
    }

    #[test]
    fn load_design_wraps_netlist_errors() {
        let e = load_design("{\"modules\": {}}", "nope").unwrap_err();
        assert!(e.to_string().contains("nope"), "{e}");
    }
}
