//! A minimal recursive-descent JSON reader.
//!
//! The workspace builds fully offline with zero external dependencies, so
//! the Yosys frontend brings its own reader instead of `serde_json`. It
//! supports exactly what `yosys -o design.json` emits — objects, arrays,
//! strings (with escapes), integers, floats, booleans and `null` — and is
//! hardened against hostile input: every malformed byte becomes a
//! [`NetlistError::Json`] with a byte offset, deep nesting is bounded (no
//! stack overflow on `[[[[...`), and object key order is preserved so the
//! importer sees ports and cells in document order.

use crate::error::{NetlistError, Result};

/// Maximum nesting depth accepted (Yosys netlists use ~6 levels).
const MAX_DEPTH: usize = 96;

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum JValue {
    Null,
    Bool(bool),
    /// Integral number that fits an `i64` (net ids, widths, parameters).
    Int(i64),
    /// Any other number (floats, out-of-range integers).
    Num(f64),
    Str(String),
    Arr(Vec<JValue>),
    Obj(Vec<(String, JValue)>),
}

impl JValue {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JValue> {
        match self {
            JValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, JValue)]> {
        match self {
            JValue::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JValue]> {
        match self {
            JValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JValue::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<JValue> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after top-level value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> NetlistError {
        NetlistError::json(self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{}`, found {}",
                b as char,
                match self.peek() {
                    Some(c) => format!("`{}`", c as char),
                    None => "end of input".to_string(),
                }
            )))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JValue> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JValue::Str(self.string()?)),
            Some(b't') => self.keyword("true", JValue::Bool(true)),
            Some(b'f') => self.keyword("false", JValue::Bool(false)),
            Some(b'n') => self.keyword("null", JValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, v: JValue) -> Result<JValue> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("invalid literal (expected `{word}`)")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<JValue> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JValue::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require \uDC00-\uDFFF next.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err("malformed number"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("malformed number (empty fraction)"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("malformed number (empty exponent)"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JValue::Num)
            .map_err(|_| NetlistError::json(start, "malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_document() {
        let v = parse(r#"{"a": [1, -2, 3.5], "b": {"c": "x\n"}, "d": true, "e": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0], JValue::Int(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], JValue::Int(-2));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\n"));
        assert_eq!(v.get("d"), Some(&JValue::Bool(true)));
        assert_eq!(v.get("e"), Some(&JValue::Null));
    }

    #[test]
    fn preserves_member_order() {
        let v = parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let e = parse("{} x").unwrap_err();
        assert!(e.to_string().contains("trailing"), "{e}");
    }

    #[test]
    fn rejects_deep_nesting_without_overflow() {
        let src = "[".repeat(100_000);
        let e = parse(&src).unwrap_err();
        assert!(e.to_string().contains("nesting"), "{e}");
    }

    #[test]
    fn every_prefix_of_a_document_errors_cleanly() {
        let src = r#"{"modules": {"top": {"ports": {"a": {"direction": "input", "bits": [2]}}}}}"#;
        for cut in 0..src.len() {
            if !src.is_char_boundary(cut) {
                continue;
            }
            assert!(parse(&src[..cut]).is_err(), "prefix {cut} should fail");
        }
        assert!(parse(src).is_ok());
    }
}
