//! Structured importer errors.
//!
//! The importer is fed files from outside the workspace (synthesis output,
//! fixtures shipped over the cluster wire), so it must never panic: every
//! malformed input maps to a [`NetlistError`] variant that names the
//! offending construct.

use std::fmt;

/// Result alias used throughout the `netlist` crate.
pub type Result<T> = std::result::Result<T, NetlistError>;

/// Why a Yosys JSON netlist could not be imported.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// The text is not well-formed JSON. `offset` is a byte offset into
    /// the input.
    Json { offset: usize, msg: String },
    /// Well-formed JSON that does not follow the Yosys netlist schema.
    Schema { context: String, msg: String },
    /// The requested top module is not present.
    NoModule { top: String, available: Vec<String> },
    /// A `$`-cell type the importer does not know.
    UnknownCell { cell: String, ty: String },
    /// A construct the importer knows about but cannot lower
    /// (hierarchical cells, signed operands, derived clocks, ...).
    Unsupported { cell: String, what: String },
    /// A connection's bit count contradicts the cell's width parameters.
    WidthMismatch {
        cell: String,
        port: String,
        want: u32,
        got: u32,
    },
    /// A net bit is read but nothing drives it.
    DanglingNet { context: String, bit: u64 },
    /// A net bit has two drivers.
    MultiDriver {
        bit: u64,
        first: String,
        second: String,
    },
}

impl NetlistError {
    pub fn json(offset: usize, msg: impl Into<String>) -> Self {
        NetlistError::Json {
            offset,
            msg: msg.into(),
        }
    }
    pub fn schema(context: impl Into<String>, msg: impl Into<String>) -> Self {
        NetlistError::Schema {
            context: context.into(),
            msg: msg.into(),
        }
    }
    pub fn unsupported(cell: impl Into<String>, what: impl Into<String>) -> Self {
        NetlistError::Unsupported {
            cell: cell.into(),
            what: what.into(),
        }
    }
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Json { offset, msg } => {
                write!(f, "json error at byte {offset}: {msg}")
            }
            NetlistError::Schema { context, msg } => {
                write!(f, "netlist schema error in {context}: {msg}")
            }
            NetlistError::NoModule { top, available } => write!(
                f,
                "module `{top}` not found (available: {})",
                available.join(", ")
            ),
            NetlistError::UnknownCell { cell, ty } => {
                write!(f, "cell `{cell}`: unknown cell type `{ty}`")
            }
            NetlistError::Unsupported { cell, what } => {
                write!(f, "cell `{cell}`: unsupported: {what}")
            }
            NetlistError::WidthMismatch {
                cell,
                port,
                want,
                got,
            } => write!(
                f,
                "cell `{cell}` port {port}: width mismatch (expected {want} bits, got {got})"
            ),
            NetlistError::DanglingNet { context, bit } => {
                write!(f, "{context}: net bit {bit} is read but has no driver")
            }
            NetlistError::MultiDriver { bit, first, second } => {
                write!(f, "net bit {bit} driven by both `{first}` and `{second}`")
            }
        }
    }
}

impl std::error::Error for NetlistError {}
