//! Pattern-rewrite passes over imported netlist designs.
//!
//! Synthesized netlists arrive as bit-blasted gate soup: a 32-bit adder is
//! ~150 one-bit cells, a comparator is an XNOR tree, and every gate becomes
//! one process (= one fuse candidate) downstream. These passes rebuild the
//! word-level structure the elaborator frontend would have produced, so
//! `cudasim::fuse` sees wide ops instead of gate chains:
//!
//! * constant folding + cross-process constant propagation,
//! * constant/structural mux collapse,
//! * fanout-aware common-subexpression sharing,
//! * ripple-carry adder recognition (half- and full-adder chains → one
//!   wide `+`),
//! * XNOR-tree comparator recognition (→ one wide `==`),
//! * dead-net elimination.
//!
//! Every pass is semantics-preserving on two-state values; the
//! `netlist-sim --verify` path cross-checks rewritten designs against the
//! unrewritten interpreter reference. Passes run to a bounded fixed point
//! and report per-pass counts in [`RewriteStats`].

use std::collections::{HashMap, HashSet};

use rtlir::ast::{BinOp, UnOp};
use rtlir::elab::{process_rw, Design, EExpr, Process, Stm, Target, Var};
use rtlir::{opt, ProcessKind, VarId};

/// Per-pass rewrite counters (reported alongside `FuseStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Processes before any pass ran.
    pub processes_in: usize,
    /// Processes after the final pass.
    pub processes_out: usize,
    /// Expression nodes replaced by constants (folding).
    pub consts_folded: usize,
    /// Cross-process constant substitutions.
    pub consts_propagated: usize,
    /// Alias definitions (`v := w`) substituted at their uses.
    pub copies_propagated: usize,
    /// Muxes removed (constant condition handled by folding; structural
    /// `c ? x : x` and inverted-condition forms here).
    pub muxes_collapsed: usize,
    /// Duplicate computations rerouted to one producer (CSE).
    pub subexprs_shared: usize,
    /// Ripple-carry chains fused into wide adders.
    pub adders_widened: usize,
    /// XNOR trees fused into wide equality compares.
    pub comparators_widened: usize,
    /// Dead processes removed.
    pub dead_removed: usize,
    /// Fixed-point rounds executed.
    pub rounds: usize,
}

impl RewriteStats {
    /// Node-count reduction in percent (the acceptance metric).
    pub fn reduction_pct(&self) -> f64 {
        if self.processes_in == 0 {
            return 0.0;
        }
        100.0 * (self.processes_in.saturating_sub(self.processes_out)) as f64
            / self.processes_in as f64
    }

    /// Human-readable summary table.
    pub fn table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "rewrite: {} -> {} processes ({:.1}% reduction, {} rounds)\n",
            self.processes_in,
            self.processes_out,
            self.reduction_pct(),
            self.rounds
        ));
        for (label, n) in [
            ("consts folded", self.consts_folded),
            ("consts propagated", self.consts_propagated),
            ("copies propagated", self.copies_propagated),
            ("muxes collapsed", self.muxes_collapsed),
            ("subexprs shared", self.subexprs_shared),
            ("adders widened", self.adders_widened),
            ("comparators widened", self.comparators_widened),
            ("dead removed", self.dead_removed),
        ] {
            s.push_str(&format!("  {label:<22} {n}\n"));
        }
        s
    }
}

const MAX_ROUNDS: usize = 8;

/// Run all passes to a bounded fixed point.
pub fn rewrite(design: &mut Design) -> RewriteStats {
    let mut st = RewriteStats {
        processes_in: design.processes.len(),
        ..RewriteStats::default()
    };
    for round in 0..MAX_ROUNDS {
        st.rounds = round + 1;
        let mut changed = 0usize;
        let folded = opt::fold_constants(design);
        st.consts_folded += folded;
        changed += folded;

        let n = const_prop(design);
        st.consts_propagated += n;
        changed += n;

        let n = copy_prop(design);
        st.copies_propagated += n;
        changed += n;

        let n = mux_collapse(design);
        st.muxes_collapsed += n;
        changed += n;

        let n = adder_recognition(design);
        st.adders_widened += n;
        changed += n;

        let n = eq_recognition(design);
        st.comparators_widened += n;
        changed += n;

        let n = cse(design);
        st.subexprs_shared += n;
        changed += n;

        refresh_rw(design);
        loop {
            let removed = opt::eliminate_dead(design);
            st.dead_removed += removed;
            changed += removed;
            if removed == 0 {
                break;
            }
        }
        if changed == 0 {
            break;
        }
    }
    st.processes_out = design.processes.len();
    st
}

/// Recompute every process's cached reads/writes after body edits.
fn refresh_rw(design: &mut Design) {
    for p in &mut design.processes {
        let (reads, writes) = process_rw(&p.body, p.kind);
        p.reads = reads;
        p.writes = writes;
    }
}

// ---------------------------------------------------------------------------
// Expression walking helpers
// ---------------------------------------------------------------------------

fn walk_expr(e: &mut EExpr, f: &mut impl FnMut(&mut EExpr)) {
    match e {
        EExpr::Const(_) | EExpr::Var(_) => {}
        EExpr::ReadMem { idx, .. } => walk_expr(idx, f),
        EExpr::Unary { arg, .. } | EExpr::Slice { arg, .. } | EExpr::Resize { arg, .. } => {
            walk_expr(arg, f)
        }
        EExpr::Binary { a, b, .. } => {
            walk_expr(a, f);
            walk_expr(b, f);
        }
        EExpr::Mux { cond, t, e, .. } => {
            walk_expr(cond, f);
            walk_expr(t, f);
            walk_expr(e, f);
        }
        EExpr::Concat { parts, .. } => parts.iter_mut().for_each(|p| walk_expr(p, f)),
        EExpr::IndexBit { arg, idx } => {
            walk_expr(arg, f);
            walk_expr(idx, f);
        }
    }
    f(e);
}

fn walk_body(body: &mut [Stm], f: &mut impl FnMut(&mut EExpr)) {
    for stm in body {
        match stm {
            Stm::Assign { target, rhs } => {
                match target {
                    Target::DynBit { idx, .. } => walk_expr(idx, f),
                    Target::Mem { idx, .. } => walk_expr(idx, f),
                    _ => {}
                }
                walk_expr(rhs, f);
            }
            Stm::If {
                cond,
                then_s,
                else_s,
            } => {
                walk_expr(cond, f);
                walk_body(then_s, f);
                walk_body(else_s, f);
            }
        }
    }
}

/// Strip no-op resizes so structurally-equal expressions key identically.
fn norm<'e>(design: &Design, e: &'e EExpr) -> &'e EExpr {
    match e {
        EExpr::Resize { arg, width } if design.expr_width(arg) == *width => norm(design, arg),
        _ => e,
    }
}

fn key(design: &Design, e: &EExpr) -> String {
    format!("{:?}", norm(design, e))
}

/// Processes that are the sole (combinational, whole-var) writer of their
/// target: `var -> process index`.
fn single_defs(design: &Design) -> HashMap<VarId, usize> {
    let mut writer_count: HashMap<VarId, usize> = HashMap::new();
    for p in &design.processes {
        for &w in &p.writes {
            *writer_count.entry(w).or_insert(0) += 1;
        }
    }
    let mut defs = HashMap::new();
    for (i, p) in design.processes.iter().enumerate() {
        if p.kind != ProcessKind::Comb {
            continue;
        }
        if let [Stm::Assign {
            target: Target::Var(v),
            ..
        }] = p.body.as_slice()
        {
            if writer_count.get(v) == Some(&1) {
                defs.insert(*v, i);
            }
        }
    }
    defs
}

fn def_rhs(design: &Design, pi: usize) -> &EExpr {
    match &design.processes[pi].body[0] {
        Stm::Assign { rhs, .. } => rhs,
        _ => unreachable!("single_defs only returns single-assign bodies"),
    }
}

/// Substitute whole-variable reads according to `subst` in every process.
fn substitute(design: &mut Design, subst: &HashMap<VarId, EExpr>, skip: &HashSet<usize>) -> usize {
    let mut count = 0;
    let mut processes = std::mem::take(&mut design.processes);
    for (i, p) in processes.iter_mut().enumerate() {
        if skip.contains(&i) {
            continue;
        }
        walk_body(&mut p.body, &mut |e| {
            if let EExpr::Var(v) = e {
                if let Some(rep) = subst.get(v) {
                    *e = rep.clone();
                    count += 1;
                }
            }
        });
        if count > 0 {
            let (reads, writes) = process_rw(&p.body, p.kind);
            p.reads = reads;
            p.writes = writes;
        }
    }
    design.processes = processes;
    count
}

// ---------------------------------------------------------------------------
// Passes
// ---------------------------------------------------------------------------

/// Propagate single-def constants into their readers.
fn const_prop(design: &mut Design) -> usize {
    let defs = single_defs(design);
    let mut subst: HashMap<VarId, EExpr> = HashMap::new();
    let mut def_procs: HashSet<usize> = HashSet::new();
    for (&v, &pi) in &defs {
        if let EExpr::Const(c) = def_rhs(design, pi) {
            subst.insert(v, EExpr::Const(c.clone()));
            def_procs.insert(pi);
        }
    }
    if subst.is_empty() {
        return 0;
    }
    substitute(design, &subst, &def_procs)
}

/// Copy propagation: a single-def alias `v := w` (netname forwarding; also
/// shows up mid-chain in bit-blasted netlists, e.g. `c1 = g0` at a ripple
/// adder's first carry) is substituted at every use, so pattern
/// recognition sees through it. Alias chains resolve transitively.
fn copy_prop(design: &mut Design) -> usize {
    let defs = single_defs(design);
    let mut alias: HashMap<VarId, VarId> = HashMap::new();
    let mut def_procs: HashSet<usize> = HashSet::new();
    for (&v, &pi) in &defs {
        if let EExpr::Var(w) = norm(design, def_rhs(design, pi)) {
            let (vv, ww) = (&design.vars[v], &design.vars[*w]);
            if *w != v && vv.width == ww.width && vv.depth == 0 && ww.depth == 0 {
                alias.insert(v, *w);
                def_procs.insert(pi);
            }
        }
    }
    if alias.is_empty() {
        return 0;
    }
    let mut subst: HashMap<VarId, EExpr> = HashMap::new();
    for &v in alias.keys() {
        let mut cur = alias[&v];
        let mut seen: HashSet<VarId> = HashSet::from([v]);
        while let Some(&next) = alias.get(&cur) {
            if !seen.insert(cur) {
                break;
            }
            cur = next;
        }
        subst.insert(v, EExpr::Var(cur));
    }
    substitute(design, &subst, &def_procs)
}

/// Structural mux simplifications (constant conditions are handled by
/// [`opt::fold_constants`]).
fn mux_collapse(design: &mut Design) -> usize {
    let mut count = 0;
    let mut processes = std::mem::take(&mut design.processes);
    let vars = std::mem::take(&mut design.vars);
    let ewidth = |e: &EExpr| -> u32 {
        match e {
            EExpr::Var(v) => vars[*v].width,
            EExpr::ReadMem { var, .. } => vars[*var].width,
            other => other.width(),
        }
    };
    for p in &mut processes {
        walk_body(&mut p.body, &mut |e| {
            let EExpr::Mux {
                cond,
                t,
                e: el,
                width,
            } = e
            else {
                return;
            };
            // c ? x : x  ->  x
            if format!("{t:?}") == format!("{el:?}") {
                *e = (**t).clone();
                count += 1;
                return;
            }
            // (!c) ? a : b  ->  c ? b : a  (1-bit inversion only)
            if let EExpr::Unary {
                op: UnOp::LNot | UnOp::Not,
                arg,
                width: 1,
            } = &**cond
            {
                if ewidth(arg) == 1 {
                    let inner = (**arg).clone();
                    let (nt, ne) = ((**el).clone(), (**t).clone());
                    *e = EExpr::Mux {
                        cond: Box::new(inner),
                        t: Box::new(nt),
                        e: Box::new(ne),
                        width: *width,
                    };
                    count += 1;
                    return;
                }
            }
            // c ? 1 : 0  ->  c  (all 1-bit)
            if *width == 1 && ewidth(cond) == 1 {
                if let (EExpr::Const(tv), EExpr::Const(ev)) = (&**t, &**el) {
                    if tv.any() && !ev.any() {
                        *e = (**cond).clone();
                        count += 1;
                    }
                }
            }
        });
    }
    design.processes = processes;
    design.vars = vars;
    if count > 0 {
        refresh_rw(design);
    }
    count
}

/// Fanout-aware common-subexpression sharing: duplicate single-def
/// computations are rerouted to one canonical producer; duplicates that
/// drive output ports keep a cheap forwarding assign, the rest die in DCE.
fn cse(design: &mut Design) -> usize {
    let defs = single_defs(design);
    // Group duplicates in process order for determinism.
    let mut groups: HashMap<String, Vec<(VarId, usize)>> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for (i, _) in design.processes.iter().enumerate() {
        let Some((&v, _)) = defs.iter().find(|(_, &pi)| pi == i) else {
            continue;
        };
        let rhs = def_rhs(design, i);
        let rhs_n = norm(design, rhs);
        if matches!(rhs_n, EExpr::Const(_) | EExpr::Var(_)) {
            continue; // aliases are const-prop/DCE territory
        }
        let k = format!("{rhs_n:?}");
        let entry = groups.entry(k.clone()).or_default();
        if entry.is_empty() {
            order.push(k);
        }
        entry.push((v, i));
    }

    let mut subst: HashMap<VarId, EExpr> = HashMap::new();
    let mut skip: HashSet<usize> = HashSet::new();
    let mut forwards: Vec<(usize, VarId, VarId)> = Vec::new();
    for k in &order {
        let group = &groups[k];
        if group.len() < 2 {
            continue;
        }
        let (canon, canon_pi) = group[0];
        skip.insert(canon_pi);
        for &(dup, dup_pi) in &group[1..] {
            subst.insert(dup, EExpr::Var(canon));
            skip.insert(dup_pi);
            if design.vars[dup].is_output || design.outputs.contains(&dup) {
                forwards.push((dup_pi, dup, canon));
            }
        }
    }
    if subst.is_empty() {
        return 0;
    }
    let shared = subst.len();
    substitute(design, &subst, &skip);
    for (pi, dup, canon) in forwards {
        design.processes[pi].body = vec![Stm::Assign {
            target: Target::Var(dup),
            rhs: EExpr::Var(canon),
        }];
        let (reads, writes) = process_rw(&design.processes[pi].body, ProcessKind::Comb);
        design.processes[pi].reads = reads;
        design.processes[pi].writes = writes;
    }
    shared
}

/// A single-def 1-bit binary gate.
struct Gate {
    op: BinOp,
    a: EExpr,
    b: EExpr,
    ka: String,
    kb: String,
}

fn gate_defs(design: &Design, defs: &HashMap<VarId, usize>) -> HashMap<VarId, Gate> {
    let mut gates = HashMap::new();
    for (&v, &pi) in defs {
        if design.vars[v].width != 1 {
            continue;
        }
        let rhs = norm(design, def_rhs(design, pi));
        if let EExpr::Binary { op, a, b, width: 1 } = rhs {
            let (a, b) = (norm(design, a).clone(), norm(design, b).clone());
            let (ka, kb) = (key(design, &a), key(design, &b));
            gates.insert(
                v,
                Gate {
                    op: *op,
                    a,
                    b,
                    ka,
                    kb,
                },
            );
        }
    }
    gates
}

fn pair_key(ka: &str, kb: &str) -> (String, String) {
    if ka <= kb {
        (ka.to_string(), kb.to_string())
    } else {
        (kb.to_string(), ka.to_string())
    }
}

/// Recognize ripple-carry adder chains (full-adder and half-adder/increment
/// forms) and fuse each into one wide `+`, rewriting the per-bit sum
/// variables into slices of it. The orphaned carry gates die in DCE.
fn adder_recognition(design: &mut Design) -> usize {
    let defs = single_defs(design);
    let gates = gate_defs(design, &defs);

    // Indexes: gates by (unordered operand pair, op) and by operand key.
    let mut by_pair: HashMap<((String, String), u8), Vec<VarId>> = HashMap::new();
    let mut xor_by_operand: HashMap<String, Vec<VarId>> = HashMap::new();
    // Deterministic order: visit gates by process order.
    let mut gate_order: Vec<VarId> = gates.keys().copied().collect();
    gate_order.sort_by_key(|v| defs[v]);
    for &v in &gate_order {
        let g = &gates[&v];
        let tag = match g.op {
            BinOp::Xor => 0u8,
            BinOp::And => 1,
            BinOp::Or => 2,
            _ => continue,
        };
        by_pair
            .entry((pair_key(&g.ka, &g.kb), tag))
            .or_default()
            .push(v);
        if g.op == BinOp::Xor {
            xor_by_operand.entry(g.ka.clone()).or_default().push(v);
            xor_by_operand.entry(g.kb.clone()).or_default().push(v);
        }
    }
    let find = |tag: u8, ka: &str, kb: &str| -> Option<VarId> {
        by_pair
            .get(&(pair_key(ka, kb), tag))
            .and_then(|v| v.first().copied())
    };
    let vkey = |v: VarId| format!("{:?}", EExpr::Var(v));

    let mut consumed: HashSet<VarId> = HashSet::new();
    let mut rewrites: Vec<(Vec<VarId>, EExpr)> = Vec::new();

    // --- Full-adder chains: p=x^y, g=x&y, s_i=p_i^c_i, t_i=p_i&c_i,
    // c_{i+1}=g_i|t_i; sum bit 0 is p_0, carry-in is g_0.
    for &p0 in &gate_order {
        let g0 = {
            let pg = &gates[&p0];
            if pg.op != BinOp::Xor {
                continue;
            }
            match find(1, &pg.ka, &pg.kb) {
                Some(g) => g,
                None => continue,
            }
        };
        if consumed.contains(&p0) || consumed.contains(&g0) || p0 == g0 {
            continue;
        }
        // A true bit-0 sum is not itself combined with a carry by another
        // XOR stage (that shape means p0 is a propagate term mid-chain).
        let is_mid = xor_by_operand
            .get(&vkey(p0))
            .map(|ss| {
                ss.iter().any(|&s| {
                    let sg = &gates[&s];
                    let other = if sg.ka == vkey(p0) { &sg.kb } else { &sg.ka };
                    gates.iter().any(|(&ov, og)| {
                        vkey(ov) == *other && matches!(og.op, BinOp::And | BinOp::Or)
                    })
                })
            })
            .unwrap_or(false);
        if is_mid {
            continue;
        }

        let (mut xs, mut ys, mut sums) = (Vec::new(), Vec::new(), Vec::new());
        {
            let pg = &gates[&p0];
            xs.push(pg.a.clone());
            ys.push(pg.b.clone());
        }
        sums.push(p0);
        let mut carry = g0;
        loop {
            // Find s = p ^ carry with p = x^y and g = x&y present.
            let ck = vkey(carry);
            let Some(cands) = xor_by_operand.get(&ck) else {
                break;
            };
            let mut stage: Option<(VarId, VarId, Option<VarId>)> = None;
            for &s in cands {
                if consumed.contains(&s) || sums.contains(&s) {
                    continue;
                }
                let sg = &gates[&s];
                let pk = if sg.ka == ck { &sg.kb } else { &sg.ka };
                let Some((&p, _)) = gates
                    .iter()
                    .find(|(&pv, pg)| vkey(pv) == *pk && pg.op == BinOp::Xor)
                else {
                    continue;
                };
                let pg = &gates[&p];
                let Some(g) = find(1, &pg.ka, &pg.kb) else {
                    continue;
                };
                if g == p {
                    continue;
                }
                // Next carry: c' = g | (p & c), if present.
                let next = find(1, &vkey(p), &ck).and_then(|t| find(2, &vkey(g), &vkey(t)));
                stage = Some((s, p, next));
                break;
            }
            let Some((s, p, next)) = stage else { break };
            let pg = &gates[&p];
            xs.push(pg.a.clone());
            ys.push(pg.b.clone());
            sums.push(s);
            match next {
                Some(c) if !sums.contains(&c) => carry = c,
                _ => break,
            }
        }
        if sums.len() >= 4 && sums.len() <= 64 {
            let n = sums.len() as u32;
            let wide = EExpr::Binary {
                op: BinOp::Add,
                a: Box::new(concat1(xs)),
                b: Box::new(concat1(ys)),
                width: n,
            };
            consumed.extend(sums.iter().copied());
            rewrites.push((sums, wide));
        }
    }

    // --- Half-adder (increment) chains: s_i = x_i ^ c_i, g_i = x_i & c_i,
    // c_{i+1} = g_i; carry-in c_0 is an arbitrary 1-bit term.
    // Stage candidates: (pair) -> (sum, carry-out).
    struct HaStage {
        s: VarId,
        g: Option<VarId>,
        a: EExpr,
        b: EExpr,
    }
    let mut stages: Vec<HaStage> = Vec::new();
    for &s in &gate_order {
        let sg = &gates[&s];
        if sg.op != BinOp::Xor || consumed.contains(&s) {
            continue;
        }
        let g = find(1, &sg.ka, &sg.kb).filter(|&g| g != s && !consumed.contains(&g));
        stages.push(HaStage {
            s,
            g,
            a: sg.a.clone(),
            b: sg.b.clone(),
        });
    }
    // Link: stage u -> stage w when one of w's operands is u's carry-out.
    let carry_of: HashMap<String, usize> = stages
        .iter()
        .enumerate()
        .filter_map(|(i, st)| st.g.map(|g| (vkey(g), i)))
        .collect();
    let mut has_pred = vec![false; stages.len()];
    for (i, st) in stages.iter().enumerate() {
        for k in [format!("{:?}", st.a), format!("{:?}", st.b)] {
            if let Some(&src) = carry_of.get(&k) {
                if src != i {
                    has_pred[i] = true;
                }
            }
        }
    }
    for start in 0..stages.len() {
        if has_pred[start] || consumed.contains(&stages[start].s) {
            continue;
        }
        // Choose carry-in: prefer a constant operand; else operand b.
        let (mut xs, mut sums) = (Vec::new(), Vec::new());
        let st0 = &stages[start];
        let (x0, c0) = if matches!(st0.a, EExpr::Const(_)) {
            (st0.b.clone(), st0.a.clone())
        } else {
            (st0.a.clone(), st0.b.clone())
        };
        xs.push(x0);
        sums.push(st0.s);
        let mut cur = start;
        while let Some(g) = stages[cur].g {
            let gk = vkey(g);
            // successor: stage whose one operand is Var(g)
            let Some(next) = stages.iter().position(|st| {
                !sums.contains(&st.s)
                    && !consumed.contains(&st.s)
                    && (format!("{:?}", st.a) == gk || format!("{:?}", st.b) == gk)
            }) else {
                break;
            };
            let stn = &stages[next];
            let x = if format!("{:?}", stn.a) == gk {
                stn.b.clone()
            } else {
                stn.a.clone()
            };
            xs.push(x);
            sums.push(stn.s);
            cur = next;
        }
        if sums.len() >= 4 && sums.len() <= 64 {
            let n = sums.len() as u32;
            let wide = EExpr::Binary {
                op: BinOp::Add,
                a: Box::new(concat1(xs)),
                b: Box::new(EExpr::Resize {
                    arg: Box::new(c0),
                    width: n,
                }),
                width: n,
            };
            consumed.extend(sums.iter().copied());
            rewrites.push((sums, wide));
        }
    }

    apply_slice_rewrites(design, &defs, rewrites, "add")
}

/// 1-bit expressions -> Concat (LSB-first input, MSB-first storage).
fn concat1(mut bits: Vec<EExpr>) -> EExpr {
    let n = bits.len() as u32;
    if n == 1 {
        return bits.pop().unwrap();
    }
    bits.reverse();
    EExpr::Concat {
        parts: bits,
        width: n,
    }
}

/// Materialize each (sum bits, wide expr) rewrite: a fresh variable holds
/// the wide value; each per-bit sum def becomes a slice of it.
fn apply_slice_rewrites(
    design: &mut Design,
    defs: &HashMap<VarId, usize>,
    rewrites: Vec<(Vec<VarId>, EExpr)>,
    tag: &str,
) -> usize {
    let count = rewrites.len();
    for (k, (sums, wide)) in rewrites.into_iter().enumerate() {
        let n = sums.len() as u32;
        let name = unique_name(design, &format!("rw.{tag}{k}"));
        design.vars.push(Var {
            name: name.clone(),
            width: n,
            depth: 0,
            is_state: false,
            is_input: false,
            is_output: false,
        });
        let wv = design.vars.len() - 1;
        let body = vec![Stm::Assign {
            target: Target::Var(wv),
            rhs: wide,
        }];
        let (reads, writes) = process_rw(&body, ProcessKind::Comb);
        design.processes.push(Process {
            kind: ProcessKind::Comb,
            name,
            body,
            reads,
            writes,
            line: 0,
        });
        for (i, s) in sums.iter().enumerate() {
            let pi = defs[s];
            design.processes[pi].body = vec![Stm::Assign {
                target: Target::Var(*s),
                rhs: EExpr::Slice {
                    arg: Box::new(EExpr::Var(wv)),
                    lsb: i as u32,
                    width: 1,
                },
            }];
            let (reads, writes) = process_rw(&design.processes[pi].body, ProcessKind::Comb);
            design.processes[pi].reads = reads;
            design.processes[pi].writes = writes;
        }
    }
    count
}

fn unique_name(design: &Design, base: &str) -> String {
    if !design.vars.iter().any(|v| v.name == base) {
        return base.to_string();
    }
    for k in 2.. {
        let cand = format!("{base}#{k}");
        if !design.vars.iter().any(|v| v.name == cand) {
            return cand;
        }
    }
    unreachable!()
}

/// Recognize AND trees over per-bit XNORs and fuse each into one wide `==`.
fn eq_recognition(design: &mut Design) -> usize {
    let defs = single_defs(design);
    let gates = gate_defs(design, &defs);

    // XNOR leaves: v = a ~^ b (or !(a ^ b)).
    let mut leaves: HashMap<VarId, (EExpr, EExpr)> = HashMap::new();
    for (&v, &pi) in &defs {
        if design.vars[v].width != 1 {
            continue;
        }
        match norm(design, def_rhs(design, pi)) {
            EExpr::Binary {
                op: BinOp::Xnor,
                a,
                b,
                width: 1,
            } => {
                leaves.insert(v, ((**a).clone(), (**b).clone()));
            }
            EExpr::Unary {
                op: UnOp::Not | UnOp::LNot,
                arg,
                width: 1,
            } => {
                if let EExpr::Binary {
                    op: BinOp::Xor,
                    a,
                    b,
                    width: 1,
                } = norm(design, arg)
                {
                    leaves.insert(v, ((**a).clone(), (**b).clone()));
                }
            }
            _ => {}
        }
    }

    // AND nodes over 1-bit vars.
    let and_vars: HashSet<VarId> = gates
        .iter()
        .filter(|(_, g)| g.op == BinOp::And)
        .map(|(&v, _)| v)
        .collect();
    // Roots: AND nodes not consumed by another AND node.
    let mut non_root: HashSet<VarId> = HashSet::new();
    for &v in &and_vars {
        let g = &gates[&v];
        for side in [&g.a, &g.b] {
            if let EExpr::Var(o) = side {
                if and_vars.contains(o) {
                    non_root.insert(*o);
                }
            }
        }
    }
    let mut roots: Vec<VarId> = and_vars.difference(&non_root).copied().collect();
    roots.sort_by_key(|v| defs[v]);

    let mut count = 0;
    for root in roots {
        // Expand the tree; all leaves must be XNOR pairs.
        let mut stack = vec![root];
        let mut pairs: Vec<(EExpr, EExpr)> = Vec::new();
        let mut seen: HashSet<VarId> = HashSet::new();
        let mut ok = true;
        while let Some(v) = stack.pop() {
            if !seen.insert(v) {
                ok = false;
                break;
            }
            let g = &gates[&v];
            for side in [g.a.clone(), g.b.clone()] {
                match side {
                    EExpr::Var(o) if and_vars.contains(&o) => stack.push(o),
                    EExpr::Var(o) if leaves.contains_key(&o) => {
                        let (a, b) = leaves[&o].clone();
                        pairs.push((a, b));
                    }
                    _ => {
                        ok = false;
                    }
                }
            }
            if !ok {
                break;
            }
        }
        if !ok || pairs.len() < 4 || pairs.len() > 64 {
            continue;
        }
        let (avec, bvec): (Vec<EExpr>, Vec<EExpr>) = pairs.into_iter().unzip();
        let pi = defs[&root];
        design.processes[pi].body = vec![Stm::Assign {
            target: Target::Var(root),
            rhs: EExpr::Binary {
                op: BinOp::Eq,
                a: Box::new(concat1(avec)),
                b: Box::new(concat1(bvec)),
                width: 1,
            },
        }];
        let (reads, writes) = process_rw(&design.processes[pi].body, ProcessKind::Comb);
        design.processes[pi].reads = reads;
        design.processes[pi].writes = writes;
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtlir::interp;
    use rtlir::BitVec;

    /// Equal outputs over random stimulus before/after rewrite.
    fn check_equiv(src: &str) {
        let d_ref = rtlir::elaborate(src, "top").unwrap();
        let mut d_rw = rtlir::elaborate(src, "top").unwrap();
        let st = rewrite(&mut d_rw);
        assert!(st.processes_out <= st.processes_in);
        let drive = |d: &Design| {
            let ins: Vec<(VarId, u32)> = d.inputs.iter().map(|&v| (v, d.vars[v].width)).collect();
            move |c: u64| {
                ins.iter()
                    .enumerate()
                    .map(|(k, &(v, w))| {
                        let h = (c + 1)
                            .wrapping_mul(0x9e3779b97f4a7c15)
                            .rotate_left(k as u32 * 7);
                        (v, BitVec::from_u64(h, w))
                    })
                    .collect::<Vec<_>>()
            }
        };
        let w1 = interp::run_cycles(&d_ref, 64, drive(&d_ref)).unwrap();
        let w2 = interp::run_cycles(&d_rw, 64, drive(&d_rw)).unwrap();
        assert_eq!(w1, w2, "rewrite changed behaviour");
    }

    #[test]
    fn const_prop_and_dce() {
        let src = "module top(input [7:0] a, output [7:0] y);
            wire [7:0] k;
            assign k = 8'd7;
            assign y = a & k;
          endmodule";
        let mut d = rtlir::elaborate(src, "top").unwrap();
        let st = rewrite(&mut d);
        assert!(st.consts_propagated >= 1, "{st:?}");
        assert!(st.dead_removed >= 1, "{st:?}");
        check_equiv(src);
    }

    #[test]
    fn mux_same_arms_collapses() {
        let src = "module top(input s, input [3:0] a, output [3:0] y);
            assign y = s ? a : a;
          endmodule";
        let mut d = rtlir::elaborate(src, "top").unwrap();
        let st = rewrite(&mut d);
        assert_eq!(st.muxes_collapsed, 1, "{st:?}");
        check_equiv(src);
    }

    #[test]
    fn cse_shares_duplicate_work() {
        let src = "module top(input [7:0] a, input [7:0] b, output [7:0] y, output [7:0] z);
            wire [7:0] p, q;
            assign p = a * b;
            assign q = a * b;
            assign y = p + 8'd1;
            assign z = q + 8'd2;
          endmodule";
        let mut d = rtlir::elaborate(src, "top").unwrap();
        let st = rewrite(&mut d);
        assert!(st.subexprs_shared >= 1, "{st:?}");
        check_equiv(src);
    }

    /// Declare `n` individual 1-bit wires `prefix0..prefix{n-1}` (matching
    /// the one-var-per-cell-output shape the importer produces).
    fn wires(prefix: &str, n: usize) -> String {
        let names: Vec<String> = (0..n).map(|i| format!("{prefix}{i}")).collect();
        format!(" wire {};\n", names.join(", "))
    }

    fn concat_of(prefix: &str, n: usize) -> String {
        let names: Vec<String> = (0..n).rev().map(|i| format!("{prefix}{i}")).collect();
        format!("{{{}}}", names.join(", "))
    }

    #[test]
    fn ha_ripple_chain_becomes_wide_add() {
        // 8-bit increment out of XOR/AND half adders, carry-in = cin.
        let mut src = String::from("module top(input [7:0] x, input cin, output [7:0] s);\n");
        src.push_str(&wires("s", 8));
        src.push_str(&wires("c", 8));
        src.push_str(" assign c0 = cin;\n assign s0 = x[0] ^ c0;\n assign c1 = x[0] & c0;\n");
        for i in 1..8 {
            src.push_str(&format!(" assign s{i} = x[{i}] ^ c{i};\n"));
            if i < 7 {
                src.push_str(&format!(" assign c{} = x[{i}] & c{i};\n", i + 1));
            }
        }
        src.push_str(&format!(" assign s = {};\nendmodule\n", concat_of("s", 8)));
        let mut d = rtlir::elaborate(&src, "top").unwrap();
        let st = rewrite(&mut d);
        assert!(st.adders_widened >= 1, "{st:?}");
        assert!(st.dead_removed >= 5, "{st:?}");
        check_equiv(&src);
    }

    #[test]
    fn fa_ripple_chain_becomes_wide_add() {
        // 8-bit full-adder ripple a+b (carry-in 0: s0=p0, c1=g0).
        let mut src = String::from("module top(input [7:0] a, input [7:0] b, output [7:0] s);\n");
        for pfx in ["p", "g", "s"] {
            src.push_str(&wires(pfx, 8));
        }
        src.push_str(" wire c1,c2,c3,c4,c5,c6,c7;\n wire t1,t2,t3,t4,t5,t6,t7;\n");
        for i in 0..8 {
            src.push_str(&format!(" assign p{i} = a[{i}] ^ b[{i}];\n"));
            src.push_str(&format!(" assign g{i} = a[{i}] & b[{i}];\n"));
        }
        src.push_str(" assign s0 = p0;\n assign c1 = g0;\n");
        for i in 1..8 {
            src.push_str(&format!(" assign s{i} = p{i} ^ c{i};\n"));
            src.push_str(&format!(" assign t{i} = p{i} & c{i};\n"));
            if i < 7 {
                src.push_str(&format!(" assign c{} = g{i} | t{i};\n", i + 1));
            }
        }
        src.push_str(&format!(" assign s = {};\nendmodule\n", concat_of("s", 8)));
        let mut d = rtlir::elaborate(&src, "top").unwrap();
        let st = rewrite(&mut d);
        assert!(st.adders_widened >= 1, "{st:?}");
        check_equiv(&src);
    }

    #[test]
    fn xnor_tree_becomes_wide_eq() {
        let mut src = String::from("module top(input [7:0] a, input [7:0] b, output eq);\n");
        src.push_str(&wires("xn", 8));
        src.push_str(&wires("t", 7));
        for i in 0..8 {
            src.push_str(&format!(" assign xn{i} = a[{i}] ~^ b[{i}];\n"));
        }
        src.push_str(" assign t0 = xn0 & xn1;\n");
        for i in 1..7 {
            src.push_str(&format!(" assign t{i} = t{} & xn{};\n", i - 1, i + 1));
        }
        src.push_str(" assign eq = t6;\nendmodule\n");
        let mut d = rtlir::elaborate(&src, "top").unwrap();
        let st = rewrite(&mut d);
        assert!(st.comparators_widened >= 1, "{st:?}");
        check_equiv(&src);
    }
}
