//! Typed view of a Yosys JSON netlist.
//!
//! `yosys -o out.json` (the `write_json` backend) emits one object with a
//! `modules` map; each module has `ports`, `cells` and `netnames`. A signal
//! is a list of *bits*, each either an integer net id or a constant bit
//! string (`"0"`, `"1"`, `"x"`, `"z"`). This module validates that shape
//! into plain structs; semantic lowering happens in [`crate::import`].
//!
//! Determinism: cells and netnames are sorted by name here, so two JSON
//! files that differ only in emission order produce identical imports (and
//! identical [`rtlir::design_hash`] keys — the serve/cluster warm-cache
//! contract).

use crate::error::{NetlistError, Result};
use crate::json::{self, JValue};

/// One bit of a signal: a net id or a constant. Two-state semantics: `x`
/// and `z` lower to constant 0, like the rest of the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SigBit {
    Net(u64),
    Const(bool),
}

/// A cell parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum PValue {
    Int(u64),
    /// Bit-string (`"00101"`) or free-form string (`MEMID`).
    Str(String),
}

impl PValue {
    /// Numeric value: integers directly, binary bit strings decoded
    /// (Yosys writes parameters wider than 32 bits as bit strings;
    /// `x`/`z` digits read as 0).
    pub fn to_u64(&self) -> Option<u64> {
        match self {
            PValue::Int(v) => Some(*v),
            PValue::Str(s) => {
                if s.is_empty() || s.len() > 64 {
                    return None;
                }
                let mut v = 0u64;
                for c in s.chars() {
                    let bit = match c {
                        '0' | 'x' | 'z' => 0,
                        '1' => 1,
                        _ => return None,
                    };
                    v = (v << 1) | bit;
                }
                Some(v)
            }
        }
    }
}

#[derive(Debug, Clone)]
pub struct YPort {
    pub name: String,
    pub output: bool,
    pub bits: Vec<SigBit>,
}

#[derive(Debug, Clone)]
pub struct YCell {
    pub name: String,
    pub ty: String,
    pub params: Vec<(String, PValue)>,
    /// Port connections in document order.
    pub conns: Vec<(String, Vec<SigBit>)>,
}

impl YCell {
    pub fn param(&self, name: &str) -> Option<&PValue> {
        self.params.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Numeric parameter with a default for absent keys; a present but
    /// non-numeric value is a schema error.
    pub fn param_u64(&self, name: &str, default: u64) -> Result<u64> {
        match self.param(name) {
            None => Ok(default),
            Some(v) => v.to_u64().ok_or_else(|| {
                NetlistError::schema(
                    format!("cell `{}`", self.name),
                    format!("parameter {name} is not numeric"),
                )
            }),
        }
    }

    pub fn conn(&self, port: &str) -> Option<&[SigBit]> {
        self.conns
            .iter()
            .find(|(k, _)| k == port)
            .map(|(_, v)| v.as_slice())
    }

    /// Required connection.
    pub fn conn_req(&self, port: &str) -> Result<&[SigBit]> {
        self.conn(port).ok_or_else(|| {
            NetlistError::schema(
                format!("cell `{}`", self.name),
                format!("missing connection {port}"),
            )
        })
    }
}

#[derive(Debug, Clone)]
pub struct YModule {
    pub name: String,
    /// Ports in document order (this fixes the stimulus lane order).
    pub ports: Vec<YPort>,
    /// Cells sorted by name.
    pub cells: Vec<YCell>,
    /// Net names sorted by name.
    pub netnames: Vec<(String, Vec<SigBit>)>,
}

#[derive(Debug, Clone)]
pub struct Netlist {
    pub modules: Vec<YModule>,
}

/// Parse JSON text into a validated [`Netlist`].
pub fn parse_netlist(src: &str) -> Result<Netlist> {
    let doc = json::parse(src)?;
    let modules_v = doc
        .get("modules")
        .ok_or_else(|| NetlistError::schema("document", "missing `modules` object"))?;
    let modules_obj = modules_v
        .as_obj()
        .ok_or_else(|| NetlistError::schema("document", "`modules` is not an object"))?;
    let mut modules = Vec::new();
    for (mname, mv) in modules_obj {
        modules.push(parse_module(mname, mv)?);
    }
    Ok(Netlist { modules })
}

fn parse_module(name: &str, v: &JValue) -> Result<YModule> {
    let ctx = || format!("module `{name}`");
    let obj = v
        .as_obj()
        .ok_or_else(|| NetlistError::schema(ctx(), "module is not an object"))?;
    let _ = obj;

    let mut ports = Vec::new();
    if let Some(pv) = v.get("ports") {
        let pobj = pv
            .as_obj()
            .ok_or_else(|| NetlistError::schema(ctx(), "`ports` is not an object"))?;
        for (pname, pval) in pobj {
            let pctx = || format!("module `{name}` port `{pname}`");
            let dir = pval
                .get("direction")
                .and_then(JValue::as_str)
                .ok_or_else(|| NetlistError::schema(pctx(), "missing `direction`"))?;
            let output = match dir {
                "input" => false,
                "output" => true,
                "inout" => {
                    return Err(NetlistError::unsupported(
                        pctx(),
                        "inout ports (two-state simulation has no tristates)",
                    ))
                }
                other => {
                    return Err(NetlistError::schema(
                        pctx(),
                        format!("bad direction `{other}`"),
                    ))
                }
            };
            let bits = parse_bits(pval.get("bits"), &pctx)?;
            if bits.is_empty() {
                return Err(NetlistError::schema(pctx(), "port has no bits"));
            }
            ports.push(YPort {
                name: pname.clone(),
                output,
                bits,
            });
        }
    }

    let mut cells = Vec::new();
    if let Some(cv) = v.get("cells") {
        let cobj = cv
            .as_obj()
            .ok_or_else(|| NetlistError::schema(ctx(), "`cells` is not an object"))?;
        for (cname, cval) in cobj {
            cells.push(parse_cell(name, cname, cval)?);
        }
    }
    cells.sort_by(|a, b| a.name.cmp(&b.name));

    let mut netnames: Vec<(String, Vec<SigBit>)> = Vec::new();
    if let Some(nv) = v.get("netnames") {
        let nobj = nv
            .as_obj()
            .ok_or_else(|| NetlistError::schema(ctx(), "`netnames` is not an object"))?;
        for (nname, nval) in nobj {
            let nctx = || format!("module `{name}` netname `{nname}`");
            let bits = parse_bits(nval.get("bits"), &nctx)?;
            netnames.push((nname.clone(), bits));
        }
    }
    netnames.sort_by(|a, b| a.0.cmp(&b.0));

    Ok(YModule {
        name: name.to_string(),
        ports,
        cells,
        netnames,
    })
}

fn parse_cell(module: &str, name: &str, v: &JValue) -> Result<YCell> {
    let ctx = || format!("module `{module}` cell `{name}`");
    let ty = v
        .get("type")
        .and_then(JValue::as_str)
        .ok_or_else(|| NetlistError::schema(ctx(), "missing `type`"))?
        .to_string();

    let mut params = Vec::new();
    if let Some(pv) = v.get("parameters") {
        let pobj = pv
            .as_obj()
            .ok_or_else(|| NetlistError::schema(ctx(), "`parameters` is not an object"))?;
        for (k, val) in pobj {
            let p = match val {
                JValue::Int(i) if *i >= 0 => PValue::Int(*i as u64),
                JValue::Int(i) => {
                    // Yosys encodes small negative parameters as 32-bit
                    // two's complement integers.
                    PValue::Int(*i as i32 as u32 as u64)
                }
                JValue::Str(s) => PValue::Str(s.clone()),
                _ => {
                    return Err(NetlistError::schema(
                        ctx(),
                        format!("parameter {k} is neither integer nor string"),
                    ))
                }
            };
            params.push((k.clone(), p));
        }
    }

    let mut conns = Vec::new();
    if let Some(cv) = v.get("connections") {
        let cobj = cv
            .as_obj()
            .ok_or_else(|| NetlistError::schema(ctx(), "`connections` is not an object"))?;
        for (port, bits_v) in cobj {
            let cctx = || format!("module `{module}` cell `{name}` port {port}");
            conns.push((port.clone(), parse_bits(Some(bits_v), &cctx)?));
        }
    }

    Ok(YCell {
        name: name.to_string(),
        ty,
        params,
        conns,
    })
}

fn parse_bits(v: Option<&JValue>, ctx: &dyn Fn() -> String) -> Result<Vec<SigBit>> {
    let arr = v
        .and_then(JValue::as_arr)
        .ok_or_else(|| NetlistError::schema(ctx(), "missing `bits` array"))?;
    let mut bits = Vec::with_capacity(arr.len());
    for b in arr {
        bits.push(match b {
            JValue::Int(i) if *i >= 2 => SigBit::Net(*i as u64),
            JValue::Int(i) => {
                return Err(NetlistError::schema(
                    ctx(),
                    format!("bad net id {i} (net ids start at 2)"),
                ))
            }
            JValue::Str(s) => match s.as_str() {
                "0" | "x" | "z" => SigBit::Const(false),
                "1" => SigBit::Const(true),
                other => {
                    return Err(NetlistError::schema(
                        ctx(),
                        format!("bad constant bit `{other}`"),
                    ))
                }
            },
            _ => return Err(NetlistError::schema(ctx(), "bit is neither id nor string")),
        });
    }
    Ok(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_sorts_cells() {
        let nl = parse_netlist(
            r#"{"modules": {"m": {
                "ports": {"a": {"direction": "input", "bits": [2, "1", "x"]}},
                "cells": {
                  "zz": {"type": "$not", "connections": {"A": [2], "Y": [3]}},
                  "aa": {"type": "$and", "parameters": {"Y_WIDTH": 1, "INIT": "0101"},
                         "connections": {"A": [2], "B": [3], "Y": [4]}}
                },
                "netnames": {"y": {"bits": [4]}}
            }}}"#,
        )
        .unwrap();
        let m = &nl.modules[0];
        assert_eq!(m.ports[0].bits[1], SigBit::Const(true));
        assert_eq!(m.ports[0].bits[2], SigBit::Const(false));
        assert_eq!(m.cells[0].name, "aa");
        assert_eq!(m.cells[1].name, "zz");
        assert_eq!(m.cells[0].param_u64("Y_WIDTH", 7).unwrap(), 1);
        assert_eq!(m.cells[0].param("INIT").unwrap().to_u64(), Some(5));
        assert_eq!(m.cells[0].param_u64("MISSING", 7).unwrap(), 7);
    }

    #[test]
    fn inout_port_is_unsupported() {
        let e = parse_netlist(
            r#"{"modules": {"m": {"ports": {"p": {"direction": "inout", "bits": [2]}}}}}"#,
        )
        .unwrap_err();
        assert!(matches!(e, NetlistError::Unsupported { .. }), "{e}");
    }

    #[test]
    fn net_id_below_two_rejected() {
        let e = parse_netlist(
            r#"{"modules": {"m": {"ports": {"p": {"direction": "input", "bits": [1]}}}}}"#,
        )
        .unwrap_err();
        assert!(matches!(e, NetlistError::Schema { .. }), "{e}");
    }
}
