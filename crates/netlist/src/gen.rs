//! In-tree generator for the vendored `picorv32.json` fixture.
//!
//! The build environment is fully offline (no yosys binary, no network),
//! so the synthesized-netlist fixture is produced by this generator and
//! committed; `tests/` assert the committed file matches the generator
//! byte-for-byte, which is this repo's substitute for "re-run the yosys
//! command". The emitted JSON is format-compatible with
//! `yosys -p "read_verilog picorv32.v; synth; write_json"` output: the
//! same `modules/ports/cells/netnames` schema, net-id bits, constant bit
//! strings and `$`-cell library.
//!
//! The design itself is a single-cycle RV32I-subset core (`picorv32`
//! interface style: `instr` input port, so the RISC-V stimulus source
//! drives it with constrained instruction streams). Deliberately, the main
//! ALU adder and the branch comparator are emitted *bit-blasted* — a
//! 157-cell full-adder ripple chain and a 63-cell XNOR/AND tree — the way
//! gate-level synthesis leaves them, so the rewrite passes have real work
//! to do on a real-shaped design.

use std::fmt::Write as _;

/// One signal bit in the builder: a net id or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum B {
    N(u64),
    C0,
    C1,
}

struct Cell {
    name: String,
    ty: String,
    params: Vec<(String, String)>,
    conns: Vec<(String, Vec<B>)>,
}

/// Tiny Yosys-JSON emitter.
pub struct Builder {
    top: String,
    next_net: u64,
    ports: Vec<(String, bool, Vec<B>)>,
    cells: Vec<Cell>,
    netnames: Vec<(String, Vec<B>)>,
}

impl Builder {
    pub fn new(top: &str) -> Self {
        Builder {
            top: top.to_string(),
            next_net: 2, // yosys net ids start at 2
            ports: Vec::new(),
            cells: Vec::new(),
            netnames: Vec::new(),
        }
    }

    fn nets(&mut self, w: usize) -> Vec<B> {
        let start = self.next_net;
        self.next_net += w as u64;
        (start..start + w as u64).map(B::N).collect()
    }

    pub fn input(&mut self, name: &str, w: usize) -> Vec<B> {
        let bits = self.nets(w);
        self.ports.push((name.to_string(), false, bits.clone()));
        bits
    }

    pub fn output(&mut self, name: &str, bits: &[B]) {
        self.ports.push((name.to_string(), true, bits.to_vec()));
    }

    pub fn name_net(&mut self, name: &str, bits: &[B]) {
        self.netnames.push((name.to_string(), bits.to_vec()));
    }

    fn cell(
        &mut self,
        ty: &str,
        name: &str,
        params: Vec<(&str, String)>,
        conns: Vec<(&str, Vec<B>)>,
    ) {
        self.cells.push(Cell {
            name: name.to_string(),
            ty: ty.to_string(),
            params: params
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            conns: conns.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        });
    }

    /// Binary word cell; allocates and returns the Y nets.
    pub fn bin(&mut self, ty: &str, name: &str, a: &[B], b: &[B], yw: usize) -> Vec<B> {
        let y = self.nets(yw);
        self.cell(
            ty,
            name,
            vec![
                ("A_SIGNED", "0".into()),
                ("A_WIDTH", a.len().to_string()),
                ("B_SIGNED", "0".into()),
                ("B_WIDTH", b.len().to_string()),
                ("Y_WIDTH", yw.to_string()),
            ],
            vec![("A", a.to_vec()), ("B", b.to_vec()), ("Y", y.clone())],
        );
        y
    }

    pub fn unary(&mut self, ty: &str, name: &str, a: &[B], yw: usize) -> Vec<B> {
        let y = self.nets(yw);
        self.cell(
            ty,
            name,
            vec![
                ("A_SIGNED", "0".into()),
                ("A_WIDTH", a.len().to_string()),
                ("Y_WIDTH", yw.to_string()),
            ],
            vec![("A", a.to_vec()), ("Y", y.clone())],
        );
        y
    }

    /// `$mux`: Y = S ? B : A.
    pub fn mux(&mut self, name: &str, a: &[B], b: &[B], s: B, w: usize) -> Vec<B> {
        let y = self.nets(w);
        self.cell(
            "$mux",
            name,
            vec![("WIDTH", w.to_string())],
            vec![
                ("A", a.to_vec()),
                ("B", b.to_vec()),
                ("S", vec![s]),
                ("Y", y.clone()),
            ],
        );
        y
    }

    pub fn dff(&mut self, name: &str, clk: B, d: &[B]) -> Vec<B> {
        let q = self.nets(d.len());
        self.cell(
            "$dff",
            name,
            vec![("CLK_POLARITY", "1".into()), ("WIDTH", d.len().to_string())],
            vec![("CLK", vec![clk]), ("D", d.to_vec()), ("Q", q.clone())],
        );
        q
    }

    pub fn dffe(&mut self, name: &str, clk: B, en: B, d: &[B]) -> Vec<B> {
        let q = self.nets(d.len());
        self.cell(
            "$dffe",
            name,
            vec![
                ("CLK_POLARITY", "1".into()),
                ("EN_POLARITY", "1".into()),
                ("WIDTH", d.len().to_string()),
            ],
            vec![
                ("CLK", vec![clk]),
                ("EN", vec![en]),
                ("D", d.to_vec()),
                ("Q", q.clone()),
            ],
        );
        q
    }

    fn render_bits(out: &mut String, bits: &[B]) {
        out.push('[');
        for (i, b) in bits.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match b {
                B::N(n) => {
                    let _ = write!(out, "{n}");
                }
                B::C0 => out.push_str("\"0\""),
                B::C1 => out.push_str("\"1\""),
            }
        }
        out.push(']');
    }

    pub fn to_json(&self) -> String {
        let mut o = String::new();
        let _ = writeln!(o, "{{");
        let _ = writeln!(o, "  \"creator\": \"rtlflow gen_fixtures\",");
        let _ = writeln!(o, "  \"modules\": {{");
        let _ = writeln!(o, "    \"{}\": {{", self.top);
        let _ = writeln!(o, "      \"attributes\": {{ \"top\": 1 }},");
        // ports
        let _ = writeln!(o, "      \"ports\": {{");
        for (i, (name, output, bits)) in self.ports.iter().enumerate() {
            let dir = if *output { "output" } else { "input" };
            let _ = write!(
                o,
                "        \"{name}\": {{ \"direction\": \"{dir}\", \"bits\": "
            );
            Self::render_bits(&mut o, bits);
            let comma = if i + 1 < self.ports.len() { "," } else { "" };
            let _ = writeln!(o, " }}{comma}");
        }
        let _ = writeln!(o, "      }},");
        // cells
        let _ = writeln!(o, "      \"cells\": {{");
        for (ci, c) in self.cells.iter().enumerate() {
            let _ = writeln!(o, "        \"{}\": {{", c.name);
            let _ = writeln!(o, "          \"hide_name\": 0,");
            let _ = writeln!(o, "          \"type\": \"{}\",", c.ty);
            let _ = write!(o, "          \"parameters\": {{ ");
            for (i, (k, v)) in c.params.iter().enumerate() {
                if i > 0 {
                    let _ = write!(o, ", ");
                }
                let _ = write!(o, "\"{k}\": {v}");
            }
            let _ = writeln!(o, " }},");
            let _ = write!(o, "          \"connections\": {{ ");
            for (i, (k, v)) in c.conns.iter().enumerate() {
                if i > 0 {
                    let _ = write!(o, ", ");
                }
                let _ = write!(o, "\"{k}\": ");
                Self::render_bits(&mut o, v);
            }
            let _ = writeln!(o, " }}");
            let comma = if ci + 1 < self.cells.len() { "," } else { "" };
            let _ = writeln!(o, "        }}{comma}");
        }
        let _ = writeln!(o, "      }},");
        // netnames
        let _ = writeln!(o, "      \"netnames\": {{");
        for (i, (name, bits)) in self.netnames.iter().enumerate() {
            let _ = write!(o, "        \"{name}\": {{ \"hide_name\": 0, \"bits\": ");
            Self::render_bits(&mut o, bits);
            let comma = if i + 1 < self.netnames.len() { "," } else { "" };
            let _ = writeln!(o, " }}{comma}");
        }
        let _ = writeln!(o, "      }}");
        let _ = writeln!(o, "    }}");
        let _ = writeln!(o, "  }}");
        let _ = writeln!(o, "}}");
        o
    }
}

fn const_bits(val: u64, w: usize) -> Vec<B> {
    (0..w)
        .map(|i| if (val >> i) & 1 != 0 { B::C1 } else { B::C0 })
        .collect()
}

fn repl(b: B, n: usize) -> Vec<B> {
    vec![b; n]
}

/// Generate the `picorv32.json` fixture text.
pub fn picorv32_json() -> String {
    let mut g = Builder::new("picorv32");
    let clk = g.input("clk", 1)[0];
    let rst = g.input("rst", 1)[0];
    let instr = g.input("instr", 32);

    // Decode fields are pure bit routing in a netlist.
    let opcode = &instr[0..7];
    let rd = &instr[7..12];
    let f3 = &instr[12..15];
    let rs1a = &instr[15..20];
    let rs2a = &instr[20..25];
    let f7b = instr[30];
    let sign = instr[31];
    let imm_i: Vec<B> = [&instr[20..32], &repl(sign, 20)[..]].concat();
    let imm_b: Vec<B> = [
        &[B::C0][..],
        &instr[8..12],
        &instr[25..31],
        &[instr[7]][..],
        &repl(sign, 20)[..],
    ]
    .concat();
    let imm_u: Vec<B> = [&const_bits(0, 12)[..], &instr[12..32]].concat();

    // Register file: 3 async read ports (rs1, rs2, x10 observation), one
    // clocked write port.
    let rf_data = g.nets(96);
    let mut rd_addr: Vec<B> = rs1a.to_vec();
    rd_addr.extend_from_slice(rs2a);
    rd_addr.extend_from_slice(&const_bits(10, 5));
    let rs1_raw = rf_data[0..32].to_vec();
    let rs2_raw = rf_data[32..64].to_vec();
    let a0 = rf_data[64..96].to_vec();

    // x0 reads as zero.
    let rs1z = g.bin("$eq", "dec_rs1_is0", rs1a, &const_bits(0, 5), 1)[0];
    let rs2z = g.bin("$eq", "dec_rs2_is0", rs2a, &const_bits(0, 5), 1)[0];
    let rs1 = g.mux("sel_rs1", &rs1_raw, &const_bits(0, 32), rs1z, 32);
    let rs2 = g.mux("sel_rs2", &rs2_raw, &const_bits(0, 32), rs2z, 32);

    // Opcode decode (one duplicated $eq on purpose: synthesis leaves such
    // duplicates behind and CSE should share them).
    let is_op_imm = g.bin("$eq", "dec_is_op_imm", opcode, &const_bits(0b0010011, 7), 1)[0];
    let is_op_imm2 = g.bin(
        "$eq",
        "dec_is_op_imm_dup",
        opcode,
        &const_bits(0b0010011, 7),
        1,
    )[0];
    let is_op = g.bin("$eq", "dec_is_op", opcode, &const_bits(0b0110011, 7), 1)[0];
    let is_lui = g.bin("$eq", "dec_is_lui", opcode, &const_bits(0b0110111, 7), 1)[0];
    let is_branch = g.bin("$eq", "dec_is_branch", opcode, &const_bits(0b1100011, 7), 1)[0];

    let op2 = g.mux("sel_op2", &rs2, &imm_i, is_op_imm, 32);

    // --- ALU adder, bit-blasted: full-adder ripple rs1 + op2.
    // p/g per bit, then s_i = p_i ^ c_i, t_i = p_i & c_i, c_{i+1} = g_i | t_i.
    let mut p = Vec::new();
    let mut gg = Vec::new();
    for i in 0..32 {
        p.push(g.bin("$xor", &format!("fa_p_{i:02}"), &[rs1[i]], &[op2[i]], 1)[0]);
        gg.push(g.bin("$and", &format!("fa_g_{i:02}"), &[rs1[i]], &[op2[i]], 1)[0]);
    }
    let mut sum = vec![p[0]];
    let mut carry = gg[0];
    for i in 1..32 {
        sum.push(g.bin("$xor", &format!("fa_s_{i:02}"), &[p[i]], &[carry], 1)[0]);
        if i < 31 {
            let t = g.bin("$and", &format!("fa_t_{i:02}"), &[p[i]], &[carry], 1)[0];
            carry = g.bin("$or", &format!("fa_c_{i:02}"), &[gg[i]], &[t], 1)[0];
        }
    }
    g.name_net("alu_sum", &sum);

    // Word-level ALU ops.
    let diff = g.bin("$sub", "alu_sub", &rs1, &op2, 32);
    let andv = g.bin("$and", "alu_and", &rs1, &op2, 32);
    let orv = g.bin("$or", "alu_or", &rs1, &op2, 32);
    let xorv = g.bin("$xor", "alu_xor", &rs1, &op2, 32);
    let shamt = &op2[0..5];
    let sllv = g.bin("$shl", "alu_sll", &rs1, shamt, 32);
    let srlv = g.bin("$shr", "alu_srl", &rs1, shamt, 32);
    let sltu = g.bin("$lt", "alu_sltu", &rs1, &op2, 1)[0];
    let sltu32: Vec<B> = [&[sltu][..], &const_bits(0, 31)[..]].concat();

    // funct3 select tree.
    let sub_sel = g.bin("$and", "alu_sub_sel", &[f7b], &[is_op], 1)[0];
    let addsub = g.mux("alu_addsub", &sum, &diff, sub_sel, 32);
    let m_a = g.mux("alu_m_a", &addsub, &sllv, f3[0], 32);
    // Both arms identical on purpose (mux-collapse fodder; SLT lowers to
    // SLTU in this unsigned subset).
    let m_b = g.mux("alu_m_b", &sltu32, &sltu32, f3[0], 32);
    let m_c = g.mux("alu_m_c", &xorv, &srlv, f3[0], 32);
    let m_d = g.mux("alu_m_d", &orv, &andv, f3[0], 32);
    let m_ab = g.mux("alu_m_ab", &m_a, &m_b, f3[1], 32);
    let m_cd = g.mux("alu_m_cd", &m_c, &m_d, f3[1], 32);
    let alu = g.mux("alu_out_mux", &m_ab, &m_cd, f3[2], 32);
    let wb = g.mux("wb_mux", &alu, &imm_u, is_lui, 32);

    // --- Branch compare, bit-blasted: XNOR leaves + AND chain.
    let mut xn = Vec::new();
    for i in 0..32 {
        xn.push(g.bin("$xnor", &format!("beq_xn_{i:02}"), &[rs1[i]], &[rs2[i]], 1)[0]);
    }
    let mut eq_acc = g.bin("$and", "beq_t_01", &[xn[0]], &[xn[1]], 1)[0];
    for (i, &leaf) in xn.iter().enumerate().skip(2) {
        eq_acc = g.bin("$and", &format!("beq_t_{i:02}"), &[eq_acc], &[leaf], 1)[0];
    }
    let br_cond = g.bin("$xor", "br_cond", &[eq_acc], &[f3[0]], 1)[0];
    let taken = g.bin("$and", "br_taken", &[is_branch], &[br_cond], 1)[0];

    // --- Program counter.
    let pc_d = g.nets(32); // forward-declared dff input
    let pc = g.dff("pc_reg", clk, &pc_d);
    let btarget = g.bin("$add", "br_target", &pc, &imm_b, 32);
    let pc4 = g.bin("$add", "pc_plus4", &pc, &const_bits(4, 32), 32);
    let pc_sel = g.mux("pc_sel", &pc4, &btarget, taken, 32);
    let pc_next = g.mux("pc_rst", &pc_sel, &const_bits(0, 32), rst, 32);
    // Tie the forward-declared nets to the mux output by emitting the dff
    // *after* we know its D: rebuild the connection in place.
    for c in &mut g.cells {
        if c.name == "pc_reg" {
            for (port, bits) in &mut c.conns {
                if port == "D" {
                    *bits = pc_next.clone();
                }
            }
        }
    }
    // The forward-declared pc_d nets are now unused; leave them unnamed.

    // --- Register write-back.
    let we_a = g.bin("$or", "we_or_imm_op", &[is_op_imm2], &[is_op], 1)[0];
    let we_b = g.bin("$or", "we_or_lui", &[we_a], &[is_lui], 1)[0];
    let rd_nz = g.bin("$ne", "dec_rd_nz", rd, &const_bits(0, 5), 1)[0];
    let we_c = g.bin("$and", "we_and_rd", &[we_b], &[rd_nz], 1)[0];
    let nrst = g.unary("$not", "rst_n", &[rst], 1)[0];
    let we = g.bin("$and", "we_gate", &[we_c], &[nrst], 1)[0];

    g.cell(
        "$mem_v2",
        "regfile",
        vec![
            ("MEMID", "\"\\\\regs\"".into()),
            ("SIZE", "32".into()),
            ("WIDTH", "32".into()),
            ("ABITS", "5".into()),
            ("OFFSET", "0".into()),
            ("RD_PORTS", "3".into()),
            ("WR_PORTS", "1".into()),
            ("RD_CLK_ENABLE", "0".into()),
            ("RD_CLK_POLARITY", "7".into()),
            ("WR_CLK_ENABLE", "1".into()),
            ("WR_CLK_POLARITY", "1".into()),
        ],
        vec![
            ("RD_ADDR", rd_addr),
            ("RD_DATA", rf_data.clone()),
            ("RD_EN", vec![B::C1, B::C1, B::C1]),
            ("RD_CLK", vec![B::C0, B::C0, B::C0]),
            ("WR_ADDR", rd.to_vec()),
            ("WR_DATA", wb.clone()),
            ("WR_EN", repl(we, 32)),
            ("WR_CLK", vec![clk]),
        ],
    );

    // An observable side register ($dffe coverage).
    let io_out = g.dffe("io_reg", clk, sub_sel, &xorv);

    // Constant-propagation fodder: synthesis leftovers that AND with zero.
    let dbg = g.bin("$and", "dbg_zero", &xorv, &const_bits(0, 32), 32);

    g.name_net("pc", &pc);
    g.name_net("rs1", &rs1);
    g.name_net("rs2", &rs2);
    g.name_net("wb_data", &wb);

    g.output("pc_out", &pc);
    g.output("result", &wb);
    g.output("a0", &a0);
    g.output("taken", &[taken]);
    g.output("io_out", &io_out);
    g.output("dbg", &dbg[0..8]);

    g.to_json()
}

#[cfg(test)]
mod tests {
    #[test]
    fn generator_output_is_importable() {
        let json = super::picorv32_json();
        let (d, stats) = crate::import::import_str(&json, "picorv32").unwrap();
        assert!(stats.cells > 250, "expected a bit-blasted core: {stats:?}");
        assert_eq!(d.inputs.len(), 2); // rst, instr (clk is the clock)
        assert_eq!(d.outputs.len(), 6);
        rtlir::RtlGraph::build(&d).expect("graph builds");
    }
}
