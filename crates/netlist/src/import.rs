//! Lower a validated Yosys netlist into a flat [`rtlir::Design`].
//!
//! The importer is a *second frontend*: instead of going through the
//! Verilog parser/elaborator it constructs `Design` directly — one
//! variable per cell output (named from `netnames` where possible), one
//! process per cell — so every downstream layer (interp golden reference,
//! `cudasim` fuse/exec, pipeline, shard, serve, cluster) works unchanged.
//!
//! Supported cell library: `$and/$or/$xor/$xnor/$not/$pos/$neg`,
//! `$add/$sub/$mul/$div/$mod`, `$eq/$ne/$lt/$le/$gt/$ge`,
//! `$shl/$sshl/$shr/$sshr`, `$mux/$pmux`, `$logic_and/$logic_or/$logic_not`,
//! `$reduce_and/$reduce_or/$reduce_xor/$reduce_xnor/$reduce_bool`,
//! `$dff/$dffe/$adff/$adffe/$sdff` and `$mem_v2`, plus multi-bit buses and
//! constant bits in any connection.
//!
//! Semantics notes (two-state full-cycle simulation):
//! * `x`/`z` constant bits lower to 0.
//! * `$adff` async reset is honoured at the clock edge (a reset held
//!   through an edge resets the register; glitch-asynchronous behaviour is
//!   outside a full-cycle model).
//! * All `$mem_v2` write ports lower into ONE sequential process (ascending
//!   port priority, later ports win) — the interpreter commits whole-memory
//!   pending writes per process, so separate processes would clobber.

use std::collections::{HashMap, HashSet};

use rtlir::ast::{BinOp, UnOp};
use rtlir::elab::{process_rw, Design, EExpr, Process, Stm, Target, Var};
use rtlir::{BitVec, ProcessKind};

use crate::error::{NetlistError, Result};
use crate::yosys::{Netlist, SigBit, YCell, YModule};

/// What the importer did, for `netlist-sim --json` and logs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImportStats {
    /// Cells lowered (excluding `$scopeinfo`).
    pub cells: usize,
    /// Distinct driven net bits.
    pub nets: usize,
    /// Variables in the produced design.
    pub vars: usize,
    /// Processes in the produced design.
    pub processes: usize,
}

/// Parse Yosys JSON text and import module `top`.
pub fn import_str(src: &str, top: &str) -> Result<(Design, ImportStats)> {
    let nl = crate::yosys::parse_netlist(src)?;
    import(&nl, top)
}

/// Import module `top` from a parsed netlist.
pub fn import(nl: &Netlist, top: &str) -> Result<(Design, ImportStats)> {
    let m = nl
        .modules
        .iter()
        .find(|m| m.name == top)
        .ok_or_else(|| NetlistError::NoModule {
            top: top.to_string(),
            available: nl.modules.iter().map(|m| m.name.clone()).collect(),
        })?;
    Importer::new(m).run()
}

struct Importer<'a> {
    m: &'a YModule,
    vars: Vec<Var>,
    processes: Vec<Process>,
    /// Driven net bit -> (var, bit offset within var).
    bitmap: HashMap<u64, (usize, u32)>,
    /// Driven net bit -> driver name (for MultiDriver diagnostics).
    driver: HashMap<u64, String>,
    used_names: HashSet<String>,
    /// Exact-bits netname lookup for human-readable variable names.
    netname_of: HashMap<Vec<SigBit>, String>,
    /// Cell name -> output var ids (Y/Q, or read-port data vars then the
    /// memory var for `$mem_v2`).
    cell_outs: HashMap<String, Vec<usize>>,
    cells_lowered: usize,
}

impl<'a> Importer<'a> {
    fn new(m: &'a YModule) -> Self {
        let mut netname_of = HashMap::new();
        for (name, bits) in &m.netnames {
            netname_of
                .entry(bits.clone())
                .or_insert_with(|| clean_name(name));
        }
        Importer {
            m,
            vars: Vec::new(),
            processes: Vec::new(),
            bitmap: HashMap::new(),
            driver: HashMap::new(),
            used_names: HashSet::new(),
            netname_of,
            cell_outs: HashMap::new(),
            cells_lowered: 0,
        }
    }

    fn run(mut self) -> Result<(Design, ImportStats)> {
        // Reserve port names so internal nets never shadow them.
        for p in &self.m.ports {
            self.used_names.insert(p.name.clone());
        }

        self.input_vars()?;
        self.cell_output_vars()?;
        let clock = self.find_clock()?;
        for ci in 0..self.m.cells.len() {
            self.lower_cell(&self.m.cells[ci])?;
        }
        let outputs = self.output_collectors()?;

        let inputs: Vec<usize> = self
            .m
            .ports
            .iter()
            .filter(|p| !p.output)
            .map(|p| self.port_var(&p.name))
            .filter(|v| Some(*v) != clock)
            .collect();

        let stats = ImportStats {
            cells: self.cells_lowered,
            nets: self.bitmap.len(),
            vars: self.vars.len(),
            processes: self.processes.len(),
        };
        let design = Design {
            name: self.m.name.clone(),
            vars: self.vars,
            processes: self.processes,
            inputs,
            outputs,
            clock,
        };
        Ok((design, stats))
    }

    fn port_var(&self, name: &str) -> usize {
        // Input/output port vars carry exactly the port name (reserved
        // before any internal var is created).
        self.vars.iter().position(|v| v.name == name).unwrap_or(0)
    }

    fn fresh_name(&mut self, base: &str) -> String {
        let base = clean_name(base);
        if self.used_names.insert(base.clone()) {
            return base;
        }
        for k in 2.. {
            let cand = format!("{base}#{k}");
            if self.used_names.insert(cand.clone()) {
                return cand;
            }
        }
        unreachable!()
    }

    fn add_var(&mut self, name: String, width: u32, depth: u32) -> usize {
        self.vars.push(Var {
            name,
            width,
            depth,
            is_state: false,
            is_input: false,
            is_output: false,
        });
        self.vars.len() - 1
    }

    fn define_bits(&mut self, bits: &[SigBit], var: usize, who: &str) -> Result<()> {
        for (i, b) in bits.iter().enumerate() {
            match b {
                SigBit::Net(n) => {
                    if let Some(prev) = self.driver.get(n) {
                        return Err(NetlistError::MultiDriver {
                            bit: *n,
                            first: prev.clone(),
                            second: who.to_string(),
                        });
                    }
                    self.driver.insert(*n, who.to_string());
                    self.bitmap.insert(*n, (var, i as u32));
                }
                SigBit::Const(_) => {
                    return Err(NetlistError::schema(
                        who,
                        "output connection wired to a constant bit",
                    ))
                }
            }
        }
        Ok(())
    }

    fn input_vars(&mut self) -> Result<()> {
        for pi in 0..self.m.ports.len() {
            let p = &self.m.ports[pi];
            if p.output {
                continue;
            }
            let (name, bits) = (p.name.clone(), p.bits.clone());
            let v = self.add_var(name.clone(), bits.len() as u32, 0);
            self.vars[v].is_input = true;
            self.define_bits(&bits, v, &format!("input port `{name}`"))?;
        }
        Ok(())
    }

    /// Declared output ports of a cell type (memories handled separately).
    fn out_port(ty: &str) -> Option<&'static str> {
        match ty {
            "$not" | "$pos" | "$neg" | "$and" | "$or" | "$xor" | "$xnor" | "$add" | "$sub"
            | "$mul" | "$div" | "$mod" | "$eq" | "$ne" | "$lt" | "$le" | "$gt" | "$ge" | "$shl"
            | "$sshl" | "$shr" | "$sshr" | "$mux" | "$pmux" | "$logic_and" | "$logic_or"
            | "$logic_not" | "$reduce_and" | "$reduce_or" | "$reduce_xor" | "$reduce_xnor"
            | "$reduce_bool" => Some("Y"),
            "$dff" | "$dffe" | "$adff" | "$adffe" | "$sdff" => Some("Q"),
            _ => None,
        }
    }

    fn cell_output_vars(&mut self) -> Result<()> {
        for ci in 0..self.m.cells.len() {
            let c = &self.m.cells[ci];
            let (cname, cty) = (c.name.clone(), c.ty.clone());
            if cty == "$scopeinfo" {
                continue;
            }
            if cty == "$mem_v2" {
                self.mem_vars(ci)?;
                continue;
            }
            let Some(port) = Self::out_port(&cty) else {
                return Err(if cty.starts_with('$') {
                    NetlistError::UnknownCell {
                        cell: cname,
                        ty: cty,
                    }
                } else {
                    NetlistError::unsupported(
                        cname,
                        format!("hierarchical cell `{cty}` (run yosys `flatten` first)"),
                    )
                });
            };
            let bits = self.m.cells[ci].conn_req(port)?.to_vec();
            if bits.is_empty() {
                return Err(NetlistError::schema(
                    format!("cell `{cname}`"),
                    format!("empty {port} connection"),
                ));
            }
            let name = self
                .netname_of
                .get(&bits)
                .cloned()
                .unwrap_or_else(|| format!("{}.{}", clean_name(&cname), port.to_lowercase()));
            let name = self.fresh_name(&name);
            let v = self.add_var(name, bits.len() as u32, 0);
            self.define_bits(&bits, v, &format!("cell `{cname}` port {port}"))?;
            self.cell_outs.insert(cname, vec![v]);
        }
        Ok(())
    }

    fn mem_vars(&mut self, ci: usize) -> Result<()> {
        let c = &self.m.cells[ci];
        let cname = c.name.clone();
        let width = c.param_u64("WIDTH", 0)? as u32;
        let size = c.param_u64("SIZE", 0)? as u32;
        let n_rd = c.param_u64("RD_PORTS", 0)? as usize;
        if width == 0 || size == 0 {
            return Err(NetlistError::schema(
                format!("cell `{cname}`"),
                "memory with zero WIDTH or SIZE",
            ));
        }
        let rd_data = c.conn_req("RD_DATA")?.to_vec();
        if rd_data.len() != n_rd * width as usize {
            return Err(NetlistError::WidthMismatch {
                cell: cname,
                port: "RD_DATA".into(),
                want: (n_rd * width as usize) as u32,
                got: rd_data.len() as u32,
            });
        }
        let memid = match c.param("MEMID") {
            Some(crate::yosys::PValue::Str(s)) => clean_name(s),
            _ => clean_name(&cname),
        };
        let mut outs = Vec::new();
        for (i, chunk) in rd_data.chunks(width as usize).enumerate() {
            let name = self
                .netname_of
                .get(chunk)
                .cloned()
                .unwrap_or_else(|| format!("{memid}.rd{i}"));
            let name = self.fresh_name(&name);
            let v = self.add_var(name, width, 0);
            self.define_bits(chunk, v, &format!("cell `{cname}` port RD_DATA[{i}]"))?;
            outs.push(v);
        }
        let mname = self.fresh_name(&memid);
        let mv = self.add_var(mname, width, size);
        self.vars[mv].is_state = true;
        outs.push(mv);
        self.cell_outs.insert(cname, outs);
        Ok(())
    }

    /// All sequential cells must share one clock, and it must be a 1-bit
    /// top-level input (the full-cycle engines toggle it implicitly).
    fn find_clock(&self) -> Result<Option<usize>> {
        let mut clk: Option<(u64, String)> = None;
        let mut note = |bits: &[SigBit], cell: &str| -> Result<()> {
            for b in bits {
                match b {
                    SigBit::Net(n) => match &clk {
                        None => clk = Some((*n, cell.to_string())),
                        Some((prev, _)) if prev == n => {}
                        Some((_, first)) => {
                            return Err(NetlistError::unsupported(
                                cell,
                                format!("second clock domain (first clock used by `{first}`)"),
                            ))
                        }
                    },
                    SigBit::Const(_) => {
                        return Err(NetlistError::unsupported(cell, "constant clock"))
                    }
                }
            }
            Ok(())
        };
        for c in &self.m.cells {
            match c.ty.as_str() {
                "$dff" | "$dffe" | "$adff" | "$adffe" | "$sdff" => {
                    if c.param_u64("CLK_POLARITY", 1)? != 1 {
                        return Err(NetlistError::unsupported(&c.name, "negedge clock"));
                    }
                    note(c.conn_req("CLK")?, &c.name)?;
                }
                "$mem_v2" => {
                    let n_rd = c.param_u64("RD_PORTS", 0)? as usize;
                    let n_wr = c.param_u64("WR_PORTS", 0)? as usize;
                    let rd_clk_en = port_mask(c, "RD_CLK_ENABLE", n_rd)?;
                    if n_wr > 0 {
                        let wr_clk_en = port_mask(c, "WR_CLK_ENABLE", n_wr)?;
                        if !wr_clk_en.iter().all(|&b| b) {
                            return Err(NetlistError::unsupported(
                                &c.name,
                                "asynchronous memory write port",
                            ));
                        }
                        note(c.conn_req("WR_CLK")?, &c.name)?;
                    }
                    let rd_clk = c.conn("RD_CLK").unwrap_or(&[]);
                    for (i, &en) in rd_clk_en.iter().enumerate() {
                        if en {
                            let bit = rd_clk.get(i).ok_or_else(|| {
                                NetlistError::schema(
                                    format!("cell `{}`", c.name),
                                    "RD_CLK shorter than RD_PORTS",
                                )
                            })?;
                            note(std::slice::from_ref(bit), &c.name)?;
                        }
                    }
                }
                _ => {}
            }
        }
        let Some((bit, cell)) = clk else {
            return Ok(None);
        };
        match self.bitmap.get(&bit) {
            Some(&(v, 0)) if self.vars[v].is_input && self.vars[v].width == 1 => Ok(Some(v)),
            _ => Err(NetlistError::unsupported(
                cell,
                "clock is not a 1-bit top-level input (derived clocks unsupported)",
            )),
        }
    }

    /// Build the expression for a signal (a list of bits): consecutive
    /// bits of one variable become slices, constants become literals,
    /// mixed runs concatenate (MSB-first, matching `EExpr::Concat`).
    fn sig(&self, bits: &[SigBit], ctx: &str) -> Result<EExpr> {
        enum Run {
            Const(Vec<bool>),
            Var { var: usize, lsb: u32, len: u32 },
        }
        let mut runs: Vec<Run> = Vec::new();
        for b in bits {
            match b {
                SigBit::Const(c) => match runs.last_mut() {
                    Some(Run::Const(v)) if v.len() < 64 => v.push(*c),
                    _ => runs.push(Run::Const(vec![*c])),
                },
                SigBit::Net(n) => {
                    let &(var, off) =
                        self.bitmap
                            .get(n)
                            .ok_or_else(|| NetlistError::DanglingNet {
                                context: ctx.to_string(),
                                bit: *n,
                            })?;
                    match runs.last_mut() {
                        Some(Run::Var { var: v, lsb, len }) if *v == var && *lsb + *len == off => {
                            *len += 1
                        }
                        _ => runs.push(Run::Var {
                            var,
                            lsb: off,
                            len: 1,
                        }),
                    }
                }
            }
        }
        let mut parts: Vec<EExpr> = runs
            .into_iter()
            .map(|r| match r {
                Run::Const(bs) => {
                    let mut v = 0u64;
                    for (i, b) in bs.iter().enumerate() {
                        v |= (*b as u64) << i;
                    }
                    EExpr::Const(BitVec::from_u64(v, bs.len() as u32))
                }
                Run::Var { var, lsb, len } => {
                    if lsb == 0 && len == self.vars[var].width {
                        EExpr::Var(var)
                    } else {
                        EExpr::Slice {
                            arg: Box::new(EExpr::Var(var)),
                            lsb,
                            width: len,
                        }
                    }
                }
            })
            .collect();
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            parts.reverse(); // Concat takes MSB first.
            EExpr::Concat {
                parts,
                width: bits.len() as u32,
            }
        })
    }

    fn in_sig(&self, c: &YCell, port: &str) -> Result<(EExpr, u32)> {
        let bits = c.conn_req(port)?;
        if bits.is_empty() {
            return Err(NetlistError::schema(
                format!("cell `{}`", c.name),
                format!("empty {port} connection"),
            ));
        }
        let e = self.sig(bits, &format!("cell `{}` port {port}", c.name))?;
        Ok((e, bits.len() as u32))
    }

    /// Check a connection length against a declared width parameter.
    fn check_width(&self, c: &YCell, port: &str, param: &str) -> Result<()> {
        let got = c.conn(port).map(|b| b.len() as u32).unwrap_or(0);
        let want = c.param_u64(param, got as u64)? as u32;
        if want != got {
            return Err(NetlistError::WidthMismatch {
                cell: c.name.clone(),
                port: port.to_string(),
                want,
                got,
            });
        }
        Ok(())
    }

    fn push_process(&mut self, kind: ProcessKind, name: String, body: Vec<Stm>) {
        let (reads, writes) = process_rw(&body, kind);
        if kind == ProcessKind::Seq {
            for &w in &writes {
                self.vars[w].is_state = true;
            }
        }
        self.processes.push(Process {
            kind,
            name,
            body,
            reads,
            writes,
            line: 0,
        });
    }

    fn lower_cell(&mut self, c: &YCell) -> Result<()> {
        let ty = c.ty.as_str();
        if ty == "$scopeinfo" {
            return Ok(());
        }
        self.cells_lowered += 1;
        if ty == "$mem_v2" {
            return self.lower_mem(c);
        }
        let yv = self.cell_outs[&c.name][0];
        let yw = self.vars[yv].width;
        let unsigned_only = |c: &YCell| -> Result<()> {
            if c.param_u64("A_SIGNED", 0)? != 0 || c.param_u64("B_SIGNED", 0)? != 0 {
                return Err(NetlistError::unsupported(
                    &c.name,
                    "signed operands (resynthesize with unsigned compares)",
                ));
            }
            Ok(())
        };

        let rhs: EExpr = match ty {
            "$and" | "$or" | "$xor" | "$xnor" | "$add" | "$sub" | "$mul" | "$div" | "$mod" => {
                unsigned_only(c)?;
                self.check_width(c, "A", "A_WIDTH")?;
                self.check_width(c, "B", "B_WIDTH")?;
                self.check_width(c, "Y", "Y_WIDTH")?;
                let op = match ty {
                    "$and" => BinOp::And,
                    "$or" => BinOp::Or,
                    "$xor" => BinOp::Xor,
                    "$xnor" => BinOp::Xnor,
                    "$add" => BinOp::Add,
                    "$sub" => BinOp::Sub,
                    "$mul" => BinOp::Mul,
                    "$div" => BinOp::Div,
                    _ => BinOp::Mod,
                };
                let (a, aw) = self.in_sig(c, "A")?;
                let (b, bw) = self.in_sig(c, "B")?;
                EExpr::Binary {
                    op,
                    a: Box::new(rz(a, aw, yw)),
                    b: Box::new(rz(b, bw, yw)),
                    width: yw,
                }
            }
            "$shl" | "$sshl" | "$shr" | "$sshr" => {
                // $sshr/$sshl are the signed forms; Sshr implements the
                // arithmetic shift, so only forbid signedness elsewhere.
                if !ty.starts_with("$s") {
                    unsigned_only(c)?;
                }
                self.check_width(c, "A", "A_WIDTH")?;
                self.check_width(c, "B", "B_WIDTH")?;
                self.check_width(c, "Y", "Y_WIDTH")?;
                let op = match ty {
                    "$shl" | "$sshl" => BinOp::Shl,
                    "$shr" => BinOp::Shr,
                    _ => BinOp::Sshr,
                };
                let (a, aw) = self.in_sig(c, "A")?;
                let (b, _bw) = self.in_sig(c, "B")?;
                EExpr::Binary {
                    op,
                    a: Box::new(rz(a, aw, yw)),
                    b: Box::new(b),
                    width: yw,
                }
            }
            "$eq" | "$ne" | "$lt" | "$le" | "$gt" | "$ge" => {
                unsigned_only(c)?;
                self.check_width(c, "A", "A_WIDTH")?;
                self.check_width(c, "B", "B_WIDTH")?;
                let op = match ty {
                    "$eq" => BinOp::Eq,
                    "$ne" => BinOp::Ne,
                    "$lt" => BinOp::Lt,
                    "$le" => BinOp::Le,
                    "$gt" => BinOp::Gt,
                    _ => BinOp::Ge,
                };
                let (a, aw) = self.in_sig(c, "A")?;
                let (b, bw) = self.in_sig(c, "B")?;
                let w = aw.max(bw);
                let cmp = EExpr::Binary {
                    op,
                    a: Box::new(rz(a, aw, w)),
                    b: Box::new(rz(b, bw, w)),
                    width: 1,
                };
                rz(cmp, 1, yw)
            }
            "$logic_and" | "$logic_or" => {
                let op = if ty == "$logic_and" {
                    BinOp::LAnd
                } else {
                    BinOp::LOr
                };
                let (a, _) = self.in_sig(c, "A")?;
                let (b, _) = self.in_sig(c, "B")?;
                rz(
                    EExpr::Binary {
                        op,
                        a: Box::new(a),
                        b: Box::new(b),
                        width: 1,
                    },
                    1,
                    yw,
                )
            }
            "$not" | "$neg" => {
                let (a, aw) = self.in_sig(c, "A")?;
                EExpr::Unary {
                    op: if ty == "$not" { UnOp::Not } else { UnOp::Neg },
                    arg: Box::new(rz(a, aw, yw)),
                    width: yw,
                }
            }
            "$pos" => {
                let (a, aw) = self.in_sig(c, "A")?;
                rz(a, aw, yw)
            }
            "$logic_not" | "$reduce_and" | "$reduce_or" | "$reduce_xor" | "$reduce_bool" => {
                let op = match ty {
                    "$logic_not" => UnOp::LNot,
                    "$reduce_and" => UnOp::RedAnd,
                    "$reduce_xor" => UnOp::RedXor,
                    _ => UnOp::RedOr,
                };
                let (a, _) = self.in_sig(c, "A")?;
                rz(
                    EExpr::Unary {
                        op,
                        arg: Box::new(a),
                        width: 1,
                    },
                    1,
                    yw,
                )
            }
            "$reduce_xnor" => {
                let (a, _) = self.in_sig(c, "A")?;
                let red = EExpr::Unary {
                    op: UnOp::RedXor,
                    arg: Box::new(a),
                    width: 1,
                };
                rz(
                    EExpr::Unary {
                        op: UnOp::Not,
                        arg: Box::new(red),
                        width: 1,
                    },
                    1,
                    yw,
                )
            }
            "$mux" => {
                let (s, sw) = self.in_sig(c, "S")?;
                if sw != 1 {
                    return Err(NetlistError::WidthMismatch {
                        cell: c.name.clone(),
                        port: "S".into(),
                        want: 1,
                        got: sw,
                    });
                }
                let (a, aw) = self.in_sig(c, "A")?;
                let (b, bw) = self.in_sig(c, "B")?;
                for (port, w) in [("A", aw), ("B", bw)] {
                    if w != yw {
                        return Err(NetlistError::WidthMismatch {
                            cell: c.name.clone(),
                            port: port.into(),
                            want: yw,
                            got: w,
                        });
                    }
                }
                EExpr::Mux {
                    cond: Box::new(s),
                    t: Box::new(b),
                    e: Box::new(a),
                    width: yw,
                }
            }
            "$pmux" => {
                let (s_bits, a_bits, b_bits) =
                    (c.conn_req("S")?, c.conn_req("A")?, c.conn_req("B")?);
                let k = s_bits.len();
                if a_bits.len() as u32 != yw || b_bits.len() != k * yw as usize {
                    return Err(NetlistError::WidthMismatch {
                        cell: c.name.clone(),
                        port: "B".into(),
                        want: (k as u32) * yw,
                        got: b_bits.len() as u32,
                    });
                }
                let ctx = format!("cell `{}`", c.name);
                // Highest-index select wins (selects are one-hot in
                // well-formed RTLIL, so priority is unobservable there).
                let mut acc = self.sig(a_bits, &ctx)?;
                let (s_bits, b_bits) = (s_bits.to_vec(), b_bits.to_vec());
                for i in 0..k {
                    let cond = self.sig(&s_bits[i..i + 1], &ctx)?;
                    let t = self.sig(&b_bits[i * yw as usize..(i + 1) * yw as usize], &ctx)?;
                    acc = EExpr::Mux {
                        cond: Box::new(cond),
                        t: Box::new(t),
                        e: Box::new(acc),
                        width: yw,
                    };
                }
                acc
            }
            "$dff" | "$dffe" | "$adff" | "$adffe" | "$sdff" => {
                return self.lower_dff(c, yv);
            }
            other => {
                return Err(NetlistError::UnknownCell {
                    cell: c.name.clone(),
                    ty: other.to_string(),
                })
            }
        };
        let name = format!("{}:{}", clean_name(&c.name), &ty[1..]);
        self.push_process(
            ProcessKind::Comb,
            name,
            vec![Stm::Assign {
                target: Target::Var(yv),
                rhs,
            }],
        );
        Ok(())
    }

    fn lower_dff(&mut self, c: &YCell, qv: usize) -> Result<()> {
        let qw = self.vars[qv].width;
        self.check_width(c, "Q", "WIDTH")?;
        self.check_width(c, "D", "WIDTH")?;
        let (d, dw) = self.in_sig(c, "D")?;
        if dw != qw {
            return Err(NetlistError::WidthMismatch {
                cell: c.name.clone(),
                port: "D".into(),
                want: qw,
                got: dw,
            });
        }
        let assign_d = Stm::Assign {
            target: Target::Var(qv),
            rhs: d,
        };

        let polarity = |e: EExpr, pol: u64| -> EExpr {
            if pol != 0 {
                e
            } else {
                EExpr::Unary {
                    op: UnOp::LNot,
                    arg: Box::new(e),
                    width: 1,
                }
            }
        };
        let enable = |me: &Self, c: &YCell| -> Result<EExpr> {
            let (en, enw) = me.in_sig(c, "EN")?;
            if enw != 1 {
                return Err(NetlistError::WidthMismatch {
                    cell: c.name.clone(),
                    port: "EN".into(),
                    want: 1,
                    got: enw,
                });
            }
            Ok(polarity(en, c.param_u64("EN_POLARITY", 1)?))
        };
        let reset = |me: &Self, c: &YCell, port: &str, prefix: &str| -> Result<(EExpr, Stm)> {
            let (r, rw_) = me.in_sig(c, port)?;
            if rw_ != 1 {
                return Err(NetlistError::WidthMismatch {
                    cell: c.name.clone(),
                    port: port.into(),
                    want: 1,
                    got: rw_,
                });
            }
            let cond = polarity(r, c.param_u64(&format!("{prefix}_POLARITY"), 1)?);
            let value = param_bitvec(c, &format!("{prefix}_VALUE"), qw)?;
            Ok((
                cond,
                Stm::Assign {
                    target: Target::Var(qv),
                    rhs: EExpr::Const(value),
                },
            ))
        };

        let body = match c.ty.as_str() {
            "$dff" => vec![assign_d],
            "$dffe" => vec![Stm::If {
                cond: enable(self, c)?,
                then_s: vec![assign_d],
                else_s: vec![],
            }],
            "$adff" => {
                let (cond, rst) = reset(self, c, "ARST", "ARST")?;
                vec![Stm::If {
                    cond,
                    then_s: vec![rst],
                    else_s: vec![assign_d],
                }]
            }
            "$adffe" => {
                let (cond, rst) = reset(self, c, "ARST", "ARST")?;
                vec![Stm::If {
                    cond,
                    then_s: vec![rst],
                    else_s: vec![Stm::If {
                        cond: enable(self, c)?,
                        then_s: vec![assign_d],
                        else_s: vec![],
                    }],
                }]
            }
            _ => {
                let (cond, rst) = reset(self, c, "SRST", "SRST")?;
                vec![Stm::If {
                    cond,
                    then_s: vec![rst],
                    else_s: vec![assign_d],
                }]
            }
        };
        let name = format!("{}:{}", clean_name(&c.name), &c.ty[1..]);
        self.push_process(ProcessKind::Seq, name, body);
        Ok(())
    }

    fn lower_mem(&mut self, c: &YCell) -> Result<()> {
        let width = c.param_u64("WIDTH", 0)? as u32;
        let abits = c.param_u64("ABITS", 0)? as u32;
        let n_rd = c.param_u64("RD_PORTS", 0)? as usize;
        let n_wr = c.param_u64("WR_PORTS", 0)? as usize;
        if c.param_u64("OFFSET", 0)? != 0 {
            return Err(NetlistError::unsupported(&c.name, "memory OFFSET != 0"));
        }
        let outs = self.cell_outs[&c.name].clone();
        let mem = *outs.last().unwrap();
        let rd_clk_en = port_mask(c, "RD_CLK_ENABLE", n_rd)?;

        let rd_addr = c.conn_req("RD_ADDR")?.to_vec();
        if rd_addr.len() != n_rd * abits as usize {
            return Err(NetlistError::WidthMismatch {
                cell: c.name.clone(),
                port: "RD_ADDR".into(),
                want: n_rd as u32 * abits,
                got: rd_addr.len() as u32,
            });
        }
        let rd_en = c.conn("RD_EN").unwrap_or(&[]).to_vec();
        let cname = clean_name(&c.name);
        for i in 0..n_rd {
            let ctx = format!("cell `{}` port RD_ADDR[{i}]", c.name);
            let addr = self.sig(&rd_addr[i * abits as usize..(i + 1) * abits as usize], &ctx)?;
            let read = EExpr::ReadMem {
                var: mem,
                idx: Box::new(addr),
            };
            let assign = Stm::Assign {
                target: Target::Var(outs[i]),
                rhs: read,
            };
            let en_bit = rd_en.get(i).copied().unwrap_or(SigBit::Const(true));
            if rd_clk_en[i] {
                let body = match en_bit {
                    SigBit::Const(true) => vec![assign],
                    SigBit::Const(false) => vec![],
                    SigBit::Net(_) => {
                        let en = self.sig(
                            std::slice::from_ref(&en_bit),
                            &format!("cell `{}` port RD_EN[{i}]", c.name),
                        )?;
                        vec![Stm::If {
                            cond: en,
                            then_s: vec![assign],
                            else_s: vec![],
                        }]
                    }
                };
                self.push_process(ProcessKind::Seq, format!("{cname}:rd{i}"), body);
            } else {
                if !matches!(en_bit, SigBit::Const(true)) {
                    return Err(NetlistError::unsupported(
                        &c.name,
                        format!("async read port {i} with a non-constant enable"),
                    ));
                }
                self.push_process(ProcessKind::Comb, format!("{cname}:rd{i}"), vec![assign]);
            }
        }

        if n_wr == 0 {
            return Ok(());
        }
        let wr_addr = c.conn_req("WR_ADDR")?.to_vec();
        let wr_data = c.conn_req("WR_DATA")?.to_vec();
        let wr_en = c.conn_req("WR_EN")?.to_vec();
        for (port, conn, want) in [
            ("WR_ADDR", &wr_addr, n_wr as u32 * abits),
            ("WR_DATA", &wr_data, n_wr as u32 * width),
            ("WR_EN", &wr_en, n_wr as u32 * width),
        ] {
            if conn.len() as u32 != want {
                return Err(NetlistError::WidthMismatch {
                    cell: c.name.clone(),
                    port: port.into(),
                    want,
                    got: conn.len() as u32,
                });
            }
        }
        // ONE process for all write ports: the interpreter's pending
        // commit replaces the whole memory per writing process, so
        // separate processes would drop each other's writes. Ascending
        // port order in one body gives later ports priority, matching
        // RTLIL.
        let mut body = Vec::new();
        for j in 0..n_wr {
            let en_bits = &wr_en[j * width as usize..(j + 1) * width as usize];
            let first = en_bits[0];
            if !en_bits.iter().all(|b| *b == first) {
                return Err(NetlistError::unsupported(
                    &c.name,
                    format!("per-bit write enable on write port {j}"),
                ));
            }
            if first == SigBit::Const(false) {
                continue;
            }
            let ctx = format!("cell `{}` write port {j}", c.name);
            let addr = self.sig(&wr_addr[j * abits as usize..(j + 1) * abits as usize], &ctx)?;
            let data = self.sig(&wr_data[j * width as usize..(j + 1) * width as usize], &ctx)?;
            let assign = Stm::Assign {
                target: Target::Mem {
                    var: mem,
                    idx: addr,
                },
                rhs: data,
            };
            match first {
                SigBit::Const(_) => body.push(assign),
                SigBit::Net(_) => {
                    let en = self.sig(std::slice::from_ref(&first), &ctx)?;
                    body.push(Stm::If {
                        cond: en,
                        then_s: vec![assign],
                        else_s: vec![],
                    });
                }
            }
        }
        if !body.is_empty() {
            self.push_process(ProcessKind::Seq, format!("{cname}:wr"), body);
        }
        Ok(())
    }

    fn output_collectors(&mut self) -> Result<Vec<usize>> {
        let mut outputs = Vec::new();
        for pi in 0..self.m.ports.len() {
            let p = &self.m.ports[pi];
            if !p.output {
                continue;
            }
            let (pname, bits) = (p.name.clone(), p.bits.clone());
            let rhs = self.sig(&bits, &format!("output port `{pname}`"))?;
            let v = self.add_var(pname.clone(), bits.len() as u32, 0);
            self.vars[v].is_output = true;
            self.push_process(
                ProcessKind::Comb,
                format!("out:{pname}"),
                vec![Stm::Assign {
                    target: Target::Var(v),
                    rhs,
                }],
            );
            outputs.push(v);
        }
        Ok(outputs)
    }
}

/// Resize `e` (width `from`) to `to` bits, as a no-op when equal.
fn rz(e: EExpr, from: u32, to: u32) -> EExpr {
    if from == to {
        e
    } else {
        EExpr::Resize {
            arg: Box::new(e),
            width: to,
        }
    }
}

/// Strip the RTLIL `\` public-name prefix.
fn clean_name(n: &str) -> String {
    n.strip_prefix('\\').unwrap_or(n).to_string()
}

/// Per-port boolean parameter mask (e.g. `RD_CLK_ENABLE`): an integer or a
/// bit string, one bit per port, MSB = highest port.
fn port_mask(c: &YCell, name: &str, count: usize) -> Result<Vec<bool>> {
    if count > 64 {
        return Err(NetlistError::unsupported(
            &c.name,
            format!("more than 64 memory ports ({count})"),
        ));
    }
    let v = c.param_u64(name, 0)?;
    Ok((0..count).map(|i| (v >> i) & 1 != 0).collect())
}

/// A width-`w` constant parameter (integer or bit string).
fn param_bitvec(c: &YCell, name: &str, w: u32) -> Result<BitVec> {
    match c.param(name) {
        None => Ok(BitVec::zero(w)),
        Some(crate::yosys::PValue::Int(v)) => Ok(BitVec::from_u64(*v, w)),
        Some(crate::yosys::PValue::Str(s)) => {
            let mut words = vec![0u64; (w as usize).div_ceil(64)];
            for (i, ch) in s.chars().rev().enumerate() {
                let bit = match ch {
                    '0' | 'x' | 'z' => false,
                    '1' => true,
                    _ => {
                        return Err(NetlistError::schema(
                            format!("cell `{}`", c.name),
                            format!("parameter {name} has non-binary digit `{ch}`"),
                        ))
                    }
                };
                if bit && (i as u32) < w {
                    words[i / 64] |= 1 << (i % 64);
                }
            }
            Ok(BitVec::from_words(&words, w))
        }
    }
}
