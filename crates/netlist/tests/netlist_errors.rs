//! The importer must never panic on malformed input — every failure is a
//! structured [`netlist::NetlistError`]. Targeted cases first, then a
//! randomized corruption/truncation sweep over the real fixtures (same
//! style as the cluster crate's wire-format tests).

use netlist::{import_str, NetlistError, COUNTER_JSON, PICORV32_JSON};
use stimulus::splitmix64;

#[test]
fn unknown_top_module_lists_available() {
    let e = import_str(COUNTER_JSON, "nonexistent").unwrap_err();
    match e {
        NetlistError::NoModule { top, available } => {
            assert_eq!(top, "nonexistent");
            assert_eq!(available, vec!["counter".to_string()]);
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn unknown_dollar_cell_is_reported() {
    let e = import_str(
        r#"{"modules": {"m": {
            "ports": {"a": {"direction": "input", "bits": [2]},
                      "y": {"direction": "output", "bits": [3]}},
            "cells": {"weird": {"type": "$lut", "parameters": {},
                                "connections": {"A": [2], "Y": [3]}}}
        }}}"#,
        "m",
    )
    .unwrap_err();
    match e {
        NetlistError::UnknownCell { cell, ty } => {
            assert_eq!(cell, "weird");
            assert_eq!(ty, "$lut");
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn hierarchical_cell_is_unsupported() {
    let e = import_str(
        r#"{"modules": {"m": {
            "ports": {"a": {"direction": "input", "bits": [2]},
                      "y": {"direction": "output", "bits": [3]}},
            "cells": {"sub": {"type": "child", "parameters": {},
                              "connections": {"a": [2], "y": [3]}}}
        }}}"#,
        "m",
    )
    .unwrap_err();
    match e {
        NetlistError::Unsupported { what, .. } => {
            assert!(
                what.contains("flatten"),
                "should point at yosys flatten: {what}"
            )
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn width_mismatch_is_reported() {
    let e = import_str(
        r#"{"modules": {"m": {
            "ports": {"a": {"direction": "input", "bits": [2, 3]},
                      "y": {"direction": "output", "bits": [4]}},
            "cells": {"g": {"type": "$and",
                            "parameters": {"A_WIDTH": 8, "B_WIDTH": 2, "Y_WIDTH": 1},
                            "connections": {"A": [2, 3], "B": [2, 3], "Y": [4]}}}
        }}}"#,
        "m",
    )
    .unwrap_err();
    match e {
        NetlistError::WidthMismatch {
            port, want, got, ..
        } => {
            assert_eq!(port, "A");
            assert_eq!((want, got), (8, 2));
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn dangling_net_is_reported() {
    // Net 9 is read by the cell but driven by nothing.
    let e = import_str(
        r#"{"modules": {"m": {
            "ports": {"a": {"direction": "input", "bits": [2]},
                      "y": {"direction": "output", "bits": [3]}},
            "cells": {"g": {"type": "$not",
                            "parameters": {"A_WIDTH": 1, "Y_WIDTH": 1},
                            "connections": {"A": [9], "Y": [3]}}}
        }}}"#,
        "m",
    )
    .unwrap_err();
    match e {
        NetlistError::DanglingNet { bit, .. } => assert_eq!(bit, 9),
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn multiple_drivers_are_reported() {
    let e = import_str(
        r#"{"modules": {"m": {
            "ports": {"a": {"direction": "input", "bits": [2]},
                      "y": {"direction": "output", "bits": [3]}},
            "cells": {
              "g1": {"type": "$not", "parameters": {"A_WIDTH": 1, "Y_WIDTH": 1},
                     "connections": {"A": [2], "Y": [3]}},
              "g2": {"type": "$not", "parameters": {"A_WIDTH": 1, "Y_WIDTH": 1},
                     "connections": {"A": [2], "Y": [3]}}
            }
        }}}"#,
        "m",
    )
    .unwrap_err();
    match e {
        NetlistError::MultiDriver { bit, .. } => assert_eq!(bit, 3),
        other => panic!("wrong error: {other}"),
    }
}

/// Every truncation of a fixture must produce `Err`, never a panic.
#[test]
fn truncation_never_panics() {
    for fixture in [COUNTER_JSON, PICORV32_JSON] {
        let step = (fixture.len() / 257).max(1);
        for cut in (0..fixture.len()).step_by(step) {
            if !fixture.is_char_boundary(cut) {
                continue;
            }
            assert!(
                import_str(&fixture[..cut], "x").is_err(),
                "truncated netlist at {cut} should fail"
            );
        }
    }
}

/// Random single/multi-byte corruptions: the importer returns a structured
/// result (Ok for benign edits, Err otherwise) and never panics.
#[test]
fn random_corruption_never_panics() {
    let mut seed = 0x6e65_746c_6973_7431u64;
    for round in 0..400u64 {
        let base: &str = if round % 2 == 0 {
            COUNTER_JSON
        } else {
            PICORV32_JSON
        };
        let mut bytes = base.as_bytes().to_vec();
        seed = splitmix64(seed ^ round);
        let edits = 1 + (seed as usize % 8);
        for k in 0..edits {
            let h = splitmix64(seed ^ (k as u64) << 17);
            let pos = (h as usize) % bytes.len();
            match (h >> 32) % 4 {
                0 => bytes[pos] = (h >> 40) as u8, // random byte
                1 => bytes[pos] = b"{}[]\",:0123456789"[(h >> 40) as usize % 17], // structural
                2 => {
                    bytes.remove(pos); // deletion
                }
                _ => bytes.insert(pos, b"{}[]\" "[(h >> 40) as usize % 6]), // insertion
            }
        }
        let text = String::from_utf8_lossy(&bytes);
        let _ = import_str(&text, "counter");
        let _ = import_str(&text, "picorv32");
    }
}
