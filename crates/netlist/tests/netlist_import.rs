//! Fixture import, reproducibility, hash-stability and rewrite
//! effectiveness tests for the Yosys-JSON frontend.

use netlist::{import_str, rewrite, COUNTER_JSON, PICORV32_JSON};
use rtlir::{interp, BitVec, Design, VarId};

/// The Verilog twin of `fixtures/counter.json` (same ports, same
/// behaviour; the JSON is its gate-level form).
const COUNTER_V: &str = "module counter(input clk, input rst, output [7:0] q, output wrap);
  reg [7:0] cnt;
  assign q = cnt;
  assign wrap = (cnt == 8'hf0);
  always @(posedge clk) begin
    if (rst || wrap) cnt <= 8'd0;
    else cnt <= cnt + 8'd1;
  end
endmodule
";

/// Deterministic pseudo-random input driver (same lane order gives the
/// same values for any design with equally-named ports).
fn drive(d: &Design) -> impl Fn(u64) -> Vec<(VarId, BitVec)> + '_ {
    let ins: Vec<(VarId, u32)> = d.inputs.iter().map(|&v| (v, d.vars[v].width)).collect();
    move |c: u64| {
        ins.iter()
            .enumerate()
            .map(|(k, &(v, w))| {
                let h =
                    stimulus::splitmix64((c + 1) ^ (k as u64).wrapping_mul(0xa076_1d64_78bd_642f));
                (v, BitVec::from_u64(h, w))
            })
            .collect()
    }
}

#[test]
fn counter_fixture_matches_verilog_twin() {
    let (dj, stats) = import_str(COUNTER_JSON, "counter").unwrap();
    assert_eq!(stats.cells, 25);
    let dv = rtlir::elaborate(COUNTER_V, "counter").unwrap();
    // Same interface, same order.
    assert_eq!(
        dj.inputs
            .iter()
            .map(|&v| &dj.vars[v].name)
            .collect::<Vec<_>>(),
        dv.inputs
            .iter()
            .map(|&v| &dv.vars[v].name)
            .collect::<Vec<_>>()
    );
    assert_eq!(
        dj.outputs
            .iter()
            .map(|&v| &dj.vars[v].name)
            .collect::<Vec<_>>(),
        dv.outputs
            .iter()
            .map(|&v| &dv.vars[v].name)
            .collect::<Vec<_>>()
    );
    let wj = interp::capture_waveform(&dj, 600, drive(&dj)).unwrap();
    let wv = interp::capture_waveform(&dv, 600, drive(&dv)).unwrap();
    assert_eq!(wj, wv, "netlist and Verilog counter diverge");
}

#[test]
fn counter_rewrite_recognizes_increment_chain() {
    let (mut d, _) = import_str(COUNTER_JSON, "counter").unwrap();
    let before = interp::capture_waveform(&d, 600, drive(&d)).unwrap();
    let st = rewrite(&mut d);
    assert!(st.adders_widened >= 1, "{st:?}");
    assert!(st.reduction_pct() > 15.0, "{st:?}");
    let after = interp::capture_waveform(&d, 600, drive(&d)).unwrap();
    assert_eq!(before, after);
}

#[test]
fn picorv32_fixture_is_reproducible() {
    assert_eq!(
        PICORV32_JSON,
        netlist::gen::picorv32_json(),
        "fixtures/picorv32.json is stale; run `cargo run -p netlist --bin gen_fixtures`"
    );
}

#[test]
fn picorv32_imports_and_simulates() {
    let (d, stats) = import_str(PICORV32_JSON, "picorv32").unwrap();
    assert!(stats.cells > 250, "{stats:?}");
    assert_eq!(
        d.clock.map(|v| d.vars[v].name.clone()).as_deref(),
        Some("clk")
    );
    rtlir::RtlGraph::build(&d).unwrap();
    interp::run_cycles(&d, 100, drive(&d)).unwrap();
}

#[test]
fn picorv32_rewrite_is_equivalent_and_substantial() {
    let (d_ref, _) = import_str(PICORV32_JSON, "picorv32").unwrap();
    let (mut d_rw, _) = import_str(PICORV32_JSON, "picorv32").unwrap();
    let st = rewrite(&mut d_rw);
    assert!(
        st.adders_widened >= 1,
        "ripple chain not recognized: {st:?}"
    );
    assert!(
        st.comparators_widened >= 1,
        "xnor tree not recognized: {st:?}"
    );
    assert!(st.muxes_collapsed >= 1, "{st:?}");
    assert!(st.subexprs_shared >= 1, "{st:?}");
    assert!(
        st.reduction_pct() > 50.0,
        "expected a large reduction on a bit-blasted core: {st:?}"
    );
    let w1 = interp::capture_waveform(&d_ref, 500, drive(&d_ref)).unwrap();
    let w2 = interp::capture_waveform(&d_rw, 500, drive(&d_rw)).unwrap();
    assert_eq!(w1, w2, "rewrite changed picorv32 behaviour");
}

#[test]
fn design_hash_is_stable_across_reimport_and_cell_order() {
    let (d1, _) = import_str(PICORV32_JSON, "picorv32").unwrap();
    let (d2, _) = import_str(PICORV32_JSON, "picorv32").unwrap();
    assert_eq!(rtlir::design_hash(&d1), rtlir::design_hash(&d2));

    // Emission order must not matter: the same module with cells and
    // netnames listed in a different document order hashes identically.
    let a = r#"{"modules": {"m": {
        "ports": {"x": {"direction": "input", "bits": [2]},
                  "y": {"direction": "output", "bits": [4]}},
        "cells": {
          "n1": {"type": "$not", "parameters": {"A_WIDTH": 1, "Y_WIDTH": 1},
                 "connections": {"A": [2], "Y": [3]}},
          "n2": {"type": "$not", "parameters": {"A_WIDTH": 1, "Y_WIDTH": 1},
                 "connections": {"A": [3], "Y": [4]}}
        },
        "netnames": {"mid": {"bits": [3]}, "out": {"bits": [4]}}
    }}}"#;
    let b = r#"{"modules": {"m": {
        "ports": {"x": {"direction": "input", "bits": [2]},
                  "y": {"direction": "output", "bits": [4]}},
        "cells": {
          "n2": {"type": "$not", "parameters": {"A_WIDTH": 1, "Y_WIDTH": 1},
                 "connections": {"A": [3], "Y": [4]}},
          "n1": {"type": "$not", "parameters": {"A_WIDTH": 1, "Y_WIDTH": 1},
                 "connections": {"A": [2], "Y": [3]}}
        },
        "netnames": {"out": {"bits": [4]}, "mid": {"bits": [3]}}
    }}}"#;
    let (da, _) = import_str(a, "m").unwrap();
    let (db, _) = import_str(b, "m").unwrap();
    assert_eq!(rtlir::design_hash(&da), rtlir::design_hash(&db));
}
